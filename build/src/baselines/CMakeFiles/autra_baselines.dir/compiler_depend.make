# Empty compiler generated dependencies file for autra_baselines.
# This may be replaced when dependencies are built.

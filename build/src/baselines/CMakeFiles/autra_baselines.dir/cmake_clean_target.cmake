file(REMOVE_RECURSE
  "libautra_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/autra_baselines.dir/dhalion.cpp.o"
  "CMakeFiles/autra_baselines.dir/dhalion.cpp.o.d"
  "CMakeFiles/autra_baselines.dir/drs.cpp.o"
  "CMakeFiles/autra_baselines.dir/drs.cpp.o.d"
  "CMakeFiles/autra_baselines.dir/ds2.cpp.o"
  "CMakeFiles/autra_baselines.dir/ds2.cpp.o.d"
  "CMakeFiles/autra_baselines.dir/threshold.cpp.o"
  "CMakeFiles/autra_baselines.dir/threshold.cpp.o.d"
  "libautra_baselines.a"
  "libautra_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autra_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/autra_workloads.dir/workloads.cpp.o"
  "CMakeFiles/autra_workloads.dir/workloads.cpp.o.d"
  "libautra_workloads.a"
  "libautra_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autra_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

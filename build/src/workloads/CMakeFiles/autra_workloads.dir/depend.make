# Empty dependencies file for autra_workloads.
# This may be replaced when dependencies are built.

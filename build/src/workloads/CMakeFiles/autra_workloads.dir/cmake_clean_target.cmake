file(REMOVE_RECURSE
  "libautra_workloads.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bootstrap.cpp" "src/core/CMakeFiles/autra_core.dir/bootstrap.cpp.o" "gcc" "src/core/CMakeFiles/autra_core.dir/bootstrap.cpp.o.d"
  "/root/repo/src/core/controller.cpp" "src/core/CMakeFiles/autra_core.dir/controller.cpp.o" "gcc" "src/core/CMakeFiles/autra_core.dir/controller.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/autra_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/autra_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/model_io.cpp" "src/core/CMakeFiles/autra_core.dir/model_io.cpp.o" "gcc" "src/core/CMakeFiles/autra_core.dir/model_io.cpp.o.d"
  "/root/repo/src/core/rate_aware.cpp" "src/core/CMakeFiles/autra_core.dir/rate_aware.cpp.o" "gcc" "src/core/CMakeFiles/autra_core.dir/rate_aware.cpp.o.d"
  "/root/repo/src/core/scoring.cpp" "src/core/CMakeFiles/autra_core.dir/scoring.cpp.o" "gcc" "src/core/CMakeFiles/autra_core.dir/scoring.cpp.o.d"
  "/root/repo/src/core/steady_rate.cpp" "src/core/CMakeFiles/autra_core.dir/steady_rate.cpp.o" "gcc" "src/core/CMakeFiles/autra_core.dir/steady_rate.cpp.o.d"
  "/root/repo/src/core/throughput_opt.cpp" "src/core/CMakeFiles/autra_core.dir/throughput_opt.cpp.o" "gcc" "src/core/CMakeFiles/autra_core.dir/throughput_opt.cpp.o.d"
  "/root/repo/src/core/transfer.cpp" "src/core/CMakeFiles/autra_core.dir/transfer.cpp.o" "gcc" "src/core/CMakeFiles/autra_core.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/streamsim/CMakeFiles/autra_streamsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bayesopt/CMakeFiles/autra_bayesopt.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/autra_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/autra_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

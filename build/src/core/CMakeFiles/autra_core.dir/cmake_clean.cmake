file(REMOVE_RECURSE
  "CMakeFiles/autra_core.dir/bootstrap.cpp.o"
  "CMakeFiles/autra_core.dir/bootstrap.cpp.o.d"
  "CMakeFiles/autra_core.dir/controller.cpp.o"
  "CMakeFiles/autra_core.dir/controller.cpp.o.d"
  "CMakeFiles/autra_core.dir/evaluator.cpp.o"
  "CMakeFiles/autra_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/autra_core.dir/model_io.cpp.o"
  "CMakeFiles/autra_core.dir/model_io.cpp.o.d"
  "CMakeFiles/autra_core.dir/rate_aware.cpp.o"
  "CMakeFiles/autra_core.dir/rate_aware.cpp.o.d"
  "CMakeFiles/autra_core.dir/scoring.cpp.o"
  "CMakeFiles/autra_core.dir/scoring.cpp.o.d"
  "CMakeFiles/autra_core.dir/steady_rate.cpp.o"
  "CMakeFiles/autra_core.dir/steady_rate.cpp.o.d"
  "CMakeFiles/autra_core.dir/throughput_opt.cpp.o"
  "CMakeFiles/autra_core.dir/throughput_opt.cpp.o.d"
  "CMakeFiles/autra_core.dir/transfer.cpp.o"
  "CMakeFiles/autra_core.dir/transfer.cpp.o.d"
  "libautra_core.a"
  "libautra_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autra_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for autra_core.
# This may be replaced when dependencies are built.

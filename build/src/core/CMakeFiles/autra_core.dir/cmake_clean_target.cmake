file(REMOVE_RECURSE
  "libautra_core.a"
)

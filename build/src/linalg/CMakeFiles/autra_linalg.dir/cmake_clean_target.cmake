file(REMOVE_RECURSE
  "libautra_linalg.a"
)

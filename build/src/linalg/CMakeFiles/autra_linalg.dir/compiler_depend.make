# Empty compiler generated dependencies file for autra_linalg.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/autra_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/autra_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/autra_linalg.dir/matrix.cpp.o"
  "CMakeFiles/autra_linalg.dir/matrix.cpp.o.d"
  "libautra_linalg.a"
  "libautra_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autra_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

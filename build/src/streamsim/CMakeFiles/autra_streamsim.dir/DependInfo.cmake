
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/streamsim/chaining.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/chaining.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/chaining.cpp.o.d"
  "/root/repo/src/streamsim/cluster.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/cluster.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/cluster.cpp.o.d"
  "/root/repo/src/streamsim/engine.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/engine.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/engine.cpp.o.d"
  "/root/repo/src/streamsim/external_service.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/external_service.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/external_service.cpp.o.d"
  "/root/repo/src/streamsim/interference.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/interference.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/interference.cpp.o.d"
  "/root/repo/src/streamsim/job_runner.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/job_runner.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/job_runner.cpp.o.d"
  "/root/repo/src/streamsim/kafka.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/kafka.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/kafka.cpp.o.d"
  "/root/repo/src/streamsim/latency.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/latency.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/latency.cpp.o.d"
  "/root/repo/src/streamsim/metrics.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/metrics.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/metrics.cpp.o.d"
  "/root/repo/src/streamsim/rates.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/rates.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/rates.cpp.o.d"
  "/root/repo/src/streamsim/topology.cpp" "src/streamsim/CMakeFiles/autra_streamsim.dir/topology.cpp.o" "gcc" "src/streamsim/CMakeFiles/autra_streamsim.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

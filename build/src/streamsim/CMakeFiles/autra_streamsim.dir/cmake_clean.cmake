file(REMOVE_RECURSE
  "CMakeFiles/autra_streamsim.dir/chaining.cpp.o"
  "CMakeFiles/autra_streamsim.dir/chaining.cpp.o.d"
  "CMakeFiles/autra_streamsim.dir/cluster.cpp.o"
  "CMakeFiles/autra_streamsim.dir/cluster.cpp.o.d"
  "CMakeFiles/autra_streamsim.dir/engine.cpp.o"
  "CMakeFiles/autra_streamsim.dir/engine.cpp.o.d"
  "CMakeFiles/autra_streamsim.dir/external_service.cpp.o"
  "CMakeFiles/autra_streamsim.dir/external_service.cpp.o.d"
  "CMakeFiles/autra_streamsim.dir/interference.cpp.o"
  "CMakeFiles/autra_streamsim.dir/interference.cpp.o.d"
  "CMakeFiles/autra_streamsim.dir/job_runner.cpp.o"
  "CMakeFiles/autra_streamsim.dir/job_runner.cpp.o.d"
  "CMakeFiles/autra_streamsim.dir/kafka.cpp.o"
  "CMakeFiles/autra_streamsim.dir/kafka.cpp.o.d"
  "CMakeFiles/autra_streamsim.dir/latency.cpp.o"
  "CMakeFiles/autra_streamsim.dir/latency.cpp.o.d"
  "CMakeFiles/autra_streamsim.dir/metrics.cpp.o"
  "CMakeFiles/autra_streamsim.dir/metrics.cpp.o.d"
  "CMakeFiles/autra_streamsim.dir/rates.cpp.o"
  "CMakeFiles/autra_streamsim.dir/rates.cpp.o.d"
  "CMakeFiles/autra_streamsim.dir/topology.cpp.o"
  "CMakeFiles/autra_streamsim.dir/topology.cpp.o.d"
  "libautra_streamsim.a"
  "libautra_streamsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autra_streamsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

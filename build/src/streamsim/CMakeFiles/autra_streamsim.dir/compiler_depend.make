# Empty compiler generated dependencies file for autra_streamsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libautra_streamsim.a"
)

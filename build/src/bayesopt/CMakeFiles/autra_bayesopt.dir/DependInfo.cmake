
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bayesopt/bayes_opt.cpp" "src/bayesopt/CMakeFiles/autra_bayesopt.dir/bayes_opt.cpp.o" "gcc" "src/bayesopt/CMakeFiles/autra_bayesopt.dir/bayes_opt.cpp.o.d"
  "/root/repo/src/bayesopt/search_space.cpp" "src/bayesopt/CMakeFiles/autra_bayesopt.dir/search_space.cpp.o" "gcc" "src/bayesopt/CMakeFiles/autra_bayesopt.dir/search_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gp/CMakeFiles/autra_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/autra_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

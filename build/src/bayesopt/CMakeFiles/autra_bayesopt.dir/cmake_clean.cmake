file(REMOVE_RECURSE
  "CMakeFiles/autra_bayesopt.dir/bayes_opt.cpp.o"
  "CMakeFiles/autra_bayesopt.dir/bayes_opt.cpp.o.d"
  "CMakeFiles/autra_bayesopt.dir/search_space.cpp.o"
  "CMakeFiles/autra_bayesopt.dir/search_space.cpp.o.d"
  "libautra_bayesopt.a"
  "libautra_bayesopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autra_bayesopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for autra_bayesopt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libautra_bayesopt.a"
)

# Empty compiler generated dependencies file for autra_gp.
# This may be replaced when dependencies are built.

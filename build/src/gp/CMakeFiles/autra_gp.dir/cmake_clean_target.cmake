file(REMOVE_RECURSE
  "libautra_gp.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/autra_gp.dir/acquisition.cpp.o"
  "CMakeFiles/autra_gp.dir/acquisition.cpp.o.d"
  "CMakeFiles/autra_gp.dir/gp_regressor.cpp.o"
  "CMakeFiles/autra_gp.dir/gp_regressor.cpp.o.d"
  "CMakeFiles/autra_gp.dir/kernel.cpp.o"
  "CMakeFiles/autra_gp.dir/kernel.cpp.o.d"
  "CMakeFiles/autra_gp.dir/normal.cpp.o"
  "CMakeFiles/autra_gp.dir/normal.cpp.o.d"
  "libautra_gp.a"
  "libautra_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autra_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_gp[1]_include.cmake")
include("/root/repo/build/tests/test_bayesopt[1]_include.cmake")
include("/root/repo/build/tests/test_bo_hardening[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_rates_kafka[1]_include.cmake")
include("/root/repo/build/tests/test_services_interference[1]_include.cmake")
include("/root/repo/build/tests/test_latency_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_engine_topologies[1]_include.cmake")
include("/root/repo/build/tests/test_chaining[1]_include.cmake")
include("/root/repo/build/tests/test_job_runner[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_scoring_bootstrap[1]_include.cmake")
include("/root/repo/build/tests/test_throughput_opt[1]_include.cmake")
include("/root/repo/build/tests/test_steady_rate[1]_include.cmake")
include("/root/repo/build/tests/test_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_controller[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_model_io[1]_include.cmake")
include("/root/repo/build/tests/test_soak[1]_include.cmake")

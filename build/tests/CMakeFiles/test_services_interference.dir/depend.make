# Empty dependencies file for test_services_interference.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_services_interference.dir/test_services_interference.cpp.o"
  "CMakeFiles/test_services_interference.dir/test_services_interference.cpp.o.d"
  "test_services_interference"
  "test_services_interference.pdb"
  "test_services_interference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_services_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_chaining.dir/test_chaining.cpp.o"
  "CMakeFiles/test_chaining.dir/test_chaining.cpp.o.d"
  "test_chaining"
  "test_chaining.pdb"
  "test_chaining[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chaining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

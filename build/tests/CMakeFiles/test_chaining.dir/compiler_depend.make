# Empty compiler generated dependencies file for test_chaining.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_latency_metrics.dir/test_latency_metrics.cpp.o"
  "CMakeFiles/test_latency_metrics.dir/test_latency_metrics.cpp.o.d"
  "test_latency_metrics"
  "test_latency_metrics.pdb"
  "test_latency_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_latency_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

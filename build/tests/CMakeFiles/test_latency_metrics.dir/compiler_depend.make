# Empty compiler generated dependencies file for test_latency_metrics.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_latency_metrics.cpp" "tests/CMakeFiles/test_latency_metrics.dir/test_latency_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_latency_metrics.dir/test_latency_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/autra_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/autra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/autra_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/streamsim/CMakeFiles/autra_streamsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bayesopt/CMakeFiles/autra_bayesopt.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/autra_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/autra_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for test_steady_rate.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_steady_rate.dir/test_steady_rate.cpp.o"
  "CMakeFiles/test_steady_rate.dir/test_steady_rate.cpp.o.d"
  "test_steady_rate"
  "test_steady_rate.pdb"
  "test_steady_rate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_steady_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_bo_hardening.dir/test_bo_hardening.cpp.o"
  "CMakeFiles/test_bo_hardening.dir/test_bo_hardening.cpp.o.d"
  "test_bo_hardening"
  "test_bo_hardening.pdb"
  "test_bo_hardening[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bo_hardening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

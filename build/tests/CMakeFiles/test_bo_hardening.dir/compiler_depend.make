# Empty compiler generated dependencies file for test_bo_hardening.
# This may be replaced when dependencies are built.

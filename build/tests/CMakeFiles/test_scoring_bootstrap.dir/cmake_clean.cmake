file(REMOVE_RECURSE
  "CMakeFiles/test_scoring_bootstrap.dir/test_scoring_bootstrap.cpp.o"
  "CMakeFiles/test_scoring_bootstrap.dir/test_scoring_bootstrap.cpp.o.d"
  "test_scoring_bootstrap"
  "test_scoring_bootstrap.pdb"
  "test_scoring_bootstrap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scoring_bootstrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_rates_kafka.dir/test_rates_kafka.cpp.o"
  "CMakeFiles/test_rates_kafka.dir/test_rates_kafka.cpp.o.d"
  "test_rates_kafka"
  "test_rates_kafka.pdb"
  "test_rates_kafka[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rates_kafka.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_rates_kafka.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_throughput_opt.dir/test_throughput_opt.cpp.o"
  "CMakeFiles/test_throughput_opt.dir/test_throughput_opt.cpp.o.d"
  "test_throughput_opt"
  "test_throughput_opt.pdb"
  "test_throughput_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_throughput_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

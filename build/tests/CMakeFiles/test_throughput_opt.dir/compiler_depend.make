# Empty compiler generated dependencies file for test_throughput_opt.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_job_runner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_job_runner.dir/test_job_runner.cpp.o"
  "CMakeFiles/test_job_runner.dir/test_job_runner.cpp.o.d"
  "test_job_runner"
  "test_job_runner.pdb"
  "test_job_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_job_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table23_elasticity.
# This may be replaced when dependencies are built.

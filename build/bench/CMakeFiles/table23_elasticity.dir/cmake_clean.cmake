file(REMOVE_RECURSE
  "CMakeFiles/table23_elasticity.dir/table23_elasticity.cpp.o"
  "CMakeFiles/table23_elasticity.dir/table23_elasticity.cpp.o.d"
  "table23_elasticity"
  "table23_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table23_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

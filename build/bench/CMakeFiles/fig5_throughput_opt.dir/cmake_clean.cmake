file(REMOVE_RECURSE
  "CMakeFiles/fig5_throughput_opt.dir/fig5_throughput_opt.cpp.o"
  "CMakeFiles/fig5_throughput_opt.dir/fig5_throughput_opt.cpp.o.d"
  "fig5_throughput_opt"
  "fig5_throughput_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_throughput_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

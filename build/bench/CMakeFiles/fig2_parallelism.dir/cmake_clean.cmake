file(REMOVE_RECURSE
  "CMakeFiles/fig2_parallelism.dir/fig2_parallelism.cpp.o"
  "CMakeFiles/fig2_parallelism.dir/fig2_parallelism.cpp.o.d"
  "fig2_parallelism"
  "fig2_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

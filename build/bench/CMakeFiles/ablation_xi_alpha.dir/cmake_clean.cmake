file(REMOVE_RECURSE
  "CMakeFiles/ablation_xi_alpha.dir/ablation_xi_alpha.cpp.o"
  "CMakeFiles/ablation_xi_alpha.dir/ablation_xi_alpha.cpp.o.d"
  "ablation_xi_alpha"
  "ablation_xi_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_xi_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_xi_alpha.
# This may be replaced when dependencies are built.

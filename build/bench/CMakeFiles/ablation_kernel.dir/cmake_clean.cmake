file(REMOVE_RECURSE
  "CMakeFiles/ablation_kernel.dir/ablation_kernel.cpp.o"
  "CMakeFiles/ablation_kernel.dir/ablation_kernel.cpp.o.d"
  "ablation_kernel"
  "ablation_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

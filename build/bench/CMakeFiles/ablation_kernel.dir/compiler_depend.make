# Empty compiler generated dependencies file for ablation_kernel.
# This may be replaced when dependencies are built.

# Empty dependencies file for extension_rate_model.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/extension_rate_model.dir/extension_rate_model.cpp.o"
  "CMakeFiles/extension_rate_model.dir/extension_rate_model.cpp.o.d"
  "extension_rate_model"
  "extension_rate_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_rate_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_tick.
# This may be replaced when dependencies are built.

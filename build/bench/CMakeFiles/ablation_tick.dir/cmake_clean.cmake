file(REMOVE_RECURSE
  "CMakeFiles/ablation_tick.dir/ablation_tick.cpp.o"
  "CMakeFiles/ablation_tick.dir/ablation_tick.cpp.o.d"
  "ablation_tick"
  "ablation_tick.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tick.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

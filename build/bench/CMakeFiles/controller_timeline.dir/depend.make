# Empty dependencies file for controller_timeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/controller_timeline.dir/controller_timeline.cpp.o"
  "CMakeFiles/controller_timeline.dir/controller_timeline.cpp.o.d"
  "controller_timeline"
  "controller_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

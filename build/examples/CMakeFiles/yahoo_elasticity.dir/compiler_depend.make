# Empty compiler generated dependencies file for yahoo_elasticity.
# This may be replaced when dependencies are built.

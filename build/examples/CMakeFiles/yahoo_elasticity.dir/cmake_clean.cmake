file(REMOVE_RECURSE
  "CMakeFiles/yahoo_elasticity.dir/yahoo_elasticity.cpp.o"
  "CMakeFiles/yahoo_elasticity.dir/yahoo_elasticity.cpp.o.d"
  "yahoo_elasticity"
  "yahoo_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yahoo_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

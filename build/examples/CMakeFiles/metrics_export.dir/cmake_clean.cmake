file(REMOVE_RECURSE
  "CMakeFiles/metrics_export.dir/metrics_export.cpp.o"
  "CMakeFiles/metrics_export.dir/metrics_export.cpp.o.d"
  "metrics_export"
  "metrics_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

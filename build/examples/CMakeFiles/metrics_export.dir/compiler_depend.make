# Empty compiler generated dependencies file for metrics_export.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/nexmark_transfer.dir/nexmark_transfer.cpp.o"
  "CMakeFiles/nexmark_transfer.dir/nexmark_transfer.cpp.o.d"
  "nexmark_transfer"
  "nexmark_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexmark_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

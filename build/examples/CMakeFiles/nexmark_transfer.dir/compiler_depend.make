# Empty compiler generated dependencies file for nexmark_transfer.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for autrascale_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/autrascale_cli.dir/autrascale_cli.cpp.o"
  "CMakeFiles/autrascale_cli.dir/autrascale_cli.cpp.o.d"
  "autrascale_cli"
  "autrascale_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autrascale_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wordcount_autoscaling.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wordcount_autoscaling.dir/wordcount_autoscaling.cpp.o"
  "CMakeFiles/wordcount_autoscaling.dir/wordcount_autoscaling.cpp.o.d"
  "wordcount_autoscaling"
  "wordcount_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

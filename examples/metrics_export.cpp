// Metrics export: replay the paper's Fig. 1 scenario on a live session
// with a hot scale-out mid-run, and dump the continuous metric history as
// CSV for plotting (gnuplot/pandas).
//
// Build & run:  ./build/examples/metrics_export [output.csv]
#include <cstdio>
#include <fstream>

#include "example_util.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace autra;
  const std::string path = argc > 1 ? argv[1] : "fig1_timeline.csv";

  // Fig. 1 schedule: 100k rec/s, +50k every 5 minutes (compressed).
  sim::JobSpec spec = workloads::word_count(
      std::make_shared<sim::StaircaseRate>(100e3, 50e3, 300.0));
  sim::ScalingSession session(spec, sim::Parallelism(4, 2));

  // Saturation begins around 300k; scale out in place at t=14 min
  // (kHotScaleOut keeps the pipeline running — ~1 s pause instead of a
  // full savepoint/restart).
  session.run_for(840.0);
  session.reconfigure({2, 2, 4, 3}, sim::RescaleMode::kHotScaleOut);
  session.run_for(660.0);

  namespace mn = sim::metric_names;
  const std::vector<std::string> series{
      mn::kInputRate,    mn::kThroughput,       mn::kLatencyMean,
      mn::kKafkaLag,     mn::kBusyCores,        mn::kParallelismTotal,
  };
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  session.history().write_csv(out, series);
  std::printf("wrote %s (25 min of per-second gauges, %zu series)\n",
              path.c_str(), series.size());

  session.reset_window();
  session.run_for(60.0);
  examples::print_metrics("state after hot scale-out",
                          session.window_metrics());
  std::printf("restarts: %d (the scale-out at t=14 min was applied hot)\n",
              session.restarts());
  return 0;
}

// Yahoo Streaming Benchmark elasticity: the externally-capped job.
//
// The Yahoo job's window sink reads/writes a Redis stand-in whose rate cap
// keeps job throughput below the input rate at ANY parallelism. Plain DS2
// keeps recommending bigger configurations forever; AuTraScale's extra
// termination condition (two consecutive identical recommendations) stops
// the loop, and its trajectory review picks the small configuration with
// the same saturated throughput (paper Fig. 5(b)).
//
// Build & run:  ./build/examples/yahoo_elasticity
#include <cstdio>

#include "baselines/ds2.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "example_util.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace autra;

  const double rate = 60000.0;  // input exceeds what Redis can absorb
  sim::JobSpec spec =
      workloads::yahoo_streaming(std::make_shared<sim::ConstantRate>(rate));
  sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
  const core::Evaluator evaluate = core::make_runner_evaluator(runner);

  std::printf("input rate %.0fk rec/s; Redis capacity %.0fk calls/s\n\n",
              rate / 1000.0, workloads::kYahooRedisCallsPerSec / 1000.0);

  std::printf("--- AuTraScale throughput optimisation ---\n");
  const core::ThroughputOptimizer optimizer(
      runner.spec().topology,
      {.max_parallelism = runner.max_parallelism()});
  const core::ThroughputOptResult r =
      optimizer.optimize(evaluate, sim::Parallelism(5, 1));
  for (const auto& it : r.trajectory) {
    std::printf("  tried %-18s -> throughput %8.0f rec/s\n",
                examples::to_string(it.config).c_str(),
                it.metrics.throughput);
  }
  std::printf("terminated by %s after %d runs\n",
              r.externally_limited ? "repeated recommendation (external cap)"
                                   : "reaching the target",
              r.iterations);
  std::printf("trajectory review selected %s (max throughput %.0f with the "
              "fewest instances)\n\n",
              examples::to_string(r.best).c_str(), r.best_throughput);

  std::printf("--- plain DS2 on the same job ---\n");
  const baselines::Ds2Policy ds2(
      runner.spec().topology,
      {.target_throughput = rate, .max_iterations = 8,
       .max_parallelism = runner.max_parallelism()});
  const baselines::Ds2Result d = ds2.run(evaluate, sim::Parallelism(5, 1));
  std::printf("DS2 %s after %d runs at %s (throughput %.0f)\n",
              d.hit_iteration_bound
                  ? "was still iterating when the budget ran out"
                  : "stopped",
              d.iterations, examples::to_string(d.final_config).c_str(),
              d.final_metrics.throughput);

  std::printf("\n--- Algorithm 1 at a sustainable rate (the paper's Yahoo "
              "QoS scenario: 34k rec/s, 300 ms) ---\n");
  // At 60k input the Redis cap makes every latency target unreachable (the
  // backlog grows forever); the QoS experiment therefore runs at the 34k
  // target rate, which the capped job can sustain.
  sim::JobRunner qos_runner(
      workloads::yahoo_streaming(std::make_shared<sim::ConstantRate>(34000.0)),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
  const core::Evaluator qos_eval = core::make_runner_evaluator(qos_runner);
  const core::ThroughputOptimizer qos_opt(
      qos_runner.spec().topology,
      {.target_throughput = 34000.0,
       .max_parallelism = qos_runner.max_parallelism()});
  const sim::Parallelism qos_base =
      qos_opt.optimize(qos_eval, sim::Parallelism(5, 1)).best;

  core::SteadyRateParams params;
  params.target_latency_ms = 300.0;
  params.target_throughput = 34000.0;
  params.bootstrap_m = 6;
  params.max_parallelism = qos_runner.max_parallelism();
  const core::SteadyRateResult s =
      core::run_steady_rate(qos_eval, qos_base, params);
  examples::print_metrics("algorithm 1 result", s.best_metrics);
  std::printf("score %.3f, %s\n", s.best_score,
              s.converged ? "all QoS requirements met" : "budget exhausted");
  return 0;
}

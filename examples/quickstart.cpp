// Quickstart: the complete AuTraScale pipeline on the WordCount job in
// ~60 lines.
//
//   1. describe the job (here: a prebuilt workload) and its input rate;
//   2. find the throughput-optimal base configuration k' (Eq. 3 loop);
//   3. run Algorithm 1 to find the cheapest configuration that also meets
//      the latency target (GP surrogate + Expected Improvement).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "example_util.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace autra;

  // A WordCount streaming job fed 350k records/s from the Kafka stand-in.
  const double rate = 350000.0;
  sim::JobSpec spec =
      workloads::word_count(std::make_shared<sim::ConstantRate>(rate));

  // The evaluation harness: each measure() is one "run the job with this
  // configuration for the policy running time" trial.
  sim::JobRunner runner(std::move(spec),
                        {.warmup_sec = 60.0, .measure_sec = 60.0});
  const core::Evaluator evaluate = core::make_runner_evaluator(runner);

  // Step 1: throughput optimisation from parallelism 1.
  const core::ThroughputOptimizer optimizer(
      runner.spec().topology,
      {.target_throughput = rate, .max_parallelism = runner.max_parallelism()});
  const core::ThroughputOptResult base =
      optimizer.optimize(evaluate, sim::Parallelism(4, 1));
  std::printf("throughput-optimal base k' = %s  (%.0f rec/s in %d runs)\n",
              examples::to_string(base.best).c_str(), base.best_throughput,
              base.iterations);

  // Step 2: Bayesian optimisation for the latency target.
  core::SteadyRateParams params;
  params.target_latency_ms = 28.0;
  params.target_throughput = rate;
  params.bootstrap_m = 6;
  params.max_parallelism = runner.max_parallelism();
  const core::SteadyRateResult result =
      core::run_steady_rate(evaluate, base.best, params);

  std::printf("algorithm 1 %s after %d bootstrap + %d BO runs\n",
              result.converged ? "converged" : "stopped",
              result.bootstrap_evaluations, result.bo_iterations);
  examples::print_metrics("recommended configuration", result.best_metrics);
  std::printf("benefit score %.3f (threshold %.2f)\n", result.best_score,
              params.score_threshold);
  return 0;
}

// WordCount auto-scaling walkthrough: reproduces the paper's motivation on
// a single job, then shows AuTraScale fixing it.
//
// Part 1 (the problem) — a fixed-parallelism job under a rising input rate
// saturates: Kafka lag and latency explode (paper Fig. 1).
// Part 2 (the fix) — the MAPE controller watches the same job live,
// detects the violation, and rescales it until QoS holds again.
//
// Build & run:  ./build/examples/wordcount_autoscaling
#include <cstdio>

#include "core/controller.hpp"
#include "example_util.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace autra;

  std::printf("=== Part 1: fixed parallelism, rising rate ===\n");
  {
    // 100k rec/s, +50k every 5 simulated minutes.
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::StaircaseRate>(100e3, 50e3, 300.0));
    sim::ScalingSession session(spec, sim::Parallelism(4, 2));
    for (int step = 0; step < 5; ++step) {
      session.reset_window();
      const double window_rate =
          session.engine().kafka().rate_at(session.now());
      session.run_for(300.0);
      const sim::JobMetrics m = session.window_metrics();
      char tag[64];
      std::snprintf(tag, sizeof tag, "t=%4.0f min, rate=%3.0fk",
                    session.now() / 60.0, window_rate / 1000.0);
      examples::print_metrics(tag, m);
    }
    std::printf("-> parallelism 2 saturates around 250k rec/s; the backlog "
                "and latency keep growing.\n\n");
  }

  std::printf("=== Part 2: the same scenario under AuTraScale ===\n");
  {
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::StaircaseRate>(100e3, 50e3, 300.0));
    sim::ScalingSession session(spec, sim::Parallelism(4, 2));

    core::ControllerParams params;
    params.steady.target_latency_ms = 200.0;
    params.steady.target_throughput = 0.0;  // track the input rate
    params.steady.bootstrap_m = 4;
    params.steady.max_evaluations = 24;
    params.policy_interval_sec = 60.0;
    params.policy_running_time_sec = 120.0;

    core::AuTraScaleController controller(spec.topology,
                                          sim::make_trial_service(spec),
                                          params);
    const auto decisions = controller.run(session, 1500.0);

    for (const auto& d : decisions) {
      std::printf("t=%5.0f s  trigger=%-21s algo=%-10s -> %s  (%d trial runs)\n",
                  d.time, core::to_string(d.trigger), d.algorithm.c_str(),
                  examples::to_string(d.applied).c_str(), d.evaluations);
    }
    session.reset_window();
    session.run_for(120.0);
    examples::print_metrics("final state", session.window_metrics());
    std::printf("-> %zu scaling decisions; %zu benefit models in the library.\n",
                decisions.size(), controller.library().size());
  }
  return 0;
}

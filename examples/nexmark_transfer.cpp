// Transfer learning across input rates on Nexmark Query 5.
//
// A benefit model is bound to the rate it was trained at. When the rate
// changes, Algorithm 2 reuses the closest model plus a residual GP instead
// of re-running the whole bootstrap set — this example measures how many
// real job runs that saves (the paper's Fig. 8 scenario: model at 20k,
// new rate 30k).
//
// Build & run:  ./build/examples/nexmark_transfer
#include <cstdio>

#include "core/throughput_opt.hpp"
#include "core/transfer.hpp"
#include "example_util.hpp"
#include "workloads/workloads.hpp"

namespace {

autra::sim::JobRunner make_runner(double rate) {
  auto spec = autra::workloads::nexmark_q5(
      std::make_shared<autra::sim::ConstantRate>(rate));
  return autra::sim::JobRunner(
      std::move(spec), {.warmup_sec = 60.0, .measure_sec = 60.0});
}

autra::sim::Parallelism base_config(autra::sim::JobRunner& runner) {
  const autra::core::Evaluator eval =
      autra::core::make_runner_evaluator(runner);
  const autra::core::ThroughputOptimizer opt(
      runner.spec().topology,
      {.max_parallelism = runner.max_parallelism()});
  return opt.optimize(eval, autra::sim::Parallelism(2, 1)).best;
}

}  // namespace

int main() {
  using namespace autra;

  core::SteadyRateParams sp;
  sp.target_latency_ms = 500.0;  // the paper's Query5 target
  sp.bootstrap_m = 5;

  // --- Train a benefit model at the old rate (20k rec/s). ---------------
  sim::JobRunner r20 = make_runner(20000.0);
  const core::Evaluator e20 = core::make_runner_evaluator(r20);
  const sim::Parallelism base20 = base_config(r20);
  sp.target_throughput = 20000.0;
  sp.max_parallelism = r20.max_parallelism();
  const core::SteadyRateResult run20 = core::run_steady_rate(e20, base20, sp);
  std::printf("model @20k: base %s, best %s, %d real runs\n",
              examples::to_string(base20).c_str(),
              examples::to_string(run20.best).c_str(),
              run20.bootstrap_evaluations + run20.bo_iterations);

  core::ModelLibrary library;
  library.add(core::make_benefit_model(20000.0, base20, run20));

  // --- The rate rises to 30k: transfer. ---------------------------------
  sim::JobRunner r30 = make_runner(30000.0);
  const core::Evaluator e30 = core::make_runner_evaluator(r30);
  const sim::Parallelism base30 = base_config(r30);
  sp.target_throughput = 30000.0;
  sp.max_parallelism = r30.max_parallelism();

  core::TransferParams tp;
  tp.steady = sp;
  const core::BenefitModel* prior = library.closest(30000.0);
  const core::TransferResult transfer =
      core::run_transfer(e30, base30, *prior, tp);

  // --- Compare against training from scratch at 30k. --------------------
  const core::SteadyRateResult scratch =
      core::run_steady_rate(e30, base30, sp);

  std::printf("\n@30k with transfer (Algorithm 2): %s, %d real runs%s\n",
              examples::to_string(transfer.best).c_str(),
              transfer.real_evaluations,
              transfer.converged ? "" : " (budget exhausted)");
  examples::print_metrics("  transfer result", transfer.best_metrics);
  std::printf("@30k from scratch (Algorithm 1): %s, %d real runs\n",
              examples::to_string(scratch.best).c_str(),
              scratch.bootstrap_evaluations + scratch.bo_iterations);
  examples::print_metrics("  scratch result", scratch.best_metrics);

  const int saved = scratch.bootstrap_evaluations + scratch.bo_iterations -
                    transfer.real_evaluations;
  std::printf("\ntransfer saved %d real job restarts.\n", saved);
  return 0;
}

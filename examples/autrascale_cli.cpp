// Command-line driver: run any policy on any workload without writing
// code. The closest thing in this repository to a production entry point.
//
//   autrascale_cli --workload wordcount --rate 350000
//                  --policy autrascale --latency-ms 40
//
//   --workload   wordcount | yahoo | q1 | q5 | q8 | q11 | join | session |
//                fanin                           (default wordcount)
//   --rate       mean input records/s           (default 350000)
//   --arrival    constant | mmpp | hawkes | diurnal | trace:<path>
//                generative arrival process for the input rate; the
//                generative ones are calibrated to a long-run mean of
//                --rate over --horizon seconds   (default constant)
//   --arrival-seed  seed for the arrival process (default 7)
//   --policy     autrascale | ds2 | drs-true | drs-observed | threshold |
//                dhalion                        (default autrascale)
//   --latency-ms target latency                 (default 100)
//   --throughput target records/s, 0 = the rate (default 0)
//   --kernel     matern52 | matern32 | rbf      (default matern52)
//   --threads    Plan-stage worker threads, 0 = auto, 1 = serial (default 0)
//   --seed       RNG seed                       (default 42)
//
// Fault injection (runs the live resilience harness instead of the
// offline recommend-run-judge loop):
//
//   --faults     machine-crash | metric-chaos | degraded-cluster | chaos
//   --fault-seed seed for the schedule's randomised placements (default 1)
//   --horizon    simulated seconds for the faulted run   (default 1800)
//   --intensity  chaos mode only: expected events per 300 s (default 1.0)
//   --burst-clustering  chaos mode only: Hawkes branching ratio in [0, 1)
//                for time-correlated fault storms; 0 = independent
//                placements (default 0)
//
// `--faults chaos` samples a full-taxonomy schedule (crashes, rack
// crash groups, partitions, metric corruption, rescale failures) from
// fault::ChaosGenerator instead of replaying a canned story; the same
// --fault-seed reproduces the same schedule bit for bit.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "arrival/arrival.hpp"
#include "baselines/dhalion.hpp"
#include "baselines/drs.hpp"
#include "baselines/ds2.hpp"
#include "baselines/threshold.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "example_util.hpp"
#include "fault/chaos.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/resilience.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

struct Options {
  std::string workload = "wordcount";
  std::string policy = "autrascale";
  std::string arrival = "constant";
  std::uint64_t arrival_seed = 7;
  double rate = 350000.0;
  double latency_ms = 100.0;
  double throughput = 0.0;
  gp::KernelKind kernel = gp::KernelKind::kMatern52;
  int threads = 0;
  std::uint64_t seed = 42;
  std::string faults;  ///< Schedule name or "chaos"; empty = no fault run.
  std::uint64_t fault_seed = 1;
  double horizon_sec = 1800.0;
  double intensity = 1.0;  ///< Chaos mode: expected events per 300 s.
  double burst_clustering = 0.0;  ///< Chaos mode: Hawkes branching ratio.
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload wordcount|yahoo|q1|q5|q8|q11|join|"
               "session|fanin]\n"
               "          [--rate R] [--arrival constant|mmpp|hawkes|diurnal|"
               "trace:<path>]\n"
               "          [--arrival-seed S]\n"
               "          [--policy autrascale|ds2|drs-true|drs-observed|"
               "threshold|dhalion]\n"
               "          [--latency-ms L] [--throughput T]\n"
               "          [--kernel matern52|matern32|rbf] [--threads N]"
               " [--seed S]\n"
               "          [--faults machine-crash|metric-chaos|"
               "degraded-cluster|chaos]\n"
               "          [--fault-seed S] [--horizon SEC] [--intensity I]\n"
               "          [--burst-clustering B]\n",
               argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--workload") {
      opt.workload = value();
    } else if (flag == "--policy") {
      opt.policy = value();
    } else if (flag == "--rate") {
      opt.rate = std::atof(value());
    } else if (flag == "--latency-ms") {
      opt.latency_ms = std::atof(value());
    } else if (flag == "--throughput") {
      opt.throughput = std::atof(value());
    } else if (flag == "--kernel") {
      // Bad kernel names fail here, at the I/O boundary, not deep inside a
      // GP fit.
      try {
        opt.kernel = gp::parse_kernel_kind(value());
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage(argv[0]);
      }
    } else if (flag == "--threads") {
      opt.threads = std::atoi(value());
    } else if (flag == "--seed") {
      opt.seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--faults") {
      opt.faults = value();
    } else if (flag == "--fault-seed") {
      opt.fault_seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--horizon") {
      opt.horizon_sec = std::atof(value());
    } else if (flag == "--intensity") {
      opt.intensity = std::atof(value());
    } else if (flag == "--arrival") {
      opt.arrival = value();
    } else if (flag == "--arrival-seed") {
      opt.arrival_seed = std::strtoull(value(), nullptr, 10);
    } else if (flag == "--burst-clustering") {
      opt.burst_clustering = std::atof(value());
    } else {
      usage(argv[0]);
    }
  }
  if (opt.rate <= 0.0 || opt.latency_ms <= 0.0 || opt.horizon_sec <= 0.0 ||
      opt.intensity < 0.0 || opt.burst_clustering < 0.0 ||
      opt.burst_clustering >= 1.0) {
    usage(argv[0]);
  }
  return opt;
}

sim::JobSpec make_spec(const Options& opt) {
  std::shared_ptr<const sim::RateSchedule> schedule;
  try {
    schedule = arrival::make_arrival(opt.arrival, opt.rate, opt.arrival_seed,
                                     opt.horizon_sec);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
  if (opt.workload == "wordcount") return workloads::word_count(schedule);
  if (opt.workload == "yahoo") return workloads::yahoo_streaming(schedule);
  if (opt.workload == "q1") return workloads::nexmark_q1(schedule);
  if (opt.workload == "q5") return workloads::nexmark_q5(schedule);
  if (opt.workload == "q8") return workloads::nexmark_q8(schedule);
  if (opt.workload == "q11") return workloads::nexmark_q11(schedule);
  if (opt.workload == "join") return workloads::stream_stream_join(schedule);
  if (opt.workload == "session") return workloads::sessionization(schedule);
  if (opt.workload == "fanin") return workloads::fanin_tree(schedule);
  std::fprintf(stderr, "unknown workload '%s'\n", opt.workload.c_str());
  std::exit(2);
}

/// --faults mode: a live session with the schedule injected, driven by the
/// selected policy; QoS is judged on fault-free ground truth.
int run_faulted(const Options& opt) {
  fault::FaultSchedule schedule;
  try {
    if (opt.faults == "chaos") {
      fault::ChaosProfile profile = fault::ChaosProfile::for_job(
          make_spec(opt), opt.horizon_sec, opt.intensity);
      profile.burst_clustering = opt.burst_clustering;
      const fault::ChaosGenerator gen(std::move(profile));
      schedule = gen.generate(opt.fault_seed);
    } else {
      schedule = fault::FaultSchedule::canned(opt.faults, opt.fault_seed,
                                              opt.horizon_sec);
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  fault::ResilienceOptions ropt;
  ropt.horizon_sec = opt.horizon_sec;
  ropt.target_latency_ms = opt.latency_ms;
  ropt.seed = opt.seed;
  fault::ResilienceReport r;
  try {
    r = fault::run_resilience(opt.policy, make_spec(opt), schedule, ropt);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::printf("workload=%s rate=%.0f policy=%s faults=%s fault-seed=%llu "
              "horizon=%.0fs\n",
              opt.workload.c_str(), opt.rate, opt.policy.c_str(),
              opt.faults.c_str(),
              static_cast<unsigned long long>(opt.fault_seed),
              opt.horizon_sec);
  std::printf(
      "throughput=%.0f/s (input %.0f/s)  violation=%.0fs  recovery=%.0fs\n"
      "lag max=%.0f end=%.0f  restarts=%d (failure %d)  decisions=%d\n"
      "failed-rescales=%d retries=%d unhealthy-windows=%d\n",
      r.mean_throughput, r.mean_input_rate, r.violation_sec, r.recovery_sec,
      r.max_lag, r.end_lag, r.restarts, r.failure_restarts, r.decisions,
      r.failed_rescales, r.rescale_retries, r.unhealthy_windows);
  // Pass criteria for a faulted run: the job recovered and drained.
  const bool ok = r.recovery_sec >= 0.0;
  std::printf("recovered=%s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);
  if (!opt.faults.empty()) return run_faulted(opt);
  const double target_thr = opt.throughput > 0.0 ? opt.throughput : opt.rate;

  sim::JobRunner runner(make_spec(opt),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
  const core::Evaluator evaluate = core::make_runner_evaluator(runner);
  const auto& topology = runner.spec().topology;
  const int p_max = runner.max_parallelism();
  const sim::Parallelism start(runner.num_operators(), 1);

  std::printf("workload=%s rate=%.0f policy=%s latency-target=%.0fms "
              "throughput-target=%.0f\n",
              opt.workload.c_str(), opt.rate, opt.policy.c_str(),
              opt.latency_ms, target_thr);

  sim::JobMetrics final_metrics;
  int runs = 0;

  if (opt.policy == "autrascale") {
    const core::ThroughputOptimizer topt(
        topology,
        {.target_throughput = target_thr, .max_parallelism = p_max});
    const auto base = topt.optimize(evaluate, start);
    core::SteadyRateParams sp;
    sp.target_latency_ms = opt.latency_ms;
    sp.target_throughput = target_thr;
    sp.max_parallelism = p_max;
    sp.gp_kernel = opt.kernel;
    sp.threads = opt.threads;
    sp.seed = opt.seed;
    const auto r = core::run_steady_rate(evaluate, base.best, sp);
    final_metrics = r.best_metrics;
    runs = base.iterations + r.bootstrap_evaluations + r.bo_iterations;
    std::printf("converged=%s score=%.3f\n", r.converged ? "yes" : "no",
                r.best_score);
  } else if (opt.policy == "ds2") {
    const baselines::Ds2Policy policy(
        topology,
        {.target_throughput = target_thr, .max_parallelism = p_max});
    const auto r = policy.run(evaluate, start);
    final_metrics = r.final_metrics;
    runs = r.iterations;
  } else if (opt.policy == "drs-true" || opt.policy == "drs-observed") {
    const baselines::DrsPolicy policy(
        topology, {.target_latency_ms = opt.latency_ms,
                   .target_throughput = target_thr,
                   .rate_metric = opt.policy == "drs-true"
                                      ? baselines::RateMetric::kTrueRate
                                      : baselines::RateMetric::kObservedRate,
                   .max_parallelism = p_max});
    const auto r = policy.run(evaluate, start);
    final_metrics = r.final_metrics;
    runs = r.iterations;
    std::printf("model-predicted latency=%.2fms\n", r.predicted_latency_ms);
  } else if (opt.policy == "threshold") {
    const baselines::ThresholdPolicy policy({.max_parallelism = p_max});
    const auto r = policy.run(evaluate, start);
    final_metrics = r.final_metrics;
    runs = r.iterations;
  } else if (opt.policy == "dhalion") {
    const baselines::DhalionPolicy policy(topology,
                                          {.max_parallelism = p_max});
    const auto r = policy.run(evaluate, start);
    final_metrics = r.final_metrics;
    runs = r.iterations;
    std::printf("healthy=%s blacklisted=%zu\n", r.healthy ? "yes" : "no",
                r.blacklisted.size());
  } else {
    usage(argv[0]);
  }

  autra::examples::print_metrics("result", final_metrics);
  const bool qos = final_metrics.latency_ms <= opt.latency_ms &&
                   final_metrics.throughput >= 0.97 * target_thr;
  std::printf("trial runs=%d  QoS=%s\n", runs, qos ? "met" : "VIOLATED");
  return qos ? 0 : 1;
}

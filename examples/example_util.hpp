// Small shared printing helpers for the example programs.
#pragma once

#include <cstdio>
#include <string>

#include "streamsim/job_runner.hpp"

namespace autra::examples {

inline std::string to_string(const sim::Parallelism& p) {
  std::string s = "(";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(p[i]);
  }
  return s + ")";
}

inline void print_metrics(const char* tag, const sim::JobMetrics& m) {
  std::printf(
      "%-28s config=%-18s thr=%8.0f rec/s  lat=%7.1f ms  p99=%7.1f ms  "
      "lag-growth=%8.0f rec/s  cores=%5.1f  mem=%6.0f MB\n",
      tag, to_string(m.parallelism).c_str(), m.throughput, m.latency_ms,
      m.latency_p99_ms, m.lag_growth_per_sec, m.busy_cores, m.memory_mb);
}

}  // namespace autra::examples

// Side-by-side comparison of every auto-scaling policy in the repository
// on the same WordCount scenario: AuTraScale (Algorithm 1), DS2, DRS with
// true and observed rates, and the utilisation-threshold baseline.
//
// Build & run:  ./build/examples/policy_comparison
#include <cstdio>

#include "baselines/dhalion.hpp"
#include "baselines/drs.hpp"
#include "baselines/ds2.hpp"
#include "baselines/threshold.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "example_util.hpp"
#include "workloads/workloads.hpp"

namespace {

struct Row {
  const char* policy;
  autra::sim::JobMetrics metrics;
  int runs;
  bool qos_met;
};

void print_row(const Row& row, double target_lat, double target_thr) {
  std::printf("%-18s %-16s %4d runs  thr=%8.0f  lat=%7.1f ms  cores=%5.1f  %s\n",
              row.policy,
              autra::examples::to_string(row.metrics.parallelism).c_str(),
              row.runs, row.metrics.throughput, row.metrics.latency_ms,
              row.metrics.busy_cores,
              (row.metrics.latency_ms <= target_lat &&
               row.metrics.throughput >= 0.97 * target_thr)
                  ? "QoS ok"
                  : "QoS VIOLATED");
}

}  // namespace

int main() {
  using namespace autra;

  const double rate = 350000.0;
  const double target_latency = 28.0;

  sim::JobSpec spec =
      workloads::word_count(std::make_shared<sim::ConstantRate>(rate));
  sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
  const core::Evaluator evaluate = core::make_runner_evaluator(runner);
  const auto& topology = runner.spec().topology;
  const int p_max = runner.max_parallelism();
  const sim::Parallelism start(4, 1);

  std::printf("WordCount @ %.0fk rec/s, latency target %.0f ms\n\n",
              rate / 1000.0, target_latency);

  // AuTraScale: throughput optimisation + Algorithm 1.
  {
    const core::ThroughputOptimizer opt(
        topology, {.target_throughput = rate, .max_parallelism = p_max});
    const auto base = opt.optimize(evaluate, start);
    core::SteadyRateParams params;
    params.target_latency_ms = target_latency;
    params.target_throughput = rate;
    params.bootstrap_m = 6;
    params.max_parallelism = p_max;
    const auto r = core::run_steady_rate(evaluate, base.best, params);
    print_row({"AuTraScale", r.best_metrics,
               base.iterations + r.bootstrap_evaluations + r.bo_iterations,
               r.converged},
              target_latency, rate);
  }

  // DS2 (throughput only — no latency objective).
  {
    const baselines::Ds2Policy ds2(
        topology, {.target_throughput = rate, .max_parallelism = p_max});
    const auto r = ds2.run(evaluate, start);
    print_row({"DS2", r.final_metrics, r.iterations, r.reached_target},
              target_latency, rate);
  }

  // DRS with true and observed processing rates.
  for (const auto metric :
       {baselines::RateMetric::kTrueRate, baselines::RateMetric::kObservedRate}) {
    const baselines::DrsPolicy drs(
        topology, {.target_latency_ms = target_latency,
                   .target_throughput = rate,
                   .rate_metric = metric,
                   .max_parallelism = p_max});
    const auto r = drs.run(evaluate, start);
    print_row({metric == baselines::RateMetric::kTrueRate ? "DRS (true rate)"
                                                          : "DRS (observed)",
               r.final_metrics, r.iterations, r.converged},
              target_latency, rate);
  }

  // Utilisation-threshold baseline.
  {
    const baselines::ThresholdPolicy policy({.max_parallelism = p_max});
    const auto r = policy.run(evaluate, start);
    print_row({"threshold", r.final_metrics, r.iterations, r.converged},
              target_latency, rate);
  }

  // Dhalion-style backpressure rules.
  {
    const baselines::DhalionPolicy policy(topology,
                                          {.max_parallelism = p_max});
    const auto r = policy.run(evaluate, start);
    print_row({"dhalion", r.final_metrics, r.iterations, r.healthy},
              target_latency, rate);
  }

  std::printf(
      "\nDS2/DRS trust their models blindly; AuTraScale is the only policy "
      "that verifies QoS on measurements\nand optimises the "
      "latency/resource trade-off jointly.\n");
  return 0;
}

// Ablation: key skew — breaking the paper's uniform-distribution
// assumption (Sec. III-A: "each instance of the same operator has the same
// amount of data").
//
// With skewed keys the hottest instance saturates first, so an operator's
// effective capacity is below k times the per-instance true rate. DS2's
// Eq. 3 (and AuTraScale's throughput stage, which borrows it) divides the
// target rate by the *average* true rate and therefore under-provisions;
// AuTraScale's BO stage compensates because it trusts measurements, not
// the uniformity assumption.
#include "baselines/ds2.hpp"
#include "bench_util.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

sim::JobSpec skewed_wordcount(double skew) {
  sim::JobSpec spec =
      workloads::word_count(std::make_shared<sim::ConstantRate>(350e3));
  spec.topology.op(2).key_skew = skew;  // the keyed Count operator
  return spec;
}

}  // namespace

int main() {
  bench::header("key-skew ablation — WordCount @350k, skew on Count");
  std::printf("%6s | %-14s %9s %6s | %-14s %9s %6s %6s\n", "skew",
              "DS2 config", "thr[k/s]", "met", "AuTraScale", "thr[k/s]",
              "met", "runs");

  for (const double skew : {0.0, 0.5, 1.0, 2.0}) {
    sim::JobRunner runner(skewed_wordcount(skew),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
    const core::Evaluator evaluate = core::make_runner_evaluator(runner);
    const int p_max = runner.max_parallelism();

    const baselines::Ds2Policy ds2(
        runner.spec().topology,
        {.target_throughput = 350e3, .max_parallelism = p_max});
    const baselines::Ds2Result d = ds2.run(evaluate, sim::Parallelism(4, 1));

    const core::ThroughputOptimizer opt(
        runner.spec().topology,
        {.target_throughput = 350e3, .max_parallelism = p_max});
    const auto base = opt.optimize(evaluate, sim::Parallelism(4, 1));
    core::SteadyRateParams sp;
    sp.target_latency_ms = 120.0;
    sp.target_throughput = 350e3;
    sp.bootstrap_m = 6;
    sp.max_parallelism = p_max;
    const core::SteadyRateResult a =
        core::run_steady_rate(evaluate, base.best, sp);

    const auto met = [](double thr) { return thr >= 0.97 * 350e3; };
    std::printf("%6.1f | %-14s %9.1f %6s | %-14s %9.1f %6s %6d\n", skew,
                bench::cfg(d.final_config).c_str(),
                d.final_metrics.throughput / 1e3,
                met(d.final_metrics.throughput) ? "yes" : "NO",
                bench::cfg(a.best).c_str(), a.best_metrics.throughput / 1e3,
                met(a.best_metrics.throughput) ? "yes" : "NO",
                base.iterations + a.bootstrap_evaluations + a.bo_iterations);
  }

  std::printf(
      "\nShape check: at skew 0 both meet the target with similar configs; "
      "as skew grows both need more Count instances, and the uniformity-"
      "assuming one-shot DS2 recommendation drifts further from what the "
      "measured loop settles on.\n");
  return 0;
}

// Ablation: operator chaining (Flink task fusion) vs unchained execution.
//
// Chaining removes network hops (lower latency floor) and merges per-record
// costs into one task whose parallelism is shared by all members — the
// coarse-grained scaling the paper's related work criticises in
// topology-level policies. This ablation runs the throughput optimiser on
// both forms of each workload and compares the resources and latency of
// the resulting configurations.
#include "bench_util.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "streamsim/chaining.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

struct Row {
  sim::Parallelism config;
  double throughput = 0.0;
  double latency_ms = 0.0;
  double busy_cores = 0.0;
  int runs = 0;
};

/// Full AuTraScale pipeline: throughput optimisation then Algorithm 1 at
/// the given latency target.
Row optimize(const sim::JobSpec& spec, double rate, double latency_ms) {
  sim::JobSpec copy = spec;
  copy.schedule = std::make_shared<sim::ConstantRate>(rate);
  sim::JobRunner runner(std::move(copy),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
  const core::Evaluator eval = core::make_runner_evaluator(runner);
  const core::ThroughputOptimizer opt(
      runner.spec().topology,
      {.target_throughput = rate,
       .max_parallelism = runner.max_parallelism()});
  const auto base = opt.optimize(
      eval, sim::Parallelism(runner.num_operators(), 1));
  core::SteadyRateParams sp;
  sp.target_latency_ms = latency_ms;
  sp.target_throughput = rate;
  sp.max_parallelism = runner.max_parallelism();
  const auto r = core::run_steady_rate(eval, base.best, sp);
  return {r.best, r.best_metrics.throughput, r.best_metrics.latency_ms,
          r.best_metrics.busy_cores,
          base.iterations + r.bootstrap_evaluations + r.bo_iterations};
}

}  // namespace

int main() {
  bench::header(
      "operator-chaining ablation — full AuTraScale pipeline per form");
  std::printf("%-12s %6s %8s | %-14s %8s %6s | %-14s %8s %6s\n", "workload",
              "rate", "lat-tgt", "unchained", "lat[ms]", "cores", "chained",
              "lat[ms]", "cores");

  struct Case {
    const char* name;
    sim::JobSpec spec;
    double rate;
    double latency_ms;
  };
  Case cases[] = {
      {"WordCount",
       workloads::word_count(std::make_shared<sim::ConstantRate>(1.0)),
       300e3, 30.0},
      {"Yahoo",
       workloads::yahoo_streaming(std::make_shared<sim::ConstantRate>(1.0)),
       30e3, 600.0},
  };

  for (Case& c : cases) {
    const Row plain = optimize(c.spec, c.rate, c.latency_ms);

    sim::JobSpec chained_spec = c.spec;
    const sim::ChainingResult chained =
        sim::chain_operators(c.spec.topology);
    chained_spec.topology = chained.topology;
    const Row fused = optimize(chained_spec, c.rate, c.latency_ms);

    std::printf("%-12s %5.0fk %7.0f | %-14s %8.1f %6.1f | %-14s %8.1f %6.1f\n",
                c.name, c.rate / 1e3, c.latency_ms,
                bench::cfg(plain.config).c_str(), plain.latency_ms,
                plain.busy_cores, bench::cfg(fused.config).c_str(),
                fused.latency_ms, fused.busy_cores);
  }

  std::printf(
      "\nShape check: with the BO stage buying saturation headroom in both "
      "forms, the chained job meets the same latency target with fewer "
      "network hops (lower floor) but coarser parallelism knobs; CPU usage "
      "is comparable. At the bare throughput-optimal point (no BO stage) "
      "the fused group saturates as a unit and its latency is WORSE — "
      "chaining and auto-scaling genuinely interact.\n");
  return 0;
}

// Plan-stage parallel scaling: Algorithm 1 wall time vs. worker threads.
//
// Runs the full steady-rate search (bootstrap fan-out, GP grid search, EI
// batch scoring) on the Table-IV synthetic chain at 1/2/4/8 threads and
// reports wall time, speedup over the serial run, and — because the exec
// layer guarantees it — that the decisions are identical at every thread
// count. Speedup is bounded by the physical cores of the machine running
// the bench; the determinism column must read "yes" everywhere regardless.
// Wall time and speedup vary with the host, so the committed JSON baseline
// is meaningful for the determinism flag and evaluation counts only.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "workloads/workloads.hpp"

int main(int argc, char** argv) {
  using namespace autra;
  using Clock = std::chrono::steady_clock;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::header(
      "Plan-stage parallel scaling — Alg. 1 on the Table-IV synthetic "
      "chain (6 ops @220k, latency target 45 ms)");

  const auto run_once = [](int threads) {
    sim::JobSpec spec = workloads::synthetic_chain(
        6, std::make_shared<sim::ConstantRate>(220e3), 10.0);
    sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
    const core::Evaluator evaluate = core::make_runner_evaluator(runner);

    const core::ThroughputOptimizer opt(
        runner.spec().topology,
        {.target_throughput = 220e3,
         .max_parallelism = runner.max_parallelism()});
    const auto base = opt.optimize(evaluate, sim::Parallelism(6, 1));

    core::SteadyRateParams params;
    params.target_latency_ms = 45.0;
    params.target_throughput = 220e3;
    params.bootstrap_m = 8;
    params.max_parallelism = runner.max_parallelism();
    params.max_evaluations = 30;
    params.threads = threads;

    const auto t0 = Clock::now();
    const core::SteadyRateResult r =
        core::run_steady_rate(evaluate, base.best, params);
    const double sec =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return std::make_pair(sec, r);
  };

  std::printf("%8s %10s %8s %-18s %8s %6s %6s %6s\n", "threads", "time[s]",
              "speedup", "best config", "score", "boot", "bo", "same");

  bench::JsonReport report("bench_parallel_scaling");
  double serial_sec = 0.0;
  core::SteadyRateResult serial;
  for (const int threads : {1, 2, 4, 8}) {
    const auto [sec, r] = run_once(threads);
    if (threads == 1) {
      serial_sec = sec;
      serial = r;
    }
    const bool same = r.best == serial.best &&
                      r.best_score == serial.best_score &&
                      r.history.size() == serial.history.size();
    std::printf("%8d %10.3f %7.2fx %-18s %8.3f %6d %6d %6s\n", threads, sec,
                serial_sec / sec, bench::cfg(r.best).c_str(), r.best_score,
                r.bootstrap_evaluations, r.bo_iterations,
                same ? "yes" : "NO");
    report.row()
        .num("threads", threads)
        .num("time_sec", sec)
        .num("speedup", serial_sec / sec)
        .str("best_config", bench::cfg(r.best))
        .num("best_score", r.best_score)
        .num("bootstrap_evaluations", r.bootstrap_evaluations)
        .num("bo_iterations", r.bo_iterations)
        .num("deterministic", same ? 1 : 0);
  }

  std::printf(
      "\nShape check: the 'same' column must read yes at every thread "
      "count (bit-identical decisions); speedup saturates at the "
      "machine's physical core count.\n");

  if (!json_path.empty()) {
    if (!report.write(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

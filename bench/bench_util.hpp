// Shared helpers for the experiment-reproduction benches.
#pragma once

#include <cstdio>
#include <numeric>
#include <string>

#include "streamsim/job_runner.hpp"

namespace autra::bench {

inline std::string cfg(const sim::Parallelism& p) {
  std::string s = "(";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(p[i]);
  }
  return s + ")";
}

inline int total(const sim::Parallelism& p) {
  return std::accumulate(p.begin(), p.end(), 0);
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace autra::bench

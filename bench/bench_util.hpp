// Shared helpers for the experiment-reproduction benches.
#pragma once

#include <cstdio>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "streamsim/job_runner.hpp"

namespace autra::bench {

inline std::string cfg(const sim::Parallelism& p) {
  std::string s = "(";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(p[i]);
  }
  return s + ")";
}

inline int total(const sim::Parallelism& p) {
  return std::accumulate(p.begin(), p.end(), 0);
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// Machine-readable bench output: a flat list of rows, each an *ordered*
/// sequence of key/value fields, serialised as
///   {"bench": <name>, "rows": [{...}, ...]}
/// Field order is insertion order and rows are emitted in the order they
/// were added — never via an unordered container — so two runs of the same
/// bench produce structurally identical files (the autra_lint determinism
/// contract for committed baselines).
class JsonReport {
 public:
  explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

  JsonReport& row() {
    rows_.emplace_back();
    return *this;
  }
  JsonReport& num(const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    rows_.back().emplace_back(key, std::string(buf));
    return *this;
  }
  JsonReport& str(const char* key, const std::string& value) {
    rows_.back().emplace_back(key, "\"" + value + "\"");
    return *this;
  }

  /// Writes the report; returns false (and prints to stderr) on I/O error.
  /// Keys and string values must not need JSON escaping (plain
  /// identifiers only — this is a bench artifact, not a serialiser).
  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n",
                 bench_.c_str());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": %s", i > 0 ? ", " : "",
                     rows_[r][i].first.c_str(), rows_[r][i].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

}  // namespace autra::bench

// Reproduces paper Table IV: CPU-time overhead of the AuTraScale
// algorithms as a function of the number of operators in the DAG
// (2, 4, 6, 8, 10).
//
//   Alg1_train — fitting the GP benefit model on a bootstrap-sized sample
//                set and recommending a configuration (paper: 42-88 ms).
//   Alg1_use   — a single model-driven recommendation from an existing
//                sample set (paper: < 1 ms).
//   Alg2       — one transfer-learning step: residual fit + estimated
//                bootstrap scores + recommendation (paper: 67-116 ms).
//
// Absolute times depend on hardware; the paper's shape to check is
// near-linear growth with the operator count, all far below the policy
// interval.
//
// The incremental-GP section (--smoke / --json, DESIGN.md §14) measures
// the always-on Plan path instead: a full O(n^3) refit vs the O(n^2)
// GpRegressor::observe() factor extension at n in {64, 256, 1024}, with a
// posterior-parity check (incremental vs from-scratch <= 1e-9) whose
// verdict — together with the FitStats counters — is the deterministic,
// bench_compare-gated part of the committed BENCH_overhead.json; the
// timing columns carry noise and are skipped by the CI gate.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <random>
#include <string>

#include "bench_util.hpp"
#include "core/bootstrap.hpp"
#include "core/steady_rate.hpp"
#include "core/transfer.hpp"

namespace {

using namespace autra;

// Synthetic benefit surface: smooth, concave, rate-shifted.
double synthetic_score(const runtime::Parallelism& config, double shift) {
  double s = 1.0;
  for (int k : config) {
    const double d = (k - 6.0 - shift) / 10.0;
    s -= d * d / static_cast<double>(config.size());
  }
  return s;
}

std::vector<core::SamplePoint> make_samples(std::size_t n_ops, double shift,
                                            std::uint64_t seed) {
  const runtime::Parallelism base(n_ops, 2);
  std::vector<core::SamplePoint> samples;
  for (const runtime::Parallelism& c : core::bootstrap_samples(base, 20, 6)) {
    core::SamplePoint s;
    s.config = c;
    s.score = synthetic_score(c, shift);
    runtime::JobMetrics m;
    m.parallelism = c;
    m.latency_ms = 1000.0 * (1.1 - s.score);
    m.throughput = 1000.0;
    m.input_rate = 1000.0;
    s.metrics = std::move(m);
    samples.push_back(std::move(s));
  }
  // A few extra BO-style samples for realism.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(2, 20);
  for (int extra = 0; extra < 6; ++extra) {
    core::SamplePoint s;
    s.config.resize(n_ops);
    for (int& k : s.config) k = dist(rng);
    s.score = synthetic_score(s.config, shift);
    samples.push_back(std::move(s));
  }
  return samples;
}

core::SteadyRateParams params_for(std::size_t n_ops) {
  core::SteadyRateParams p;
  p.target_latency_ms = 100.0;
  p.target_throughput = 1000.0;
  p.max_parallelism = 20;
  p.seed = 7 + n_ops;
  return p;
}

void Alg1Train(benchmark::State& state) {
  const auto n_ops = static_cast<std::size_t>(state.range(0));
  const auto samples = make_samples(n_ops, 0.0, 11);
  const runtime::Parallelism base(n_ops, 2);
  const auto params = params_for(n_ops);
  for (auto _ : state) {
    // Fit + recommend, the per-iteration planning cost of Algorithm 1.
    core::BenefitModel model;
    model.rate = 1000.0;
    model.base = base;
    model.samples = samples;
    model.fit();
    benchmark::DoNotOptimize(
        core::recommend_next(samples, base, params));
  }
}

void Alg1Use(benchmark::State& state) {
  const auto n_ops = static_cast<std::size_t>(state.range(0));
  const auto samples = make_samples(n_ops, 0.0, 13);
  const runtime::Parallelism base(n_ops, 2);
  core::BenefitModel model;
  model.rate = 1000.0;
  model.base = base;
  model.samples = samples;
  model.fit();
  for (auto _ : state) {
    // A single posterior query of the already-trained model.
    benchmark::DoNotOptimize(model.predict_mean(base));
  }
}

void Alg2Step(benchmark::State& state) {
  const auto n_ops = static_cast<std::size_t>(state.range(0));
  const runtime::Parallelism base(n_ops, 2);
  const auto params = params_for(n_ops);

  core::BenefitModel prior;
  prior.rate = 800.0;
  prior.base = base;
  prior.samples = make_samples(n_ops, -1.0, 17);
  prior.fit();

  const auto real = make_samples(n_ops, 0.5, 19);
  const std::vector<core::SamplePoint> few(real.begin(),
                                           real.begin() + 4);

  for (auto _ : state) {
    // One outer iteration of Algorithm 2: residual fit, estimated
    // bootstrap scores, one recommendation.
    std::vector<core::SamplePoint> residual = few;
    for (core::SamplePoint& s : residual) {
      s.score -= prior.predict_mean(s.config);
    }
    core::BenefitModel res;
    res.samples = std::move(residual);
    res.fit();

    std::vector<core::SamplePoint> dataset = few;
    for (const runtime::Parallelism& x :
         core::bootstrap_samples(base, 20, 6)) {
      core::SamplePoint est;
      est.config = x;
      est.score = prior.predict_mean(x) + res.predict_mean(x);
      dataset.push_back(std::move(est));
    }
    benchmark::DoNotOptimize(
        core::recommend_next(dataset, base, params));
  }
}

BENCHMARK(Alg1Train)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(Alg1Use)->DenseRange(2, 10, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(Alg2Step)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Incremental-GP section: full refit vs cached-factor observe().

constexpr std::size_t kGpDims = 4;

/// Deterministic in-box data: rows 0 and 1 pin the exact corners of
/// [1, 20]^d (so the normalisation box frozen by any >= 2-point prefix fit
/// covers every later point), the rest is a Weyl low-discrepancy fill. No
/// RNG, no clock — the parity verdict must be reproducible bit-for-bit.
void gp_point(std::size_t i, double* x) {
  constexpr double kWeyl[kGpDims] = {0.6180339887498949, 0.4142135623730951,
                                     0.7320508075688772, 0.2360679774997897};
  for (std::size_t j = 0; j < kGpDims; ++j) {
    if (i == 0) {
      x[j] = 1.0;
    } else if (i == 1) {
      x[j] = 20.0;
    } else {
      const double f = static_cast<double>(i) * kWeyl[j];
      x[j] = 1.0 + 19.0 * (f - std::floor(f));
    }
  }
}

double gp_target(const double* x) {
  double s = 1.0;
  for (std::size_t j = 0; j < kGpDims; ++j) {
    const double d = (x[j] - 8.0) / 10.0;
    s -= d * d / static_cast<double>(kGpDims);
  }
  return s;
}

gp::GpConfig incremental_gp_config() {
  gp::GpConfig cfg;
  // Frozen hyper-parameters: the section measures the factor paths, not
  // the grid search, and observe() keeps them frozen anyway.
  cfg.optimize_hyperparams = false;
  cfg.length_scale = 0.3;
  cfg.noise_variance = 1e-3;
  return cfg;
}

void run_incremental_section(bool smoke, const std::string& json_path) {
  bench::header(
      "incremental GP — O(n^2) observe() vs O(n^3) refit (DESIGN.md §14)");
  std::printf("%8s %4s %12s %12s %9s %8s %7s\n", "n", "d", "refit [ms]",
              "observe[us]", "speedup", "parity", "inc/full");

  bench::JsonReport report("table4_overhead");
  const std::vector<std::size_t> grid =
      smoke ? std::vector<std::size_t>{64, 256}
            : std::vector<std::size_t>{64, 256, 1024};

  for (const std::size_t n : grid) {
    linalg::Matrix x(n, kGpDims);
    linalg::Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
      gp_point(i, x.row(i).data());
      y[i] = gp_target(x.row(i).data());
    }

    // Full-refit cost at n (the legacy per-round Plan cost).
    gp::GpRegressor full(incremental_gp_config());
    const auto t0 = std::chrono::steady_clock::now();
    full.fit(x, y);
    const double refit_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();

    // Parity: fit on the first half, observe() the rest, and compare the
    // posterior against the from-scratch fit at a probe grid.
    gp::GpRegressor inc(incremental_gp_config());
    const std::size_t n_seed = n / 2;
    linalg::Matrix x_seed(n_seed, kGpDims);
    linalg::Vector y_seed(n_seed);
    for (std::size_t i = 0; i < n_seed; ++i) {
      for (std::size_t j = 0; j < kGpDims; ++j) x_seed(i, j) = x(i, j);
      y_seed[i] = y[i];
    }
    inc.fit(x_seed, y_seed);
    for (std::size_t i = n_seed; i < n; ++i) inc.observe(x.row(i), y[i]);

    double max_diff = 0.0;
    for (std::size_t p = 0; p < 64; ++p) {
      double probe[kGpDims];
      gp_point(2 + p * 7, probe);
      const gp::Prediction a = full.predict(probe);
      const gp::Prediction b = inc.predict(probe);
      max_diff = std::max(max_diff, std::abs(a.mean - b.mean));
      max_diff = std::max(max_diff, std::abs(a.variance - b.variance));
    }
    const bool parity_ok = max_diff <= 1e-9;
    const gp::FitStats& stats = inc.fit_stats();

    // Steady-state observe() cost at window size n: a windowed model full
    // at n pays one eviction + one extension per observation.
    gp::GpConfig windowed = incremental_gp_config();
    windowed.max_observations = static_cast<int>(n);
    gp::GpRegressor window(windowed);
    window.fit(x, y);
    constexpr int kReps = 32;
    const auto t1 = std::chrono::steady_clock::now();
    for (int r = 0; r < kReps; ++r) {
      double nx[kGpDims];
      gp_point(n + static_cast<std::size_t>(r) + 2, nx);
      window.observe(nx, gp_target(nx));
    }
    const double observe_us = std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - t1)
                                  .count() /
                              kReps;
    const double speedup =
        observe_us > 0.0 ? refit_ms * 1000.0 / observe_us : 0.0;

    std::printf("%8zu %4zu %12.2f %12.1f %8.1fx %8s %4llu/%llu\n", n, kGpDims,
                refit_ms, observe_us, speedup, parity_ok ? "ok" : "FAIL",
                static_cast<unsigned long long>(stats.incremental_updates),
                static_cast<unsigned long long>(stats.full_fits));

    report.row()
        .num("n", static_cast<double>(n))
        .num("d", static_cast<double>(kGpDims))
        .num("incremental_updates",
             static_cast<double>(stats.incremental_updates))
        .num("full_fits", static_cast<double>(stats.full_fits))
        .num("parity_ok", parity_ok ? 1.0 : 0.0)
        .num("refit_ms", refit_ms)
        .num("observe_us", observe_us)
        .num("speedup", speedup);
  }

  std::printf(
      "\nShape check: observe() stays microsecond-range while the refit "
      "grows O(n^3) — >= 10x at n = 1024 — and the incremental posterior "
      "matches the from-scratch fit to <= 1e-9.\n");

  if (!json_path.empty()) {
    if (!report.write(json_path)) std::exit(1);
    std::printf("wrote %s\n", json_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool flags = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = flags = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
      flags = true;
    }
  }

  if (!flags) {
    // Plain invocation: the google-benchmark Table IV rows, then the full
    // incremental section (this is what regenerates BENCH_overhead.json
    // when combined with --json).
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  run_incremental_section(smoke, json_path);
  return 0;
}

// Reproduces paper Table IV: CPU-time overhead of the AuTraScale
// algorithms as a function of the number of operators in the DAG
// (2, 4, 6, 8, 10).
//
//   Alg1_train — fitting the GP benefit model on a bootstrap-sized sample
//                set and recommending a configuration (paper: 42-88 ms).
//   Alg1_use   — a single model-driven recommendation from an existing
//                sample set (paper: < 1 ms).
//   Alg2       — one transfer-learning step: residual fit + estimated
//                bootstrap scores + recommendation (paper: 67-116 ms).
//
// Absolute times depend on hardware; the paper's shape to check is
// near-linear growth with the operator count, all far below the policy
// interval.
#include <benchmark/benchmark.h>

#include <random>

#include "core/bootstrap.hpp"
#include "core/steady_rate.hpp"
#include "core/transfer.hpp"

namespace {

using namespace autra;

// Synthetic benefit surface: smooth, concave, rate-shifted.
double synthetic_score(const runtime::Parallelism& config, double shift) {
  double s = 1.0;
  for (int k : config) {
    const double d = (k - 6.0 - shift) / 10.0;
    s -= d * d / static_cast<double>(config.size());
  }
  return s;
}

std::vector<core::SamplePoint> make_samples(std::size_t n_ops, double shift,
                                            std::uint64_t seed) {
  const runtime::Parallelism base(n_ops, 2);
  std::vector<core::SamplePoint> samples;
  for (const runtime::Parallelism& c : core::bootstrap_samples(base, 20, 6)) {
    core::SamplePoint s;
    s.config = c;
    s.score = synthetic_score(c, shift);
    runtime::JobMetrics m;
    m.parallelism = c;
    m.latency_ms = 1000.0 * (1.1 - s.score);
    m.throughput = 1000.0;
    m.input_rate = 1000.0;
    s.metrics = std::move(m);
    samples.push_back(std::move(s));
  }
  // A few extra BO-style samples for realism.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(2, 20);
  for (int extra = 0; extra < 6; ++extra) {
    core::SamplePoint s;
    s.config.resize(n_ops);
    for (int& k : s.config) k = dist(rng);
    s.score = synthetic_score(s.config, shift);
    samples.push_back(std::move(s));
  }
  return samples;
}

core::SteadyRateParams params_for(std::size_t n_ops) {
  core::SteadyRateParams p;
  p.target_latency_ms = 100.0;
  p.target_throughput = 1000.0;
  p.max_parallelism = 20;
  p.seed = 7 + n_ops;
  return p;
}

void Alg1Train(benchmark::State& state) {
  const auto n_ops = static_cast<std::size_t>(state.range(0));
  const auto samples = make_samples(n_ops, 0.0, 11);
  const runtime::Parallelism base(n_ops, 2);
  const auto params = params_for(n_ops);
  for (auto _ : state) {
    // Fit + recommend, the per-iteration planning cost of Algorithm 1.
    core::BenefitModel model;
    model.rate = 1000.0;
    model.base = base;
    model.samples = samples;
    model.fit();
    benchmark::DoNotOptimize(
        core::recommend_next(samples, base, params));
  }
}

void Alg1Use(benchmark::State& state) {
  const auto n_ops = static_cast<std::size_t>(state.range(0));
  const auto samples = make_samples(n_ops, 0.0, 13);
  const runtime::Parallelism base(n_ops, 2);
  core::BenefitModel model;
  model.rate = 1000.0;
  model.base = base;
  model.samples = samples;
  model.fit();
  for (auto _ : state) {
    // A single posterior query of the already-trained model.
    benchmark::DoNotOptimize(model.predict_mean(base));
  }
}

void Alg2Step(benchmark::State& state) {
  const auto n_ops = static_cast<std::size_t>(state.range(0));
  const runtime::Parallelism base(n_ops, 2);
  const auto params = params_for(n_ops);

  core::BenefitModel prior;
  prior.rate = 800.0;
  prior.base = base;
  prior.samples = make_samples(n_ops, -1.0, 17);
  prior.fit();

  const auto real = make_samples(n_ops, 0.5, 19);
  const std::vector<core::SamplePoint> few(real.begin(),
                                           real.begin() + 4);

  for (auto _ : state) {
    // One outer iteration of Algorithm 2: residual fit, estimated
    // bootstrap scores, one recommendation.
    std::vector<core::SamplePoint> residual = few;
    for (core::SamplePoint& s : residual) {
      s.score -= prior.predict_mean(s.config);
    }
    core::BenefitModel res;
    res.samples = std::move(residual);
    res.fit();

    std::vector<core::SamplePoint> dataset = few;
    for (const runtime::Parallelism& x :
         core::bootstrap_samples(base, 20, 6)) {
      core::SamplePoint est;
      est.config = x;
      est.score = prior.predict_mean(x) + res.predict_mean(x);
      dataset.push_back(std::move(est));
    }
    benchmark::DoNotOptimize(
        core::recommend_next(dataset, base, params));
  }
}

BENCHMARK(Alg1Train)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);
BENCHMARK(Alg1Use)->DenseRange(2, 10, 2)->Unit(benchmark::kMicrosecond);
BENCHMARK(Alg2Step)->DenseRange(2, 10, 2)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

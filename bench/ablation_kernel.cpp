// Ablation: GP kernel choice (DESIGN.md §4.3).
//
// The paper picks the Matern covariance kernel for its extrapolation
// quality. This ablation runs Algorithm 1 on the WordCount scale-up
// scenario with Matern 5/2, Matern 3/2 and RBF surrogates and compares
// evaluation counts and solution quality.
#include "bench_util.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace autra;

  bench::header("kernel ablation — WordCount @350k, latency target 28 ms");
  std::printf("%-10s %6s %6s %-18s %8s %12s %8s\n", "kernel", "boot", "bo",
              "best config", "score", "latency[ms]", "conv");

  for (const gp::KernelKind kernel :
       {gp::KernelKind::kMatern52, gp::KernelKind::kMatern32,
        gp::KernelKind::kRbf}) {
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::ConstantRate>(350e3));
    sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
    const core::Evaluator evaluate = core::make_runner_evaluator(runner);

    const core::ThroughputOptimizer opt(
        runner.spec().topology,
        {.target_throughput = 350e3,
         .max_parallelism = runner.max_parallelism()});
    const auto base = opt.optimize(evaluate, sim::Parallelism(4, 1));

    core::SteadyRateParams params;
    params.target_latency_ms = 28.0;
    params.target_throughput = 350e3;
    params.bootstrap_m = 6;
    params.max_parallelism = runner.max_parallelism();
    params.gp_kernel = kernel;
    const core::SteadyRateResult r =
        core::run_steady_rate(evaluate, base.best, params);

    std::printf("%-10s %6d %6d %-18s %8.3f %12.1f %8s\n",
                gp::to_string(kernel),
                r.bootstrap_evaluations, r.bo_iterations,
                bench::cfg(r.best).c_str(), r.best_score,
                r.best_metrics.latency_ms, r.converged ? "yes" : "no");
  }
  std::printf("\nShape check: all kernels find QoS-compliant configurations; "
              "Matern 5/2 (the paper's choice) should need no more "
              "evaluations than RBF.\n");
  return 0;
}

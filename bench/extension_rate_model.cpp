// Extension experiment (the paper's future work, Sec. VII): a single
// rate-aware benefit model over (configuration, rate) versus the paper's
// per-rate models with residual transfer (Algorithm 2) versus training from
// scratch (Algorithm 1).
//
// Protocol: Nexmark Query5 is optimised at 15k, 20k and 25k rec/s; the
// collected samples feed (a) the rate-aware model and (b) the per-rate
// model library. Then each method optimises at unseen rates, counting real
// job runs.
#include "bench_util.hpp"
#include "core/rate_aware.hpp"
#include "core/throughput_opt.hpp"
#include "core/transfer.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

sim::JobRunner runner_at(double rate) {
  return sim::JobRunner(
      workloads::nexmark_q5(std::make_shared<sim::ConstantRate>(rate)),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
}

sim::Parallelism base_of(sim::JobRunner& runner, double rate) {
  const core::Evaluator eval = core::make_runner_evaluator(runner);
  const core::ThroughputOptimizer opt(
      runner.spec().topology,
      {.target_throughput = rate,
       .max_parallelism = runner.max_parallelism()});
  return opt.optimize(eval, sim::Parallelism(2, 1)).best;
}

core::SteadyRateParams params_at(double rate, int p_max) {
  core::SteadyRateParams sp;
  sp.target_latency_ms = 500.0;
  sp.target_throughput = rate;
  sp.bootstrap_m = 5;
  sp.max_parallelism = p_max;
  return sp;
}

}  // namespace

int main() {
  bench::header(
      "extension — rate-aware benefit model vs Algorithm 2 vs scratch "
      "(Nexmark Q5, trained at 15k/20k/25k)");

  core::RateAwareModel joint_model;
  core::ModelLibrary library;

  for (const double rate : {15e3, 20e3, 25e3}) {
    sim::JobRunner runner = runner_at(rate);
    const core::Evaluator eval = core::make_runner_evaluator(runner);
    const sim::Parallelism base = base_of(runner, rate);
    const auto sp = params_at(rate, runner.max_parallelism());
    const core::SteadyRateResult r = core::run_steady_rate(eval, base, sp);
    joint_model.add_samples(rate, r.history);
    library.add(core::make_benefit_model(rate, base, r));
    std::printf("trained at %5.0fk: base %-8s best %-8s (%d runs)\n",
                rate / 1e3, bench::cfg(base).c_str(),
                bench::cfg(r.best).c_str(),
                r.bootstrap_evaluations + r.bo_iterations);
  }
  joint_model.fit();
  std::printf("joint model: %zu samples across 3 rates\n\n",
              joint_model.num_samples());

  std::printf("%10s %16s %16s %16s\n", "new rate", "rate-aware",
              "algorithm 2", "scratch");
  for (const double rate : {28e3, 32e3, 36e3}) {
    sim::JobRunner runner = runner_at(rate);
    const core::Evaluator eval = core::make_runner_evaluator(runner);
    const sim::Parallelism base = base_of(runner, rate);
    const auto sp = params_at(rate, runner.max_parallelism());

    // (a) Rate-aware joint model (fresh copy so runs stay independent).
    core::RateAwareModel model = joint_model;
    core::RateAwareParams rp;
    rp.steady = sp;
    const core::RateAwareResult ra =
        core::run_rate_aware(eval, base, rate, model, rp);

    // (b) Algorithm 2 from the closest per-rate model.
    core::TransferParams tp;
    tp.steady = sp;
    const core::TransferResult tr =
        core::run_transfer(eval, base, *library.closest(rate), tp);

    // (c) Algorithm 1 from scratch.
    const core::SteadyRateResult sr = core::run_steady_rate(eval, base, sp);

    std::printf("%9.0fk %11d (%s) %11d (%s) %11d (%s)\n", rate / 1e3,
                ra.real_evaluations, ra.converged ? "conv" : "stop",
                tr.real_evaluations, tr.converged ? "conv" : "stop",
                sr.bootstrap_evaluations + sr.bo_iterations,
                sr.converged ? "conv" : "stop");
  }

  std::printf(
      "\nShape check: the joint model needs the fewest real runs at rates "
      "inside/near its training range because its first recommendation "
      "costs nothing; Algorithm 2 is close behind; scratch pays the full "
      "bootstrap every time.\n");
  return 0;
}

// Ablation: transfer learning (Algorithm 2) vs training from scratch
// (Algorithm 1) across increasing rate gaps (DESIGN.md §4.6).
//
// The residual-GP transfer should save real job runs when the new rate is
// close to the model's rate and degrade gracefully as the gap widens.
#include "bench_util.hpp"
#include "core/throughput_opt.hpp"
#include "core/transfer.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

sim::JobRunner q5_runner(double rate) {
  return sim::JobRunner(
      workloads::nexmark_q5(std::make_shared<sim::ConstantRate>(rate)),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
}

sim::Parallelism base_of(sim::JobRunner& runner, double target) {
  const core::Evaluator eval = core::make_runner_evaluator(runner);
  const core::ThroughputOptimizer opt(
      runner.spec().topology,
      {.target_throughput = target,
       .max_parallelism = runner.max_parallelism()});
  return opt.optimize(eval, sim::Parallelism(2, 1)).best;
}

core::SteadyRateParams q5_params(double rate, int p_max) {
  core::SteadyRateParams sp;
  sp.target_latency_ms = 500.0;
  sp.target_throughput = rate;
  sp.bootstrap_m = 5;
  sp.max_parallelism = p_max;
  return sp;
}

}  // namespace

int main() {
  using namespace autra;

  bench::header("transfer ablation — Nexmark Q5, model trained at 20k");

  // Train the prior once at 20k.
  sim::JobRunner r20 = q5_runner(20e3);
  const core::Evaluator e20 = core::make_runner_evaluator(r20);
  const sim::Parallelism base20 = base_of(r20, 20e3);
  const core::SteadyRateResult run20 = core::run_steady_rate(
      e20, base20, q5_params(20e3, r20.max_parallelism()));
  const core::BenefitModel prior =
      core::make_benefit_model(20e3, base20, run20);
  std::printf("prior at 20k: %zu samples, base %s\n\n", prior.samples.size(),
              bench::cfg(base20).c_str());

  std::printf("%10s %18s %18s %10s\n", "new rate", "transfer runs",
              "scratch runs", "saved");
  for (const double rate : {22e3, 30e3, 40e3}) {
    sim::JobRunner runner = q5_runner(rate);
    const core::Evaluator eval = core::make_runner_evaluator(runner);
    const sim::Parallelism base = base_of(runner, rate);
    const auto sp = q5_params(rate, runner.max_parallelism());

    core::TransferParams tp;
    tp.steady = sp;
    const core::TransferResult tr = core::run_transfer(eval, base, prior, tp);

    const core::SteadyRateResult sr = core::run_steady_rate(eval, base, sp);
    const int scratch_runs = sr.bootstrap_evaluations + sr.bo_iterations;

    std::printf("%9.0fk %14d (%s) %14d (%s) %9d\n", rate / 1e3,
                tr.real_evaluations, tr.converged ? "conv" : "stop",
                scratch_runs, sr.converged ? "conv" : "stop",
                scratch_runs - tr.real_evaluations);
  }

  std::printf("\nShape check: transfer saves runs at nearby rates; the "
              "saving shrinks (and may vanish) as the rate gap grows and "
              "the prior stops being informative.\n");
  return 0;
}

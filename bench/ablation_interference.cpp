// Ablation: the interference model (DESIGN.md §4.2).
//
// With interference disabled, throughput scales near-linearly with
// parallelism and DS2's linear assumption holds — its one-shot
// recommendation is already optimal. With interference enabled (the
// default), scaling is sub-linear and DS2 under-provisions on its first
// step, needing extra iterations; this is the regime AuTraScale's GP is
// built for. This ablation substantiates the paper's implicit claim that
// interference is what breaks the linear dataflow model.
#include "baselines/ds2.hpp"
#include "bench_util.hpp"
#include "core/evaluator.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace autra;

  for (const bool enabled : {false, true}) {
    bench::header(enabled ? "interference ENABLED (default model)"
                          : "interference DISABLED");

    // Scaling curve at an unbounded input rate.
    std::printf("%6s %12s %18s\n", "p", "thr [k/s]", "scaling efficiency");
    double t1 = 0.0;
    for (int p : {1, 2, 4, 8}) {
      sim::JobSpec spec = workloads::word_count(
          std::make_shared<sim::ConstantRate>(3e6));  // never input-limited
      spec.engine.interference.enabled = enabled;
      sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 30.0, .measure_sec = 30.0});
      const sim::JobMetrics m = runner.measure(sim::Parallelism(4, p));
      if (p == 1) t1 = m.throughput;
      std::printf("%6d %12.1f %17.0f%%\n", p, m.throughput / 1e3,
                  100.0 * m.throughput / (t1 * p));
    }

    // DS2 iteration count at a fixed target.
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::ConstantRate>(350e3));
    spec.engine.interference.enabled = enabled;
    sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 30.0, .measure_sec = 30.0});
    const core::Evaluator evaluate = core::make_runner_evaluator(runner);
    const baselines::Ds2Policy ds2(
        runner.spec().topology,
        {.target_throughput = 350e3,
         .max_parallelism = runner.max_parallelism()});
    const baselines::Ds2Result r = ds2.run(evaluate, sim::Parallelism(4, 1));
    std::printf("DS2: %d iterations to reach 350k (final %s)\n", r.iterations,
                bench::cfg(r.final_config).c_str());
  }

  std::printf("\nShape check: without interference, scaling efficiency stays "
              "near 100%% and DS2 needs at most 2 runs; with it, efficiency "
              "decays with p.\n");
  return 0;
}

// Controller QoS under generative arrival processes: policy x arrival x
// DAG sweep over the src/arrival/ processes (constant as the control,
// MMPP regime shifts, Hawkes burst storms, compressed diurnal cycles)
// and the three production DAGs (stream-stream join, sessionization,
// fan-in aggregation tree), measured through the resilience harness
// with an *empty* fault schedule — all pressure comes from the input.
//
// Everything here is a deterministic simulation (fixed seeds, no
// wall-clock metrics), so the committed BENCH_arrival.json baseline can
// be compared at zero noise budget. --smoke runs a 4-row subset at the
// same horizon, so its rows are value-identical to the corresponding
// rows of the full baseline (tools/bench_compare --subset gates it in
// CI).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "arrival/arrival.hpp"
#include "bench_util.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/resilience.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

constexpr double kHorizonSec = 900.0;
constexpr std::uint64_t kArrivalSeed = 7;

struct Dag {
  const char* name;
  double mean_rate;
  sim::JobSpec (*make)(std::shared_ptr<const sim::RateSchedule>);
};

constexpr Dag kDags[] = {
    {"join", 150e3, workloads::stream_stream_join},
    {"session", 150e3, workloads::sessionization},
    {"fanin", 200e3, workloads::fanin_tree},
};

void run_cell(const Dag& dag, const std::string& arrival,
              const std::string& policy, bench::JsonReport& report) {
  const sim::JobSpec spec = dag.make(arrival::make_arrival(
      arrival, dag.mean_rate, kArrivalSeed, kHorizonSec));
  fault::ResilienceOptions opt;
  opt.horizon_sec = kHorizonSec;
  const fault::ResilienceReport r =
      fault::run_resilience(policy, spec, fault::FaultSchedule(), opt);
  std::printf("%-8s %-8s %-11s %9.0f %9.0f %9.0f %10.0f %5d %5d\n", dag.name,
              arrival.c_str(), policy.c_str(), r.mean_input_rate,
              r.mean_throughput, r.violation_sec, r.max_lag / 1e3, r.restarts,
              r.decisions);
  report.row()
      .str("workload", dag.name)
      .str("arrival", arrival)
      .str("policy", policy)
      .num("mean_input_rate", r.mean_input_rate)
      .num("mean_throughput", r.mean_throughput)
      .num("violation_sec", r.violation_sec)
      .num("max_lag", r.max_lag)
      .num("end_lag", r.end_lag)
      .num("restarts", r.restarts)
      .num("decisions", r.decisions);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<std::string> arrivals =
      smoke ? std::vector<std::string>{"mmpp", "hawkes"}
            : std::vector<std::string>{"constant", "mmpp", "hawkes",
                                       "diurnal"};
  const std::vector<std::string> policies =
      smoke ? std::vector<std::string>{"autrascale", "threshold"}
            : std::vector<std::string>{"autrascale", "threshold", "static"};

  char title[128];
  std::snprintf(title, sizeof(title),
                "arrival sweep — %zu DAGs x %zu arrivals x %zu policies, "
                "horizon %.0fs, arrival seed %llu",
                smoke ? std::size_t{1} : std::size(kDags), arrivals.size(),
                policies.size(), kHorizonSec,
                static_cast<unsigned long long>(kArrivalSeed));
  bench::header(title);
  std::printf("%-8s %-8s %-11s %9s %9s %9s %10s %5s %5s\n", "dag", "arrival",
              "policy", "in [/s]", "thr [/s]", "viol [s]", "maxlag[k]", "rst",
              "dec");

  bench::JsonReport report("bench_arrival");
  for (const Dag& dag : kDags) {
    for (const std::string& arrival : arrivals) {
      for (const std::string& policy : policies) {
        run_cell(dag, arrival, policy, report);
      }
    }
    if (smoke) break;  // smoke: first DAG only, a subset of the full grid
  }

  std::printf(
      "\nShape check: each DAG's 'constant' rows are its control. fanin is "
      "easy — every policy near zero violations. join separates adaptation "
      "speed: autrascale converges in ~2 decisions, threshold pays a "
      "restart per fixed step, static drowns. The skewed sessionization "
      "window breaks uniform-key capacity models outright — only "
      "autrascale tracks the input at all. Every generative process then "
      "pushes violations above the constant control row, Hawkes storms "
      "hardest. mean_input_rate is the one sampled path's mean, so it "
      "sits above the calibrated mean when a storm lands in-horizon.\n");

  if (!json_path.empty()) {
    if (!report.write(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// Reproduces paper Fig. 1: WordCount with fixed parallelism 2 under an
// input rate rising from 100k rec/s by +50k every 10 minutes, 50 minutes
// total.
//
//   Fig. 1(a): input rate vs achieved throughput.
//   Fig. 1(b): end-to-end latency in Flink and data lag in Kafka.
//
// Expected shape: throughput tracks the rate up to the ~250k saturation
// point of parallelism 2, after which lag accumulates and latency rises.
#include "bench_util.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace autra;

  bench::header(
      "Fig. 1 — WordCount, parallelism 2, rate 100k +50k every 10 min");

  sim::JobSpec spec = workloads::word_count(
      std::make_shared<sim::StaircaseRate>(100e3, 50e3, 600.0));
  sim::ScalingSession session(spec, sim::Parallelism(4, 2));

  std::printf("%8s %12s %12s %14s %14s\n", "t [min]", "rate [k/s]",
              "thr [k/s]", "latency [ms]", "lag [k rec]");
  for (int minute = 1; minute <= 50; ++minute) {
    session.reset_window();
    session.run_for(60.0);
    const sim::JobMetrics m = session.window_metrics();
    std::printf("%8d %12.0f %12.1f %14.1f %14.0f\n", minute,
                m.input_rate / 1e3, m.throughput / 1e3, m.latency_ms,
                m.kafka_lag / 1e3);
  }
  std::printf(
      "\nShape check (paper): throughput follows the rate until ~250k, then "
      "saturates; lag and latency grow from that point on.\n");
  return 0;
}

// Ablation: the EI exploration parameter xi (Eq. 6) and the scoring weight
// alpha (Eq. 4) — DESIGN.md §4.4.
//
// xi trades exploitation for exploration; alpha trades latency priority
// for resource frugality. Both sweeps run Algorithm 1 on the WordCount
// scale-up scenario.
#include "bench_util.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

core::SteadyRateResult run_once(double xi, double alpha, double threshold) {
  sim::JobSpec spec =
      workloads::word_count(std::make_shared<sim::ConstantRate>(350e3));
  sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
  const core::Evaluator evaluate = core::make_runner_evaluator(runner);
  const core::ThroughputOptimizer opt(
      runner.spec().topology,
      {.target_throughput = 350e3,
       .max_parallelism = runner.max_parallelism()});
  const auto base = opt.optimize(evaluate, sim::Parallelism(4, 1));
  core::SteadyRateParams params;
  params.target_latency_ms = 28.0;
  params.target_throughput = 350e3;
  params.alpha = alpha;
  params.score_threshold = threshold;
  params.xi = xi;
  params.bootstrap_m = 6;
  params.max_parallelism = runner.max_parallelism();
  return core::run_steady_rate(evaluate, base.best, params);
}

}  // namespace

int main() {
  using namespace autra;

  bench::header("xi sweep (alpha = 0.5, threshold 0.9)");
  std::printf("%8s %6s %6s %-18s %8s %8s\n", "xi", "boot", "bo",
              "best config", "total", "conv");
  for (const double xi : {0.0, 0.01, 0.05, 0.2}) {
    const auto r = run_once(xi, 0.5, 0.9);
    std::printf("%8.2f %6d %6d %-18s %8d %8s\n", xi,
                r.bootstrap_evaluations, r.bo_iterations,
                bench::cfg(r.best).c_str(), bench::total(r.best),
                r.converged ? "yes" : "no");
  }

  bench::header("alpha sweep (xi = 0.01, threshold from Eq. 9 with w = 1/4)");
  std::printf("%8s %10s %6s %6s %-18s %8s %8s\n", "alpha", "threshold",
              "boot", "bo", "best config", "total", "conv");
  for (const double alpha : {0.3, 0.5, 0.7, 0.9}) {
    const double threshold = core::score_threshold(alpha, 0.25);
    const auto r = run_once(0.01, alpha, threshold);
    std::printf("%8.1f %10.3f %6d %6d %-18s %8d %8s\n", alpha, threshold,
                r.bootstrap_evaluations, r.bo_iterations,
                bench::cfg(r.best).c_str(), bench::total(r.best),
                r.converged ? "yes" : "no");
  }

  std::printf("\nShape check: moderate xi converges fastest (xi=0 can stall "
              "in a local region, large xi wastes runs exploring); larger "
              "alpha tolerates more resources at equal threshold slack.\n");
  return 0;
}

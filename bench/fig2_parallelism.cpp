// Reproduces paper Fig. 2: WordCount at a fixed 300k rec/s input rate with
// uniform operator parallelism 1..6 (six independent runs).
//
//   Obs. 2.1: throughput grows sub-linearly (paper: 150k/250k/275k at
//             p=1/2/3, saturating at the 300k input rate).
//   Obs. 2.2: latency is minimised at a moderate parallelism and rises
//             again when parallelism is excessive (communication cost).
#include "bench_util.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace autra;

  bench::header("Fig. 2 — WordCount, rate 300k, parallelism 1..6");
  std::printf("%6s %12s %14s %14s %16s\n", "p", "thr [k/s]", "latency [ms]",
              "lag [k rec]", "thr per inst.");

  double p1_throughput = 0.0;
  for (int p = 1; p <= 6; ++p) {
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::ConstantRate>(300e3));
    sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 120.0, .measure_sec = 120.0});
    const sim::JobMetrics m = runner.measure(sim::Parallelism(4, p));
    if (p == 1) p1_throughput = m.throughput;
    std::printf("%6d %12.1f %14.1f %14.0f %16.1f\n", p, m.throughput / 1e3,
                m.latency_ms, m.kafka_lag / 1e3, m.throughput / 1e3 / p);
  }
  std::printf(
      "\nShape check (paper): p=2 delivers well under 2x the p=1 throughput "
      "(%.0fk here),\nand latency bottoms out at p=3-4 then increases again "
      "at p=5-6.\n",
      p1_throughput / 1e3);
  return 0;
}

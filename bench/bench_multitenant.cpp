// Multi-tenant QoS under contention (DESIGN.md §12): N identical tenants
// co-run on one 8-slot uniform_cluster behind a weighted-fair
// ClusterArbiter, each driven by its own AuTraScale controller. Reported
// per tenant: mean throughput, p95 Kafka lag, SLO-violation fraction
// (coupling slices with more than 5 s of input backlogged), and the
// arbiter/retry counters.
//
// Every tenant needs parallelism 3 to keep up, so the fair share
// floor(8/N) stops covering demand at N >= 4: scale-ups get clipped, then
// denied once the tenant holds its full share — the denials surfacing as
// runtime::RescaleFailed through the controller's retry/backoff path.
// The run is fully deterministic (seeded engines, lockstep coupling).
//
// --smoke runs tenants {1, 4} over a shorter horizon for CI; --json PATH
// writes the table as a bench::JsonReport artifact. --arrival NAME
// [--arrival-seed S] drives every tenant with a generative arrival
// process (src/arrival/, same 180k mean) instead of the constant rate;
// the committed BENCH_multitenant.json baseline is for the default
// (constant).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "arrival/arrival.hpp"
#include "bench_util.hpp"
#include "core/controller.hpp"
#include "multitenant/harness.hpp"
#include "multitenant/shared_cluster.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

constexpr double kRate = 180e3;         // needs parallelism 3 per operator
constexpr double kSloLagSec = 5.0;      // SLO: lag under 5 s of input
constexpr double kWarmupSec = 120.0;    // slices ignored by the QoS stats

core::ControllerParams controller_params() {
  core::ControllerParams p;
  p.steady.target_latency_ms = 400.0;
  p.steady.target_throughput = kRate;
  p.steady.bootstrap_m = 4;
  p.steady.max_evaluations = 20;
  p.policy_interval_sec = 30.0;
  p.policy_running_time_sec = 60.0;
  return p;
}

sim::JobSpec tenant_job(const std::string& arrival,
                        std::uint64_t arrival_seed, double horizon_sec) {
  return workloads::synthetic_chain(
      3, arrival::make_arrival(arrival, kRate, arrival_seed, horizon_sec),
      10.0);
}

struct TenantRow {
  std::string name;
  double throughput = 0.0;
  double lag_p95 = 0.0;
  double slo_violation = 0.0;  ///< Fraction of post-warm-up slices.
  int parallelism = 0;
  mt::ClusterArbiter::Counters verdicts;
  int retries = 0;
  int aborts = 0;
};

/// Nearest-rank p95 over the series values in [t0, inf).
double p95_since(const runtime::MetricStore& store, runtime::MetricId id,
                 double t0) {
  const runtime::MetricStore::SeriesView view = store.series(id);
  std::vector<double> sample;
  for (std::size_t i = 0; i < view.times.size(); ++i) {
    if (view.times[i] >= t0) sample.push_back(view.values[i]);
  }
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const std::size_t rank = static_cast<std::size_t>(
      0.95 * static_cast<double>(sample.size()));
  return sample[std::min(rank, sample.size() - 1)];
}

std::vector<TenantRow> run_fleet(int tenants, double horizon_sec,
                                 const std::string& arrival,
                                 std::uint64_t arrival_seed) {
  auto shared = std::make_shared<mt::SharedCluster>(
      // 4 machines x 2 slots = 8 slots over 2 racks; 8 cores per machine
      // so capacity is slot-bound, not core-bound.
      sim::uniform_cluster(4, 2, 8, 2),
      mt::ArbiterParams{.policy = mt::ArbiterPolicy::kWeightedFair});
  // Overlapping leases (3/4 of the pool each) keep the rotation placing
  // tenants on different machines while the arbiter, not the lease, is
  // what bounds concurrent slot use. A sole tenant gets the whole pool.
  const int lease =
      tenants == 1 ? 0 : std::max(3, shared->total_slots() * 3 / 4);

  // Start at the fair share capped at 2 so the initial leases never
  // overcommit the pool (8 tenants start at 1) while the cold-start
  // backlog stays small enough to drain inside the warm-up.
  const int initial = std::min(2, shared->total_slots() / tenants);

  mt::MultiTenantHarness harness(shared);
  for (int i = 0; i < tenants; ++i) {
    static_cast<void>(harness.add_tenant({
        .name = "tenant" + std::to_string(i),
        .job = tenant_job(arrival, arrival_seed, horizon_sec),
        .initial = {initial, initial, initial},
        .session = {.restart_downtime_sec = 10.0},
        .controller = controller_params(),
        .lease_slots = lease,
    }));
  }
  harness.run(horizon_sec);

  std::vector<TenantRow> rows;
  for (std::size_t i = 0; i < harness.tenant_count(); ++i) {
    TenantRow row;
    row.name = harness.tenant_name(i);
    const runtime::MetricStore& metrics = harness.metrics();
    const runtime::MetricId lag_id = metrics.find(
        runtime::tenant_series(row.name, "kafka_lag"));
    const runtime::MetricId thr_id = metrics.find(
        runtime::tenant_series(row.name, "throughput"));
    row.throughput =
        metrics.mean(thr_id, kWarmupSec, horizon_sec).value_or(0.0);
    row.lag_p95 = p95_since(metrics, lag_id, kWarmupSec);

    const runtime::MetricStore::SeriesView lag = metrics.series(lag_id);
    int considered = 0;
    int violated = 0;
    for (std::size_t k = 0; k < lag.times.size(); ++k) {
      if (lag.times[k] < kWarmupSec) continue;
      ++considered;
      if (lag.values[k] > kSloLagSec * kRate) ++violated;
    }
    row.slo_violation =
        considered > 0 ? static_cast<double>(violated) / considered : 0.0;

    const runtime::Parallelism& p = harness.session(i).parallelism();
    row.parallelism = *std::max_element(p.begin(), p.end());
    row.verdicts = shared->arbiter().counters(harness.tenant_id(i));
    row.retries = harness.controller(i).stats().rescale_retries;
    row.aborts = harness.controller(i).stats().rescale_aborts;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  std::string arrival = "constant";
  std::uint64_t arrival_seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--arrival") == 0 && i + 1 < argc) {
      arrival = argv[++i];
    } else if (std::strcmp(argv[i], "--arrival-seed") == 0 && i + 1 < argc) {
      arrival_seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json PATH]\n"
                   "          [--arrival constant|mmpp|hawkes|diurnal|"
                   "trace:<path>] [--arrival-seed S]\n",
                   argv[0]);
      return 2;
    }
  }

  const double horizon = smoke ? 360.0 : 900.0;
  const std::vector<int> fleet_sizes =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};

  bench::header(
      "multi-tenant QoS — synthetic chains @180k on an 8-slot shared "
      "cluster, weighted-fair arbiter");
  if (arrival != "constant") {
    std::printf("arrival=%s arrival-seed=%llu (mean 180k/s)\n",
                arrival.c_str(),
                static_cast<unsigned long long>(arrival_seed));
  }
  bench::JsonReport report("bench_multitenant");

  for (const int tenants : fleet_sizes) {
    std::printf("\n--- %d tenant%s, horizon %.0fs ---\n", tenants,
                tenants == 1 ? "" : "s", horizon);
    std::printf("%-9s %9s %10s %7s %4s %5s %5s %5s %5s %5s\n", "tenant",
                "thr [/s]", "lagp95[k]", "slo%", "par", "admit", "clip",
                "deny", "retry", "abort");
    const std::vector<TenantRow> rows =
        run_fleet(tenants, horizon, arrival, arrival_seed);
    for (const TenantRow& r : rows) {
      std::printf("%-9s %9.0f %10.1f %6.1f%% %4d %5d %5d %5d %5d %5d\n",
                  r.name.c_str(), r.throughput, r.lag_p95 / 1e3,
                  100.0 * r.slo_violation, r.parallelism,
                  r.verdicts.admitted, r.verdicts.clipped, r.verdicts.denied,
                  r.retries, r.aborts);
      report.row()
          .num("tenants", tenants)
          .str("tenant", r.name)
          .num("throughput", r.throughput)
          .num("lag_p95", r.lag_p95)
          .num("slo_violation", r.slo_violation)
          .num("parallelism", r.parallelism)
          .num("admitted", r.verdicts.admitted)
          .num("clipped", r.verdicts.clipped)
          .num("denied", r.verdicts.denied)
          .num("retries", r.retries)
          .num("aborts", r.aborts);
    }
  }

  std::printf(
      "\nShape check: a sole tenant scales to parallelism 3 and meets the "
      "SLO. Up to 2 tenants the fair share still covers demand. From 4 "
      "tenants the share floor(8/N) caps everyone below what the rate "
      "needs: scale-ups are clipped to the share, follow-up requests are "
      "denied (RescaleFailed -> controller retry/backoff), and p95 lag "
      "plus SLO-violation fraction climb with N while the pool is never "
      "overcommitted.\n");

  if (!json_path.empty()) {
    if (!report.write(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

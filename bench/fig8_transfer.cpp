// Reproduces paper Fig. 8: transfer efficiency when the data rate changes,
// AuTraScale (Algorithm 2) vs DS2 (offline), on Nexmark Query5 and Query11.
//
//   Fig. 8(a): iterations and final parallelism per method
//              (paper: Q11 — same iterations, similar parallelism;
//               Q5 — AuTraScale needs 2 more iterations but saves 5
//               resource units; 13.5% average parallelism saving).
//   Fig. 8(b): per-record latency distribution of the terminal configs.
//   Fig. 8(c): CPU and memory savings (paper: 5.2% CPU, 6.2% memory).
//
// Setup mirrors the paper: benefit models are pre-trained at 20k (Q5) and
// 80k (Q11); the new rates are 30k and 100k; latency targets 500 ms and
// 150 ms.
#include "baselines/ds2.hpp"
#include "bench_util.hpp"
#include "core/throughput_opt.hpp"
#include "core/transfer.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

struct QueryCase {
  const char* name;
  sim::JobSpec (*make)(std::shared_ptr<const sim::RateSchedule>);
  double old_rate;
  double new_rate;
  double target_latency_ms;
};

sim::JobRunner make_runner(const QueryCase& q, double rate) {
  return sim::JobRunner(q.make(std::make_shared<sim::ConstantRate>(rate)),
                        {.warmup_sec = 60.0, .measure_sec = 60.0});
}

sim::Parallelism base_config(sim::JobRunner& runner, double target) {
  const core::Evaluator eval = core::make_runner_evaluator(runner);
  const core::ThroughputOptimizer opt(
      runner.spec().topology,
      {.target_throughput = target,
       .max_parallelism = runner.max_parallelism()});
  return opt
      .optimize(eval, sim::Parallelism(runner.num_operators(), 1))
      .best;
}

}  // namespace

int main() {
  const QueryCase cases[] = {
      {"Query5", workloads::nexmark_q5, 20e3, 30e3, 500.0},
      {"Query11", workloads::nexmark_q11, 80e3, 100e3, 150.0},
  };

  double autra_total = 0.0, ds2_total = 0.0;
  double autra_cpu = 0.0, ds2_cpu = 0.0;
  double autra_mem = 0.0, ds2_mem = 0.0;

  for (const QueryCase& q : cases) {
    bench::header((std::string("Fig. 8 — ") + q.name + ": rate " +
                   std::to_string(static_cast<int>(q.old_rate / 1e3)) +
                   "k -> " +
                   std::to_string(static_cast<int>(q.new_rate / 1e3)) + "k")
                      .c_str());

    // --- Pre-train the benefit model at the old rate. --------------------
    sim::JobRunner old_runner = make_runner(q, q.old_rate);
    const core::Evaluator old_eval =
        core::make_runner_evaluator(old_runner);
    const sim::Parallelism old_base = base_config(old_runner, q.old_rate);
    core::SteadyRateParams sp;
    sp.target_latency_ms = q.target_latency_ms;
    sp.target_throughput = q.old_rate;
    sp.bootstrap_m = 5;
    sp.max_parallelism = old_runner.max_parallelism();
    const core::SteadyRateResult old_run =
        core::run_steady_rate(old_eval, old_base, sp);
    const core::BenefitModel prior =
        core::make_benefit_model(q.old_rate, old_base, old_run);
    std::printf("pre-trained model at %.0fk: %zu samples, base %s\n",
                q.old_rate / 1e3, prior.samples.size(),
                bench::cfg(old_base).c_str());

    // --- AuTraScale Algorithm 2 at the new rate. --------------------------
    sim::JobRunner new_runner = make_runner(q, q.new_rate);
    const core::Evaluator new_eval =
        core::make_runner_evaluator(new_runner);
    const sim::Parallelism new_base = base_config(new_runner, q.new_rate);
    core::TransferParams tp;
    tp.steady = sp;
    tp.steady.target_throughput = q.new_rate;
    tp.steady.max_parallelism = new_runner.max_parallelism();
    const core::TransferResult at =
        core::run_transfer(new_eval, new_base, prior, tp);

    // --- DS2 offline at the new rate. -------------------------------------
    const baselines::Ds2Policy ds2(
        new_runner.spec().topology,
        {.target_throughput = q.new_rate,
         .max_parallelism = new_runner.max_parallelism()});
    const baselines::Ds2Result dr =
        ds2.run(new_eval, sim::Parallelism(new_runner.num_operators(), 1));

    // Fig. 8(a).
    std::printf("\nFig. 8(a) — iterations & final parallelism\n");
    std::printf("  %-12s %6s %-16s %6s\n", "method", "iters", "parallelism",
                "total");
    std::printf("  %-12s %6d %-16s %6d\n", "AuTraScale", at.real_evaluations,
                bench::cfg(at.best).c_str(), bench::total(at.best));
    std::printf("  %-12s %6d %-16s %6d\n", "DS2", dr.iterations,
                bench::cfg(dr.final_config).c_str(),
                bench::total(dr.final_config));

    // Fig. 8(b).
    std::printf("\nFig. 8(b) — per-record latency of terminal configs [ms]\n");
    std::printf("  %-12s %8s %8s %8s %8s\n", "method", "p50", "p95", "p99",
                "mean");
    std::printf("  %-12s %8.1f %8.1f %8.1f %8.1f\n", "AuTraScale",
                at.best_metrics.latency_p50_ms, at.best_metrics.latency_p95_ms,
                at.best_metrics.latency_p99_ms, at.best_metrics.latency_ms);
    std::printf("  %-12s %8.1f %8.1f %8.1f %8.1f\n", "DS2",
                dr.final_metrics.latency_p50_ms,
                dr.final_metrics.latency_p95_ms,
                dr.final_metrics.latency_p99_ms, dr.final_metrics.latency_ms);

    // Fig. 8(c) inputs.
    autra_total += bench::total(at.best);
    ds2_total += bench::total(dr.final_config);
    autra_cpu += at.best_metrics.busy_cores;
    ds2_cpu += dr.final_metrics.busy_cores;
    autra_mem += at.best_metrics.memory_mb;
    ds2_mem += dr.final_metrics.memory_mb;
  }

  bench::header("Fig. 8(c) — aggregate resource savings vs DS2");
  std::printf("  parallelism: AuTraScale %.0f vs DS2 %.0f  ->  %.1f%% saved "
              "(paper: 13.5%%)\n",
              autra_total, ds2_total,
              100.0 * (ds2_total - autra_total) / ds2_total);
  std::printf("  CPU cores:   AuTraScale %.1f vs DS2 %.1f  ->  %.1f%% saved "
              "(paper: 5.2%%)\n",
              autra_cpu, ds2_cpu, 100.0 * (ds2_cpu - autra_cpu) / ds2_cpu);
  std::printf("  memory:      AuTraScale %.0f MB vs DS2 %.0f MB  ->  %.1f%% "
              "saved (paper: 6.2%%)\n",
              autra_mem, ds2_mem, 100.0 * (ds2_mem - autra_mem) / ds2_mem);
  return 0;
}

// Resilience comparison: AuTraScale's hardened MAPE loop vs the reactive
// baselines (threshold, DS2, Dhalion) and a static configuration, each
// driven through the same three canned fault schedules on WordCount:
//
//   machine-crash    — one machine lost for 20% of the horizon; tests
//                      crash detection, forced restart and lag catch-up;
//   metric-chaos     — gauges dropped and delayed; tests whether a
//                      controller can tell "the job is sick" from "the
//                      metrics are sick";
//   degraded-cluster — randomised slow nodes, a Redis outage, an ingest
//                      stall and transient rescale failures all at once.
//
// All QoS numbers come from the session's fault-free ground-truth history;
// only the controllers see the corrupted Monitor path. Run with --smoke
// for the CI-sized variant (shorter horizon, machine-crash only).
//
// --chaos N switches from the three canned stories to N seeded
// chaos-generated schedules per policy (seeds 1..N over the same
// ChaosProfile, so every policy faces the identical schedule set) and
// reports QoS-violation percentiles instead of single-run numbers.
//
// --arrival NAME [--arrival-seed S] drives WordCount with a generative
// arrival process (src/arrival/) instead of the constant 250k rate —
// faults on top of bursty input. The committed BENCH_resilience.json
// baseline is for the default (constant).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "arrival/arrival.hpp"
#include "bench_util.hpp"
#include "fault/chaos.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/resilience.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

void print(const fault::ResilienceReport& r) {
  std::printf("%-11s %9.0f %9.0f %10.0f %9.0f %9.0f %5d %4d %5d %5d\n",
              r.policy.c_str(), r.mean_throughput, r.violation_sec,
              r.max_lag / 1e3, r.end_lag / 1e3, r.recovery_sec, r.restarts,
              r.failure_restarts, r.failed_rescales, r.decisions);
}

void report_row(bench::JsonReport& report, const char* schedule,
                const fault::ResilienceReport& r) {
  report.row()
      .str("schedule", schedule)
      .str("policy", r.policy)
      .num("mean_throughput", r.mean_throughput)
      .num("violation_sec", r.violation_sec)
      .num("max_lag", r.max_lag)
      .num("end_lag", r.end_lag)
      .num("recovery_sec", r.recovery_sec)
      .num("restarts", r.restarts)
      .num("failure_restarts", r.failure_restarts)
      .num("failed_rescales", r.failed_rescales)
      .num("decisions", r.decisions);
}

void run_schedule(const char* name, double horizon, const sim::JobSpec& spec,
                  const std::vector<std::string>& policies,
                  bench::JsonReport& report) {
  bench::header(name);
  std::printf("%-11s %9s %9s %10s %9s %9s %5s %4s %5s %5s\n", "policy",
              "thr [/s]", "viol [s]", "maxlag[k]", "endlag[k]", "recov[s]",
              "rst", "fail", "nack", "dec");
  for (const std::string& policy : policies) {
    const fault::FaultSchedule schedule =
        fault::FaultSchedule::canned(name, /*seed=*/1, horizon);
    fault::ResilienceOptions opt;
    opt.horizon_sec = horizon;
    const fault::ResilienceReport r =
        fault::run_resilience(policy, spec, schedule, opt);
    print(r);
    report_row(report, name, r);
  }
}

/// Nearest-rank percentile of an already sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

void run_chaos(int schedules, bool smoke, const sim::JobSpec& spec,
               bench::JsonReport& report) {
  const double horizon = smoke ? 600.0 : 1800.0;
  const std::vector<std::string> policies =
      smoke ? std::vector<std::string>{"autrascale", "threshold"}
            : fault::resilience_policies();
  // Full-taxonomy mix: crash groups, partitions, metric corruption and
  // rescale failures all drawn from the default weights.
  const fault::ChaosGenerator gen(
      fault::ChaosProfile::for_job(spec, horizon, smoke ? 1.0 : 1.5));

  char title[128];
  std::snprintf(title, sizeof(title),
                "chaos sweep — %d seeded schedules x %zu policies, "
                "horizon %.0fs",
                schedules, policies.size(), horizon);
  bench::header(title);
  std::printf("%-11s %9s %9s %9s %9s %9s %7s %5s\n", "policy", "viol-p50",
              "viol-p90", "viol-p99", "thr [/s]", "maxlag[k]", "recov%",
              "frst");

  for (const std::string& policy : policies) {
    std::vector<double> violations;
    double thr_sum = 0.0;
    double maxlag_sum = 0.0;
    int recovered = 0;
    int failure_restarts = 0;
    for (int seed = 1; seed <= schedules; ++seed) {
      const fault::FaultSchedule schedule =
          gen.generate(static_cast<std::uint64_t>(seed));
      fault::ResilienceOptions opt;
      opt.horizon_sec = horizon;
      opt.seed = static_cast<std::uint64_t>(seed);
      const fault::ResilienceReport r =
          fault::run_resilience(policy, spec, schedule, opt);
      violations.push_back(r.violation_sec);
      thr_sum += r.mean_throughput;
      maxlag_sum += r.max_lag;
      if (r.recovery_sec >= 0.0) ++recovered;
      failure_restarts += r.failure_restarts;
    }
    std::sort(violations.begin(), violations.end());
    const double n = static_cast<double>(schedules);
    std::printf("%-11s %9.0f %9.0f %9.0f %9.0f %9.0f %6.0f%% %5d\n",
                policy.c_str(), percentile(violations, 0.50),
                percentile(violations, 0.90), percentile(violations, 0.99),
                thr_sum / n, maxlag_sum / n / 1e3,
                100.0 * recovered / n, failure_restarts);
    report.row()
        .str("schedule", "chaos")
        .str("policy", policy)
        .num("schedules", schedules)
        .num("violation_p50", percentile(violations, 0.50))
        .num("violation_p90", percentile(violations, 0.90))
        .num("violation_p99", percentile(violations, 0.99))
        .num("mean_throughput", thr_sum / n)
        .num("mean_max_lag", maxlag_sum / n)
        .num("recovered_fraction", recovered / n)
        .num("failure_restarts", failure_restarts);
  }

  std::printf(
      "\nShape check: every policy faces the identical schedule set, so "
      "the violation percentiles are directly comparable. Every live "
      "policy's percentiles sit far below static's (which never recovers) "
      "and AuTraScale recovers on every schedule — it skips corrupted "
      "Monitor windows and retries failed rescales instead of stalling. "
      "Its tail sits near the best reactive baseline's rather than below "
      "it: the conservative plan-per-window loop trades violation seconds "
      "for fewer, better-sized rescales (see EXPERIMENTS.md).\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int chaos = 0;
  std::string json_path;
  std::string arrival = "constant";
  std::uint64_t arrival_seed = 7;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
      chaos = std::atoi(argv[++i]);
      if (chaos <= 0) {
        std::fprintf(stderr, "--chaos needs a positive schedule count\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--arrival") == 0 && i + 1 < argc) {
      arrival = argv[++i];
    } else if (std::strcmp(argv[i], "--arrival-seed") == 0 && i + 1 < argc) {
      arrival_seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--chaos N] [--json PATH]\n"
                   "          [--arrival constant|mmpp|hawkes|diurnal|"
                   "trace:<path>] [--arrival-seed S]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::JsonReport report("bench_resilience");
  const double horizon =
      chaos > 0 ? (smoke ? 600.0 : 1800.0) : (smoke ? 900.0 : 1800.0);
  const sim::JobSpec spec = workloads::word_count(
      arrival::make_arrival(arrival, 250e3, arrival_seed, horizon));
  if (arrival != "constant") {
    std::printf("arrival=%s arrival-seed=%llu (mean 250k/s)\n",
                arrival.c_str(),
                static_cast<unsigned long long>(arrival_seed));
  }

  if (chaos > 0) {
    run_chaos(chaos, smoke, spec, report);
    if (!json_path.empty()) {
      if (!report.write(json_path)) return 1;
      std::printf("wrote %s\n", json_path.c_str());
    }
    return 0;
  }

  const std::vector<std::string> policies =
      smoke ? std::vector<std::string>{"autrascale", "threshold"}
            : fault::resilience_policies();

  run_schedule("machine-crash", horizon, spec, policies, report);
  if (!smoke) {
    run_schedule("metric-chaos", horizon, spec, policies, report);
    run_schedule("degraded-cluster", horizon, spec, policies, report);
  }

  std::printf(
      "\nShape check: under machine-crash every live policy shows exactly "
      "one failure restart and recovers (recov >= 0); AuTraScale "
      "additionally refuses to plan on recovery-contaminated windows. "
      "Under metric-chaos the baselines are unaffected (they sample the "
      "engine directly) while AuTraScale skips the corrupted windows "
      "instead of acting on them. Under degraded-cluster the transient "
      "rescale failures cost the baselines whole intervals; AuTraScale "
      "retries with backoff.\n");

  if (!json_path.empty()) {
    if (!report.write(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// Resilience comparison: AuTraScale's hardened MAPE loop vs the reactive
// baselines (threshold, DS2, Dhalion) and a static configuration, each
// driven through the same three canned fault schedules on WordCount:
//
//   machine-crash    — one machine lost for 20% of the horizon; tests
//                      crash detection, forced restart and lag catch-up;
//   metric-chaos     — gauges dropped and delayed; tests whether a
//                      controller can tell "the job is sick" from "the
//                      metrics are sick";
//   degraded-cluster — randomised slow nodes, a Redis outage, an ingest
//                      stall and transient rescale failures all at once.
//
// All QoS numbers come from the session's fault-free ground-truth history;
// only the controllers see the corrupted Monitor path. Run with --smoke
// for the CI-sized variant (shorter horizon, machine-crash only).
#include <cstring>

#include "bench_util.hpp"
#include "fault/fault_schedule.hpp"
#include "fault/resilience.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

void print(const fault::ResilienceReport& r) {
  std::printf("%-11s %9.0f %9.0f %10.0f %9.0f %9.0f %5d %4d %5d %5d\n",
              r.policy.c_str(), r.mean_throughput, r.violation_sec,
              r.max_lag / 1e3, r.end_lag / 1e3, r.recovery_sec, r.restarts,
              r.failure_restarts, r.failed_rescales, r.decisions);
}

void run_schedule(const char* name, double horizon,
                  const std::vector<std::string>& policies) {
  bench::header(name);
  std::printf("%-11s %9s %9s %10s %9s %9s %5s %4s %5s %5s\n", "policy",
              "thr [/s]", "viol [s]", "maxlag[k]", "endlag[k]", "recov[s]",
              "rst", "fail", "nack", "dec");
  for (const std::string& policy : policies) {
    const fault::FaultSchedule schedule =
        fault::FaultSchedule::canned(name, /*seed=*/1, horizon);
    fault::ResilienceOptions opt;
    opt.horizon_sec = horizon;
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::ConstantRate>(250e3));
    print(fault::run_resilience(policy, spec, schedule, opt));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const double horizon = smoke ? 900.0 : 1800.0;
  const std::vector<std::string> policies =
      smoke ? std::vector<std::string>{"autrascale", "threshold"}
            : fault::resilience_policies();

  run_schedule("machine-crash", horizon, policies);
  if (!smoke) {
    run_schedule("metric-chaos", horizon, policies);
    run_schedule("degraded-cluster", horizon, policies);
  }

  std::printf(
      "\nShape check: under machine-crash every live policy shows exactly "
      "one failure restart and recovers (recov >= 0); AuTraScale "
      "additionally refuses to plan on recovery-contaminated windows. "
      "Under metric-chaos the baselines are unaffected (they sample the "
      "engine directly) while AuTraScale skips the corrupted windows "
      "instead of acting on them. Under degraded-cluster the transient "
      "rescale failures cost the baselines whole intervals; AuTraScale "
      "retries with backoff.\n");
  return 0;
}

// Reproduces paper Tables II & III and Figs. 6 & 7: elasticity tests at a
// steady rate, AuTraScale (Algorithm 1) vs DRS with true/observed
// processing rates, in scale-up and scale-down scenarios.
//
//   Table II/III: iterations and final parallelism per method.
//   Fig. 6: measured latency of each method's terminal configuration.
//   Fig. 7: total parallelism of terminal configurations, with the
//           resource savings of AuTraScale over DRS (paper: 66.6% in
//           scale-down, 36.7% in scale-up, while DRS variants sometimes
//           violate QoS).
//
// Scenario construction: scale-up starts the job at parallelism 1 with a
// latency target the base configuration cannot meet; scale-down starts it
// grossly over-provisioned. AuTraScale is seeded with the scenario's
// starting configuration as its first sample (the already-running job).
#include "baselines/drs.hpp"
#include "bench_util.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

struct MethodResult {
  std::string method;
  sim::Parallelism config;
  sim::JobMetrics metrics;
  int iterations = 0;
  bool qos_met = false;
};

struct Scenario {
  std::string name;
  sim::JobSpec spec;
  double rate;
  double target_throughput;
  double target_latency_ms;
  sim::Parallelism start;
  int bootstrap_m;
};

std::vector<MethodResult> run_scenario(Scenario& sc) {
  sim::JobRunner runner(std::move(sc.spec),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
  const core::Evaluator evaluate = core::make_runner_evaluator(runner);
  const auto& topology = runner.spec().topology;
  const int p_max = runner.max_parallelism();

  std::vector<MethodResult> results;
  const auto qos = [&](const sim::JobMetrics& m) {
    return m.latency_ms <= sc.target_latency_ms &&
           m.throughput >= 0.97 * sc.target_throughput;
  };

  // --- AuTraScale: throughput optimisation + Algorithm 1 -----------------
  {
    const core::ThroughputOptimizer opt(
        topology, {.target_throughput = sc.target_throughput,
                   .max_parallelism = p_max});
    const core::ThroughputOptResult base = opt.optimize(evaluate, sc.start);

    core::SteadyRateParams params;
    params.target_latency_ms = sc.target_latency_ms;
    params.target_throughput = sc.target_throughput;
    params.bootstrap_m = sc.bootstrap_m;
    params.max_parallelism = p_max;
    const core::SteadyRateResult r =
        core::run_steady_rate(evaluate, base.best, params);
    results.push_back({"AuTraScale", r.best, r.best_metrics,
                       base.iterations + r.bootstrap_evaluations +
                           r.bo_iterations,
                       qos(r.best_metrics)});
  }

  // --- DRS with true and observed rates ----------------------------------
  for (const auto metric : {baselines::RateMetric::kTrueRate,
                            baselines::RateMetric::kObservedRate}) {
    const baselines::DrsPolicy drs(
        topology, {.target_latency_ms = sc.target_latency_ms,
                   .target_throughput = sc.target_throughput,
                   .rate_metric = metric,
                   .max_parallelism = p_max});
    const baselines::DrsResult r = drs.run(evaluate, sc.start);
    results.push_back(
        {metric == baselines::RateMetric::kTrueRate ? "DRS(true)"
                                                    : "DRS(observed)",
         r.final_config, r.final_metrics, r.iterations,
         qos(r.final_metrics)});
  }
  return results;
}

void print_scenario(const char* table, Scenario sc) {
  bench::header(table);
  std::printf("rate %.0fk rec/s, throughput target %.0fk, latency target "
              "%.0f ms, start %s\n\n",
              sc.rate / 1e3, sc.target_throughput / 1e3,
              sc.target_latency_ms, bench::cfg(sc.start).c_str());
  const auto results = run_scenario(sc);

  std::printf("%-14s %6s %-20s %10s %12s %8s %6s\n", "method", "iters",
              "final parallelism", "total", "latency[ms]", "thr[k/s]",
              "QoS");
  const MethodResult* autra_row = nullptr;
  for (const MethodResult& r : results) {
    if (r.method == "AuTraScale") autra_row = &r;
    std::printf("%-14s %6d %-20s %10d %12.1f %8.1f %6s\n", r.method.c_str(),
                r.iterations, bench::cfg(r.config).c_str(),
                bench::total(r.config), r.metrics.latency_ms,
                r.metrics.throughput / 1e3, r.qos_met ? "ok" : "VIOL");
  }

  // Fig. 7 savings: AuTraScale vs each QoS-meeting DRS variant.
  for (const MethodResult& r : results) {
    if (r.method == "AuTraScale" || autra_row == nullptr) continue;
    const double saving =
        100.0 * (bench::total(r.config) - bench::total(autra_row->config)) /
        std::max(1, bench::total(r.config));
    std::printf("  -> AuTraScale uses %+.1f%% %s resources than %s%s\n",
                -saving, saving >= 0 ? "fewer" : "more", r.method.c_str(),
                r.qos_met ? "" : " (which violates QoS)");
  }
}

}  // namespace

int main() {
  // --- Table II: WordCount -----------------------------------------------
  // Scale-up: tight latency target that parallelism 1 cannot meet.
  print_scenario(
      "Table II / Figs. 6-7 — WordCount scale-up (target 350k rec/s, 28 ms)",
      {"wc-up",
       workloads::word_count(std::make_shared<sim::ConstantRate>(350e3)),
       350e3, 350e3, 28.0, sim::Parallelism(4, 1), 6});

  // Scale-down: over-provisioned start, generous latency target.
  print_scenario(
      "Table II / Figs. 6-7 — WordCount scale-down (target 350k rec/s, 180 ms)",
      {"wc-down",
       workloads::word_count(std::make_shared<sim::ConstantRate>(350e3)),
       350e3, 350e3, 180.0, sim::Parallelism{10, 10, 20, 16}, 6});

  // --- Table III: Yahoo ---------------------------------------------------
  print_scenario(
      "Table III / Figs. 6-7 — Yahoo scale-up (target 34k rec/s, 300 ms)",
      {"yahoo-up",
       workloads::yahoo_streaming(std::make_shared<sim::ConstantRate>(34e3)),
       34e3, 34e3, 300.0, sim::Parallelism(5, 1), 8});

  print_scenario(
      "Table III / Figs. 6-7 — Yahoo scale-down (target 34k rec/s, 300 ms)",
      {"yahoo-down",
       workloads::yahoo_streaming(std::make_shared<sim::ConstantRate>(34e3)),
       34e3, 34e3, 300.0, sim::Parallelism{20, 8, 8, 8, 40}, 8});

  std::printf(
      "\nShape check (paper): AuTraScale meets QoS everywhere; DRS(observed) "
      "over-provisions heavily (AuTraScale saves most in scale-down); "
      "DRS(true) occasionally undercuts AuTraScale but then misses the "
      "throughput/latency target.\n");
  return 0;
}

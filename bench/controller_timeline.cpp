// End-to-end controller economics: the paper's headline claim is that
// auto-scaling "saves resources while ensuring QoS when the input data
// rate changes". This bench runs the same 35-minute WordCount staircase
// (100k -> 350k rec/s) under three provisioning regimes and accounts for
// allocated parallelism and QoS from the continuous metric history:
//
//   static-peak — fixed configuration sized for the peak rate (the
//                 no-autoscaling upper bound every elasticity paper
//                 compares against);
//   static-min  — fixed configuration sized for the initial rate (shows
//                 what under-provisioning costs);
//   autrascale  — the live MAPE controller (Sec. IV) rescaling on demand.
#include "bench_util.hpp"
#include "core/controller.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

constexpr double kHorizonSec = 2100.0;

std::shared_ptr<sim::RateSchedule> staircase() {
  return std::make_shared<sim::StaircaseRate>(100e3, 50e3, 360.0);
}

struct Timeline {
  double avg_alloc = 0.0;  ///< Mean total parallelism (allocated units).
  double avg_cores = 0.0;
  double avg_latency_ms = 0.0;
  double violation_sec = 0.0;  ///< Seconds with throughput < 97% of rate.
  double end_lag = 0.0;
  int restarts = 0;
};

/// Summarises a backend's metric history over [0, kHorizonSec]. Works on
/// any StreamingBackend; reads are id-based over columnar series views.
Timeline summarize(const runtime::StreamingBackend& session) {
  namespace mn = runtime::metric_names;
  const runtime::MetricStore& db = session.history();
  Timeline t;
  t.avg_alloc =
      db.mean(db.find(mn::kParallelismTotal), 0.0, kHorizonSec).value_or(0.0);
  t.avg_cores =
      db.mean(db.find(mn::kBusyCores), 0.0, kHorizonSec).value_or(0.0);
  const runtime::MetricId lat_id = db.find(mn::kLatencyMean);
  const runtime::MetricStore::SeriesView lat = db.series(lat_id);
  const auto [lat_first, lat_last] = db.range(lat_id, 0.0, kHorizonSec);
  int lat_n = 0;
  for (std::size_t i = lat_first; i < lat_last; ++i) {
    if (lat.values[i] > 0.0) {
      t.avg_latency_ms += lat.values[i] * 1000.0;
      ++lat_n;
    }
  }
  if (lat_n > 0) t.avg_latency_ms /= lat_n;
  // Violation time: metric samples arrive once per second.
  const runtime::MetricStore::SeriesView thr = db.series(db.find(mn::kThroughput));
  const runtime::MetricStore::SeriesView rate = db.series(db.find(mn::kInputRate));
  for (std::size_t i = 0; i < thr.values.size() && i < rate.values.size();
       ++i) {
    if (thr.values[i] < 0.97 * rate.values[i]) t.violation_sec += 1.0;
  }
  if (const auto lag = db.last(db.find(mn::kKafkaLag))) t.end_lag = lag->value;
  t.restarts = session.restarts();
  return t;
}

Timeline run_static(const sim::Parallelism& config) {
  sim::JobSpec spec = workloads::word_count(staircase());
  sim::ScalingSession session(spec, config);
  session.run_for(kHorizonSec);
  return summarize(session);
}

Timeline run_controller() {
  sim::JobSpec spec = workloads::word_count(staircase());
  sim::ScalingSession session(spec, sim::Parallelism(4, 1),
      {.restart_downtime_sec = 10.0});
  core::ControllerParams params;
  params.steady.target_latency_ms = 200.0;
  params.steady.target_throughput = 0.0;  // track the rate
  params.steady.bootstrap_m = 4;
  params.steady.max_evaluations = 24;
  params.policy_interval_sec = 60.0;
  params.policy_running_time_sec = 120.0;
  core::AuTraScaleController controller(spec.topology,
                                        sim::make_trial_service(spec), params);
  controller.run(session, kHorizonSec);
  return summarize(session);
}

void print(const char* name, const Timeline& t) {
  std::printf("%-12s %10.1f %10.2f %14.1f %14.0f %12.0f %9d\n", name,
              t.avg_alloc, t.avg_cores, t.avg_latency_ms, t.violation_sec,
              t.end_lag / 1e3, t.restarts);
}

}  // namespace

int main() {
  bench::header(
      "controller timeline — WordCount staircase 100k->350k over 35 min");
  std::printf("%-12s %10s %10s %14s %14s %12s %9s\n", "regime", "avg alloc",
              "avg cores", "avg lat [ms]", "violation [s]", "lag [k rec]",
              "restarts");

  // Peak sizing: the Fig. 5(a) configuration for 350k.
  print("static-peak", run_static({1, 1, 3, 2}));
  // Minimal sizing: enough for the initial 100k only.
  print("static-min", run_static({1, 1, 1, 1}));
  print("autrascale", run_controller());

  std::printf(
      "\nShape check: static-min melts down once the rate passes its "
      "capacity (violation time and lag explode); static-peak holds QoS "
      "but allocates peak resources from minute one; the controller tracks "
      "the staircase — average allocation below static-peak, violations "
      "bounded to the rescale transients, and no residual backlog.\n");
  return 0;
}

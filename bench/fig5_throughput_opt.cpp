// Reproduces paper Fig. 5: throughput optimisation on all four workloads.
//
//   Fig. 5(a): per-workload optimal throughput and iteration count
//              (paper: final parallelisms (3,4,12,10), (40,1,1,1,40),
//              (1,18), (1,11); at most 4 iterations; Yahoo capped by
//              Redis below its 60k input rate).
//   Fig. 5(b): the Yahoo iteration trace — the recommendation repeats once
//              the Redis cap binds, terminating the loop, and the
//              trajectory review picks the smallest configuration at the
//              saturated throughput.
#include "bench_util.hpp"
#include "core/throughput_opt.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace autra;

  struct Case {
    const char* name;
    sim::JobSpec spec;
    double rate;
  };
  Case cases[] = {
      {"WordCount",
       workloads::word_count(std::make_shared<sim::ConstantRate>(350e3)),
       350e3},
      {"Yahoo",
       workloads::yahoo_streaming(std::make_shared<sim::ConstantRate>(60e3)),
       60e3},
      {"Nexmark-Q5",
       workloads::nexmark_q5(std::make_shared<sim::ConstantRate>(30e3)),
       30e3},
      {"Nexmark-Q11",
       workloads::nexmark_q11(std::make_shared<sim::ConstantRate>(100e3)),
       100e3},
  };

  bench::header("Fig. 5(a) — throughput optimisation per workload");
  std::printf("%-12s %10s %-20s %12s %12s %6s %-10s\n", "workload",
              "rate[k/s]", "final parallelism", "thr [k/s]", "target-met",
              "iters", "stop");

  for (Case& c : cases) {
    sim::JobRunner runner(std::move(c.spec),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
    const core::Evaluator evaluate = core::make_runner_evaluator(runner);
    const core::ThroughputOptimizer opt(
        runner.spec().topology,
        {.target_throughput = c.rate,
         .max_parallelism = runner.max_parallelism()});
    const core::ThroughputOptResult r = opt.optimize(
        evaluate, sim::Parallelism(runner.num_operators(), 1));
    std::printf("%-12s %10.0f %-20s %12.1f %12s %6d %-10s\n", c.name,
                c.rate / 1e3, bench::cfg(r.best).c_str(),
                r.best_throughput / 1e3, r.reached_target ? "yes" : "no",
                r.iterations,
                r.externally_limited ? "repeated" : "target");

    if (std::string(c.name) == "Yahoo") {
      bench::header("Fig. 5(b) — Yahoo iteration trace (Redis-capped)");
      for (std::size_t i = 0; i < r.trajectory.size(); ++i) {
        std::printf("  p%zu %-20s thr=%8.1fk  recommended next: %s\n", i + 1,
                    bench::cfg(r.trajectory[i].config).c_str(),
                    r.trajectory[i].metrics.throughput / 1e3,
                    bench::cfg(r.trajectory[i].recommended).c_str());
      }
      std::printf("  review selected %s — max throughput with the fewest "
                  "resource units\n",
                  bench::cfg(r.best).c_str());
      bench::header("Fig. 5(a) continued");
      std::printf("%-12s %10s %-20s %12s %12s %6s %-10s\n", "workload",
                  "rate[k/s]", "final parallelism", "thr [k/s]",
                  "target-met", "iters", "stop");
    }
  }

  std::printf(
      "\nShape check (paper): <= ~4-6 iterations per workload; Yahoo stops "
      "below its input rate via the repeated-recommendation condition; the "
      "window operators of Q5/Q11 need double-digit parallelism while their "
      "sources need 1.\n");
  return 0;
}

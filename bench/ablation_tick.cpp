// Ablation: fluid-engine tick size (DESIGN.md §4.1).
//
// The discrete-time fluid engine trades latency resolution for speed via
// its tick. This ablation verifies that the observables the algorithms
// consume (throughput, true rates, latency) are stable across tick sizes,
// and reports the simulation wall-time cost of finer ticks.
#include <chrono>

#include "bench_util.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace autra;

  bench::header("tick-size ablation — WordCount @300k, parallelism 3");
  std::printf("%10s %12s %14s %16s %14s\n", "tick [ms]", "thr [k/s]",
              "latency [ms]", "true rate count", "sim wall [ms]");

  for (const double tick : {0.025, 0.05, 0.1, 0.2}) {
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::ConstantRate>(300e3));
    spec.engine.tick_sec = tick;
    spec.engine.measurement_noise = 0.0;
    sim::JobRunner runner(std::move(spec), 60.0, 120.0);

    const auto t0 = std::chrono::steady_clock::now();
    const sim::JobMetrics m = runner.measure(sim::Parallelism(4, 3));
    const auto wall = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    std::printf("%10.0f %12.1f %14.1f %16.1f %14.1f\n", tick * 1000.0,
                m.throughput / 1e3, m.latency_ms,
                m.operators[2].true_rate_per_instance / 1e3, wall);
  }

  std::printf("\nShape check: throughput and true rates are tick-invariant; "
              "latency shifts by at most ~1 tick; wall time scales inversely "
              "with the tick.\n");

  bench::header("schedule-size ablation — tick cost vs fault-event count");
  std::printf("%10s %12s %14s\n", "events", "thr [k/s]", "sim wall [ms]");

  for (const int events : {0, 100, 1000}) {
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::ConstantRate>(300e3));
    spec.engine.measurement_noise = 0.0;
    auto engine = sim::make_engine(spec, sim::Parallelism(4, 3), 0.0, 0);
    // Near-unity slowdowns spread across the run: each tick activates and
    // retires timeline entries without materially changing the dynamics.
    // The sorted-window cursors keep the per-tick fault lookup O(active),
    // so wall time must stay flat as the scheduled count grows.
    const double span = 120.0;
    for (int i = 0; i < events; ++i) {
      const double from = span * static_cast<double>(i) / events;
      engine->inject_slowdown(static_cast<std::size_t>(i % 3), 0.999, from,
                              from + 0.5 * span / events);
    }

    const auto t0 = std::chrono::steady_clock::now();
    engine->run_until(span);
    const auto wall = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::printf("%10d %12.1f %14.1f\n", events, engine->throughput() / 1e3,
                wall);
  }

  std::printf("\nShape check: wall time is flat in the scheduled event "
              "count (cursor lookups, not linear scans) and throughput is "
              "unaffected by the near-unity slowdowns.\n");
  return 0;
}

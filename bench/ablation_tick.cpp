// Ablation: fluid-engine tick size (DESIGN.md §4.1).
//
// The discrete-time fluid engine trades latency resolution for speed via
// its tick. This ablation verifies that the observables the algorithms
// consume (throughput, true rates, latency) are stable across tick sizes,
// and reports the simulation wall-time cost of finer ticks.
#include <chrono>

#include "bench_util.hpp"
#include "workloads/workloads.hpp"

int main() {
  using namespace autra;

  bench::header("tick-size ablation — WordCount @300k, parallelism 3");
  std::printf("%10s %12s %14s %16s %14s\n", "tick [ms]", "thr [k/s]",
              "latency [ms]", "true rate count", "sim wall [ms]");

  for (const double tick : {0.025, 0.05, 0.1, 0.2}) {
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::ConstantRate>(300e3));
    spec.engine.tick_sec = tick;
    spec.engine.measurement_noise = 0.0;
    sim::JobRunner runner(std::move(spec), 60.0, 120.0);

    const auto t0 = std::chrono::steady_clock::now();
    const sim::JobMetrics m = runner.measure(sim::Parallelism(4, 3));
    const auto wall = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    std::printf("%10.0f %12.1f %14.1f %16.1f %14.1f\n", tick * 1000.0,
                m.throughput / 1e3, m.latency_ms,
                m.operators[2].true_rate_per_instance / 1e3, wall);
  }

  std::printf("\nShape check: throughput and true rates are tick-invariant; "
              "latency shifts by at most ~1 tick; wall time scales inversely "
              "with the tick.\n");
  return 0;
}

// Ablation: fluid-engine tick size (DESIGN.md §4.1).
//
// The discrete-time fluid engine trades latency resolution for speed via
// its tick. This ablation verifies that the observables the algorithms
// consume (throughput, true rates, latency) are stable across tick sizes,
// and reports the simulation wall-time cost of finer ticks.
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

/// One run of the engine-core scaling grid: a 3-operator chain with one
/// instance per machine on a uniform rack cluster, a spread of scheduled
/// near-unity slowdowns, and the chosen per-tick core.
struct ScaleResult {
  double wall_ms = 0.0;
  double ns_per_tick = 0.0;
  double touched_per_epoch = 0.0;
  double throughput = 0.0;
};

ScaleResult run_scale(std::size_t machines, int events, double rate,
                      sim::EngineCore core) {
  sim::Topology t;
  t.add_operator({.name = "src", .kind = sim::OperatorKind::kSource,
                  .process_us = 2.0});
  t.add_operator({.name = "mid", .kind = sim::OperatorKind::kStateless,
                  .selectivity = 1.0, .process_us = 5.0});
  t.add_operator({.name = "sink", .kind = sim::OperatorKind::kSink,
                  .selectivity = 0.0, .process_us = 2.0});
  t.connect(0, 1);
  t.connect(1, 2);

  sim::EngineParams params;
  params.measurement_noise = 0.0;
  params.core = core;
  // The event core's platform-scale mode: converged busy fractions whose
  // wobble stays under the epsilon no longer force whole-cluster refolds.
  // The bit-identity property tests pin load_epsilon = 0; the bench runs
  // the documented approximation.
  params.load_epsilon = core == sim::EngineCore::kEventDriven ? 1e-3 : 0.0;

  const int k = static_cast<int>(machines);
  auto engine = std::make_unique<sim::Engine>(
      std::move(t), sim::Cluster(sim::uniform_cluster(machines, 40)),
      sim::Parallelism{k, k, k},
      std::make_unique<sim::KafkaLog>(
          std::make_shared<sim::ConstantRate>(rate)),
      params);

  // Deterministic chaos-schedule stand-in: near-unity slowdowns spread
  // over machines and time (Weyl sequence — no RNG in a bench baseline),
  // each activating and retiring a timeline entry mid-run.
  const double horizon = 60.0;
  for (int i = 0; i < events; ++i) {
    const std::size_t m =
        (static_cast<std::size_t>(i) * 2654435761ull) % machines;
    const double from =
        0.9 * horizon * static_cast<double>(i) / static_cast<double>(events);
    engine->inject_slowdown(m, 0.9, from, from + 2.0);
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine->run_until(horizon);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  const sim::EngineEpochStats& es = engine->epoch_stats();
  ScaleResult r;
  r.wall_ms = wall_ms;
  r.ns_per_tick =
      es.ticks > 0 ? wall_ms * 1e6 / static_cast<double>(es.ticks) : 0.0;
  r.touched_per_epoch =
      es.ticks > 0 ? static_cast<double>(es.operators_touched) /
                         static_cast<double>(es.ticks)
                   : 0.0;
  r.throughput = engine->throughput();
  return r;
}

void run_tick_ablation() {
  bench::header("tick-size ablation — WordCount @300k, parallelism 3");
  std::printf("%10s %12s %14s %16s %14s\n", "tick [ms]", "thr [k/s]",
              "latency [ms]", "true rate count", "sim wall [ms]");

  for (const double tick : {0.025, 0.05, 0.1, 0.2}) {
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::ConstantRate>(300e3));
    spec.engine.tick_sec = tick;
    spec.engine.measurement_noise = 0.0;
    sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 60.0, .measure_sec = 120.0});

    const auto t0 = std::chrono::steady_clock::now();
    const sim::JobMetrics m = runner.measure(sim::Parallelism(4, 3));
    const auto wall = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    std::printf("%10.0f %12.1f %14.1f %16.1f %14.1f\n", tick * 1000.0,
                m.throughput / 1e3, m.latency_ms,
                m.operators[2].true_rate_per_instance / 1e3, wall);
  }

  std::printf("\nShape check: throughput and true rates are tick-invariant; "
              "latency shifts by at most ~1 tick; wall time scales inversely "
              "with the tick.\n");
}

void run_schedule_ablation() {
  bench::header("schedule-size ablation — tick cost vs fault-event count");
  std::printf("%10s %12s %14s\n", "events", "thr [k/s]", "sim wall [ms]");

  for (const int events : {0, 100, 1000}) {
    sim::JobSpec spec = workloads::word_count(
        std::make_shared<sim::ConstantRate>(300e3));
    spec.engine.measurement_noise = 0.0;
    auto engine = sim::make_engine(spec, sim::Parallelism(4, 3), 0.0, 0);
    // Near-unity slowdowns spread across the run: each tick activates and
    // retires timeline entries without materially changing the dynamics.
    // The sorted-window cursors keep the per-tick fault lookup O(active),
    // so wall time must stay flat as the scheduled count grows.
    const double span = 120.0;
    for (int i = 0; i < events; ++i) {
      const double from = span * static_cast<double>(i) / events;
      engine->inject_slowdown(static_cast<std::size_t>(i % 3), 0.999, from,
                              from + 0.5 * span / events);
    }

    const auto t0 = std::chrono::steady_clock::now();
    engine->run_until(span);
    const auto wall = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    std::printf("%10d %12.1f %14.1f\n", events, engine->throughput() / 1e3,
                wall);
  }

  std::printf("\nShape check: wall time is flat in the scheduled event "
              "count (cursor lookups, not linear scans) and throughput is "
              "unaffected by the near-unity slowdowns.\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace autra;

  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
  }

  // Smoke mode for CI: only the JSON-reported engine-core grid, minus the
  // 10k-machine column and the quiescent row. Every emitted row keys into
  // the committed BENCH_ablation_tick.json (bench_compare --subset), and
  // the deterministic metrics (operators_touched_per_epoch, throughput)
  // are value-identical to the baseline; the wall-clock metrics carry
  // timing noise and are skipped by the CI gate.
  if (!smoke) {
    run_tick_ablation();
    run_schedule_ablation();
  }

  bench::header(
      "engine-core scaling — machines x chaos events (DESIGN.md §11)");
  std::printf("%9s %8s %7s %12s %12s %14s %9s\n", "machines", "events",
              "core", "wall [ms]", "ns/tick", "touched/epoch", "speedup");

  const std::vector<std::size_t> machine_grid =
      smoke ? std::vector<std::size_t>{100, 1000}
            : std::vector<std::size_t>{100, 1000, 10000};

  bench::JsonReport report("ablation_tick");
  for (const std::size_t machines : machine_grid) {
    for (const int events : {0, 1000}) {
      const ScaleResult tick =
          run_scale(machines, events, 1e5, sim::EngineCore::kTickDriven);
      const ScaleResult event =
          run_scale(machines, events, 1e5, sim::EngineCore::kEventDriven);
      const double speedup =
          event.wall_ms > 0.0 ? tick.wall_ms / event.wall_ms : 0.0;
      std::printf("%9zu %8d %7s %12.1f %12.0f %14.2f %9s\n", machines,
                  events, "tick", tick.wall_ms, tick.ns_per_tick,
                  tick.touched_per_epoch, "");
      std::printf("%9zu %8d %7s %12.1f %12.0f %14.2f %8.1fx\n", machines,
                  events, "event", event.wall_ms, event.ns_per_tick,
                  event.touched_per_epoch, speedup);
      for (const auto* r : {&tick, &event}) {
        report.row()
            .num("machines", static_cast<double>(machines))
            .num("events", events)
            .str("core", r == &tick ? "tick" : "event")
            .num("wall_ms", r->wall_ms)
            .num("ns_per_tick", r->ns_per_tick)
            .num("operators_touched_per_epoch", r->touched_per_epoch)
            .num("throughput", r->throughput)
            .num("speedup_vs_tick", r == &tick ? 1.0 : speedup);
      }
    }
  }
  // The quiescent floor: no input, no faults — the event core must touch
  // zero operators per epoch once the busy EMAs have decayed to zero.
  // (Full run only: smoke stays off the 10k-machine column.)
  if (!smoke) {
    const ScaleResult quiet =
        run_scale(10000, 0, 0.0, sim::EngineCore::kEventDriven);
    std::printf("%9d %8d %7s %12.1f %12.0f %14.2f %9s  (quiescent, rate 0)\n",
                10000, 0, "event", quiet.wall_ms, quiet.ns_per_tick,
                quiet.touched_per_epoch, "");
    report.row()
        .num("machines", 10000)
        .num("events", 0)
        .str("core", "event-quiescent")
        .num("wall_ms", quiet.wall_ms)
        .num("ns_per_tick", quiet.ns_per_tick)
        .num("operators_touched_per_epoch", quiet.touched_per_epoch)
        .num("throughput", quiet.throughput)
        .num("speedup_vs_tick", 0.0);

    std::printf(
        "\nShape check: the tick core's wall time grows with the machine "
        "count (every epoch refolds every machine); the event core's is flat "
        "(dirty-set refreshes only), giving >= 10x at 10k machines x 1k "
        "events. The quiescent row touches ~0 operators per epoch.\n");
  }

  if (!json_path.empty()) {
    if (!report.write(json_path)) return 1;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

// Ablation: the structured bootstrap design of Sec. III-D vs random
// initial samples of the same size (DESIGN.md §4.5).
//
// The paper's bootstrap (M uniform sweeps + N single-operator probes +
// the base configuration) is designed to expose both the global QoS trend
// and per-operator sensitivities; random initialisation of equal size is
// the control.
#include <random>

#include "bench_util.hpp"
#include "core/bootstrap.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace autra;

struct Outcome {
  int real_runs = 0;
  int total_parallelism = 0;
  bool converged = false;
};

Outcome run_with_seeds(const std::vector<core::SamplePoint>& seeds,
                       const sim::Parallelism& base, sim::JobRunner& runner) {
  const core::Evaluator evaluate = core::make_runner_evaluator(runner);
  core::SteadyRateParams params;
  params.target_latency_ms = 28.0;
  params.target_throughput = 350e3;
  params.max_parallelism = runner.max_parallelism();
  const core::SteadyRateResult r = core::run_steady_rate(
      evaluate, base, params, seeds, /*skip_bootstrap=*/true);
  return {r.bootstrap_evaluations + r.bo_iterations +
              static_cast<int>(seeds.size()),
          bench::total(r.best), r.converged};
}

std::vector<core::SamplePoint> evaluate_all(
    const std::vector<sim::Parallelism>& configs,
    const sim::Parallelism& base, sim::JobRunner& runner) {
  const core::Evaluator evaluate = core::make_runner_evaluator(runner);
  const core::ScoreParams sp{.target_latency_ms = 28.0, .alpha = 0.5,
                             .base = base};
  std::vector<core::SamplePoint> out;
  for (const sim::Parallelism& c : configs) {
    core::SamplePoint s;
    s.config = c;
    sim::JobMetrics m = evaluate(c);
    s.score = core::benefit_score(m, sp);
    s.metrics = std::move(m);
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

int main() {
  using namespace autra;

  sim::JobSpec spec =
      workloads::word_count(std::make_shared<sim::ConstantRate>(350e3));
  sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 60.0, .measure_sec = 60.0});
  const core::Evaluator evaluate = core::make_runner_evaluator(runner);
  const core::ThroughputOptimizer opt(
      runner.spec().topology,
      {.target_throughput = 350e3,
       .max_parallelism = runner.max_parallelism()});
  const sim::Parallelism base =
      opt.optimize(evaluate, sim::Parallelism(4, 1)).best;

  bench::header("bootstrap ablation — WordCount @350k, latency 28 ms");

  // Paper bootstrap.
  const auto structured =
      core::bootstrap_samples(base, runner.max_parallelism(), 6);
  const auto structured_seeds = evaluate_all(structured, base, runner);
  const Outcome paper = run_with_seeds(structured_seeds, base, runner);

  std::printf("%-22s %10s %10s %8s\n", "initialisation", "real runs",
              "total par", "conv");
  std::printf("%-22s %10d %10d %8s\n", "paper (Sec. III-D)", paper.real_runs,
              paper.total_parallelism, paper.converged ? "yes" : "no");

  // Random controls of the same size, three seeds.
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<sim::Parallelism> random_configs;
    for (std::size_t i = 0; i < structured.size(); ++i) {
      sim::Parallelism c(base.size());
      for (std::size_t j = 0; j < c.size(); ++j) {
        std::uniform_int_distribution<int> dist(base[j],
                                                runner.max_parallelism());
        c[j] = dist(rng);
      }
      random_configs.push_back(std::move(c));
    }
    const auto random_seeds = evaluate_all(random_configs, base, runner);
    const Outcome random = run_with_seeds(random_seeds, base, runner);
    std::printf("%-19s #%d %10d %10d %8s\n", "random", trial + 1,
                random.real_runs, random.total_parallelism,
                random.converged ? "yes" : "no");
  }

  std::printf("\nShape check: the structured bootstrap converges with no "
              "more real runs than random initialisation and lands on a "
              "leaner configuration (random samples rarely probe the "
              "informative base-adjacent corner).\n");
  return 0;
}

// autra_lint rule engine: the project-specific determinism and API-hygiene
// contracts, mechanically enforced (DESIGN.md §10).
//
// Rules:
//   D1  no std::random_device / rand() / srand() / time(0)-style seeds
//   D2  no iteration over unordered containers in decision-path code —
//       cross-TU: the SymbolIndex resolves members, `using` aliases and
//       function return types declared in other headers
//   D3  RNG constructions must be seeded from a named value, never a
//       literal (library code) or a clock (anywhere)
//   D4  no order-sensitive raw reductions in decision-path code:
//       std::accumulate / std::reduce (exec::parallel_reduce folds in a
//       fixed index order; std::reduce may reassociate, and accumulate
//       inherits whatever order the range has), and manual `+=`
//       accumulation inside a loop over an unordered container
//   D5  no wall-clock reads (system_clock/steady_clock/
//       high_resolution_clock ::now, clock(), gettimeofday, ...) outside
//       bench/ and tools/ — simulated time comes from the engine
//   A1  no string literals passed to the id-keyed MetricStore/MetricSink
//       APIs — series names go through resolve()/intern() once
//   A2  no `float` in public headers of the numeric layers (double is the
//       GP contract)
//   A3  no raw integer tenant ids in library public headers — tenant
//       identity is the interned runtime::TenantId
//   A4  public headers of the linalg/gp/core/runtime layers may not
//       expose std::unordered_* in return types or public members —
//       hash order would leak into every caller
//   H1  header hygiene: `#pragma once` before anything else, no
//       `using namespace` at header scope
//   S1  malformed suppression (missing reason, unknown rule) — emitted by
//       the suppression parser itself and never suppressible
//
// A finding on line N is silenced by an allow() suppression comment on
// line N or line N-1, e.g.
//   autra-lint: allow(D3 generator is the sanctioned entropy boundary)
// The rule id must be real and the reason is mandatory — a bare allow()
// is itself an S1 finding. Pre-existing debt behind a *new* rule is
// carried in the findings baseline instead (baseline.hpp).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace autra::lint {

class SymbolIndex;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  /// The code tokens around the flagged one, space-joined — the
  /// line-drift-stable identity the baseline fingerprints (baseline.hpp).
  std::string context;
};

/// Which rule scopes apply to a file. The CLI derives this from the path
/// (classify_path); the fixture tests set the fields directly.
struct FileScope {
  /// D2/D4: decision-path directories (src/core, src/gp, src/bayesopt,
  /// src/streamsim, src/fault, src/runtime, src/multitenant,
  /// src/arrival).
  bool decision_path = false;
  /// D3's literal-seed sub-rule: library code under src/. Tests and
  /// benches pin literal seeds as part of their spec, which is exactly
  /// what determinism wants — only clock seeds are flagged there.
  bool library_code = false;
  /// D5: everywhere except bench/ and tools/ — those two are the only
  /// places a wall clock is an instrument rather than a leak.
  bool wall_clock_banned = false;
  /// A2: headers under src/linalg, src/gp, src/core.
  bool numeric_header = false;
  /// A4: headers under src/linalg, src/gp, src/core, src/runtime.
  bool container_api_header = false;
  /// H1: any header.
  bool header = false;
};

/// Path → scope mapping used by the CLI. Understands absolute and
/// relative spellings of the repo layout.
[[nodiscard]] FileScope classify_path(std::string_view path);

/// Lints one file's contents. `file` is echoed verbatim into findings.
/// Findings arrive sorted by line.
///
/// `index` is the finalized cross-TU symbol index (pass 1); D2/D4 use it
/// to resolve unordered-typed names declared in other files. Pass
/// nullptr for a single-file run — the file's own declarations are then
/// indexed on the fly, which reproduces the old per-file behaviour.
[[nodiscard]] std::vector<Finding> lint_source(
    std::string_view source, std::string_view file, const FileScope& scope,
    const SymbolIndex* index = nullptr);

/// Rule ids accepted by allow(); excludes S1.
[[nodiscard]] const std::vector<std::string>& known_rules();

}  // namespace autra::lint

// Findings baseline for autra_lint: lets a new rule land in CI with the
// pre-existing debt tracked explicitly instead of suppressed inline.
//
// A baseline entry identifies a finding by (rule, repo-relative path,
// fingerprint, count). The fingerprint hashes the finding's *token
// context* — the code tokens around the flagged one — never its line
// number, so unrelated edits that shift lines don't churn the file; only
// touching the flagged code itself retires or re-keys an entry. Two
// identical findings in one file share a fingerprint and are carried as
// count = 2.
//
// Workflow (CONTRIBUTING.md):
//   autra_lint --baseline tools/autra_lint/baseline.txt <roots>   # gate
//   autra_lint --update-baseline tools/autra_lint/baseline.txt <roots>
// The committed baseline is empty; --update-baseline exists for landing
// a new rule family over a tree with real debt, and every entry it
// writes is a TODO with a paper trail, not a suppression.
//
// File format, one entry per line, sorted, '#' comments and blank lines
// ignored:
//   RULE  FINGERPRINT(hex16)  COUNT  PATH
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "rules.hpp"

namespace autra::lint {

/// Stable identity of one finding. `path` is normalized (normalize_path)
/// so relative and absolute invocations agree.
struct BaselineEntry {
  std::string rule;
  std::uint64_t fingerprint = 0;
  int count = 0;
  std::string path;
};

/// Path as fingerprinted: stripped to the repo-relative tail starting at
/// the first `src/ tools/ bench/ tests/ examples/` segment, leading `./`
/// dropped. "/root/repo/src/gp/kernel.hpp" and "src/gp/kernel.hpp" map
/// to the same key.
[[nodiscard]] std::string normalize_path(std::string_view path);

/// FNV-1a over rule | normalized path | token context. Line numbers are
/// deliberately not hashed.
[[nodiscard]] std::uint64_t fingerprint_of(const Finding& finding);

class Baseline {
 public:
  /// Builds the baseline that would make `findings` pass.
  [[nodiscard]] static Baseline from_findings(
      const std::vector<Finding>& findings);

  /// Parses the committed format. Returns false (with `error` set) on a
  /// malformed line; an empty or comment-only file is a valid, empty
  /// baseline.
  bool parse(std::istream& in, std::string& error);

  /// Writes the committed format, sorted, with a header comment.
  void write(std::ostream& out) const;

  /// Removes findings covered by the baseline, consuming counts: an
  /// entry with count N absorbs at most N findings with its fingerprint.
  /// Order of surviving findings is preserved.
  [[nodiscard]] std::vector<Finding> filter(std::vector<Finding> findings);

  /// Entries with unconsumed count after filter(): debt that no longer
  /// exists and should be dropped with --update-baseline.
  [[nodiscard]] std::vector<BaselineEntry> stale() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

 private:
  std::vector<BaselineEntry> entries_;
  /// Parallel to entries_: how many findings each entry has absorbed.
  std::vector<int> consumed_;
};

}  // namespace autra::lint

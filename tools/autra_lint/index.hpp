// Cross-TU symbol index for autra_lint (pass 1 of the two-pass engine).
//
// The per-file matchers in rules.cpp can only see names declared in the
// translation unit they are looking at; the determinism rules care about
// *types*, and in this codebase the type usually lives in another header
// (an `std::unordered_map` member declared in foo.hpp, iterated in
// foo.cpp — the exact D2 gap called out in ROADMAP). The index closes
// that gap without an LLVM dependency:
//
//   pass 1  add_file() lexes every file under the linted roots and
//           records, per file,
//             - quoted #include spellings (header -> includer edges),
//             - names declared with an unordered container type
//               (variables, members, function parameters),
//             - `using NAME = std::unordered_map<...>` type aliases
//               (typedef spelling included), plus alias-of-alias edges
//               resolved to a fixpoint in finalize(),
//             - function names whose return type is unordered,
//             - (type, name) declaration pairs whose type is a plain
//               identifier — promoted to unordered names once the alias
//               fixpoint shows the type was an unordered alias.
//   finalize() resolves aliases, promotes alias-typed declarations, and
//           walks the include graph so every file's view is the union of
//           its own declarations and everything transitively included.
//   pass 2  rules.cpp asks view(path) for the visible sets and matches
//           against them.
//
// The index is deliberately scope-less (one namespace-flat name pool per
// file): a false positive needs two same-named declarations with
// different container types visible in one TU, which the baseline or an
// allow() suppression absorbs; a false negative only needs the old
// same-file behaviour, which the local half of the scan preserves.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace autra::lint {

/// True for the std::unordered_* container type names.
[[nodiscard]] bool unordered_container_type(std::string_view ident);

/// The name sets visible to one file after finalize(): its own
/// declarations plus everything reachable through quoted includes.
struct IndexView {
  /// Variables / members / parameters with an unordered container type.
  std::set<std::string, std::less<>> unordered_names;
  /// Type aliases that resolve (transitively) to an unordered container.
  std::set<std::string, std::less<>> unordered_aliases;
  /// Functions whose return type is an unordered container.
  std::set<std::string, std::less<>> unordered_functions;
};

class SymbolIndex {
 public:
  /// Pass 1: lex `source` and record `path`'s declarations and includes.
  /// `path` is matched against include spellings by suffix, so relative
  /// and absolute invocations both resolve.
  void add_file(std::string_view path, std::string_view source);

  /// Resolves alias chains, promotes alias-typed declarations and
  /// computes every file's include-closure view. Call once, after the
  /// last add_file().
  void finalize();

  /// The visible sets for `path` (as given to add_file), or nullptr for
  /// a file the index has never seen. Valid only after finalize().
  [[nodiscard]] const IndexView* view(std::string_view path) const;

  /// Number of indexed files.
  [[nodiscard]] std::size_t size() const { return files_.size(); }

 private:
  struct FileEntry {
    std::vector<std::string> includes;  ///< quoted spellings, as written
    IndexView decls;                    ///< this file's own declarations
    /// `using NAME = <idents...>` where the RHS named no unordered type
    /// directly — resolved against the alias fixpoint in finalize().
    std::vector<std::pair<std::string, std::vector<std::string>>> alias_rhs;
    /// (type-identifier, declared-name) pairs; promoted when the type
    /// turns out to be an unordered alias.
    std::vector<std::pair<std::string, std::string>> typed_decls;
    IndexView visible;  ///< decls + include closure, filled by finalize()
  };

  std::map<std::string, FileEntry, std::less<>> files_;
  bool finalized_ = false;
};

}  // namespace autra::lint

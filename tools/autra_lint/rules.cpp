#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "lexer.hpp"

namespace autra::lint {

namespace {

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

constexpr std::array<std::string_view, 8> kRngTypes = {
    "mt19937",      "mt19937_64", "default_random_engine",
    "minstd_rand",  "minstd_rand0", "ranlux24",
    "ranlux48",     "knuth_b"};

constexpr std::array<std::string_view, 7> kClockIdents = {
    "time",         "clock",        "now",
    "random_device", "system_clock", "steady_clock",
    "high_resolution_clock"};

/// Identifiers that appear in seed expressions without naming a seed —
/// casts and builtin type names. `static_cast<unsigned>(7)` is still a
/// literal seed.
constexpr std::array<std::string_view, 16> kCastIdents = {
    "static_cast", "const_cast", "reinterpret_cast", "unsigned",
    "signed",      "int",        "long",             "short",
    "char",        "auto",       "std",              "size_t",
    "uint32_t",    "uint64_t",   "int32_t",          "int64_t"};

constexpr std::array<std::string_view, 6> kIdKeyedMetricApis = {
    "record", "sum", "mean", "last", "series", "range"};

/// Integer type spellings a raw tenant id could hide behind (A3).
constexpr std::array<std::string_view, 9> kRawIntTypes = {
    "int",      "long",     "short",   "unsigned", "size_t",
    "uint32_t", "uint64_t", "int32_t", "int64_t"};

/// A3's notion of "this identifier names a tenant id". Deliberately
/// narrow: `tenant_count`/`tenant_names` are legitimate integers/containers,
/// while `tenant`, `dst_tenant` and anything spelling out `tenant_id` are
/// identities and must be runtime::TenantId.
bool names_a_tenant_id(std::string_view ident) {
  std::string lower(ident);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  const std::string_view v = lower;
  return v == "tenant" || v == "tenantid" ||
         v.find("tenant_id") != std::string_view::npos ||
         (v.size() > 7 && v.substr(v.size() - 7) == "_tenant");
}

template <std::size_t N>
bool one_of(std::string_view s, const std::array<std::string_view, N>& set) {
  return std::find(set.begin(), set.end(), s) != set.end();
}

bool contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Directive text with runs of whitespace collapsed to single spaces and
/// any trailing comment dropped — "#  pragma   once // x" -> "#pragma once".
std::string normalize_directive(std::string_view text) {
  std::string out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '/' && i + 1 < text.size() &&
        (text[i + 1] == '/' || text[i + 1] == '*')) {
      break;
    }
    if (std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      if (!out.empty() && out.back() != ' ' && out.back() != '#') out += ' ';
    } else {
      out += text[i];
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions

struct Suppressions {
  /// line -> rule ids allowed on that line.
  std::map<int, std::set<std::string, std::less<>>> allowed;
  /// S1 findings: malformed suppressions are errors, never silenced.
  std::vector<Finding> errors;
};

constexpr std::string_view kMarker = "autra-lint:";

Suppressions parse_suppressions(const std::vector<Token>& tokens,
                                std::string_view file) {
  Suppressions out;
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) continue;
    const std::size_t at = t.text.find(kMarker);
    if (at == std::string_view::npos) continue;

    const auto s1 = [&](const std::string& msg) {
      out.errors.push_back(
          {std::string(file), t.line, "S1", msg});
    };

    std::string_view rest = trim(t.text.substr(at + kMarker.size()));
    // Block comments: drop the trailing "*/".
    if (rest.size() >= 2 && rest.substr(rest.size() - 2) == "*/") {
      rest = trim(rest.substr(0, rest.size() - 2));
    }
    if (rest.substr(0, 6) != "allow(" || rest.find(')') ==
                                             std::string_view::npos) {
      s1("malformed suppression; use `autra-lint: allow(RULE reason)`");
      continue;
    }
    const std::string_view inner =
        trim(rest.substr(6, rest.rfind(')') - 6));
    const std::size_t space = inner.find_first_of(" \t");
    const std::string_view rule =
        space == std::string_view::npos ? inner : inner.substr(0, space);
    const std::string_view reason =
        space == std::string_view::npos ? std::string_view{}
                                        : trim(inner.substr(space + 1));

    const std::vector<std::string>& rules = known_rules();
    if (std::find(rules.begin(), rules.end(), rule) == rules.end()) {
      s1("suppression names unknown rule '" + std::string(rule) + "'");
      continue;
    }
    if (reason.empty()) {
      s1("bare suppression; allow(" + std::string(rule) +
         " <reason>) must say why the finding is legitimate");
      continue;
    }
    // A suppression covers its own line and the one below it, so it can
    // trail the offending statement or sit on the line above.
    out.allowed[t.line].insert(std::string(rule));
    out.allowed[t.line + 1].insert(std::string(rule));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule matchers. All operate on the "code" view: comments and preprocessor
// directives removed.

class Matcher {
 public:
  Matcher(const std::vector<Token>& all, std::string_view file,
          const FileScope& scope, std::vector<Finding>& out)
      : file_(file), scope_(scope), out_(out) {
    for (const Token& t : all) {
      if (t.kind != TokenKind::kComment && t.kind != TokenKind::kDirective) {
        code_.push_back(&t);
      }
    }
  }

  void run(const std::vector<Token>& all) {
    rule_d1();
    if (scope_.decision_path) rule_d2();
    rule_d3();
    rule_a1();
    if (scope_.numeric_header) rule_a2();
    if (scope_.header && scope_.library_code) rule_a3();
    if (scope_.header) rule_h1(all);
  }

 private:
  [[nodiscard]] const Token& at(std::size_t i) const {
    static const Token kEof{TokenKind::kPunct, {}, 0};
    return i < code_.size() ? *code_[i] : kEof;
  }
  [[nodiscard]] bool is(std::size_t i, std::string_view text) const {
    return at(i).text == text;
  }
  [[nodiscard]] bool is_ident(std::size_t i) const {
    return at(i).kind == TokenKind::kIdentifier;
  }
  [[nodiscard]] bool member_access(std::size_t i) const {
    return i > 0 && (is(i - 1, ".") || is(i - 1, "->"));
  }

  void flag(int line, std::string_view rule, std::string message) {
    out_.push_back({std::string(file_), line, std::string(rule),
                    std::move(message)});
  }

  /// Index just past the matching closer for the opener at `i`
  /// (one of ( { < [ ); code_.size() when unbalanced.
  [[nodiscard]] std::size_t skip_balanced(std::size_t i, char open,
                                          char close) const {
    int depth = 0;
    const std::string_view o(&open, 1);
    const std::string_view c(&close, 1);
    for (; i < code_.size(); ++i) {
      if (at(i).text == o) ++depth;
      if (at(i).text == c && --depth == 0) return i + 1;
    }
    return code_.size();
  }

  // D1 — entropy and wall-clock sources.
  void rule_d1() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i)) continue;
      const std::string_view id = at(i).text;
      if (id == "random_device") {
        flag(at(i).line, "D1",
             "std::random_device is nondeterministic; thread a seeded "
             "mt19937_64 through instead");
      } else if ((id == "rand" || id == "srand") && is(i + 1, "(") &&
                 !member_access(i)) {
        flag(at(i).line, "D1",
             std::string(id) + "() breaks seeded replay; use a "
             "mt19937_64 with a named seed");
      } else if (id == "time" && is(i + 1, "(") && !member_access(i)) {
        const Token& arg = at(i + 2);
        if (arg.text == ")" || arg.text == "0" || arg.text == "NULL" ||
            arg.text == "nullptr") {
          flag(at(i).line, "D1",
               "time()-based seed makes runs unreproducible; pass the seed "
               "explicitly");
        }
      }
    }
  }

  // D2 — iteration order of unordered containers leaking into decisions.
  void rule_d2() {
    std::set<std::string_view> names;
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i) || !one_of(at(i).text, kUnorderedTypes)) continue;
      std::size_t j = i + 1;
      if (is(j, "<")) j = skip_balanced(j, '<', '>');
      while (is(j, "&") || is(j, "*") || is(j, "const")) ++j;
      if (is_ident(j)) names.insert(at(j).text);
    }
    for (std::size_t i = 0; i < code_.size(); ++i) {
      // Range-for whose range expression mentions an unordered container.
      if (is_ident(i) && at(i).text == "for" && is(i + 1, "(")) {
        int depth = 0;
        std::size_t colon = 0;
        std::size_t close = 0;
        for (std::size_t j = i + 1; j < code_.size(); ++j) {
          if (is(j, "(")) ++depth;
          if (is(j, ")") && --depth == 0) {
            close = j;
            break;
          }
          if (is(j, ":") && depth == 1 && colon == 0) colon = j;
        }
        if (colon == 0 || close == 0) continue;
        for (std::size_t j = colon + 1; j < close; ++j) {
          if (is_ident(j) && (names.count(at(j).text) != 0 ||
                              one_of(at(j).text, kUnorderedTypes))) {
            flag(at(i).line, "D2",
                 "range-for over unordered container '" +
                     std::string(at(j).text) +
                     "'; iteration order is nondeterministic — take a "
                     "sorted snapshot or use std::map");
            break;
          }
        }
      }
      // Iterator access on a tracked unordered container. `.end()` alone
      // is fine — `find(k) == end()` is an order-free point lookup; it is
      // begin/cbegin that starts an ordered walk.
      if (is_ident(i) && names.count(at(i).text) != 0 &&
          (is(i + 1, ".") || is(i + 1, "->")) && is_ident(i + 2) &&
          is(i + 3, "(")) {
        const std::string_view m = at(i + 2).text;
        if (m == "begin" || m == "cbegin") {
          flag(at(i).line, "D2",
               "iterator over unordered container '" +
                   std::string(at(i).text) +
                   "'; iteration order is nondeterministic — take a "
                   "sorted snapshot or use std::map");
        }
      }
    }
  }

  // D3 — RNG constructions must take a named seed.
  void rule_d3() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i) || !one_of(at(i).text, kRngTypes)) continue;
      std::size_t j = i + 1;
      // References, template arguments, member-type access, using-aliases
      // and bare declarations are not constructions.
      if (is(j, "&") || is(j, "*") || is(j, ">") || is(j, ",") ||
          is(j, ")") || is(j, ";") || is(j, "::") || is(j, "=")) {
        continue;
      }
      if (is_ident(j)) ++j;  // mt19937_64 name(...)
      const bool paren = is(j, "(");
      const bool brace = is(j, "{");
      if (!paren && !brace) continue;
      const std::size_t end =
          skip_balanced(j, paren ? '(' : '{', paren ? ')' : '}');
      bool named = false;
      bool clocked = false;
      for (std::size_t k = j + 1; k + 1 < end; ++k) {
        if (!is_ident(k)) continue;
        if (one_of(at(k).text, kClockIdents)) clocked = true;
        if (!one_of(at(k).text, kCastIdents)) named = true;
      }
      if (clocked) {
        flag(at(i).line, "D3",
             "RNG seeded from a clock or entropy source; seeds must be "
             "named values so runs replay bit-identically");
      } else if (!named && scope_.library_code) {
        flag(at(i).line, "D3",
             end == j + 2
                 ? "default-constructed RNG hides the seed; take it as a "
                   "named parameter"
                 : "RNG seeded from a literal; take the seed as a named "
                   "parameter so callers control replay");
      }
    }
  }

  // A1 — stringly metric keys on the id-keyed MetricStore/MetricSink API.
  void rule_a1() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i) || !one_of(at(i).text, kIdKeyedMetricApis)) continue;
      if (!member_access(i) || !is(i + 1, "(")) continue;
      if (at(i + 2).kind == TokenKind::kString) {
        flag(at(i).line, "A1",
             "string literal passed to MetricStore::" +
                 std::string(at(i).text) +
                 "(); resolve() the series name to a MetricId once and "
                 "record by id");
      }
    }
  }

  // A2 — float in numeric-layer public headers.
  void rule_a2() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (is_ident(i) && at(i).text == "float") {
        flag(at(i).line, "A2",
             "float in a numeric-layer public header; the GP contract is "
             "double end-to-end");
      }
    }
  }

  // A3 — raw integer tenant ids in library public headers.
  void rule_a3() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i) || !one_of(at(i).text, kRawIntTypes)) continue;
      std::size_t j = i + 1;
      while (is(j, "const") || is(j, "*") || is(j, "&") || is(j, "&&")) ++j;
      if (!is_ident(j) || !names_a_tenant_id(at(j).text)) continue;
      flag(at(i).line, "A3",
           "raw integer tenant id '" + std::string(at(j).text) +
               "' in a public header; tenant identity is the interned "
               "runtime::TenantId");
    }
  }

  // H1 — header hygiene.
  void rule_h1(const std::vector<Token>& all) {
    const Token* first = nullptr;
    for (const Token& t : all) {
      if (t.kind != TokenKind::kComment) {
        first = &t;
        break;
      }
    }
    if (first == nullptr || first->kind != TokenKind::kDirective ||
        normalize_directive(first->text) != "#pragma once") {
      flag(first != nullptr ? first->line : 1, "H1",
           "header must open with #pragma once (before any include or "
           "declaration)");
    }
    for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
      if (is_ident(i) && at(i).text == "using" && is_ident(i + 1) &&
          at(i + 1).text == "namespace") {
        flag(at(i).line, "H1",
             "using namespace in a header leaks into every includer");
      }
    }
  }

  std::vector<const Token*> code_;
  std::string_view file_;
  const FileScope& scope_;
  std::vector<Finding>& out_;
};

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {"D1", "D2", "D3", "A1",
                                                  "A2", "A3", "H1"};
  return kRules;
}

FileScope classify_path(std::string_view path) {
  FileScope scope;
  scope.header = ends_with(path, ".hpp") || ends_with(path, ".h");
  scope.library_code = contains(path, "src/");
  scope.decision_path =
      contains(path, "src/core/") || contains(path, "src/gp/") ||
      contains(path, "src/bayesopt/") || contains(path, "src/streamsim/") ||
      contains(path, "src/fault/") || contains(path, "src/runtime/") ||
      contains(path, "src/multitenant/") || contains(path, "src/arrival/");
  scope.numeric_header =
      scope.header && (contains(path, "src/linalg/") ||
                       contains(path, "src/gp/") ||
                       contains(path, "src/core/"));
  return scope;
}

std::vector<Finding> lint_source(std::string_view source,
                                 std::string_view file,
                                 const FileScope& scope) {
  const std::vector<Token> tokens = lex(source);
  Suppressions sup = parse_suppressions(tokens, file);

  std::vector<Finding> raw;
  Matcher matcher(tokens, file, scope, raw);
  matcher.run(tokens);

  std::vector<Finding> out;
  for (Finding& f : raw) {
    const auto it = sup.allowed.find(f.line);
    if (it != sup.allowed.end() && it->second.count(f.rule) != 0) continue;
    out.push_back(std::move(f));
  }
  for (Finding& f : sup.errors) out.push_back(std::move(f));
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) <
           std::tie(b.line, b.rule, b.message);
  });
  return out;
}

}  // namespace autra::lint

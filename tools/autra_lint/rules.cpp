#include "rules.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <tuple>

#include "index.hpp"
#include "lexer.hpp"

namespace autra::lint {

namespace {

constexpr std::array<std::string_view, 8> kRngTypes = {
    "mt19937",      "mt19937_64", "default_random_engine",
    "minstd_rand",  "minstd_rand0", "ranlux24",
    "ranlux48",     "knuth_b"};

constexpr std::array<std::string_view, 7> kClockIdents = {
    "time",         "clock",        "now",
    "random_device", "system_clock", "steady_clock",
    "high_resolution_clock"};

/// Identifiers that appear in seed expressions without naming a seed —
/// casts and builtin type names. `static_cast<unsigned>(7)` is still a
/// literal seed.
constexpr std::array<std::string_view, 16> kCastIdents = {
    "static_cast", "const_cast", "reinterpret_cast", "unsigned",
    "signed",      "int",        "long",             "short",
    "char",        "auto",       "std",              "size_t",
    "uint32_t",    "uint64_t",   "int32_t",          "int64_t"};

constexpr std::array<std::string_view, 6> kIdKeyedMetricApis = {
    "record", "sum", "mean", "last", "series", "range"};

/// Integer type spellings a raw tenant id could hide behind (A3).
constexpr std::array<std::string_view, 9> kRawIntTypes = {
    "int",      "long",     "short",   "unsigned", "size_t",
    "uint32_t", "uint64_t", "int32_t", "int64_t"};

/// Clock types whose ::now() is a wall-clock read (D5).
constexpr std::array<std::string_view, 3> kWallClockTypes = {
    "system_clock", "steady_clock", "high_resolution_clock"};

/// C-library wall-clock entry points (D5). time() is D1's when it seeds.
constexpr std::array<std::string_view, 4> kWallClockCalls = {
    "gettimeofday", "timespec_get", "ftime", "mktime"};

/// A3's notion of "this identifier names a tenant id". Deliberately
/// narrow: `tenant_count`/`tenant_names` are legitimate integers/containers,
/// while `tenant`, `dst_tenant` and anything spelling out `tenant_id` are
/// identities and must be runtime::TenantId.
bool names_a_tenant_id(std::string_view ident) {
  std::string lower(ident);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  });
  const std::string_view v = lower;
  return v == "tenant" || v == "tenantid" ||
         v.find("tenant_id") != std::string_view::npos ||
         (v.size() > 7 && v.substr(v.size() - 7) == "_tenant");
}

template <std::size_t N>
bool one_of(std::string_view s, const std::array<std::string_view, N>& set) {
  return std::find(set.begin(), set.end(), s) != set.end();
}

bool contains(std::string_view hay, std::string_view needle) {
  return hay.find(needle) != std::string_view::npos;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Directive text with runs of whitespace collapsed to single spaces and
/// any trailing comment dropped — "#  pragma   once // x" -> "#pragma once".
std::string normalize_directive(std::string_view text) {
  std::string out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '/' && i + 1 < text.size() &&
        (text[i + 1] == '/' || text[i + 1] == '*')) {
      break;
    }
    if (std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      if (!out.empty() && out.back() != ' ' && out.back() != '#') out += ' ';
    } else {
      out += text[i];
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions

struct Suppressions {
  /// line -> rule ids allowed on that line.
  std::map<int, std::set<std::string, std::less<>>> allowed;
  /// S1 findings: malformed suppressions are errors, never silenced.
  std::vector<Finding> errors;
};

constexpr std::string_view kMarker = "autra-lint:";

Suppressions parse_suppressions(const std::vector<Token>& tokens,
                                std::string_view file) {
  Suppressions out;
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kComment) continue;
    const std::size_t at = t.text.find(kMarker);
    if (at == std::string_view::npos) continue;

    const auto s1 = [&](const std::string& msg) {
      out.errors.push_back({std::string(file), t.line, "S1", msg,
                            std::string(trim(t.text))});
    };

    std::string_view rest = trim(t.text.substr(at + kMarker.size()));
    // Block comments: drop the trailing "*/".
    if (rest.size() >= 2 && rest.substr(rest.size() - 2) == "*/") {
      rest = trim(rest.substr(0, rest.size() - 2));
    }
    if (rest.substr(0, 6) != "allow(" || rest.find(')') ==
                                             std::string_view::npos) {
      s1("malformed suppression; use `autra-lint: allow(RULE reason)`");
      continue;
    }
    const std::string_view inner =
        trim(rest.substr(6, rest.rfind(')') - 6));
    const std::size_t space = inner.find_first_of(" \t");
    const std::string_view rule =
        space == std::string_view::npos ? inner : inner.substr(0, space);
    const std::string_view reason =
        space == std::string_view::npos ? std::string_view{}
                                        : trim(inner.substr(space + 1));

    const std::vector<std::string>& rules = known_rules();
    if (std::find(rules.begin(), rules.end(), rule) == rules.end()) {
      s1("suppression names unknown rule '" + std::string(rule) + "'");
      continue;
    }
    if (reason.empty()) {
      s1("bare suppression; allow(" + std::string(rule) +
         " <reason>) must say why the finding is legitimate");
      continue;
    }
    // A suppression covers its own line and the one below it, so it can
    // trail the offending statement or sit on the line above.
    out.allowed[t.line].insert(std::string(rule));
    out.allowed[t.line + 1].insert(std::string(rule));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule matchers. All operate on the "code" view: comments and preprocessor
// directives removed. Cross-TU name resolution comes from the IndexView
// (pass 1); the view always at least covers this file's own declarations.

class Matcher {
 public:
  Matcher(const std::vector<Token>& all, std::string_view file,
          const FileScope& scope, const IndexView& view,
          std::vector<Finding>& out)
      : file_(file), scope_(scope), view_(view), out_(out) {
    for (const Token& t : all) {
      if (t.kind != TokenKind::kComment && t.kind != TokenKind::kDirective) {
        code_.push_back(&t);
      }
    }
  }

  void run(const std::vector<Token>& all) {
    rule_d1();
    if (scope_.decision_path) {
      rule_d2();
      rule_d4();
    }
    rule_d3();
    if (scope_.wall_clock_banned) rule_d5();
    rule_a1();
    if (scope_.numeric_header) rule_a2();
    if (scope_.header && scope_.library_code) rule_a3();
    if (scope_.container_api_header) rule_a4();
    if (scope_.header) rule_h1(all);
  }

 private:
  [[nodiscard]] const Token& at(std::size_t i) const {
    static const Token kEof{TokenKind::kPunct, {}, 0};
    return i < code_.size() ? *code_[i] : kEof;
  }
  [[nodiscard]] bool is(std::size_t i, std::string_view text) const {
    return at(i).text == text;
  }
  [[nodiscard]] bool is_ident(std::size_t i) const {
    return at(i).kind == TokenKind::kIdentifier;
  }
  [[nodiscard]] bool member_access(std::size_t i) const {
    return i > 0 && (is(i - 1, ".") || is(i - 1, "->"));
  }

  /// The baseline identity of a finding at token `i`: the surrounding
  /// code tokens, space-joined. No line numbers — edits elsewhere in the
  /// file must not re-key the finding (baseline.hpp).
  [[nodiscard]] std::string context_at(std::size_t i) const {
    const std::size_t from = i >= 2 ? i - 2 : 0;
    const std::size_t to = std::min(i + 6, code_.size());
    std::string out;
    for (std::size_t k = from; k < to; ++k) {
      if (!out.empty()) out += ' ';
      out += at(k).text;
    }
    return out;
  }

  void flag(std::size_t i, std::string_view rule, std::string message) {
    out_.push_back({std::string(file_), at(i).line, std::string(rule),
                    std::move(message), context_at(i)});
  }

  /// Index just past the matching closer for the opener at `i`
  /// (one of ( { < [ ); code_.size() when unbalanced.
  [[nodiscard]] std::size_t skip_balanced(std::size_t i, char open,
                                          char close) const {
    int depth = 0;
    const std::string_view o(&open, 1);
    const std::string_view c(&close, 1);
    for (; i < code_.size(); ++i) {
      if (at(i).text == o) ++depth;
      if (at(i).text == c && --depth == 0) return i + 1;
    }
    return code_.size();
  }

  /// True when the identifier at `j` names something hash-ordered: an
  /// unordered container type, or a variable / alias / function the
  /// index resolved to one — declared in this file or any transitively
  /// included one.
  [[nodiscard]] bool unordered_mention(std::size_t j) const {
    if (!is_ident(j)) return false;
    const std::string_view id = at(j).text;
    return unordered_container_type(id) ||
           view_.unordered_names.count(id) != 0 ||
           view_.unordered_aliases.count(id) != 0 ||
           view_.unordered_functions.count(id) != 0;
  }

  /// Parsed range-for at `i` (`at(i) == "for"`): token indices of the
  /// head's `:` and closing `)`. close == 0 when this is not a range-for.
  struct RangeFor {
    std::size_t colon = 0;
    std::size_t close = 0;
  };
  [[nodiscard]] RangeFor range_for(std::size_t i) const {
    RangeFor out;
    int depth = 0;
    for (std::size_t j = i + 1; j < code_.size(); ++j) {
      if (is(j, "(")) ++depth;
      if (is(j, ")") && --depth == 0) {
        out.close = j;
        break;
      }
      if (is(j, ":") && depth == 1 && out.colon == 0) out.colon = j;
    }
    if (out.colon == 0) out.close = 0;
    return out;
  }

  /// First hash-ordered mention in the range expression of the range-for
  /// at `i`; 0 when none (0 is never a range token).
  [[nodiscard]] std::size_t range_for_unordered(std::size_t i) const {
    const RangeFor rf = range_for(i);
    if (rf.close == 0) return 0;
    for (std::size_t j = rf.colon + 1; j < rf.close; ++j) {
      if (unordered_mention(j)) return j;
    }
    return 0;
  }

  // D1 — entropy and wall-clock sources.
  void rule_d1() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i)) continue;
      const std::string_view id = at(i).text;
      if (id == "random_device") {
        flag(i, "D1",
             "std::random_device is nondeterministic; thread a seeded "
             "mt19937_64 through instead");
      } else if ((id == "rand" || id == "srand") && is(i + 1, "(") &&
                 !member_access(i)) {
        flag(i, "D1",
             std::string(id) + "() breaks seeded replay; use a "
             "mt19937_64 with a named seed");
      } else if (id == "time" && is(i + 1, "(") && !member_access(i) &&
                 !declaration(i)) {
        const Token& arg = at(i + 2);
        if (arg.text == ")" || arg.text == "0" || arg.text == "NULL" ||
            arg.text == "nullptr") {
          flag(i, "D1",
               "time()-based seed makes runs unreproducible; pass the seed "
               "explicitly");
        }
      }
    }
  }

  // D2 — iteration order of unordered containers leaking into decisions.
  // The IndexView supplies names declared in other headers: members,
  // `using` aliases and unordered-returning functions (cross-TU).
  void rule_d2() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      // Range-for whose range expression mentions an unordered container.
      if (is_ident(i) && at(i).text == "for" && is(i + 1, "(")) {
        const std::size_t j = range_for_unordered(i);
        if (j != 0) {
          flag(i, "D2",
               "range-for over unordered container '" +
                   std::string(at(j).text) +
                   "'; iteration order is nondeterministic — take a "
                   "sorted snapshot or use std::map");
        }
      }
      // Iterator access on a tracked unordered container. `.end()` alone
      // is fine — `find(k) == end()` is an order-free point lookup; it is
      // begin/cbegin that starts an ordered walk.
      if (is_ident(i) && view_.unordered_names.count(at(i).text) != 0 &&
          (is(i + 1, ".") || is(i + 1, "->")) && is_ident(i + 2) &&
          is(i + 3, "(")) {
        const std::string_view m = at(i + 2).text;
        if (m == "begin" || m == "cbegin") {
          flag(i, "D2",
               "iterator over unordered container '" +
                   std::string(at(i).text) +
                   "'; iteration order is nondeterministic — take a "
                   "sorted snapshot or use std::map");
        }
      }
    }
  }

  // D3 — RNG constructions must take a named seed.
  void rule_d3() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i) || !one_of(at(i).text, kRngTypes)) continue;
      std::size_t j = i + 1;
      // References, template arguments, member-type access, using-aliases
      // and bare declarations are not constructions.
      if (is(j, "&") || is(j, "*") || is(j, ">") || is(j, ",") ||
          is(j, ")") || is(j, ";") || is(j, "::") || is(j, "=")) {
        continue;
      }
      if (is_ident(j)) ++j;  // mt19937_64 name(...)
      const bool paren = is(j, "(");
      const bool brace = is(j, "{");
      if (!paren && !brace) continue;
      const std::size_t end =
          skip_balanced(j, paren ? '(' : '{', paren ? ')' : '}');
      bool named = false;
      bool clocked = false;
      for (std::size_t k = j + 1; k + 1 < end; ++k) {
        if (!is_ident(k)) continue;
        if (one_of(at(k).text, kClockIdents)) clocked = true;
        if (!one_of(at(k).text, kCastIdents)) named = true;
      }
      if (clocked) {
        flag(i, "D3",
             "RNG seeded from a clock or entropy source; seeds must be "
             "named values so runs replay bit-identically");
      } else if (!named && scope_.library_code) {
        flag(i, "D3",
             end == j + 2
                 ? "default-constructed RNG hides the seed; take it as a "
                   "named parameter"
                 : "RNG seeded from a literal; take the seed as a named "
                   "parameter so callers control replay");
      }
    }
  }

  // D4 — order-sensitive raw reductions in decision paths. std::reduce
  // may reassociate the fold; std::accumulate inherits whatever order
  // its range has; exec::parallel_reduce folds in a fixed index order at
  // every thread count, which is what a decision path must use. A manual
  // `+=` inside a loop over an unordered container is the same bug
  // spelled by hand.
  void rule_d4() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i)) continue;
      const std::string_view id = at(i).text;
      if ((id == "accumulate" || id == "reduce") && is(i + 1, "(")) {
        const bool std_qualified =
            i >= 2 && is(i - 1, "::") && at(i - 2).text == "std";
        if (std_qualified || !member_access(i)) {
          flag(i, "D4",
               "std::" + std::string(id) +
                   " is an order-sensitive raw reduction in a decision "
                   "path; fold in fixed index order (exec::parallel_reduce "
                   "or an explicit indexed loop)");
        }
      }
      // Manual accumulation inside a range-for over an unordered
      // container (one finding per loop).
      if (id == "for" && is(i + 1, "(") && range_for_unordered(i) != 0) {
        const RangeFor rf = range_for(i);
        std::size_t body_end;
        if (is(rf.close + 1, "{")) {
          body_end = skip_balanced(rf.close + 1, '{', '}');
        } else {
          body_end = rf.close + 1;
          while (body_end < code_.size() && !is(body_end, ";")) ++body_end;
        }
        for (std::size_t k = rf.close + 1; k < body_end; ++k) {
          if ((is(k, "+") || is(k, "-") || is(k, "*")) && is(k + 1, "=")) {
            flag(k, "D4",
                 "manual accumulation over an unordered container; the "
                 "fold order is the hash order — reduce over a sorted "
                 "snapshot instead");
            break;
          }
        }
      }
    }
  }

  /// A call-looking token that is actually a *declaration* — the
  /// preceding token is a type name (`double clock() const;`). `return
  /// clock()` stays a call.
  [[nodiscard]] bool declaration(std::size_t i) const {
    return i > 0 && is_ident(i - 1) && at(i - 1).text != "return" &&
           at(i - 1).text != "co_return";
  }

  // D5 — wall-clock reads outside bench/ and tools/. Simulated time
  // comes from the engine; a wall clock in library, example or test code
  // either leaks into decisions or smuggles nondeterminism into
  // assertions.
  void rule_d5() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i)) continue;
      const std::string_view id = at(i).text;
      if (one_of(id, kWallClockTypes) && is(i + 1, "::") &&
          at(i + 2).text == "now") {
        flag(i, "D5",
             std::string(id) +
                 "::now() is a wall-clock read; simulated time comes from "
                 "the engine — wall-clock timing belongs in bench/ and "
                 "tools/");
      } else if (id == "clock" && is(i + 1, "(") && is(i + 2, ")") &&
                 !member_access(i) && !declaration(i)) {
        flag(i, "D5",
             "clock() is a wall-clock read; wall-clock timing belongs in "
             "bench/ and tools/");
      } else if (one_of(id, kWallClockCalls) && is(i + 1, "(") &&
                 !member_access(i) && !declaration(i)) {
        flag(i, "D5",
             std::string(id) + "() is a wall-clock read; wall-clock "
             "timing belongs in bench/ and tools/");
      }
    }
  }

  // A1 — stringly metric keys on the id-keyed MetricStore/MetricSink API.
  void rule_a1() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i) || !one_of(at(i).text, kIdKeyedMetricApis)) continue;
      if (!member_access(i) || !is(i + 1, "(")) continue;
      if (at(i + 2).kind == TokenKind::kString) {
        flag(i, "A1",
             "string literal passed to MetricStore::" +
                 std::string(at(i).text) +
                 "(); resolve() the series name to a MetricId once and "
                 "record by id");
      }
    }
  }

  // A2 — float in numeric-layer public headers.
  void rule_a2() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (is_ident(i) && at(i).text == "float") {
        flag(i, "A2",
             "float in a numeric-layer public header; the GP contract is "
             "double end-to-end");
      }
    }
  }

  // A3 — raw integer tenant ids in library public headers.
  void rule_a3() {
    for (std::size_t i = 0; i < code_.size(); ++i) {
      if (!is_ident(i) || !one_of(at(i).text, kRawIntTypes)) continue;
      std::size_t j = i + 1;
      while (is(j, "const") || is(j, "*") || is(j, "&") || is(j, "&&")) ++j;
      if (!is_ident(j) || !names_a_tenant_id(at(j).text)) continue;
      flag(i, "A3",
           "raw integer tenant id '" + std::string(at(j).text) +
               "' in a public header; tenant identity is the interned "
               "runtime::TenantId");
    }
  }

  // A4 — std::unordered_* exposed by the public surface of a
  // hash-order-sensitive layer's header: return types, public members,
  // public aliases, free-function signatures. Hash order (and hash
  // seed) would leak into every caller; private members used for point
  // lookups stay legal.
  void rule_a4() {
    struct Region {
      enum Kind { kNamespace, kClass, kOther };
      Kind kind = kOther;
      bool exposed_base = false;  ///< exposure of the enclosing region
      bool is_public = false;     ///< current access, class regions only
    };
    std::vector<Region> stack;
    const auto effective = [&]() {
      if (stack.empty()) return true;  // file scope of a public header
      const Region& top = stack.back();
      if (top.kind == Region::kOther) return false;
      if (top.kind == Region::kClass) {
        return top.exposed_base && top.is_public;
      }
      return top.exposed_base;
    };

    enum class Pending { kNone, kNamespace, kClass, kEnum };
    Pending pending = Pending::kNone;
    bool pending_public_default = false;

    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Token& t = at(i);
      if (t.kind == TokenKind::kIdentifier) {
        if (t.text == "namespace") {
          pending = Pending::kNamespace;
        } else if (t.text == "enum") {
          pending = Pending::kEnum;
        } else if ((t.text == "class" || t.text == "struct" ||
                    t.text == "union") &&
                   pending != Pending::kEnum) {
          pending = Pending::kClass;
          pending_public_default = t.text != "class";
        } else if ((t.text == "public" || t.text == "private" ||
                    t.text == "protected") &&
                   is(i + 1, ":") && !stack.empty() &&
                   stack.back().kind == Region::kClass) {
          stack.back().is_public = t.text == "public";
        } else if (unordered_container_type(t.text) && effective()) {
          flag(i, "A4",
               "public header exposes std::" + std::string(t.text) +
                   " in its API; hash order leaks into callers — return "
                   "or store an ordered type, or make the member "
                   "private");
        }
        continue;
      }
      if (is(i, "(") || is(i, ";")) {
        // A parameter list means the upcoming `{` is a function body;
        // a semicolon ends whatever declaration was pending.
        pending = Pending::kNone;
      } else if (is(i, "{")) {
        Region r;
        r.exposed_base = effective();
        if (pending == Pending::kNamespace) {
          r.kind = Region::kNamespace;
        } else if (pending == Pending::kClass) {
          r.kind = Region::kClass;
          r.is_public = pending_public_default;
        } else {
          r.kind = Region::kOther;
        }
        stack.push_back(r);
        pending = Pending::kNone;
      } else if (is(i, "}")) {
        if (!stack.empty()) stack.pop_back();
      }
    }
  }

  // H1 — header hygiene.
  void rule_h1(const std::vector<Token>& all) {
    const Token* first = nullptr;
    for (const Token& t : all) {
      if (t.kind != TokenKind::kComment) {
        first = &t;
        break;
      }
    }
    if (first == nullptr || first->kind != TokenKind::kDirective ||
        normalize_directive(first->text) != "#pragma once") {
      out_.push_back({std::string(file_),
                      first != nullptr ? first->line : 1, "H1",
                      "header must open with #pragma once (before any "
                      "include or declaration)",
                      first != nullptr ? normalize_directive(first->text)
                                       : std::string("<empty file>")});
    }
    for (std::size_t i = 0; i + 1 < code_.size(); ++i) {
      if (is_ident(i) && at(i).text == "using" && is_ident(i + 1) &&
          at(i + 1).text == "namespace") {
        flag(i, "H1",
             "using namespace in a header leaks into every includer");
      }
    }
  }

  std::vector<const Token*> code_;
  std::string_view file_;
  const FileScope& scope_;
  const IndexView& view_;
  std::vector<Finding>& out_;
};

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

const std::vector<std::string>& known_rules() {
  static const std::vector<std::string> kRules = {
      "D1", "D2", "D3", "D4", "D5", "A1", "A2", "A3", "A4", "H1"};
  return kRules;
}

FileScope classify_path(std::string_view path) {
  FileScope scope;
  scope.header = ends_with(path, ".hpp") || ends_with(path, ".h");
  scope.library_code = contains(path, "src/");
  scope.decision_path =
      contains(path, "src/core/") || contains(path, "src/gp/") ||
      contains(path, "src/bayesopt/") || contains(path, "src/streamsim/") ||
      contains(path, "src/fault/") || contains(path, "src/runtime/") ||
      contains(path, "src/multitenant/") || contains(path, "src/arrival/");
  scope.wall_clock_banned =
      !contains(path, "bench/") && !contains(path, "tools/");
  scope.numeric_header =
      scope.header && (contains(path, "src/linalg/") ||
                       contains(path, "src/gp/") ||
                       contains(path, "src/core/"));
  scope.container_api_header =
      scope.header && (contains(path, "src/linalg/") ||
                       contains(path, "src/gp/") ||
                       contains(path, "src/core/") ||
                       contains(path, "src/runtime/"));
  return scope;
}

std::vector<Finding> lint_source(std::string_view source,
                                 std::string_view file,
                                 const FileScope& scope,
                                 const SymbolIndex* index) {
  const std::vector<Token> tokens = lex(source);
  Suppressions sup = parse_suppressions(tokens, file);

  // Cross-TU view from pass 1 when available; otherwise index just this
  // file on the fly, which reproduces the old per-file behaviour.
  const IndexView* view = index != nullptr ? index->view(file) : nullptr;
  SymbolIndex local;
  if (view == nullptr) {
    local.add_file(file, source);
    local.finalize();
    view = local.view(file);
  }

  std::vector<Finding> raw;
  Matcher matcher(tokens, file, scope, *view, raw);
  matcher.run(tokens);

  std::vector<Finding> out;
  for (Finding& f : raw) {
    const auto it = sup.allowed.find(f.line);
    if (it != sup.allowed.end() && it->second.count(f.rule) != 0) continue;
    out.push_back(std::move(f));
  }
  for (Finding& f : sup.errors) out.push_back(std::move(f));
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule, a.message) <
           std::tie(b.line, b.rule, b.message);
  });
  return out;
}

}  // namespace autra::lint

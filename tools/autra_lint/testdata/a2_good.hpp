// A2 good: the numeric layers speak double end-to-end.
#pragma once

namespace fixture {
[[nodiscard]] double squared_norm(double x);
}  // namespace fixture

// D4 good: decision-path folds happen in an explicit, fixed index order
// — an indexed loop over a vector, or exec::parallel_reduce (whose fold
// order is pinned at every thread count).
#include <map>
#include <string>
#include <vector>

namespace exec {
struct ExecContext;
template <typename T, typename M, typename F>
T parallel_reduce(const ExecContext& ctx, std::size_t n, T init, M map,
                  F fold);
}  // namespace exec

double plan_score(const exec::ExecContext& ctx,
                  const std::vector<double>& trial_scores,
                  const std::map<std::string, double>& sorted_rates) {
  double sum = 0.0;
  for (std::size_t i = 0; i < trial_scores.size(); ++i) {
    sum += trial_scores[i];
  }
  const double folded = exec::parallel_reduce(
      ctx, trial_scores.size(), 0.0,
      [&](std::size_t i) { return trial_scores[i]; },
      [](double a, double b) { return a + b; });
  double ordered = 0.0;
  for (const auto& [op, v] : sorted_rates) ordered += v;
  return sum + folded + ordered;
}

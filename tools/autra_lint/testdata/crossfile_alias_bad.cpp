// Cross-file D2 bad: the local variable's type is an alias declared in
// crossfile_alias.hpp; iterating it is a hash-order walk.
#include "crossfile_alias.hpp"

namespace fixture {

double total(const OperatorRates& rates) {
  OperatorRates scratch = rates;
  double sum = 0.0;
  for (const auto& [op, r] : scratch) sum = sum + r;
  return sum;
}

}  // namespace fixture

// D5 good: time is a simulation input, threaded through explicitly; the
// engine's clock is a member function, not the machine's.
struct Engine {
  [[nodiscard]] double time() const;
  [[nodiscard]] double clock() const;  // member named clock is not a read
};

double window_age_sec(const Engine& engine, double window_start_sec) {
  return engine.time() - window_start_sec;
}

// D5 bad: wall-clock reads in library code. Simulated time comes from
// the engine; a wall clock here leaks real time into decisions.
#include <chrono>
#include <ctime>

double window_age_sec(double window_start_sec) {
  const auto wall = std::chrono::system_clock::now();
  const auto mono = std::chrono::steady_clock::now();
  const double cpu = static_cast<double>(clock());
  (void)wall;
  (void)mono;
  return cpu - window_start_sec;
}

// A1 bad: stringly metric keys on the id-keyed store API.
#include <string>

struct Store {
  void record(const std::string& name, double t, double v);
  double mean(const std::string& name, double t0, double t1);
};

void write(Store& store) {
  store.record("job.throughput", 0.0, 1.0);
  (void)store.mean("job.throughput", 0.0, 1.0);
}

// Cross-file D2 corpus: a `using` alias that resolves to an unordered
// container, consumed in crossfile_alias_{bad,good}.cpp. The chained
// alias exercises the index's fixpoint resolution.
#pragma once

#include <string>
#include <unordered_map>

namespace fixture {

using RateMap = std::unordered_map<std::string, double>;
using OperatorRates = RateMap;  // alias-of-alias, still unordered

}  // namespace fixture

#pragma once

#include <cstdint>

namespace fixture {

struct PerTenantQos {
  int tenant = -1;  // raw int identity leaks interning details
  double throughput = 0.0;
};

void bind_tenant(std::uint32_t tenant_id, double weight);

}  // namespace fixture

// D3 bad, arrival-themed: a thinning sampler whose RNG is seeded with a
// hidden literal and a wall-clock value — either one makes the sampled
// rate table unreplayable.
#include <chrono>
#include <cstdint>
#include <random>
#include <vector>

std::vector<double> sample_onsets(double mu, double horizon_sec) {
  std::mt19937_64 fixed(987654321);
  std::mt19937_64 clocked(static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count()));
  std::exponential_distribution<double> gap(mu);
  std::vector<double> out;
  for (double t = gap(fixed); t < horizon_sec; t += gap(clocked)) {
    out.push_back(t);
  }
  return out;
}

// Cross-file D2 bad: iterating the unordered return value of a function
// declared in crossfile_fn.hpp.
#include "crossfile_fn.hpp"

namespace fixture {

double total() {
  double sum = 0.0;
  for (const auto& [op, r] : snapshot_rates()) sum = sum + r;
  return sum;
}

}  // namespace fixture

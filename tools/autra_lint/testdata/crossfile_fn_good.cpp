// Cross-file D2 good: the unordered snapshot is copied into an ordered
// map first; the walk happens in sorted-key order.
#include "crossfile_fn.hpp"

#include <map>
#include <string>

namespace fixture {

double total() {
  const auto snap = snapshot_rates();
  const std::map<std::string, double> sorted(snap.begin(), snap.end());
  double sum = 0.0;
  for (const auto& [op, r] : sorted) sum = sum + r;
  return sum;
}

}  // namespace fixture

// Cross-file D2 good: point lookups into the header-declared unordered
// member are order-free.
#include "crossfile_member.hpp"

namespace fixture {

double OperatorTable::rate_of(const std::string& op) const {
  const auto it = rates_.find(op);
  return it == rates_.end() ? 0.0 : it->second;
}

}  // namespace fixture

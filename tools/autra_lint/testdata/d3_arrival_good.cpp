// D3 good, arrival-themed: the sampler's RNG comes from a named seed
// parameter, so the whole rate table replays from (params, seed) — the
// src/arrival/ construction-time contract.
#include <cstdint>
#include <random>
#include <vector>

std::vector<double> sample_onsets(double mu, double horizon_sec,
                                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(mu);
  std::vector<double> out;
  for (double t = gap(rng); t < horizon_sec; t += gap(rng)) {
    out.push_back(t);
  }
  return out;
}

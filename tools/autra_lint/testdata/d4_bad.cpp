// D4 bad: raw reductions in a decision path. std::reduce may
// reassociate the fold, std::accumulate inherits its range's order, and
// a manual += over an unordered container folds in hash order.
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

double plan_score(const std::vector<double>& trial_scores,
                  const std::unordered_map<std::string, double>& rates) {
  const double a =
      std::accumulate(trial_scores.begin(), trial_scores.end(), 0.0);
  const double r = std::reduce(trial_scores.begin(), trial_scores.end());
  double hash_order = 0.0;
  for (const auto& [op, v] : rates) hash_order += v;
  return a + r + hash_order;
}

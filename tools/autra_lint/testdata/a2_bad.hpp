// A2 bad: float in a numeric-layer public header.
#pragma once

namespace fixture {
[[nodiscard]] float squared_norm(float x);
}  // namespace fixture

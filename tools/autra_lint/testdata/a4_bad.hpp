// A4 bad: a hash-order-sensitive layer's public header exposing
// std::unordered_* — as a public member and as a return type. Every
// caller inherits the hash order (and libstdc++'s hash seed).
#pragma once

#include <string>
#include <unordered_map>

namespace fixture {

class OperatorRates {
 public:
  std::unordered_map<std::string, double> rates;  // public member

  [[nodiscard]] std::unordered_map<std::string, double> snapshot() const;
};

}  // namespace fixture

// A1 good: the series name is interned once at the resolve() boundary;
// every write afterwards is by id.
#include <string_view>

struct MetricId { unsigned value; };
struct Sink {
  MetricId resolve(std::string_view name);
  void record(MetricId id, double t, double v);
};

void write(Sink& sink) {
  const MetricId id = sink.resolve("job.throughput");
  sink.record(id, 0.0, 1.0);
  sink.record(id, 1.0, 2.0);
}

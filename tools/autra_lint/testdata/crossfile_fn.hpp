// Cross-file D2 corpus: a function whose *return type* is unordered,
// iterated in crossfile_fn_{bad,good}.cpp.
#pragma once

#include <string>
#include <unordered_map>

namespace fixture {

[[nodiscard]] std::unordered_map<std::string, double> snapshot_rates();

}  // namespace fixture

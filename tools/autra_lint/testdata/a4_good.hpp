// A4 good: the unordered container is a private point-lookup detail; the
// public surface speaks ordered types only.
#pragma once

#include <map>
#include <string>
#include <unordered_map>

namespace fixture {

class OperatorRates {
 public:
  [[nodiscard]] double rate_of(const std::string& op) const;

  /// Sorted snapshot — the only iteration the API offers.
  [[nodiscard]] std::map<std::string, double> snapshot() const;

 private:
  std::unordered_map<std::string, double> index_;
};

}  // namespace fixture

// Cross-file D2 bad: range-for over `rates_`, whose unordered type is
// declared in crossfile_member.hpp. Without the symbol index this file
// looks clean.
#include "crossfile_member.hpp"

namespace fixture {

double OperatorTable::total() const {
  double sum = 0.0;
  for (const auto& [op, r] : rates_) sum = sum + r;
  return sum;
}

}  // namespace fixture

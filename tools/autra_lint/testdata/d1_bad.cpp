// D1 bad: entropy and wall-clock seeds.
#include <cstdlib>
#include <ctime>
#include <random>

int entropy() {
  std::random_device rd;
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  return std::rand() + static_cast<int>(rd());
}

// H1 bad: include before #pragma once, and a header-scope using namespace.
#include <vector>
#pragma once

using namespace std;

inline vector<int> values;

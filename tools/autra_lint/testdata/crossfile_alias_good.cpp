// Cross-file D2 good: the alias-typed map is only probed, never walked.
#include "crossfile_alias.hpp"

#include <string>

namespace fixture {

double rate_of(const OperatorRates& rates, const std::string& op) {
  const auto it = rates.find(op);
  return it == rates.end() ? 0.0 : it->second;
}

}  // namespace fixture

#pragma once

#include <cstddef>
#include <string>

#include "runtime/tenant.hpp"

namespace fixture {

struct PerTenantQos {
  autra::runtime::TenantId tenant;   // interned identity — the contract
  std::string tenant_name;           // display name, not an id
  int tenant_count = 0;              // a count of tenants, not an identity
  double throughput = 0.0;
};

void bind(autra::runtime::TenantId tenant_id, double weight);

}  // namespace fixture

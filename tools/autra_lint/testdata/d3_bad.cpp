// D3 bad: a hidden literal seed and a clock seed.
#include <chrono>
#include <cstdint>
#include <random>

std::uint64_t sample() {
  std::mt19937_64 fixed(12345);
  std::mt19937_64 clocked(static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count()));
  return fixed() ^ clocked();
}

// H1 good: a leading comment is fine; #pragma once precedes everything
// else and no namespace is opened wide.
#pragma once

#include <vector>

namespace fixture {
inline std::vector<int> values;
}  // namespace fixture

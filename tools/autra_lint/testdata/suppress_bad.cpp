// Suppression bad: a bare allow() without a reason and an unknown rule id
// are S1 findings, and the D3 findings they meant to cover still stand.
#include <cstdint>
#include <random>

std::uint64_t draw() {
  std::mt19937_64 bare(42);  // autra-lint: allow(D3)
  std::mt19937_64 unknown(43);  // autra-lint: allow(Z9 because reasons)
  return bare() ^ unknown();
}

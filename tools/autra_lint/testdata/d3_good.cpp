// D3 good: the seed is a named parameter; derivation stays replayable.
#include <cstdint>
#include <random>

std::uint64_t sample(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  return rng();
}

// D2 bad: hash-order accumulation — float addition is not associative,
// so the result depends on the iteration order.
#include <string>
#include <unordered_map>

double total(const std::unordered_map<std::string, double>& rates) {
  double sum = 0.0;
  for (const auto& [op, r] : rates) sum += r;
  auto first = rates.begin();
  return sum + (first == rates.end() ? 0.0 : first->second);
}

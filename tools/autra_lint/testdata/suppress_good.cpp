// Suppression good: a reasoned allow() silences the finding it names,
// whether it trails the statement or sits on the line above.
#include <cstdint>
#include <random>

std::uint64_t draw() {
  // autra-lint: allow(D3 fixture mirrors the sanctioned entropy boundary)
  std::mt19937_64 above(42);
  std::mt19937_64 trailing(43);  // autra-lint: allow(D3 fixed fixture seed)
  return above() ^ trailing();
}

// Cross-file D2 corpus: the unordered member lives HERE, the iteration
// lives in crossfile_member_{bad,good}.cpp — only the pass-1 symbol
// index connects the two.
#pragma once

#include <string>
#include <unordered_map>

namespace fixture {

struct OperatorTable {
  std::unordered_map<std::string, double> rates_;

  [[nodiscard]] double total() const;
  [[nodiscard]] double rate_of(const std::string& op) const;
};

}  // namespace fixture

// D2 good: point lookups into an unordered map are order-free; ordered
// walks go through std::map.
#include <map>
#include <string>
#include <unordered_map>

double rate_of(const std::unordered_map<std::string, double>& rates,
               const std::string& op) {
  const auto it = rates.find(op);
  return it == rates.end() ? 0.0 : it->second;
}

double total(const std::map<std::string, double>& sorted_rates) {
  double sum = 0.0;
  for (const auto& [op, r] : sorted_rates) sum += r;
  return sum;
}

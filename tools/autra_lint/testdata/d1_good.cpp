// D1 good: all randomness flows through an explicitly seeded engine.
#include <cstdint>
#include <random>

std::uint64_t draw(std::mt19937_64& rng) { return rng(); }

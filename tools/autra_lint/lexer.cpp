#include "lexer.hpp"

#include <cctype>
#include <cstddef>
#include <string>

namespace autra::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if the token stream so far ends in a context where `"` opens a
/// raw string: the previous characters were an identifier ending in R,
/// u8R, uR, UR or LR.
bool raw_string_prefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  [[nodiscard]] bool done() const { return pos_ >= src_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] int line() const { return line_; }
  [[nodiscard]] std::string_view slice(std::size_t from) const {
    return src_.substr(from, pos_ - from);
  }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

/// Consumes a quoted literal (string or char), honouring backslash
/// escapes; stops at the closing quote or end-of-line/file.
void consume_quoted(Cursor& c, char quote) {
  while (!c.done()) {
    const char ch = c.advance();
    if (ch == '\\' && !c.done()) {
      c.advance();
      continue;
    }
    if (ch == quote || ch == '\n') return;
  }
}

/// Consumes a raw string body after the opening quote: `delim( ... )delim"`.
void consume_raw_string(Cursor& c) {
  std::string delim;
  while (!c.done() && c.peek() != '(' && c.peek() != '\n') {
    delim.push_back(c.advance());
  }
  if (c.done() || c.peek() == '\n') return;
  c.advance();  // '('
  const std::string closer = ")" + delim + "\"";
  std::size_t matched = 0;
  while (!c.done()) {
    if (c.peek() == closer[matched]) {
      ++matched;
      c.advance();
      if (matched == closer.size()) return;
    } else {
      c.advance();
      matched = 0;
    }
  }
}

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> out;
  Cursor c(source);
  bool line_start = true;  // Only whitespace seen on this line so far.

  while (!c.done()) {
    const char ch = c.peek();

    if (ch == '\n' || std::isspace(static_cast<unsigned char>(ch)) != 0) {
      if (ch == '\n') line_start = true;
      c.advance();
      continue;
    }

    const std::size_t start = c.pos();
    const int line = c.line();

    // Preprocessor directive: the whole logical line, continuations spliced.
    if (ch == '#' && line_start) {
      while (!c.done()) {
        const char d = c.peek();
        if (d == '\\' && c.peek(1) == '\n') {
          c.advance();
          c.advance();
          continue;
        }
        if (d == '\n') break;
        c.advance();
      }
      out.push_back({TokenKind::kDirective, c.slice(start), line});
      continue;
    }
    line_start = false;

    if (ch == '/' && c.peek(1) == '/') {
      while (!c.done() && c.peek() != '\n') c.advance();
      out.push_back({TokenKind::kComment, c.slice(start), line});
      continue;
    }
    if (ch == '/' && c.peek(1) == '*') {
      c.advance();
      c.advance();
      while (!c.done()) {
        if (c.peek() == '*' && c.peek(1) == '/') {
          c.advance();
          c.advance();
          break;
        }
        c.advance();
      }
      out.push_back({TokenKind::kComment, c.slice(start), line});
      continue;
    }

    if (ident_start(ch)) {
      while (!c.done() && ident_char(c.peek())) c.advance();
      const std::string_view ident = c.slice(start);
      if (c.peek() == '"' && raw_string_prefix(ident)) {
        c.advance();  // opening quote
        consume_raw_string(c);
        out.push_back({TokenKind::kString, c.slice(start), line});
      } else {
        out.push_back({TokenKind::kIdentifier, ident, line});
      }
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(ch)) != 0 ||
        (ch == '.' && std::isdigit(static_cast<unsigned char>(c.peek(1))))) {
      c.advance();
      while (!c.done()) {
        const char d = c.peek();
        if (ident_char(d) || d == '.' || d == '\'') {
          c.advance();
          continue;
        }
        // Exponent signs: 1e-5, 0x1p+3.
        if ((d == '+' || d == '-') && c.pos() > start) {
          const char prev = source[c.pos() - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            c.advance();
            continue;
          }
        }
        break;
      }
      out.push_back({TokenKind::kNumber, c.slice(start), line});
      continue;
    }

    if (ch == '"') {
      c.advance();
      consume_quoted(c, '"');
      out.push_back({TokenKind::kString, c.slice(start), line});
      continue;
    }
    if (ch == '\'') {
      c.advance();
      consume_quoted(c, '\'');
      out.push_back({TokenKind::kChar, c.slice(start), line});
      continue;
    }

    // Punctuation. "::" and "->" matter to the matchers, so keep them as
    // single tokens; everything else is one character.
    if (ch == ':' && c.peek(1) == ':') {
      c.advance();
      c.advance();
    } else if (ch == '-' && c.peek(1) == '>') {
      c.advance();
      c.advance();
    } else {
      c.advance();
    }
    out.push_back({TokenKind::kPunct, c.slice(start), line});
  }
  return out;
}

}  // namespace autra::lint

#include "index.hpp"

#include <algorithm>
#include <array>
#include <deque>

#include "lexer.hpp"

namespace autra::lint {

namespace {

constexpr std::array<std::string_view, 4> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/// Identifiers that can never be the type of a (type, name) declaration
/// pair — keeps the typed_decls pool from swallowing statements.
constexpr std::array<std::string_view, 24> kNotATypeName = {
    "return",   "const",    "constexpr", "static",   "inline",  "struct",
    "class",    "enum",     "union",     "using",    "typedef", "typename",
    "template", "namespace", "public",   "private",  "protected", "virtual",
    "explicit", "friend",   "mutable",   "operator", "new",      "delete"};

template <std::size_t N>
bool one_of(std::string_view s, const std::array<std::string_view, N>& set) {
  return std::find(set.begin(), set.end(), s) != set.end();
}

/// `#include "x/y.hpp"` -> "x/y.hpp"; empty for system or malformed
/// includes.
std::string quoted_include(std::string_view directive) {
  const std::size_t hash = directive.find('#');
  if (hash == std::string_view::npos) return {};
  std::size_t i = hash + 1;
  while (i < directive.size() &&
         (directive[i] == ' ' || directive[i] == '\t')) {
    ++i;
  }
  if (directive.substr(i, 7) != "include") return {};
  const std::size_t open = directive.find('"', i + 7);
  if (open == std::string_view::npos) return {};
  const std::size_t close = directive.find('"', open + 1);
  if (close == std::string_view::npos) return {};
  return std::string(directive.substr(open + 1, close - open - 1));
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace

bool unordered_container_type(std::string_view ident) {
  return one_of(ident, kUnorderedTypes);
}

void SymbolIndex::add_file(std::string_view path, std::string_view source) {
  FileEntry& entry = files_[std::string(path)];

  const std::vector<Token> tokens = lex(source);
  std::vector<const Token*> code;
  code.reserve(tokens.size());
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kDirective) {
      std::string inc = quoted_include(t.text);
      if (!inc.empty()) entry.includes.push_back(std::move(inc));
      continue;
    }
    if (t.kind != TokenKind::kComment) code.push_back(&t);
  }

  const auto at = [&](std::size_t i) -> const Token& {
    static const Token kEof{TokenKind::kPunct, {}, 0};
    return i < code.size() ? *code[i] : kEof;
  };
  const auto is = [&](std::size_t i, std::string_view text) {
    return at(i).text == text;
  };
  const auto is_ident = [&](std::size_t i) {
    return at(i).kind == TokenKind::kIdentifier;
  };
  /// Index just past the closer matching the opener at `i`.
  const auto skip_balanced = [&](std::size_t i, char open, char close) {
    int depth = 0;
    const std::string_view o(&open, 1);
    const std::string_view c(&close, 1);
    for (; i < code.size(); ++i) {
      if (at(i).text == o) ++depth;
      if (at(i).text == c && --depth == 0) return i + 1;
    }
    return code.size();
  };

  bool typedef_active = false;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (!is_ident(i)) {
      if (is(i, ";")) typedef_active = false;
      continue;
    }
    const std::string_view id = at(i).text;

    if (id == "typedef") {
      typedef_active = true;
      continue;
    }

    // `using NAME = <rhs...> ;` — alias directly to an unordered type, or
    // an alias-of-alias edge resolved in finalize().
    if (id == "using" && is_ident(i + 1) && is(i + 2, "=")) {
      const std::string name(at(i + 1).text);
      std::vector<std::string> rhs;
      bool direct = false;
      std::size_t j = i + 3;
      for (; j < code.size() && !is(j, ";"); ++j) {
        if (!is_ident(j)) continue;
        if (one_of(at(j).text, kUnorderedTypes)) direct = true;
        rhs.emplace_back(at(j).text);
      }
      if (direct) {
        entry.decls.unordered_aliases.insert(name);
      } else if (!rhs.empty()) {
        entry.alias_rhs.emplace_back(name, std::move(rhs));
      }
      i = j;
      continue;
    }

    // `unordered_map<...> [cv/ref] NAME` — a declaration (member,
    // variable, parameter), a function returning the container when NAME
    // is followed by `(`, or an alias when the statement was a typedef.
    if (one_of(id, kUnorderedTypes)) {
      std::size_t j = i + 1;
      if (is(j, "<")) j = skip_balanced(j, '<', '>');
      while (is(j, "&") || is(j, "*") || is(j, "const")) ++j;
      if (is_ident(j)) {
        const std::string name(at(j).text);
        if (typedef_active) {
          entry.decls.unordered_aliases.insert(name);
        } else if (is(j + 1, "(")) {
          // `snapshot()` in a range expression and a same-named variable
          // are both hash-ordered; record the name in both pools.
          entry.decls.unordered_functions.insert(name);
          entry.decls.unordered_names.insert(name);
        } else {
          entry.decls.unordered_names.insert(name);
        }
      }
      continue;
    }

    // `TypeIdent [cv/ref] name <;={(,)>` — candidate alias-typed
    // declaration; only promoted if TypeIdent resolves to an unordered
    // alias after the fixpoint, so the noise here is harmless.
    if (!one_of(id, kNotATypeName) && !is(i + 1, "::") &&
        (i == 0 || (!is(i - 1, "::") && !is(i - 1, ".") &&
                    !is(i - 1, "->")))) {
      std::size_t j = i + 1;
      while (is(j, "&") || is(j, "*") || is(j, "const")) ++j;
      if (is_ident(j) &&
          (is(j + 1, ";") || is(j + 1, "=") || is(j + 1, "{") ||
           is(j + 1, "(") || is(j + 1, ",") || is(j + 1, ")"))) {
        entry.typed_decls.emplace_back(std::string(id),
                                       std::string(at(j).text));
      }
    }
  }
}

void SymbolIndex::finalize() {
  // 1. Alias fixpoint, project-wide: an alias whose RHS names another
  //    unordered alias is itself unordered, chains included.
  std::set<std::string, std::less<>> unordered_aliases;
  for (const auto& [path, entry] : files_) {
    unordered_aliases.insert(entry.decls.unordered_aliases.begin(),
                             entry.decls.unordered_aliases.end());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [path, entry] : files_) {
      for (const auto& [name, rhs] : entry.alias_rhs) {
        if (unordered_aliases.count(name) != 0) continue;
        for (const std::string& ident : rhs) {
          if (unordered_aliases.count(ident) != 0) {
            entry.decls.unordered_aliases.insert(name);
            unordered_aliases.insert(name);
            changed = true;
            break;
          }
        }
      }
    }
  }

  // 2. Promote alias-typed declarations: `RateMap rates_;` declares an
  //    unordered name once RateMap is known to be an unordered alias.
  for (auto& [path, entry] : files_) {
    for (const auto& [type, name] : entry.typed_decls) {
      if (unordered_aliases.count(type) != 0) {
        entry.decls.unordered_names.insert(name);
      }
    }
  }

  // 3. Include closure. An include spelling matches every indexed file
  //    it is a path suffix of, so "runtime/tenant.hpp" resolves whether
  //    the index was built from relative or absolute roots.
  std::map<std::string, std::vector<const std::string*>, std::less<>>
      by_include;
  for (auto& [path, entry] : files_) {
    for (const std::string& inc : entry.includes) {
      auto& targets = by_include[inc];
      if (!targets.empty()) continue;  // resolved once, shared
      for (const auto& [other, other_entry] : files_) {
        (void)other_entry;
        if (other == inc || ends_with(other, "/" + inc)) {
          targets.push_back(&other);
        }
      }
    }
  }
  for (auto& [path, entry] : files_) {
    std::set<std::string, std::less<>> seen{path};
    std::deque<const std::string*> frontier{&path};
    entry.visible = entry.decls;
    while (!frontier.empty()) {
      const std::string& cur = *frontier.front();
      frontier.pop_front();
      const auto it = files_.find(cur);
      if (it == files_.end()) continue;
      const FileEntry& cur_entry = it->second;
      if (&cur_entry != &entry) {
        entry.visible.unordered_names.insert(
            cur_entry.decls.unordered_names.begin(),
            cur_entry.decls.unordered_names.end());
        entry.visible.unordered_aliases.insert(
            cur_entry.decls.unordered_aliases.begin(),
            cur_entry.decls.unordered_aliases.end());
        entry.visible.unordered_functions.insert(
            cur_entry.decls.unordered_functions.begin(),
            cur_entry.decls.unordered_functions.end());
      }
      for (const std::string& inc : cur_entry.includes) {
        const auto targets = by_include.find(inc);
        if (targets == by_include.end()) continue;
        for (const std::string* target : targets->second) {
          if (seen.insert(*target).second) frontier.push_back(target);
        }
      }
    }
  }
  finalized_ = true;
}

const IndexView* SymbolIndex::view(std::string_view path) const {
  if (!finalized_) return nullptr;
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second.visible;
}

}  // namespace autra::lint

// Minimal C++ lexer for autra_lint: just enough token structure to write
// reliable per-rule matchers without an LLVM dependency.
//
// The lexer never rejects input — a linter has to survive source the
// compiler would refuse — and it keeps comments as first-class tokens
// because the allow() suppressions live there (syntax in rules.hpp).
#pragma once

#include <string_view>
#include <vector>

namespace autra::lint {

enum class TokenKind {
  kIdentifier,  ///< Identifiers and keywords alike ("float" is a token).
  kNumber,      ///< Numeric literal, suffixes and digit separators included.
  kString,      ///< String literal, raw strings included.
  kChar,        ///< Character literal.
  kPunct,       ///< One punctuator; "::" and "->" are single tokens.
  kComment,     ///< // or /* */ comment, delimiters included in text.
  kDirective,   ///< One whole preprocessor line, continuations spliced.
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  /// View into the source buffer handed to lex() — valid only while that
  /// buffer is alive.
  std::string_view text;
  /// 1-based line of the token's first character.
  int line = 1;
};

/// Tokenizes one translation unit. Unterminated literals or comments are
/// closed at end-of-file rather than reported.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace autra::lint

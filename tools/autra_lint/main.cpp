// autra_lint CLI: the project-wide, two-pass static-analysis driver.
//
// Pass 1 lexes every .cpp/.hpp under the given roots and builds the
// cross-TU symbol index (index.hpp): unordered-typed declarations,
// `using` aliases, unordered-returning functions, and the include graph.
// Pass 2 runs the determinism / API-hygiene rules (rules.hpp) against
// that index, so D2 catches a range-for over an unordered_map member or
// alias declared in a *different* header. Findings print as
// `file:line: [rule] message`.
//
//   autra_lint [--baseline FILE] [--update-baseline FILE] <file-or-dir>...
//
// --baseline FILE         drop findings recorded in FILE (fingerprinted
//                         by rule + path + token context, so line drift
//                         doesn't churn entries); stale entries are
//                         reported to stderr as a nudge to regenerate.
// --update-baseline FILE  write the current findings to FILE and exit 0.
//
// Exits 1 when any unsuppressed, unbaselined finding remains, 2 on
// usage/IO errors.
//
// Directories named testdata/, golden/ or build/ are skipped: fixtures
// are deliberately dirty and generated trees are not ours to lint.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "baseline.hpp"
#include "index.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "testdata" || name == "golden" || name == "build" ||
         (!name.empty() && name.front() == '.');
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(root)) {
    if (lintable(root)) out.push_back(root);
    return;
  }
  if (!fs::is_directory(root)) {
    throw std::runtime_error("no such file or directory: " + root.string());
  }
  fs::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory() && skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) {
      out.push_back(it->path());
    }
  }
}

int usage(std::ostream& os, int code) {
  os << "usage: autra_lint [--list-rules] [--baseline FILE]\n"
     << "                  [--update-baseline FILE] <file-or-dir>...\n"
     << "Project static analysis: determinism (D1-D5) and API hygiene\n"
     << "(A1-A4, H1) contracts; see DESIGN.md section 10.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using autra::lint::Baseline;
  using autra::lint::BaselineEntry;
  using autra::lint::Finding;
  using autra::lint::SymbolIndex;

  std::vector<fs::path> roots;
  std::string baseline_path;
  std::string update_baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const std::string& r : autra::lint::known_rules()) {
        std::cout << r << "\n";
      }
      return 0;
    }
    if (arg == "--baseline" || arg == "--update-baseline") {
      if (i + 1 >= argc) return usage(std::cerr, 2);
      (arg == "--baseline" ? baseline_path : update_baseline_path) =
          argv[++i];
      continue;
    }
    if (!arg.empty() && arg.front() == '-') return usage(std::cerr, 2);
    roots.emplace_back(arg);
  }
  if (roots.empty()) return usage(std::cerr, 2);
  if (!baseline_path.empty() && !update_baseline_path.empty()) {
    std::cerr << "autra_lint: --baseline and --update-baseline are "
                 "mutually exclusive\n";
    return 2;
  }

  std::vector<fs::path> files;
  try {
    for (const fs::path& r : roots) collect(r, files);
  } catch (const std::exception& e) {
    std::cerr << "autra_lint: " << e.what() << "\n";
    return 2;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Pass 1: read every file once and build the cross-TU symbol index.
  std::vector<std::pair<std::string, std::string>> sources;  // (name, text)
  sources.reserve(files.size());
  SymbolIndex index;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "autra_lint: cannot read " << f.string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.emplace_back(f.generic_string(), buf.str());
    index.add_file(sources.back().first, sources.back().second);
  }
  index.finalize();

  // Pass 2: rule matchers against the index.
  std::vector<Finding> findings;
  for (const auto& [name, source] : sources) {
    for (Finding& finding : autra::lint::lint_source(
             source, name, autra::lint::classify_path(name), &index)) {
      findings.push_back(std::move(finding));
    }
  }

  if (!update_baseline_path.empty()) {
    std::ofstream out(update_baseline_path);
    if (!out) {
      std::cerr << "autra_lint: cannot write " << update_baseline_path
                << "\n";
      return 2;
    }
    Baseline::from_findings(findings).write(out);
    std::cerr << "autra_lint: wrote " << findings.size() << " finding"
              << (findings.size() == 1 ? "" : "s") << " to "
              << update_baseline_path << "\n";
    return 0;
  }

  std::vector<BaselineEntry> stale;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "autra_lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    Baseline baseline;
    std::string error;
    if (!baseline.parse(in, error)) {
      std::cerr << "autra_lint: " << baseline_path << ": " << error << "\n";
      return 2;
    }
    findings = baseline.filter(std::move(findings));
    stale = baseline.stale();
  }

  for (const Finding& finding : findings) {
    std::cout << finding.file << ":" << finding.line << ": ["
              << finding.rule << "] " << finding.message << "\n";
  }
  for (const BaselineEntry& e : stale) {
    std::cerr << "autra_lint: stale baseline entry (" << e.rule << " x"
              << e.count << " in " << e.path
              << ") — debt repaid; regenerate with --update-baseline\n";
  }
  std::cerr << "autra_lint: " << files.size() << " files, "
            << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
  return findings.empty() ? 0 : 1;
}

// autra_lint CLI: walks the given files/directories, applies the
// determinism and API-hygiene rules (rules.hpp) to every .cpp/.hpp, and
// prints findings as `file:line: [rule] message`. Exits 1 when any
// unsuppressed finding remains, 2 on usage/IO errors.
//
//   autra_lint src bench examples tests
//
// Directories named testdata/, golden/ or build/ are skipped: fixtures
// are deliberately dirty and generated trees are not ours to lint.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

bool skipped_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == "testdata" || name == "golden" || name == "build" ||
         (!name.empty() && name.front() == '.');
}

void collect(const fs::path& root, std::vector<fs::path>& out) {
  if (fs::is_regular_file(root)) {
    if (lintable(root)) out.push_back(root);
    return;
  }
  if (!fs::is_directory(root)) {
    throw std::runtime_error("no such file or directory: " + root.string());
  }
  fs::recursive_directory_iterator it(root), end;
  for (; it != end; ++it) {
    if (it->is_directory() && skipped_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable(it->path())) {
      out.push_back(it->path());
    }
  }
}

int usage(std::ostream& os, int code) {
  os << "usage: autra_lint [--list-rules] <file-or-dir>...\n"
     << "Project static analysis: determinism (D1-D3) and API hygiene\n"
     << "(A1-A3, H1) contracts; see DESIGN.md section 10.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  using autra::lint::Finding;

  std::vector<fs::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      for (const std::string& r : autra::lint::known_rules()) {
        std::cout << r << "\n";
      }
      return 0;
    }
    roots.emplace_back(arg);
  }
  if (roots.empty()) return usage(std::cerr, 2);

  std::vector<fs::path> files;
  try {
    for (const fs::path& r : roots) collect(r, files);
  } catch (const std::exception& e) {
    std::cerr << "autra_lint: " << e.what() << "\n";
    return 2;
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::size_t findings = 0;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "autra_lint: cannot read " << f.string() << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();
    const std::string name = f.generic_string();
    for (const Finding& finding : autra::lint::lint_source(
             source, name, autra::lint::classify_path(name))) {
      std::cout << finding.file << ":" << finding.line << ": ["
                << finding.rule << "] " << finding.message << "\n";
      ++findings;
    }
  }
  std::cerr << "autra_lint: " << files.size() << " files, " << findings
            << " finding" << (findings == 1 ? "" : "s") << "\n";
  return findings == 0 ? 0 : 1;
}

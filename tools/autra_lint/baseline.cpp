#include "baseline.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>
#include <tuple>

namespace autra::lint {

namespace {

constexpr std::array<std::string_view, 5> kRepoRoots = {
    "src", "tools", "bench", "tests", "examples"};

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::string normalize_path(std::string_view path) {
  // Generic separators only — the CLI hands us generic_string() paths.
  while (path.substr(0, 2) == "./") path.remove_prefix(2);
  // Find the earliest segment that names a repo root and keep the tail
  // from there: ".../repo/src/gp/kernel.hpp" -> "src/gp/kernel.hpp".
  std::size_t best = std::string_view::npos;
  for (const std::string_view root : kRepoRoots) {
    // Segment match: preceded by start-of-string or '/', followed by '/'.
    std::size_t from = 0;
    while (from <= path.size()) {
      const std::size_t at = path.find(root, from);
      if (at == std::string_view::npos) break;
      const bool starts = at == 0 || path[at - 1] == '/';
      const bool segment = at + root.size() < path.size() &&
                           path[at + root.size()] == '/';
      if (starts && segment) {
        best = std::min(best, at);
        break;
      }
      from = at + 1;
    }
  }
  if (best != std::string_view::npos) path.remove_prefix(best);
  return std::string(path);
}

std::uint64_t fingerprint_of(const Finding& finding) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  h = fnv1a(h, finding.rule);
  h = fnv1a(h, "\x1f");
  h = fnv1a(h, normalize_path(finding.file));
  h = fnv1a(h, "\x1f");
  h = fnv1a(h, finding.context);
  return h;
}

Baseline Baseline::from_findings(const std::vector<Finding>& findings) {
  std::map<std::tuple<std::string, std::string, std::uint64_t>, int> counts;
  for (const Finding& f : findings) {
    ++counts[{normalize_path(f.file), f.rule, fingerprint_of(f)}];
  }
  Baseline out;
  for (const auto& [key, count] : counts) {
    const auto& [path, rule, fp] = key;
    out.entries_.push_back({rule, fp, count, path});
  }
  out.consumed_.assign(out.entries_.size(), 0);
  return out;
}

bool Baseline::parse(std::istream& in, std::string& error) {
  entries_.clear();
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    BaselineEntry entry;
    std::string fp_hex;
    if (!(fields >> entry.rule >> fp_hex >> entry.count >> entry.path) ||
        entry.count <= 0) {
      error = "baseline line " + std::to_string(lineno) +
              ": expected `RULE FINGERPRINT COUNT PATH`";
      return false;
    }
    char* end = nullptr;
    entry.fingerprint = std::strtoull(fp_hex.c_str(), &end, 16);
    if (end == nullptr || *end != '\0' || fp_hex.empty()) {
      error = "baseline line " + std::to_string(lineno) +
              ": bad fingerprint '" + fp_hex + "'";
      return false;
    }
    entries_.push_back(std::move(entry));
  }
  consumed_.assign(entries_.size(), 0);
  return true;
}

void Baseline::write(std::ostream& out) const {
  out << "# autra_lint findings baseline — tracked debt, not suppressions.\n"
         "# Regenerate with `autra_lint --update-baseline <this file> "
         "<roots>`;\n"
         "# see CONTRIBUTING.md for when that is acceptable.\n"
         "# RULE FINGERPRINT COUNT PATH\n";
  std::vector<const BaselineEntry*> sorted;
  sorted.reserve(entries_.size());
  for (const BaselineEntry& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const BaselineEntry* a, const BaselineEntry* b) {
              return std::tie(a->path, a->rule, a->fingerprint) <
                     std::tie(b->path, b->rule, b->fingerprint);
            });
  for (const BaselineEntry* e : sorted) {
    out << e->rule << " " << hex16(e->fingerprint) << " " << e->count << " "
        << e->path << "\n";
  }
}

std::vector<Finding> Baseline::filter(std::vector<Finding> findings) {
  std::vector<Finding> out;
  out.reserve(findings.size());
  for (Finding& f : findings) {
    const std::string path = normalize_path(f.file);
    const std::uint64_t fp = fingerprint_of(f);
    bool absorbed = false;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].fingerprint == fp && entries_[i].rule == f.rule &&
          entries_[i].path == path && consumed_[i] < entries_[i].count) {
        ++consumed_[i];
        absorbed = true;
        break;
      }
    }
    if (!absorbed) out.push_back(std::move(f));
  }
  return out;
}

std::vector<BaselineEntry> Baseline::stale() const {
  std::vector<BaselineEntry> out;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (consumed_[i] < entries_[i].count) {
      BaselineEntry e = entries_[i];
      e.count -= consumed_[i];
      out.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace autra::lint

// bench_compare — the perf-regression gate for committed bench baselines.
//
// Diffs a fresh bench --json report against its committed BENCH_*.json
// baseline:
//
//   bench_compare BASELINE FRESH [options]
//     --budget FIELD=FRAC   relative noise budget for one metric
//                           (e.g. --budget wall_ms=0.35)
//     --default-budget FRAC budget for metrics without their own
//                           (default 0: deterministic metrics must match)
//     --skip FIELD          ignore a metric entirely (timing noise)
//     --key FIELD           treat this numeric field as part of the row
//                           key, not a compared metric
//     --subset              allow FRESH to contain a subset of BASELINE's
//                           rows (a --smoke run vs the full baseline)
//
// Rows are matched by their key: every string-valued field plus any
// --key fields, in file order. A metric regresses when
// |fresh - base| > budget * max(|base|, 1) — the absolute floor of 1
// keeps zero-valued baselines from demanding exact zeros under a
// nonzero budget.
//
// Exit codes: 0 ok, 1 regression/missing rows, 2 usage or parse error.
// Dependency-free by design (same constraint as tools/autra_lint): it
// parses only the restricted JSON bench::JsonReport emits — one object
// per row line, string and %.6g number literals, no nesting.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Row {
  std::vector<std::pair<std::string, std::string>> fields;  // insertion order
};

struct Report {
  std::string bench;
  std::vector<Row> rows;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s BASELINE FRESH [--budget FIELD=FRAC]...\n"
               "          [--default-budget FRAC] [--skip FIELD]...\n"
               "          [--key FIELD]... [--subset]\n",
               argv0);
  std::exit(2);
}

[[noreturn]] void parse_fail(const std::string& path, int lineno,
                             const std::string& why) {
  std::fprintf(stderr, "bench_compare: %s:%d: %s\n", path.c_str(), lineno,
               why.c_str());
  std::exit(2);
}

/// Scans one `"key": value` pair starting at `pos` in a row line. Returns
/// false when only the closing brace remains.
bool next_field(const std::string& line, std::size_t& pos, std::string& key,
                std::string& value) {
  const std::size_t k0 = line.find('"', pos);
  if (k0 == std::string::npos) return false;
  const std::size_t k1 = line.find('"', k0 + 1);
  if (k1 == std::string::npos) return false;
  key = line.substr(k0 + 1, k1 - k0 - 1);
  std::size_t v0 = line.find(':', k1);
  if (v0 == std::string::npos) return false;
  ++v0;
  while (v0 < line.size() && line[v0] == ' ') ++v0;
  if (v0 >= line.size()) return false;
  std::size_t v1;
  if (line[v0] == '"') {
    v1 = line.find('"', v0 + 1);
    if (v1 == std::string::npos) return false;
    ++v1;
  } else {
    v1 = v0;
    while (v1 < line.size() && line[v1] != ',' && line[v1] != '}') ++v1;
  }
  value = line.substr(v0, v1 - v0);
  pos = v1;
  return true;
}

Report load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  Report report;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string key;
    std::string value;
    const std::size_t brace = line.find('{');
    if (brace == std::string::npos) {
      // Header ("bench": ...) or structural line ("rows": [, closers).
      std::size_t pos = 0;
      if (report.bench.empty() && report.rows.empty() &&
          next_field(line, pos, key, value) && key == "bench") {
        report.bench = value;
      }
      continue;
    }
    Row row;
    std::size_t pos = brace + 1;
    while (next_field(line, pos, key, value)) {
      row.fields.emplace_back(key, value);
    }
    // The report's own opening '{' carries no fields — not a row.
    if (row.fields.empty()) continue;
    report.rows.push_back(std::move(row));
  }
  if (report.rows.empty()) {
    parse_fail(path, lineno, "no rows found (not a bench JsonReport?)");
  }
  return report;
}

bool is_string(const std::string& v) {
  return !v.empty() && v.front() == '"';
}

bool contains(const std::vector<std::string>& v, const std::string& s) {
  for (const std::string& e : v) {
    if (e == s) return true;
  }
  return false;
}

std::string row_key(const Row& row, const std::vector<std::string>& keys) {
  std::string k;
  for (const auto& [name, value] : row.fields) {
    if (is_string(value) || contains(keys, name)) {
      k += name + "=" + value + "|";
    }
  }
  return k;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  std::map<std::string, double> budgets;
  std::vector<std::string> skips;
  std::vector<std::string> keys;
  double default_budget = 0.0;
  bool subset = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--budget") {
      const std::string spec = value();
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) usage(argv[0]);
      budgets[spec.substr(0, eq)] = std::atof(spec.c_str() + eq + 1);
    } else if (arg == "--default-budget") {
      default_budget = std::atof(value());
    } else if (arg == "--skip") {
      skips.push_back(value());
    } else if (arg == "--key") {
      keys.push_back(value());
    } else if (arg == "--subset") {
      subset = true;
    } else if (arg[0] == '-') {
      usage(argv[0]);
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (fresh_path.empty()) {
      fresh_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (fresh_path.empty()) usage(argv[0]);

  const Report baseline = load(baseline_path);
  const Report fresh = load(fresh_path);
  if (!baseline.bench.empty() && baseline.bench != fresh.bench) {
    std::fprintf(stderr,
                 "bench_compare: bench name mismatch: baseline %s vs "
                 "fresh %s\n",
                 baseline.bench.c_str(), fresh.bench.c_str());
    return 2;
  }

  // Index baseline rows by key; duplicate keys are a baseline bug.
  std::map<std::string, const Row*> by_key;
  for (const Row& row : baseline.rows) {
    const std::string k = row_key(row, keys);
    if (!by_key.emplace(k, &row).second) {
      std::fprintf(stderr, "bench_compare: duplicate baseline row key %s\n",
                   k.c_str());
      return 2;
    }
  }

  int regressions = 0;
  int compared = 0;
  std::size_t matched = 0;
  for (const Row& row : fresh.rows) {
    const std::string k = row_key(row, keys);
    const auto it = by_key.find(k);
    if (it == by_key.end()) {
      std::fprintf(stderr, "MISSING in baseline: %s\n", k.c_str());
      ++regressions;
      continue;
    }
    ++matched;
    const Row& base = *it->second;
    for (const auto& [name, value] : row.fields) {
      if (is_string(value) || contains(keys, name) || contains(skips, name)) {
        continue;
      }
      const auto bit = std::find_if(
          base.fields.begin(), base.fields.end(),
          [&name = name](const auto& f) { return f.first == name; });
      if (bit == base.fields.end()) {
        std::fprintf(stderr, "MISSING metric %s in baseline row %s\n",
                     name.c_str(), k.c_str());
        ++regressions;
        continue;
      }
      const double b = std::atof(bit->second.c_str());
      const double f = std::atof(value.c_str());
      const auto budget_it = budgets.find(name);
      const double budget =
          budget_it != budgets.end() ? budget_it->second : default_budget;
      // Absolute floor of 1 on the reference: zero baselines tolerate
      // |fresh| <= budget instead of demanding exact zero.
      const double allowed = budget * std::max(std::fabs(b), 1.0);
      ++compared;
      if (std::fabs(f - b) > allowed) {
        std::fprintf(stderr,
                     "REGRESSION %s: %s = %s (baseline %s, budget %g)\n",
                     k.c_str(), name.c_str(), value.c_str(),
                     bit->second.c_str(), budget);
        ++regressions;
      }
    }
  }
  if (!subset && matched < by_key.size()) {
    std::fprintf(stderr,
                 "bench_compare: fresh report covers %zu of %zu baseline "
                 "rows (pass --subset for smoke runs)\n",
                 matched, by_key.size());
    ++regressions;
  }

  if (regressions > 0) {
    std::fprintf(stderr, "bench_compare: %d regression(s) across %d "
                         "compared metrics\n",
                 regressions, compared);
    return 1;
  }
  std::printf("bench_compare: OK — %zu rows, %d metrics within budget\n",
              matched, compared);
  return 0;
}

#include "gp/gp_regressor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "exec/exec.hpp"

namespace autra::gp {

namespace {

/// Log marginal likelihood for a given factorisation:
/// -1/2 y^T alpha - sum log L_ii - n/2 log(2 pi).
double compute_log_ml(const linalg::Cholesky& chol, const linalg::Vector& y,
                      const linalg::Vector& alpha) {
  double fit = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) fit += y[i] * alpha[i];
  const double n = static_cast<double>(y.size());
  return -0.5 * fit - 0.5 * chol.log_determinant() -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

}  // namespace

double Prediction::stddev() const noexcept { return std::sqrt(variance); }

GpRegressor::GpRegressor(GpConfig config)
    : config_(std::move(config)),
      kernel_(make_kernel(config_.kernel)) {}

GpRegressor::GpRegressor(const GpRegressor& other)
    : config_(other.config_),
      kernel_(other.kernel_->clone()),
      fitted_(other.fitted_),
      x_(other.x_),
      y_(other.y_),
      x_offset_(other.x_offset_),
      x_scale_(other.x_scale_),
      y_mean_(other.y_mean_),
      y_std_(other.y_std_),
      chol_(other.chol_),
      alpha_(other.alpha_),
      log_ml_(other.log_ml_) {}

GpRegressor& GpRegressor::operator=(const GpRegressor& other) {
  if (this != &other) {
    GpRegressor copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void GpRegressor::fit(const linalg::Matrix& x, const linalg::Vector& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("GpRegressor::fit: empty training data");
  }
  if (x.rows() != y.size()) {
    throw std::invalid_argument("GpRegressor::fit: X/y size mismatch");
  }

  const std::size_t n = x.rows();
  const std::size_t d = x.cols();

  // Input normalisation to [0, 1] per dimension (constant dims map to 0).
  x_offset_.assign(d, 0.0);
  x_scale_.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    double lo = x(0, j), hi = x(0, j);
    for (std::size_t i = 1; i < n; ++i) {
      lo = std::min(lo, x(i, j));
      hi = std::max(hi, x(i, j));
    }
    x_offset_[j] = lo;
    x_scale_[j] = (hi > lo) ? (hi - lo) : 1.0;
  }
  x_ = linalg::Matrix(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      x_(i, j) = (x(i, j) - x_offset_[j]) / x_scale_[j];
    }
  }

  // Target standardisation.
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : y) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  y_mean_ = mean;
  y_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;
  y_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) y_[i] = (y[i] - y_mean_) / y_std_;

  fitted_ = true;

  if (!config_.optimize_hyperparams || n < 3) {
    refit_factorisation();
    return;
  }

  // Multi-start grid search over (signal variance, length scale) maximising
  // the log marginal likelihood. With standardised targets the optimal
  // signal variance is near 1, so a modest grid around it suffices. Each
  // grid point is an independent kernel build + Cholesky + log-ML, so the
  // grid is evaluated in parallel; the argmax scan runs serially in grid
  // order, which keeps the selected hyper-parameters bit-identical at any
  // thread count.
  const int g = std::max(2, config_.grid_points);
  struct GridPoint {
    double sv = 1.0;
    double ls = 1.0;
  };
  std::vector<GridPoint> grid;
  grid.reserve(static_cast<std::size_t>(g) * static_cast<std::size_t>(g));
  for (int a = 0; a < g; ++a) {
    // Signal variance grid: log-spaced in [0.1, 10].
    const double sv =
        std::exp(std::log(0.1) + (std::log(10.0) - std::log(0.1)) *
                                     static_cast<double>(a) /
                                     static_cast<double>(g - 1));
    for (int b = 0; b < g; ++b) {
      const double ls = std::exp(
          std::log(config_.min_length_scale) +
          (std::log(config_.max_length_scale) -
           std::log(config_.min_length_scale)) *
              static_cast<double>(b) / static_cast<double>(g - 1));
      grid.push_back({sv, ls});
    }
  }

  const exec::ExecContext ctx(config_.threads);
  const std::vector<double> log_mls = exec::parallel_map(
      ctx, grid.size(), [&](std::size_t i) {
        const auto kernel = kernel_->clone();
        kernel->set_signal_variance(grid[i].sv);
        kernel->set_length_scale(grid[i].ls);
        linalg::Matrix k = kernel->gram(x_);
        k.add_diagonal(config_.noise_variance);
        const auto chol = linalg::Cholesky::factor(k);
        if (!chol) return -std::numeric_limits<double>::infinity();
        const linalg::Vector alpha = chol->solve(y_);
        return compute_log_ml(*chol, y_, alpha);
      });

  double best_ml = -std::numeric_limits<double>::infinity();
  GridPoint best;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (log_mls[i] > best_ml) {
      best_ml = log_mls[i];
      best = grid[i];
    }
  }
  kernel_->set_signal_variance(best.sv);
  kernel_->set_length_scale(best.ls);
  refit_factorisation();
}

void GpRegressor::refit_factorisation() {
  linalg::Matrix k = kernel_->gram(x_);
  k.add_diagonal(config_.noise_variance);
  chol_ = linalg::Cholesky::factor_with_jitter(std::move(k));
  alpha_ = chol_->solve(y_);
  log_ml_ = compute_log_ml(*chol_, y_, alpha_);
}

std::vector<double> GpRegressor::normalize_point(
    std::span<const double> x_star) const {
  if (x_star.size() != x_.cols()) {
    throw std::invalid_argument("GpRegressor::predict: dimension mismatch");
  }
  std::vector<double> z(x_star.size());
  for (std::size_t j = 0; j < z.size(); ++j) {
    z[j] = (x_star[j] - x_offset_[j]) / x_scale_[j];
  }
  return z;
}

Prediction GpRegressor::predict(std::span<const double> x_star) const {
  if (!fitted_) {
    throw std::logic_error("GpRegressor::predict: model not fitted");
  }
  const std::vector<double> z = normalize_point(x_star);
  const linalg::Vector k_star = kernel_->cross(x_, z);
  const double mean_n = linalg::dot(k_star, alpha_);
  const linalg::Vector v = chol_->solve_lower(k_star);
  double var_n = kernel_->diagonal() - linalg::dot(v, v);
  var_n = std::max(var_n, 0.0);

  Prediction p;
  p.mean = mean_n * y_std_ + y_mean_;
  p.variance = var_n * y_std_ * y_std_;
  return p;
}

std::vector<Prediction> GpRegressor::predict(const linalg::Matrix& x) const {
  std::vector<Prediction> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

double GpRegressor::log_marginal_likelihood() const {
  if (!fitted_) {
    throw std::logic_error(
        "GpRegressor::log_marginal_likelihood: model not fitted");
  }
  return log_ml_;
}

double GpRegressor::best_observed() const {
  if (!fitted_) {
    throw std::logic_error("GpRegressor::best_observed: model not fitted");
  }
  double best = -std::numeric_limits<double>::infinity();
  for (double v : y_) best = std::max(best, v);
  return best * y_std_ + y_mean_;
}

}  // namespace autra::gp

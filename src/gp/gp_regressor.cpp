#include "gp/gp_regressor.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

#include "exec/exec.hpp"

namespace autra::gp {

namespace {

/// Log marginal likelihood for a given factorisation:
/// -1/2 y^T alpha - sum log L_ii - n/2 log(2 pi).
double compute_log_ml(const linalg::Cholesky& chol, const linalg::Vector& y,
                      const linalg::Vector& alpha) {
  double fit = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) fit += y[i] * alpha[i];
  const double n = static_cast<double>(y.size());
  return -0.5 * fit - 0.5 * chol.log_determinant() -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

/// FNV-1a over a byte range, chained through `h`.
std::uint64_t fnv1a_bytes(const void* data, std::size_t len, std::uint64_t h) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Fingerprint of a training set: shape plus the raw bytes of X and y.
/// Bitwise-equal inputs (the only case fit() may skip) hash equal.
std::uint64_t fingerprint_of(const linalg::Matrix& x, const linalg::Vector& y) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const std::uint64_t shape[2] = {x.rows(), x.cols()};
  h = fnv1a_bytes(shape, sizeof(shape), h);
  h = fnv1a_bytes(x.data().data(), x.data().size() * sizeof(double), h);
  h = fnv1a_bytes(y.data(), y.size() * sizeof(double), h);
  return h;
}

}  // namespace

double Prediction::stddev() const noexcept { return std::sqrt(variance); }

GpRegressor::GpRegressor(GpConfig config)
    : config_(std::move(config)),
      kernel_(make_kernel(config_.kernel, config_.signal_variance,
                          config_.length_scale)) {}

GpRegressor::GpRegressor(const GpRegressor& other)
    : config_(other.config_),
      kernel_(other.kernel_->clone()),
      fitted_(other.fitted_),
      x_raw_(other.x_raw_),
      y_raw_(other.y_raw_),
      fingerprint_(other.fingerprint_),
      observe_count_(other.observe_count_),
      x_(other.x_),
      y_(other.y_),
      x_offset_(other.x_offset_),
      x_scale_(other.x_scale_),
      x_lo_(other.x_lo_),
      x_hi_(other.x_hi_),
      y_mean_(other.y_mean_),
      y_std_(other.y_std_),
      chol_(other.chol_),
      alpha_(other.alpha_),
      log_ml_(other.log_ml_),
      jitter_(other.jitter_),
      stats_(other.stats_) {}

GpRegressor& GpRegressor::operator=(const GpRegressor& other) {
  if (this != &other) {
    GpRegressor copy(other);
    *this = std::move(copy);
  }
  return *this;
}

void GpRegressor::fit(const linalg::Matrix& x, const linalg::Vector& y) {
  if (x.rows() == 0 || x.cols() == 0) {
    throw std::invalid_argument("GpRegressor::fit: empty training data");
  }
  if (x.rows() != y.size()) {
    throw std::invalid_argument("GpRegressor::fit: X/y size mismatch");
  }
  const std::uint64_t fp = fingerprint_of(x, y);
  if (fitted_ && fp == fingerprint_) {
    ++stats_.fingerprint_hits;
    return;
  }
  x_raw_ = x;
  y_raw_ = y;
  fingerprint_ = fp;
  fit_from_raw();
}

void GpRegressor::fit_from_raw() {
  const std::size_t n = x_raw_.rows();
  const std::size_t d = x_raw_.cols();

  // Input normalisation to [0, 1] per dimension (constant dims map to 0).
  // The data box is frozen here: observe() extends the factor only for
  // points inside it, which is exactly the condition under which a batch
  // refit would derive the same offset/scale.
  x_offset_.assign(d, 0.0);
  x_scale_.assign(d, 1.0);
  x_lo_.assign(d, 0.0);
  x_hi_.assign(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) {
    double lo = x_raw_(0, j), hi = x_raw_(0, j);
    for (std::size_t i = 1; i < n; ++i) {
      lo = std::min(lo, x_raw_(i, j));
      hi = std::max(hi, x_raw_(i, j));
    }
    x_lo_[j] = lo;
    x_hi_[j] = hi;
    x_offset_[j] = lo;
    x_scale_[j] = (hi > lo) ? (hi - lo) : 1.0;
  }
  x_ = linalg::Matrix(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      x_(i, j) = (x_raw_(i, j) - x_offset_[j]) / x_scale_[j];
    }
  }

  refresh_targets();

  fitted_ = true;
  observe_count_ = 0;
  ++stats_.full_fits;

  if (!config_.optimize_hyperparams || n < 3) {
    refit_factorisation();
    return;
  }

  // Multi-start grid search over (signal variance, length scale) maximising
  // the log marginal likelihood. With standardised targets the optimal
  // signal variance is near 1, so a modest grid around it suffices. Each
  // grid point is an independent kernel build + Cholesky + log-ML, so the
  // grid is evaluated in parallel; the argmax scan runs serially in grid
  // order, which keeps the selected hyper-parameters bit-identical at any
  // thread count.
  const int g = std::max(2, config_.grid_points);
  struct GridPoint {
    double sv = 1.0;
    double ls = 1.0;
  };
  std::vector<GridPoint> grid;
  grid.reserve(static_cast<std::size_t>(g) * static_cast<std::size_t>(g));
  for (int a = 0; a < g; ++a) {
    // Signal variance grid: log-spaced in [0.1, 10].
    const double sv =
        std::exp(std::log(0.1) + (std::log(10.0) - std::log(0.1)) *
                                     static_cast<double>(a) /
                                     static_cast<double>(g - 1));
    for (int b = 0; b < g; ++b) {
      const double ls = std::exp(
          std::log(config_.min_length_scale) +
          (std::log(config_.max_length_scale) -
           std::log(config_.min_length_scale)) *
              static_cast<double>(b) / static_cast<double>(g - 1));
      grid.push_back({sv, ls});
    }
  }

  const exec::ExecContext ctx(config_.threads);
  const std::vector<double> log_mls = exec::parallel_map(
      ctx, grid.size(), [&](std::size_t i) {
        const auto kernel = kernel_->clone();
        kernel->set_signal_variance(grid[i].sv);
        kernel->set_length_scale(grid[i].ls);
        linalg::Matrix k = kernel->gram(x_);
        k.add_diagonal(config_.noise_variance);
        const auto chol = linalg::Cholesky::factor(k);
        if (!chol) return -std::numeric_limits<double>::infinity();
        const linalg::Vector alpha = chol->solve(y_);
        return compute_log_ml(*chol, y_, alpha);
      });

  double best_ml = -std::numeric_limits<double>::infinity();
  GridPoint best;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (log_mls[i] > best_ml) {
      best_ml = log_mls[i];
      best = grid[i];
    }
  }
  kernel_->set_signal_variance(best.sv);
  kernel_->set_length_scale(best.ls);
  refit_factorisation();
}

void GpRegressor::refit_factorisation() {
  linalg::Matrix k = kernel_->gram(x_);
  k.add_diagonal(config_.noise_variance);
  chol_ = linalg::Cholesky::factor_with_jitter(std::move(k), 1e-10, 1e-2,
                                               &jitter_);
  alpha_ = chol_->solve(y_);
  log_ml_ = compute_log_ml(*chol_, y_, alpha_);
}

void GpRegressor::refresh_targets() {
  // Identical floating-point op order to the historical batch fit(): a
  // posterior built through observe() must match a from-scratch fit on the
  // same raw window bit-for-bit on the y side.
  const std::size_t n = y_raw_.size();
  double mean = 0.0;
  for (double v : y_raw_) mean += v;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double v : y_raw_) var += (v - mean) * (v - mean);
  var /= static_cast<double>(n);
  y_mean_ = mean;
  y_std_ = var > 1e-12 ? std::sqrt(var) : 1.0;
  y_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) y_[i] = (y_raw_[i] - y_mean_) / y_std_;
}

void GpRegressor::observe(std::span<const double> x, double y) {
  if (!fitted_) {
    throw std::logic_error("GpRegressor::observe: model not fitted");
  }
  if (x.size() != x_raw_.cols()) {
    throw std::invalid_argument("GpRegressor::observe: dimension mismatch");
  }

  x_raw_.append_row(x);
  y_raw_.push_back(y);
  bool evicted = false;
  if (config_.max_observations > 0 &&
      x_raw_.rows() > static_cast<std::size_t>(config_.max_observations)) {
    x_raw_.drop_first_row();
    y_raw_.erase(y_raw_.begin());
    evicted = true;
    ++stats_.window_evictions;
  }
  fingerprint_ = fingerprint_of(x_raw_, y_raw_);
  ++observe_count_;

  // Fallback ladder: conditions under which the cached factor cannot be
  // extended exactly, each falling back to (and counted as) a full refit.
  if (config_.optimize_hyperparams && config_.reoptimize_every > 0 &&
      observe_count_ %
              static_cast<std::uint64_t>(config_.reoptimize_every) ==
          0) {
    ++stats_.hyperparam_refits;
    fit_from_raw();
    return;
  }
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (x[j] < x_lo_[j] || x[j] > x_hi_[j]) {
      ++stats_.normalisation_refits;
      fit_from_raw();
      return;
    }
  }
  if (jitter_ > 0.0) {
    ++stats_.jitter_refits;
    fit_from_raw();
    return;
  }

  // Incremental path: O(n^2) factor surgery instead of the O(n^3) refit.
  if (evicted) {
    chol_->drop_first();
    x_.drop_first_row();
  }
  const std::vector<double> z = normalize_point(x);
  const linalg::Vector k_star = kernel_->cross(x_, z);
  try {
    chol_->append_row(k_star, kernel_->diagonal() + config_.noise_variance);
  } catch (const std::runtime_error&) {
    ++stats_.jitter_refits;
    fit_from_raw();
    return;
  }
  x_.append_row(z);
  refresh_targets();
  alpha_ = chol_->solve(y_);
  log_ml_ = compute_log_ml(*chol_, y_, alpha_);
  ++stats_.incremental_updates;
}

GpSnapshot GpRegressor::snapshot() const {
  if (!fitted_) {
    throw std::logic_error("GpRegressor::snapshot: model not fitted");
  }
  GpSnapshot s;
  s.kernel = kernel_->kind();
  s.signal_variance = kernel_->signal_variance();
  s.length_scale = kernel_->length_scale();
  s.noise_variance = config_.noise_variance;
  s.jitter = jitter_;
  s.observe_count = observe_count_;
  s.x_lo = x_lo_;
  s.x_hi = x_hi_;
  s.x = x_raw_;
  s.y = y_raw_;
  s.l = chol_->lower();
  return s;
}

void GpRegressor::restore(const GpSnapshot& snap) {
  const std::size_t n = snap.x.rows();
  const std::size_t d = snap.x.cols();
  if (n == 0 || d == 0) {
    throw std::invalid_argument("GpRegressor::restore: empty snapshot");
  }
  if (snap.y.size() != n || snap.l.rows() != n || snap.l.cols() != n ||
      snap.x_lo.size() != d || snap.x_hi.size() != d) {
    throw std::invalid_argument(
        "GpRegressor::restore: inconsistent snapshot shapes");
  }

  config_.kernel = snap.kernel;
  config_.noise_variance = snap.noise_variance;
  kernel_ = make_kernel(snap.kernel, snap.signal_variance, snap.length_scale);

  x_raw_ = snap.x;
  y_raw_ = snap.y;
  x_lo_ = snap.x_lo;
  x_hi_ = snap.x_hi;
  x_offset_.assign(d, 0.0);
  x_scale_.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    x_offset_[j] = x_lo_[j];
    x_scale_[j] = (x_hi_[j] > x_lo_[j]) ? (x_hi_[j] - x_lo_[j]) : 1.0;
  }
  x_ = linalg::Matrix(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      x_(i, j) = (x_raw_(i, j) - x_offset_[j]) / x_scale_[j];
    }
  }
  refresh_targets();
  // The serialised factor is adopted verbatim — an incrementally built L
  // differs from a refactorisation in the low bits, and bit-identity of
  // subsequent decisions depends on keeping exactly it.
  chol_ = linalg::Cholesky::from_lower(snap.l);
  alpha_ = chol_->solve(y_);
  log_ml_ = compute_log_ml(*chol_, y_, alpha_);
  jitter_ = snap.jitter;
  observe_count_ = snap.observe_count;
  fingerprint_ = fingerprint_of(x_raw_, y_raw_);
  fitted_ = true;
}

std::vector<double> GpRegressor::normalize_point(
    std::span<const double> x_star) const {
  if (x_star.size() != x_.cols()) {
    throw std::invalid_argument("GpRegressor::predict: dimension mismatch");
  }
  std::vector<double> z(x_star.size());
  for (std::size_t j = 0; j < z.size(); ++j) {
    z[j] = (x_star[j] - x_offset_[j]) / x_scale_[j];
  }
  return z;
}

Prediction GpRegressor::predict(std::span<const double> x_star) const {
  if (!fitted_) {
    throw std::logic_error("GpRegressor::predict: model not fitted");
  }
  const std::vector<double> z = normalize_point(x_star);
  const linalg::Vector k_star = kernel_->cross(x_, z);
  const double mean_n = linalg::dot(k_star, alpha_);
  const linalg::Vector v = chol_->solve_lower(k_star);
  double var_n = kernel_->diagonal() - linalg::dot(v, v);
  var_n = std::max(var_n, 0.0);

  Prediction p;
  p.mean = mean_n * y_std_ + y_mean_;
  p.variance = var_n * y_std_ * y_std_;
  return p;
}

std::vector<Prediction> GpRegressor::predict(const linalg::Matrix& x) const {
  std::vector<Prediction> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

double GpRegressor::log_marginal_likelihood() const {
  if (!fitted_) {
    throw std::logic_error(
        "GpRegressor::log_marginal_likelihood: model not fitted");
  }
  return log_ml_;
}

double GpRegressor::best_observed() const {
  if (!fitted_) {
    throw std::logic_error("GpRegressor::best_observed: model not fitted");
  }
  double best = -std::numeric_limits<double>::infinity();
  for (double v : y_) best = std::max(best, v);
  return best * y_std_ + y_mean_;
}

}  // namespace autra::gp

#include "gp/kernel.hpp"

#include <cmath>
#include <stdexcept>

namespace autra::gp {

Kernel::Kernel(double signal_variance, double length_scale)
    : signal_variance_(signal_variance), length_scale_(length_scale) {
  if (signal_variance <= 0.0 || length_scale <= 0.0) {
    throw std::invalid_argument("Kernel: hyper-parameters must be positive");
  }
}

void Kernel::set_signal_variance(double v) {
  if (v <= 0.0) {
    throw std::invalid_argument("Kernel: signal variance must be positive");
  }
  signal_variance_ = v;
}

void Kernel::set_length_scale(double l) {
  if (l <= 0.0) {
    throw std::invalid_argument("Kernel: length scale must be positive");
  }
  length_scale_ = l;
}

std::vector<double> Kernel::log_params() const {
  return {std::log(signal_variance_), std::log(length_scale_)};
}

void Kernel::set_log_params(std::span<const double> p) {
  if (p.size() != 2) {
    throw std::invalid_argument("Kernel::set_log_params: expected 2 params");
  }
  signal_variance_ = std::exp(p[0]);
  length_scale_ = std::exp(p[1]);
}

linalg::Matrix Kernel::gram(const linalg::Matrix& x) const {
  const std::size_t n = x.rows();
  linalg::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = diagonal();
    for (std::size_t j = 0; j < i; ++j) {
      const double v = (*this)(x.row(i), x.row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

linalg::Vector Kernel::cross(const linalg::Matrix& x,
                             std::span<const double> x_star) const {
  linalg::Vector out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = (*this)(x.row(i), x_star);
  }
  return out;
}

double Matern52::operator()(std::span<const double> a,
                            std::span<const double> b) const {
  const double r = std::sqrt(linalg::squared_distance(a, b)) / length_scale_;
  const double s = std::sqrt(5.0) * r;
  return signal_variance_ * (1.0 + s + s * s / 3.0) * std::exp(-s);
}

double Matern32::operator()(std::span<const double> a,
                            std::span<const double> b) const {
  const double r = std::sqrt(linalg::squared_distance(a, b)) / length_scale_;
  const double s = std::sqrt(3.0) * r;
  return signal_variance_ * (1.0 + s) * std::exp(-s);
}

double Rbf::operator()(std::span<const double> a,
                       std::span<const double> b) const {
  const double d2 = linalg::squared_distance(a, b);
  return signal_variance_ *
         std::exp(-d2 / (2.0 * length_scale_ * length_scale_));
}

const char* to_string(KernelKind kind) noexcept {
  switch (kind) {
    case KernelKind::kMatern52:
      return "matern52";
    case KernelKind::kMatern32:
      return "matern32";
    case KernelKind::kRbf:
      return "rbf";
  }
  return "unknown";
}

KernelKind parse_kernel_kind(std::string_view name) {
  if (name == "matern52") return KernelKind::kMatern52;
  if (name == "matern32") return KernelKind::kMatern32;
  if (name == "rbf") return KernelKind::kRbf;
  throw std::invalid_argument("parse_kernel_kind: unknown kernel '" +
                              std::string(name) + "'");
}

std::unique_ptr<Kernel> make_kernel(KernelKind kind, double signal_variance,
                                    double length_scale) {
  switch (kind) {
    case KernelKind::kMatern52:
      return std::make_unique<Matern52>(signal_variance, length_scale);
    case KernelKind::kMatern32:
      return std::make_unique<Matern32>(signal_variance, length_scale);
    case KernelKind::kRbf:
      return std::make_unique<Rbf>(signal_variance, length_scale);
  }
  throw std::invalid_argument("make_kernel: invalid kernel kind");
}

}  // namespace autra::gp

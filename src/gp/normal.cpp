#include "gp/normal.hpp"

#include <cmath>
#include <numbers>

namespace autra::gp {

double normal_pdf(double z) noexcept {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double z) noexcept {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

}  // namespace autra::gp

// Expected Improvement acquisition function with exploration parameter xi
// (paper Eqs. 5-7):
//
//   EI(x) = K Phi(Z) + sigma(x) phi(Z)   if sigma(x) > 0, else 0
//   K     = mu(x) - f(x+) - xi
//   Z     = K / sigma(x)                 if sigma(x) > 0, else 0
#pragma once

#include "gp/gp_regressor.hpp"

namespace autra::gp {

/// Expected improvement of a posterior prediction over the incumbent
/// `best_value`, with exploration bonus `xi` >= 0.
[[nodiscard]] double expected_improvement(const Prediction& p,
                                          double best_value,
                                          double xi = 0.01) noexcept;

}  // namespace autra::gp

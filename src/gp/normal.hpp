// Standard-normal PDF and CDF, used by the Expected Improvement acquisition
// function (Eq. 5 of the paper).
#pragma once

namespace autra::gp {

/// phi(z): standard normal probability density.
[[nodiscard]] double normal_pdf(double z) noexcept;

/// Phi(z): standard normal cumulative distribution.
[[nodiscard]] double normal_cdf(double z) noexcept;

}  // namespace autra::gp

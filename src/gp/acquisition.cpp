#include "gp/acquisition.hpp"

#include <cmath>

#include "gp/normal.hpp"

namespace autra::gp {

double expected_improvement(const Prediction& p, double best_value,
                            double xi) noexcept {
  const double sigma = p.stddev();
  if (sigma <= 0.0) return 0.0;
  const double k = p.mean - best_value - xi;
  const double z = k / sigma;
  const double ei = k * normal_cdf(z) + sigma * normal_pdf(z);
  return ei > 0.0 ? ei : 0.0;
}

}  // namespace autra::gp

// Covariance kernels for Gaussian-process regression.
//
// AuTraScale (Sec. III-E) uses a Gaussian process with the Matern covariance
// kernel as the BO surrogate because of its extrapolation quality; Matern 5/2
// is the default here, with Matern 3/2 and RBF available for the kernel
// ablation study.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"

namespace autra::gp {

/// The covariance families the regressor supports. Typed configuration
/// lives on this enum; kernel *names* exist only at the I/O boundaries
/// (CLI flags, model files, bench labels) via to_string/parse_kernel_kind.
enum class KernelKind {
  kMatern52,  ///< The paper's choice (Sec. III-E).
  kMatern32,
  kRbf,
};

/// Canonical name of a kernel kind ("matern52" | "matern32" | "rbf").
[[nodiscard]] const char* to_string(KernelKind kind) noexcept;

/// Parses a kernel name at an I/O boundary; throws std::invalid_argument
/// on unknown names (so bad configuration fails at parse time, not inside
/// a fit() deep in the Plan stage).
[[nodiscard]] KernelKind parse_kernel_kind(std::string_view name);

/// A stationary covariance kernel k(x, x').
///
/// Hyper-parameters are exposed as a flat vector in *log space* so the
/// regressor's marginal-likelihood search can optimise them without bound
/// constraints. Layout: [log signal_variance, log length_scale].
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Covariance between two points of equal dimension.
  [[nodiscard]] virtual double operator()(
      std::span<const double> a, std::span<const double> b) const = 0;

  /// k(x, x) for a stationary kernel is the signal variance.
  [[nodiscard]] double diagonal() const noexcept { return signal_variance_; }

  [[nodiscard]] double signal_variance() const noexcept {
    return signal_variance_;
  }
  [[nodiscard]] double length_scale() const noexcept { return length_scale_; }

  void set_signal_variance(double v);
  void set_length_scale(double l);

  /// Log-space hyper-parameters: [log sigma^2, log ell].
  [[nodiscard]] std::vector<double> log_params() const;
  void set_log_params(std::span<const double> p);

  [[nodiscard]] virtual KernelKind kind() const noexcept = 0;
  [[nodiscard]] std::string name() const { return to_string(kind()); }
  [[nodiscard]] virtual std::unique_ptr<Kernel> clone() const = 0;

  /// Gram matrix K where K(i,j) = k(X_i, X_j); X is row-per-sample.
  [[nodiscard]] linalg::Matrix gram(const linalg::Matrix& x) const;

  /// Cross-covariance vector [k(x_star, X_i)]_i.
  [[nodiscard]] linalg::Vector cross(const linalg::Matrix& x,
                                     std::span<const double> x_star) const;

 protected:
  Kernel(double signal_variance, double length_scale);

  double signal_variance_;
  double length_scale_;
};

/// Matern 5/2: k(r) = s2 (1 + sqrt5 r/l + 5 r^2 / (3 l^2)) exp(-sqrt5 r/l).
class Matern52 final : public Kernel {
 public:
  explicit Matern52(double signal_variance = 1.0, double length_scale = 1.0)
      : Kernel(signal_variance, length_scale) {}
  [[nodiscard]] double operator()(std::span<const double> a,
                                  std::span<const double> b) const override;
  [[nodiscard]] KernelKind kind() const noexcept override {
    return KernelKind::kMatern52;
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<Matern52>(*this);
  }
};

/// Matern 3/2: k(r) = s2 (1 + sqrt3 r/l) exp(-sqrt3 r/l).
class Matern32 final : public Kernel {
 public:
  explicit Matern32(double signal_variance = 1.0, double length_scale = 1.0)
      : Kernel(signal_variance, length_scale) {}
  [[nodiscard]] double operator()(std::span<const double> a,
                                  std::span<const double> b) const override;
  [[nodiscard]] KernelKind kind() const noexcept override {
    return KernelKind::kMatern32;
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<Matern32>(*this);
  }
};

/// Squared exponential: k(r) = s2 exp(-r^2 / (2 l^2)).
class Rbf final : public Kernel {
 public:
  explicit Rbf(double signal_variance = 1.0, double length_scale = 1.0)
      : Kernel(signal_variance, length_scale) {}
  [[nodiscard]] double operator()(std::span<const double> a,
                                  std::span<const double> b) const override;
  [[nodiscard]] KernelKind kind() const noexcept override {
    return KernelKind::kRbf;
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<Rbf>(*this);
  }
};

/// Factory by kind. Code that starts from a *name* (a CLI flag, a model
/// file) parses it first with parse_kernel_kind.
[[nodiscard]] std::unique_ptr<Kernel> make_kernel(KernelKind kind,
                                                  double signal_variance = 1.0,
                                                  double length_scale = 1.0);

}  // namespace autra::gp

// Gaussian-process regression: the surrogate model of AuTraScale's Bayesian
// optimiser (paper Sec. III-E, "Surrogate Model").
//
// The regressor owns a kernel, normalises inputs to the unit cube and
// standardises targets, fits kernel hyper-parameters by maximising the log
// marginal likelihood over a coarse multi-start grid (adequate for the tens
// of samples BO generates per job), and predicts posterior mean and variance
// at new points.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "gp/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace autra::gp {

/// Posterior prediction at a single point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;  ///< Always >= 0.

  [[nodiscard]] double stddev() const noexcept;
};

/// Counters reporting which model-update path ran — the observability
/// contract of the incremental Plan path (an always-on controller asserts
/// its rounds ran incremental_updates, not full_fits).
struct FitStats {
  std::uint64_t full_fits = 0;          ///< Batch fits (initial + fallbacks).
  std::uint64_t fingerprint_hits = 0;   ///< fit() short-circuits on unchanged data.
  std::uint64_t incremental_updates = 0;///< observe() reused the cached factor.
  std::uint64_t window_evictions = 0;   ///< Oldest points dropped by the window.
  /// observe() fallbacks to a full refit, by cause:
  std::uint64_t hyperparam_refits = 0;    ///< reoptimize_every cadence hit.
  std::uint64_t normalisation_refits = 0; ///< Point outside the frozen box.
  std::uint64_t jitter_refits = 0;        ///< Jittered factor / extension failed.

  friend bool operator==(const FitStats&, const FitStats&) = default;
};

/// The full fitted state of a regressor, round-trippable through the
/// model-I/O text format: raw (original-unit) observations, kernel
/// hyper-parameters, the frozen normalisation box and the cached Cholesky
/// factor. Restoring a snapshot reproduces the live model bit-for-bit —
/// including factors built by incremental updates, which a refit from the
/// samples alone would not reproduce in the low bits.
struct GpSnapshot {
  KernelKind kernel = KernelKind::kMatern52;
  double signal_variance = 1.0;
  double length_scale = 1.0;
  double noise_variance = 1e-4;
  double jitter = 0.0;  ///< Jitter baked into the cached factor.
  std::uint64_t observe_count = 0;  ///< Observes since the last full fit.
  linalg::Vector x_lo, x_hi;  ///< Normalisation box frozen at the last fit.
  linalg::Matrix x;  ///< Raw inputs, row per observation.
  linalg::Vector y;  ///< Raw targets.
  linalg::Matrix l;  ///< Cached lower Cholesky factor of K + noise I.
};

/// Configuration of the regressor.
struct GpConfig {
  KernelKind kernel = KernelKind::kMatern52;
  /// Observation noise variance added to the kernel diagonal (in normalised
  /// target units).
  double noise_variance = 1e-4;
  /// If true, fit() maximises log marginal likelihood over a multi-start
  /// grid of (signal variance, length scale); otherwise the kernel's current
  /// hyper-parameters are used as-is.
  bool optimize_hyperparams = true;
  /// Lower/upper bounds of the length-scale grid, in normalised input units.
  double min_length_scale = 0.05;
  double max_length_scale = 4.0;
  /// Number of grid points per hyper-parameter dimension.
  int grid_points = 12;
  /// Worker threads for the multi-start grid search (each grid point is an
  /// independent kernel build + Cholesky + log-ML) and for batch EI
  /// scoring when the regressor backs a BayesOpt loop. <= 0 uses the
  /// process default (AUTRA_THREADS or hardware_concurrency); 1 forces the
  /// guaranteed-serial path. Results are bit-identical at any value.
  int threads = 0;
  /// Initial kernel hyper-parameters (the fitted values when
  /// optimize_hyperparams is off).
  double signal_variance = 1.0;
  double length_scale = 1.0;
  /// Observation-window cap for observe(): when positive and the window is
  /// full, the oldest observation is evicted (factor drop_first) before the
  /// new one is appended, bounding every update at O(cap^2) for long-lived
  /// daemons. 0 = unbounded. fit() itself never trims.
  int max_observations = 0;
  /// observe() re-runs the full fit (incl. hyper-parameter search when
  /// optimize_hyperparams is on) every k-th observation since the last
  /// full fit; 0 = never, the hyper-parameters stay frozen between fits.
  int reoptimize_every = 0;
};

/// Exact GP regression with normalisation and marginal-likelihood
/// hyper-parameter selection.
class GpRegressor {
 public:
  explicit GpRegressor(GpConfig config = {});

  // Copyable (the kernel is deep-cloned) and movable, so models can live in
  // value-semantic containers like the model library.
  GpRegressor(const GpRegressor& other);
  GpRegressor& operator=(const GpRegressor& other);
  GpRegressor(GpRegressor&&) noexcept = default;
  GpRegressor& operator=(GpRegressor&&) noexcept = default;
  ~GpRegressor() = default;

  /// Fits the model to `x` (row per sample) and targets `y`.
  /// Throws std::invalid_argument on shape mismatch or empty data.
  /// Fitting the exact same (x, y) as the previous fit is a no-op (an
  /// input-fingerprint short-circuit; FitStats::fingerprint_hits counts
  /// it) — the cached factor and hyper-parameters are already right.
  void fit(const linalg::Matrix& x, const linalg::Vector& y);

  /// Appends one observation in original units, reusing the cached
  /// Cholesky factor: an O(n^2) factor extension instead of the O(n^3)
  /// refit, with the posterior identical (to rounding) to a from-scratch
  /// fit() on the extended data. Falls back to a full refit — counted per
  /// cause in FitStats — when the point lies outside the normalisation box
  /// of the last fit, when the reoptimize_every cadence fires, or when the
  /// factor cannot be extended (active jitter / lost positive
  /// definiteness). With max_observations set, the oldest observation is
  /// evicted first once the window is full. Throws std::logic_error before
  /// fit() and std::invalid_argument on dimension mismatch.
  void observe(std::span<const double> x, double y);

  /// Captures the full fitted state (raw window, hyper-parameters, cached
  /// factor) for persistence; restore() on a fresh regressor reproduces
  /// the live model bit-for-bit. Throws std::logic_error before fit().
  [[nodiscard]] GpSnapshot snapshot() const;

  /// Rebuilds the fitted state from a snapshot (derived quantities —
  /// normalised data, alpha, log-ML — are recomputed from it
  /// deterministically). Throws std::invalid_argument on inconsistent
  /// shapes or a non-positive factor diagonal.
  void restore(const GpSnapshot& snap);

  /// Posterior mean/variance at a point in the original input space.
  /// Throws std::logic_error if called before fit().
  [[nodiscard]] Prediction predict(std::span<const double> x_star) const;

  /// Convenience batch prediction.
  [[nodiscard]] std::vector<Prediction> predict(const linalg::Matrix& x) const;

  /// Log marginal likelihood of the fitted model (on normalised targets).
  [[nodiscard]] double log_marginal_likelihood() const;

  [[nodiscard]] bool is_fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t num_samples() const noexcept { return x_.rows(); }
  [[nodiscard]] std::size_t input_dim() const noexcept { return x_.cols(); }
  [[nodiscard]] const Kernel& kernel() const { return *kernel_; }
  [[nodiscard]] const GpConfig& config() const noexcept { return config_; }
  /// Which update paths ran over this model's lifetime.
  [[nodiscard]] const FitStats& fit_stats() const noexcept { return stats_; }

  /// Best (maximum) observed target value, in original units.
  [[nodiscard]] double best_observed() const;

 private:
  void fit_from_raw();
  void refit_factorisation();
  void refresh_targets();
  [[nodiscard]] std::vector<double> normalize_point(
      std::span<const double> x_star) const;

  GpConfig config_;
  std::unique_ptr<Kernel> kernel_;
  bool fitted_ = false;

  // Raw training window in original units (what fit()/observe() were given;
  // the fallback refits and snapshots rebuild everything from it).
  linalg::Matrix x_raw_;
  linalg::Vector y_raw_;
  std::uint64_t fingerprint_ = 0;   ///< FNV-1a over the raw window.
  std::uint64_t observe_count_ = 0; ///< Observes since the last full fit.

  // Normalised training data.
  linalg::Matrix x_;
  linalg::Vector y_;
  // Input normalisation: per-dimension offset and scale, plus the raw
  // data box they were derived from (frozen until the next full fit; a
  // point outside it forces a refit because it would change them).
  linalg::Vector x_offset_;
  linalg::Vector x_scale_;
  linalg::Vector x_lo_;
  linalg::Vector x_hi_;
  // Target standardisation.
  double y_mean_ = 0.0;
  double y_std_ = 1.0;

  std::optional<linalg::Cholesky> chol_;
  linalg::Vector alpha_;  // K^-1 y (normalised).
  double log_ml_ = 0.0;
  double jitter_ = 0.0;  ///< Jitter baked into the cached factor.
  FitStats stats_;
};

}  // namespace autra::gp

// Gaussian-process regression: the surrogate model of AuTraScale's Bayesian
// optimiser (paper Sec. III-E, "Surrogate Model").
//
// The regressor owns a kernel, normalises inputs to the unit cube and
// standardises targets, fits kernel hyper-parameters by maximising the log
// marginal likelihood over a coarse multi-start grid (adequate for the tens
// of samples BO generates per job), and predicts posterior mean and variance
// at new points.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "gp/kernel.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace autra::gp {

/// Posterior prediction at a single point.
struct Prediction {
  double mean = 0.0;
  double variance = 0.0;  ///< Always >= 0.

  [[nodiscard]] double stddev() const noexcept;
};

/// Configuration of the regressor.
struct GpConfig {
  KernelKind kernel = KernelKind::kMatern52;
  /// Observation noise variance added to the kernel diagonal (in normalised
  /// target units).
  double noise_variance = 1e-4;
  /// If true, fit() maximises log marginal likelihood over a multi-start
  /// grid of (signal variance, length scale); otherwise the kernel's current
  /// hyper-parameters are used as-is.
  bool optimize_hyperparams = true;
  /// Lower/upper bounds of the length-scale grid, in normalised input units.
  double min_length_scale = 0.05;
  double max_length_scale = 4.0;
  /// Number of grid points per hyper-parameter dimension.
  int grid_points = 12;
  /// Worker threads for the multi-start grid search (each grid point is an
  /// independent kernel build + Cholesky + log-ML) and for batch EI
  /// scoring when the regressor backs a BayesOpt loop. <= 0 uses the
  /// process default (AUTRA_THREADS or hardware_concurrency); 1 forces the
  /// guaranteed-serial path. Results are bit-identical at any value.
  int threads = 0;
};

/// Exact GP regression with normalisation and marginal-likelihood
/// hyper-parameter selection.
class GpRegressor {
 public:
  explicit GpRegressor(GpConfig config = {});

  // Copyable (the kernel is deep-cloned) and movable, so models can live in
  // value-semantic containers like the model library.
  GpRegressor(const GpRegressor& other);
  GpRegressor& operator=(const GpRegressor& other);
  GpRegressor(GpRegressor&&) noexcept = default;
  GpRegressor& operator=(GpRegressor&&) noexcept = default;
  ~GpRegressor() = default;

  /// Fits the model to `x` (row per sample) and targets `y`.
  /// Throws std::invalid_argument on shape mismatch or empty data.
  void fit(const linalg::Matrix& x, const linalg::Vector& y);

  /// Posterior mean/variance at a point in the original input space.
  /// Throws std::logic_error if called before fit().
  [[nodiscard]] Prediction predict(std::span<const double> x_star) const;

  /// Convenience batch prediction.
  [[nodiscard]] std::vector<Prediction> predict(const linalg::Matrix& x) const;

  /// Log marginal likelihood of the fitted model (on normalised targets).
  [[nodiscard]] double log_marginal_likelihood() const;

  [[nodiscard]] bool is_fitted() const noexcept { return fitted_; }
  [[nodiscard]] std::size_t num_samples() const noexcept { return x_.rows(); }
  [[nodiscard]] std::size_t input_dim() const noexcept { return x_.cols(); }
  [[nodiscard]] const Kernel& kernel() const { return *kernel_; }
  [[nodiscard]] const GpConfig& config() const noexcept { return config_; }

  /// Best (maximum) observed target value, in original units.
  [[nodiscard]] double best_observed() const;

 private:
  void refit_factorisation();
  [[nodiscard]] std::vector<double> normalize_point(
      std::span<const double> x_star) const;

  GpConfig config_;
  std::unique_ptr<Kernel> kernel_;
  bool fitted_ = false;

  // Normalised training data.
  linalg::Matrix x_;
  linalg::Vector y_;
  // Input normalisation: per-dimension offset and scale.
  linalg::Vector x_offset_;
  linalg::Vector x_scale_;
  // Target standardisation.
  double y_mean_ = 0.0;
  double y_std_ = 1.0;

  std::optional<linalg::Cholesky> chol_;
  linalg::Vector alpha_;  // K^-1 y (normalised).
  double log_ml_ = 0.0;
};

}  // namespace autra::gp

#include "multitenant/shared_cluster.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autra::mt {

const char* to_string(ArbiterPolicy policy) noexcept {
  switch (policy) {
    case ArbiterPolicy::kAlwaysAdmit:
      return "always-admit";
    case ArbiterPolicy::kQuota:
      return "quota";
    case ArbiterPolicy::kWeightedFair:
      return "weighted-fair";
  }
  return "unknown";
}

ClusterArbiter::ClusterArbiter(ArbiterParams params, int total_slots)
    : params_(params), total_slots_(total_slots) {
  if (total_slots_ <= 0) {
    throw std::invalid_argument("ClusterArbiter: no slots");
  }
  if (params_.quota_slots < 0) {
    throw std::invalid_argument("ClusterArbiter: negative quota");
  }
}

std::size_t ClusterArbiter::index_of(runtime::TenantId tenant) const {
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    if (tenants_[i].tenant == tenant) return i;
  }
  throw std::invalid_argument("ClusterArbiter: unknown tenant");
}

ClusterArbiter::Entry& ClusterArbiter::entry_of(runtime::TenantId tenant) {
  return tenants_[index_of(tenant)];
}

void ClusterArbiter::register_tenant(runtime::TenantId tenant, double weight,
                                     int initial_slots) {
  if (!tenant.valid() || weight <= 0.0 || initial_slots < 0) {
    throw std::invalid_argument("ClusterArbiter: bad tenant registration");
  }
  for (const Entry& e : tenants_) {
    if (e.tenant == tenant) {
      throw std::invalid_argument("ClusterArbiter: duplicate tenant");
    }
  }
  tenants_.push_back({tenant, weight, initial_slots, {}});
}

int ClusterArbiter::ceiling_of(const Entry& e) const {
  switch (params_.policy) {
    case ArbiterPolicy::kAlwaysAdmit:
      return total_slots_;
    case ArbiterPolicy::kQuota:
      return params_.quota_slots > 0 ? params_.quota_slots : total_slots_;
    case ArbiterPolicy::kWeightedFair: {
      double weight_sum = 0.0;
      for (const Entry& t : tenants_) weight_sum += t.weight;
      const double share =
          static_cast<double>(total_slots_) * e.weight / weight_sum;
      // Every tenant keeps at least one slot — a zero ceiling would deny
      // even running at parallelism 1.
      return std::max(1, static_cast<int>(std::floor(share)));
    }
  }
  return total_slots_;
}

ArbiterVerdict ClusterArbiter::decide(runtime::TenantId tenant,
                                      int requested_slots) {
  if (requested_slots <= 0) {
    throw std::invalid_argument("ClusterArbiter: non-positive request");
  }
  Entry& e = entry_of(tenant);

  // Scale-downs always pass (they free capacity), and the always-admit
  // policy is unconditional bookkeeping — both required for the
  // single-tenant bit-identity contract.
  if (params_.policy == ArbiterPolicy::kAlwaysAdmit ||
      requested_slots <= e.held) {
    ++e.counters.admitted;
    return {ArbiterVerdict::Kind::kAdmit, requested_slots};
  }

  int held_by_others = 0;
  for (const Entry& t : tenants_) {
    if (!(t.tenant == tenant)) held_by_others += t.held;
  }
  // What this tenant could occupy: its policy ceiling, bounded by the
  // physically free slots plus what it already holds.
  const int available =
      e.held + std::max(0, total_slots_ - held_by_others - e.held);
  const int granted =
      std::min(requested_slots, std::min(ceiling_of(e), available));

  if (granted >= requested_slots) {
    ++e.counters.admitted;
    return {ArbiterVerdict::Kind::kAdmit, requested_slots};
  }
  if (granted > e.held) {
    ++e.counters.clipped;
    return {ArbiterVerdict::Kind::kClip, granted};
  }
  ++e.counters.denied;
  return {ArbiterVerdict::Kind::kDeny, e.held};
}

void ClusterArbiter::note_applied(runtime::TenantId tenant, int slots) {
  if (slots < 0 || slots > total_slots_) {
    throw std::invalid_argument("ClusterArbiter: bad applied slot count");
  }
  entry_of(tenant).held = slots;
}

const ClusterArbiter::Counters& ClusterArbiter::counters(
    runtime::TenantId tenant) const {
  return tenants_[index_of(tenant)].counters;
}

int ClusterArbiter::held_slots(runtime::TenantId tenant) const {
  return tenants_[index_of(tenant)].held;
}

SharedCluster::SharedCluster(sim::ClusterSpec spec, ArbiterParams arbiter)
    : spec_(std::make_shared<const sim::ClusterSpec>(std::move(spec))),
      geometry_(*spec_),
      arbiter_(arbiter, geometry_.total_slots()) {}

int SharedCluster::total_slots() const noexcept {
  return geometry_.total_slots();
}

std::size_t SharedCluster::num_machines() const noexcept {
  return geometry_.num_machines();
}

std::size_t SharedCluster::num_racks() const noexcept {
  return geometry_.racks().size();
}

sim::ClusterRef SharedCluster::lease(runtime::TenantId tenant, int max_slots,
                                     double weight, int initial_slots) {
  if (max_slots == 0) max_slots = total_slots();
  if (max_slots < 0 || max_slots > total_slots()) {
    throw std::invalid_argument("SharedCluster::lease: bad slot count");
  }
  for (const Tenant& t : tenants_) {
    if (t.id == tenant) {
      throw std::invalid_argument("SharedCluster::lease: duplicate tenant");
    }
  }
  arbiter_.register_tenant(tenant, weight, initial_slots);
  const int offset = next_offset_ % total_slots();
  next_offset_ += max_slots;
  tenants_.push_back({tenant, max_slots, offset, {}, {}});
  return sim::ClusterRef(spec_, offset, max_slots);
}

const SharedCluster::Tenant& SharedCluster::tenant_of(
    runtime::TenantId tenant) const {
  for (const Tenant& t : tenants_) {
    if (t.id == tenant) return t;
  }
  throw std::invalid_argument("SharedCluster: unknown tenant");
}

SharedCluster::Tenant& SharedCluster::tenant_of(runtime::TenantId tenant) {
  return const_cast<Tenant&>(
      static_cast<const SharedCluster*>(this)->tenant_of(tenant));
}

void SharedCluster::publish_machine_load(runtime::TenantId tenant,
                                         const std::vector<double>& load) {
  if (load.size() != num_machines()) {
    throw std::invalid_argument(
        "SharedCluster::publish_machine_load: bad machine count");
  }
  tenant_of(tenant).machine_load = load;
}

void SharedCluster::publish_uplink_load(
    runtime::TenantId tenant, const std::vector<double>& records_per_sec) {
  if (records_per_sec.size() != num_racks()) {
    throw std::invalid_argument(
        "SharedCluster::publish_uplink_load: bad rack count");
  }
  tenant_of(tenant).uplink_load = records_per_sec;
}

std::vector<double> SharedCluster::external_machine_load(
    runtime::TenantId tenant) const {
  static_cast<void>(tenant_of(tenant));  // validate
  std::vector<double> sum(num_machines(), 0.0);
  for (const Tenant& t : tenants_) {
    if (t.id == tenant || t.machine_load.empty()) continue;
    for (std::size_t m = 0; m < sum.size(); ++m) sum[m] += t.machine_load[m];
  }
  return sum;
}

std::vector<double> SharedCluster::external_uplink_load(
    runtime::TenantId tenant) const {
  static_cast<void>(tenant_of(tenant));  // validate
  std::vector<double> sum(num_racks(), 0.0);
  for (const Tenant& t : tenants_) {
    if (t.id == tenant || t.uplink_load.empty()) continue;
    for (std::size_t r = 0; r < sum.size(); ++r) sum[r] += t.uplink_load[r];
  }
  return sum;
}

}  // namespace autra::mt

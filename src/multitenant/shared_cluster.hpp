// Multi-tenant cluster inventory and admission control (DESIGN.md §12).
//
// A SharedCluster owns the machine/rack/uplink inventory N tenant jobs
// co-run on. Each tenant receives a slot *lease* — a ClusterRef carrying a
// placement offset (rotating the round-robin slot -> machine map so
// co-located tenants start filling different machines) and a slot ceiling
// (the tenant's P_max). Slots are CPU-time-shared, exactly like Flink
// slots on one YARN cluster: leases bound what a tenant may *place*, while
// the physical contention between placed instances flows through the
// engine's InterferenceModel (co-tenant busy-core load on shared machines)
// and NetworkModel (co-tenant records through shared rack uplinks) via the
// interference boards published here every coupling slice.
//
// Above the per-job Scaling Managers sits the ClusterArbiter: every
// rescale request is submitted to it, and the verdict is admit, clip (a
// smaller grant than requested), or deny — surfaced to the controller as
// the existing runtime::RescaleFailed retry/backoff path. With the
// always-admit policy the arbiter is pure bookkeeping, which is what the
// single-tenant bit-identity contract relies on.
#pragma once

#include <memory>
#include <vector>

#include "runtime/tenant.hpp"
#include "streamsim/cluster.hpp"

namespace autra::mt {

/// Admission policy of the ClusterArbiter.
enum class ArbiterPolicy {
  /// Every request is admitted unchanged — single-tenant bookkeeping mode
  /// (the bit-identity contract) and the "no platform policy" baseline.
  kAlwaysAdmit,
  /// Per-tenant slot ceiling (quota_slots) plus the shared free pool.
  kQuota,
  /// Weighted max-min fairness: each tenant's ceiling is its weight share
  /// of the total slots, and grants never overcommit the physical pool.
  kWeightedFair,
};

[[nodiscard]] const char* to_string(ArbiterPolicy policy) noexcept;

struct ArbiterParams {
  ArbiterPolicy policy = ArbiterPolicy::kAlwaysAdmit;
  /// kQuota: slots any one tenant may occupy; 0 means no ceiling.
  int quota_slots = 0;
};

/// Outcome of one rescale request.
struct ArbiterVerdict {
  enum class Kind { kAdmit, kClip, kDeny };
  Kind kind = Kind::kAdmit;
  /// Slots granted: the request for kAdmit, the (smaller) ceiling for
  /// kClip, the tenant's current holding for kDeny.
  int granted_slots = 0;
};

/// Admission control above the per-job Scaling Managers. Tracks how many
/// slots each registered tenant currently occupies and decides rescale
/// requests under the configured policy. Deterministic: verdicts are a
/// pure function of the registration order, the holdings, and the request.
class ClusterArbiter {
 public:
  ClusterArbiter(ArbiterParams params, int total_slots);

  /// Registers a tenant with its fairness weight and the slots its initial
  /// configuration occupies. Throws std::invalid_argument on a duplicate
  /// id or non-positive weight.
  void register_tenant(runtime::TenantId tenant, double weight,
                       int initial_slots);

  /// Decides a request for `requested_slots` (the max over the proposed
  /// parallelism vector). Scale-downs are always admitted — shrinking
  /// frees capacity. Updates the per-tenant verdict counters. Throws
  /// std::invalid_argument for an unknown tenant or a non-positive
  /// request.
  ArbiterVerdict decide(runtime::TenantId tenant, int requested_slots);

  /// Records the slots actually occupied after an applied (or clipped)
  /// rescale — the holdings future verdicts are computed against.
  void note_applied(runtime::TenantId tenant, int slots);

  struct Counters {
    int admitted = 0;
    int clipped = 0;
    int denied = 0;
  };
  [[nodiscard]] const Counters& counters(runtime::TenantId tenant) const;
  [[nodiscard]] int held_slots(runtime::TenantId tenant) const;
  [[nodiscard]] int total_slots() const noexcept { return total_slots_; }
  [[nodiscard]] const ArbiterParams& params() const noexcept {
    return params_;
  }

 private:
  struct Entry {
    runtime::TenantId tenant;
    double weight = 1.0;
    int held = 0;
    Counters counters;
  };
  [[nodiscard]] std::size_t index_of(runtime::TenantId tenant) const;
  [[nodiscard]] Entry& entry_of(runtime::TenantId tenant);
  /// Policy ceiling for one tenant (total slots under kAlwaysAdmit).
  [[nodiscard]] int ceiling_of(const Entry& e) const;

  ArbiterParams params_;
  int total_slots_;
  std::vector<Entry> tenants_;  ///< Registration order — deterministic.
};

/// The shared inventory: one ClusterSpec, slot leases, the arbiter, and
/// the interference boards tenants publish to / read from each coupling
/// slice. Owns nothing per-engine — tenants build their own engines from
/// the leased ClusterRefs.
class SharedCluster {
 public:
  explicit SharedCluster(sim::ClusterSpec spec, ArbiterParams arbiter = {});

  [[nodiscard]] const sim::ClusterSpec& spec() const noexcept {
    return *spec_;
  }
  [[nodiscard]] int total_slots() const noexcept;
  [[nodiscard]] std::size_t num_machines() const noexcept;
  [[nodiscard]] std::size_t num_racks() const noexcept;

  /// Leases `max_slots` slots to `tenant` (0 = every slot) with the given
  /// fairness weight; `initial_slots` seeds the arbiter's holdings.
  /// Consecutive leases rotate the placement offset by the previous lease
  /// sizes, so tenants start filling different machines. Throws
  /// std::invalid_argument on a bad size or duplicate tenant.
  [[nodiscard]] sim::ClusterRef lease(runtime::TenantId tenant, int max_slots,
                                      double weight = 1.0,
                                      int initial_slots = 1);

  [[nodiscard]] ClusterArbiter& arbiter() noexcept { return arbiter_; }
  [[nodiscard]] const ClusterArbiter& arbiter() const noexcept {
    return arbiter_;
  }

  /// Interference boards: each tenant publishes its own per-machine
  /// busy-core load / per-rack uplink records-per-sec; external_*() then
  /// reads the sum over every *other* tenant — what that tenant's engine
  /// must treat as co-tenant load. Vectors must match num_machines() /
  /// num_racks() (std::invalid_argument).
  void publish_machine_load(runtime::TenantId tenant,
                            const std::vector<double>& load);
  void publish_uplink_load(runtime::TenantId tenant,
                           const std::vector<double>& records_per_sec);
  [[nodiscard]] std::vector<double> external_machine_load(
      runtime::TenantId tenant) const;
  [[nodiscard]] std::vector<double> external_uplink_load(
      runtime::TenantId tenant) const;

  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return tenants_.size();
  }

 private:
  struct Tenant {
    runtime::TenantId id;
    int lease_slots = 0;
    int slot_offset = 0;
    std::vector<double> machine_load;
    std::vector<double> uplink_load;
  };
  [[nodiscard]] const Tenant& tenant_of(runtime::TenantId tenant) const;
  [[nodiscard]] Tenant& tenant_of(runtime::TenantId tenant);

  std::shared_ptr<const sim::ClusterSpec> spec_;
  /// Geometry of the full (unleased) inventory: slot count, rack groups.
  sim::Cluster geometry_;
  ClusterArbiter arbiter_;
  std::vector<Tenant> tenants_;  ///< Lease order — deterministic.
  int next_offset_ = 0;
};

}  // namespace autra::mt

#include "multitenant/harness.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace autra::mt {

void TenantSession::run_for(double sec) {
  harness_->tenant_run_for(index_, sec);
}

void TenantSession::reconfigure(const runtime::Parallelism& p,
                                runtime::RescaleMode mode) {
  harness_->tenant_reconfigure(index_, p, mode);
}

MultiTenantHarness::MultiTenantHarness(std::shared_ptr<SharedCluster> cluster,
                                       HarnessParams params)
    : shared_(std::move(cluster)), params_(params) {
  if (!shared_) {
    throw std::invalid_argument("MultiTenantHarness: null shared cluster");
  }
  if (params_.coupling_interval_sec <= 0.0) {
    throw std::invalid_argument(
        "MultiTenantHarness: coupling interval must be positive");
  }
}

runtime::TenantId MultiTenantHarness::add_tenant(TenantSpec spec) {
  if (started_) {
    throw std::invalid_argument(
        "MultiTenantHarness::add_tenant: time has already started");
  }
  if (spec.name.empty()) {
    throw std::invalid_argument("MultiTenantHarness::add_tenant: empty name");
  }
  if (registry_.find(spec.name).valid()) {
    throw std::invalid_argument(
        "MultiTenantHarness::add_tenant: duplicate tenant name");
  }
  const runtime::TenantId id = registry_.intern(spec.name);

  const int lease_slots =
      spec.lease_slots > 0 ? spec.lease_slots : shared_->total_slots();
  const int initial_slots =
      spec.initial.empty()
          ? 0
          : *std::max_element(spec.initial.begin(), spec.initial.end());
  spec.job.cluster = shared_->lease(id, lease_slots, spec.weight,
                                    std::max(0, initial_slots));

  Tenant tenant;
  tenant.id = id;
  tenant.name = spec.name;
  tenant.session = std::make_unique<sim::ScalingSession>(
      spec.job, spec.initial, spec.session);
  tenant.backend =
      std::make_unique<TenantSession>(*this, tenants_.size(), *tenant.session);
  if (!spec.controller.tenant.valid()) spec.controller.tenant = id;
  tenant.policy_interval_sec = spec.controller.policy_interval_sec;
  tenant.controller = std::make_unique<core::AuTraScaleController>(
      spec.job.topology, sim::make_trial_service(spec.job), spec.controller);
  tenant.lag_id =
      metrics_.resolve(runtime::tenant_series(spec.name, "kafka_lag"));
  tenant.throughput_id =
      metrics_.resolve(runtime::tenant_series(spec.name, "throughput"));
  tenant.parallelism_id =
      metrics_.resolve(runtime::tenant_series(spec.name, "parallelism"));
  tenant.busy_id =
      metrics_.resolve(runtime::tenant_series(spec.name, "busy_cores"));
  tenants_.push_back(std::move(tenant));
  return id;
}

double MultiTenantHarness::now() const {
  return tenants_.empty() ? 0.0 : tenants_.front().session->now();
}

void MultiTenantHarness::exchange(double dt, double at) {
  // Publish: every tenant's own per-machine busy load and the per-rack
  // uplink rate over the slice just completed.
  for (Tenant& tenant : tenants_) {
    shared_->publish_machine_load(tenant.id,
                                  tenant.session->machine_busy_load());
    const std::vector<double> cumulative =
        tenant.session->uplink_consumed_records();
    std::vector<double> rate(shared_->num_racks(), 0.0);
    if (!cumulative.empty() && dt > 0.0) {
      if (tenant.prev_uplink.size() != cumulative.size()) {
        tenant.prev_uplink.assign(cumulative.size(), 0.0);
      }
      for (std::size_t r = 0; r < rate.size() && r < cumulative.size(); ++r) {
        rate[r] = std::max(0.0, (cumulative[r] - tenant.prev_uplink[r]) / dt);
      }
      tenant.prev_uplink = cumulative;
    }
    shared_->publish_uplink_load(tenant.id, rate);
  }

  // Receive: each engine sees the sum over the *other* tenants. With one
  // tenant both sums are all-zero, which the session normalises to
  // "detached" — the single-tenant bit-identity path.
  for (Tenant& tenant : tenants_) {
    tenant.session->set_external_machine_load(
        shared_->external_machine_load(tenant.id));
    tenant.session->set_external_uplink_load(
        shared_->external_uplink_load(tenant.id));
  }

  // Cluster-level per-tenant observables at this slice boundary.
  for (Tenant& tenant : tenants_) {
    const runtime::MetricStore& history = tenant.session->history();
    if (const auto lag =
            history.last(history.find(runtime::metric_names::kKafkaLag))) {
      metrics_.record(tenant.lag_id, at, lag->value);
    }
    if (const auto tput =
            history.last(history.find(runtime::metric_names::kThroughput))) {
      metrics_.record(tenant.throughput_id, at, tput->value);
    }
    const runtime::Parallelism& p = tenant.session->parallelism();
    double total = 0.0;
    for (const int v : p) total += v;
    metrics_.record(tenant.parallelism_id, at, total);
    double busy = 0.0;
    for (const double b : tenant.session->machine_busy_load()) busy += b;
    metrics_.record(tenant.busy_id, at, busy);
  }
}

void MultiTenantHarness::advance_all(double target) {
  if (tenants_.empty()) {
    throw std::logic_error("MultiTenantHarness: no tenants added");
  }
  started_ = true;
  constexpr double kEps = 1e-9;
  double t = now();
  while (t + kEps < target) {
    const double next = std::min(target, t + params_.coupling_interval_sec);
    // Shared absolute targets: each tenant's engine runs whole ticks up to
    // `next`, so the slicing cannot perturb its float arithmetic.
    for (Tenant& tenant : tenants_) tenant.session->run_to(next);
    exchange(next - t, next);
    t = next;
  }
}

void MultiTenantHarness::advance_to(double until_sec) {
  advance_all(until_sec);
}

void MultiTenantHarness::tenant_run_for(std::size_t index, double sec) {
  advance_all(tenants_.at(index).session->now() + sec);
}

void MultiTenantHarness::tenant_reconfigure(std::size_t index,
                                            const runtime::Parallelism& p,
                                            runtime::RescaleMode mode) {
  Tenant& tenant = tenants_.at(index);
  const int requested =
      p.empty() ? 0 : *std::max_element(p.begin(), p.end());
  const ArbiterVerdict verdict = shared_->arbiter().decide(tenant.id, requested);
  switch (verdict.kind) {
    case ArbiterVerdict::Kind::kAdmit:
      tenant.session->reconfigure(p, mode);
      break;
    case ArbiterVerdict::Kind::kClip: {
      runtime::Parallelism clipped = p;
      for (int& v : clipped) v = std::min(v, verdict.granted_slots);
      if (mode == runtime::RescaleMode::kHotScaleOut) {
        // A clip that shrinks any operator below its running parallelism
        // cannot be applied in place — surface it as a transient failure so
        // the controller's retry/backoff path handles it.
        const runtime::Parallelism& current = tenant.session->parallelism();
        for (std::size_t i = 0; i < clipped.size() && i < current.size();
             ++i) {
          if (clipped[i] < current[i]) {
            throw runtime::RescaleFailed(
                "arbiter clipped a hot scale-out below the running "
                "parallelism for tenant " +
                tenant.name);
          }
        }
      }
      tenant.session->reconfigure(clipped, mode);
      break;
    }
    case ArbiterVerdict::Kind::kDeny:
      throw runtime::RescaleFailed("cluster arbiter denied rescale for tenant " +
                                   tenant.name);
  }
  const runtime::Parallelism& applied = tenant.session->parallelism();
  shared_->arbiter().note_applied(
      tenant.id, applied.empty()
                     ? 0
                     : *std::max_element(applied.begin(), applied.end()));
}

void MultiTenantHarness::run(double until_sec) {
  if (tenants_.empty()) {
    throw std::logic_error("MultiTenantHarness::run: no tenants added");
  }
  started_ = true;
  for (Tenant& tenant : tenants_) tenant.controller->prime(*tenant.backend);
  while (now() < until_sec) {
    for (Tenant& tenant : tenants_) tenant.session->reset_window();
    const double t0 = now();
    double interval = tenants_.front().policy_interval_sec;
    for (const Tenant& tenant : tenants_) {
      interval = std::min(interval, tenant.policy_interval_sec);
    }
    advance_all(std::min(until_sec, t0 + interval));
    for (Tenant& tenant : tenants_) {
      tenant.controller->observe_window(*tenant.backend, t0, tenant.decisions);
    }
  }
}

}  // namespace autra::mt

// Multi-tenant co-simulation harness (DESIGN.md §12).
//
// MultiTenantHarness runs N (session, controller) pairs against one
// SharedCluster in lockstep. Time advances for every tenant through the
// same absolute targets, sliced at a fixed coupling interval; at each
// slice boundary every tenant publishes its per-machine busy-core load
// and per-rack uplink throughput to the SharedCluster's interference
// boards, and receives the sum over the other tenants back into its
// engine — so one tenant's scale-up degrades its neighbours' machine
// factors and uplink budgets exactly through the engine's existing
// InterferenceModel / NetworkModel mechanisms.
//
// Each tenant's AuTraScaleController is driven through its public
// prime()/observe_window() pair: the harness owns the window advance (all
// tenants move together), the controller owns Monitor/Analyze/Plan/
// Execute. Execute lands in TenantSession::reconfigure, which submits the
// request to the ClusterArbiter first — a denial throws
// runtime::RescaleFailed into the controller's retry/backoff machinery, a
// clip shrinks the configuration to the granted ceiling.
//
// Single-tenant identity contract: with one tenant, a full-cluster lease
// and an always-admit arbiter, run() produces bit-identical LoopStats,
// decisions and window metrics to AuTraScaleController::run over a
// standalone ScalingSession — enforced by tests/test_multitenant.cpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/controller.hpp"
#include "multitenant/shared_cluster.hpp"
#include "runtime/metrics.hpp"
#include "streamsim/job_runner.hpp"

namespace autra::mt {

class MultiTenantHarness;

/// StreamingBackend adapter handed to a tenant's controller: time and
/// rescaling route through the harness (lockstep advance, arbiter
/// admission); everything else delegates to the wrapped ScalingSession.
class TenantSession final : public runtime::StreamingBackend {
 public:
  TenantSession(MultiTenantHarness& harness, std::size_t index,
                sim::ScalingSession& inner)
      : harness_(&harness), index_(index), inner_(&inner) {}

  void run_for(double sec) override;
  /// Submits the request to the ClusterArbiter: a denial throws
  /// runtime::RescaleFailed, a clip applies the granted ceiling instead.
  void reconfigure(
      const runtime::Parallelism& p,
      runtime::RescaleMode mode = runtime::RescaleMode::kColdRestart) override;

  [[nodiscard]] runtime::JobMetrics window_metrics() const override {
    return inner_->window_metrics();
  }
  void reset_window() override { inner_->reset_window(); }
  [[nodiscard]] double now() const noexcept override { return inner_->now(); }
  [[nodiscard]] const runtime::Parallelism& parallelism()
      const noexcept override {
    return inner_->parallelism();
  }
  [[nodiscard]] const runtime::MetricStore& history()
      const noexcept override {
    return inner_->history();
  }
  [[nodiscard]] int restarts() const noexcept override {
    return inner_->restarts();
  }

 private:
  MultiTenantHarness* harness_;
  std::size_t index_;
  sim::ScalingSession* inner_;
};

/// One tenant's wiring, as handed to MultiTenantHarness::add_tenant. The
/// job's `cluster` field is ignored — the harness assigns the lease.
struct TenantSpec {
  std::string name;
  sim::JobSpec job;
  sim::Parallelism initial;
  sim::SessionParams session;
  core::ControllerParams controller;
  /// Slots leased to this tenant (its P_max ceiling); 0 = every slot.
  int lease_slots = 0;
  /// Weighted-fairness weight.
  double weight = 1.0;
};

struct HarnessParams {
  /// Interference-exchange cadence: every tenant advances in slices of
  /// this length, publishing/receiving co-tenant load at each boundary.
  double coupling_interval_sec = 1.0;
};

class MultiTenantHarness {
 public:
  MultiTenantHarness(std::shared_ptr<SharedCluster> cluster,
                     HarnessParams params = {});

  /// Adds a tenant before the first advance: leases its slots, builds its
  /// session/controller pair, and resolves its per-tenant series in the
  /// cluster metric store. Names are interned into TenantIds in add
  /// order. Throws std::invalid_argument on duplicates or after time has
  /// started, std::logic_error on an infeasible initial configuration.
  runtime::TenantId add_tenant(TenantSpec spec);

  /// Lockstep co-advance of every tenant to the absolute time `until_sec`
  /// (no control decisions — the raw interference coupling).
  void advance_to(double until_sec);

  /// Drives every tenant's MAPE loop until `until_sec`: per window, all
  /// tenants reset and advance one policy interval together, then each
  /// controller observes its own window in tenant order. With one tenant
  /// this is bit-identical to AuTraScaleController::run.
  void run(double until_sec);

  [[nodiscard]] double now() const;
  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return tenants_.size();
  }
  [[nodiscard]] runtime::TenantId tenant_id(std::size_t index) const {
    return tenants_.at(index).id;
  }
  [[nodiscard]] const std::string& tenant_name(std::size_t index) const {
    return tenants_.at(index).name;
  }
  [[nodiscard]] sim::ScalingSession& session(std::size_t index) {
    return *tenants_.at(index).session;
  }
  [[nodiscard]] core::AuTraScaleController& controller(std::size_t index) {
    return *tenants_.at(index).controller;
  }
  [[nodiscard]] const std::vector<core::ControlDecision>& decisions(
      std::size_t index) const {
    return tenants_.at(index).decisions;
  }
  [[nodiscard]] const runtime::TenantRegistry& registry() const noexcept {
    return registry_;
  }
  [[nodiscard]] SharedCluster& cluster() noexcept { return *shared_; }
  /// Cluster-level store with per-tenant series ("tenant.<name>.<metric>"),
  /// recorded at every coupling slice — the cross-job observables.
  [[nodiscard]] const runtime::MetricStore& metrics() const noexcept {
    return metrics_;
  }

 private:
  friend class TenantSession;

  struct Tenant {
    runtime::TenantId id;
    std::string name;
    std::unique_ptr<sim::ScalingSession> session;
    std::unique_ptr<TenantSession> backend;
    std::unique_ptr<core::AuTraScaleController> controller;
    std::vector<core::ControlDecision> decisions;
    double policy_interval_sec = 60.0;
    /// Uplink cumulative-consumption snapshot at the previous slice, for
    /// the per-slice rate published to the boards.
    std::vector<double> prev_uplink;
    runtime::MetricId lag_id, throughput_id, parallelism_id, busy_id;
  };

  /// Exchange step at one slice boundary of length `dt`: publish every
  /// tenant's loads, then push the co-tenant sums into every engine.
  void exchange(double dt, double at);
  /// Slice loop shared by advance_to and the run() window advance.
  void advance_all(double target);
  // TenantSession hooks.
  void tenant_run_for(std::size_t index, double sec);
  void tenant_reconfigure(std::size_t index, const runtime::Parallelism& p,
                          runtime::RescaleMode mode);

  std::shared_ptr<SharedCluster> shared_;
  HarnessParams params_;
  runtime::TenantRegistry registry_;
  std::vector<Tenant> tenants_;
  runtime::MetricStore metrics_;
  bool started_ = false;
};

}  // namespace autra::mt

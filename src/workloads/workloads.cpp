#include "workloads/workloads.hpp"

#include <stdexcept>

namespace autra::workloads {

namespace {

sim::JobSpec base_spec(std::shared_ptr<const sim::RateSchedule> schedule) {
  if (!schedule) {
    throw std::invalid_argument("workload: null rate schedule");
  }
  sim::JobSpec spec;
  spec.cluster = sim::paper_cluster();
  spec.schedule = std::move(schedule);
  return spec;
}

}  // namespace

sim::JobSpec word_count(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  const auto source = t.add_operator({.name = "source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 0.6,
                                      .process_us = 0.4,
                                      .serialize_us = 0.2,
                                      .state_mb = 8.0});
  const auto flat_map = t.add_operator({.name = "flatmap",
                                        .kind = sim::OperatorKind::kStateless,
                                        .selectivity = 1.8,
                                        .deserialize_us = 0.4,
                                        .process_us = 1.2,
                                        .serialize_us = 0.4,
                                        .state_mb = 8.0});
  const auto count = t.add_operator({.name = "count",
                                     .kind = sim::OperatorKind::kKeyedAggregate,
                                     .selectivity = 1.0,
                                     .deserialize_us = 0.6,
                                     .process_us = 3.0,
                                     .serialize_us = 0.4,
                                     .state_mb = 96.0});
  const auto sink = t.add_operator({.name = "sink",
                                    .kind = sim::OperatorKind::kSink,
                                    .selectivity = 0.0,
                                    .deserialize_us = 0.4,
                                    .process_us = 1.8,
                                    .serialize_us = 0.3,
                                    .state_mb = 8.0});
  t.connect(source, flat_map);
  t.connect(flat_map, count);
  t.connect(count, sink);
  return spec;
}

sim::JobSpec yahoo_streaming(
    std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  // JSON event deserialisation makes the Yahoo source expensive; the
  // Redis-backed window sink is the other heavy stage, which is why the
  // paper's parallelism vectors look like (k, 1, 1, 1, K).
  const auto source = t.add_operator({.name = "source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 90.0,
                                      .process_us = 40.0,
                                      .serialize_us = 20.0,
                                      .state_mb = 16.0});
  const auto deserialize =
      t.add_operator({.name = "deserialize",
                      .kind = sim::OperatorKind::kStateless,
                      .selectivity = 1.0,
                      .deserialize_us = 2.0,
                      .process_us = 7.0,
                      .serialize_us = 1.0,
                      .state_mb = 8.0});
  const auto filter = t.add_operator({.name = "filter",
                                      .kind = sim::OperatorKind::kStateless,
                                      .selectivity = 1.0,
                                      .deserialize_us = 1.0,
                                      .process_us = 4.0,
                                      .serialize_us = 1.0,
                                      .state_mb = 8.0});
  const auto join = t.add_operator({.name = "join",
                                    .kind = sim::OperatorKind::kStateless,
                                    .selectivity = 1.0,
                                    .deserialize_us = 2.0,
                                    .process_us = 8.0,
                                    .serialize_us = 2.0,
                                    .state_mb = 32.0});
  const auto window_sink =
      t.add_operator({.name = "window-sink",
                      .kind = sim::OperatorKind::kSink,
                      .selectivity = 0.0,
                      .deserialize_us = 20.0,
                      .process_us = 340.0,
                      .serialize_us = 40.0,
                      .state_mb = 128.0,
                      .external_service = std::string(kYahooRedisService),
                      .external_calls_per_record = 1.0});
  t.connect(source, deserialize);
  t.connect(deserialize, filter);
  t.connect(filter, join);
  t.connect(join, window_sink);
  spec.services.push_back({.name = kYahooRedisService,
                           .max_calls_per_sec = kYahooRedisCallsPerSec,
                           .burst_sec = 0.5,
                           .call_latency_ms = 0.3});
  return spec;
}

sim::JobSpec nexmark_q5(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  const auto source = t.add_operator({.name = "bids-source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 10.0,
                                      .process_us = 8.0,
                                      .serialize_us = 2.0,
                                      .state_mb = 16.0});
  const auto window =
      t.add_operator({.name = "sliding-window",
                      .kind = sim::OperatorKind::kSlidingWindow,
                      .selectivity = 0.0,
                      .deserialize_us = 60.0,
                      .process_us = 480.0,
                      .serialize_us = 60.0,
                      .state_mb = 192.0});
  t.connect(source, window);
  return spec;
}

sim::JobSpec nexmark_q11(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  const auto source = t.add_operator({.name = "bids-source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 4.0,
                                      .process_us = 3.0,
                                      .serialize_us = 1.0,
                                      .state_mb = 16.0});
  const auto window =
      t.add_operator({.name = "session-window",
                      .kind = sim::OperatorKind::kSessionWindow,
                      .selectivity = 0.0,
                      .deserialize_us = 12.0,
                      .process_us = 84.0,
                      .serialize_us = 12.0,
                      .state_mb = 128.0});
  t.connect(source, window);
  return spec;
}

sim::JobSpec nexmark_q1(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  const auto source = t.add_operator({.name = "bids-source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 3.0,
                                      .process_us = 1.5,
                                      .serialize_us = 0.5,
                                      .state_mb = 8.0});
  const auto convert = t.add_operator({.name = "currency-convert",
                                       .kind = sim::OperatorKind::kStateless,
                                       .selectivity = 1.0,
                                       .deserialize_us = 0.5,
                                       .process_us = 2.0,
                                       .serialize_us = 0.5,
                                       .state_mb = 4.0});
  const auto sink = t.add_operator({.name = "sink",
                                    .kind = sim::OperatorKind::kSink,
                                    .selectivity = 0.0,
                                    .deserialize_us = 0.5,
                                    .process_us = 1.0,
                                    .serialize_us = 0.5,
                                    .state_mb = 4.0});
  t.connect(source, convert);
  t.connect(convert, sink);
  return spec;
}

sim::JobSpec nexmark_q8(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  // One event stream split by type into persons (20%) and auctions (80%),
  // rejoined by a tumbling-window join — the fan-out/fan-in diamond.
  const auto source = t.add_operator({.name = "events-source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 6.0,
                                      .process_us = 3.0,
                                      .serialize_us = 1.0,
                                      .state_mb = 16.0});
  const auto persons = t.add_operator({.name = "persons-filter",
                                       .kind = sim::OperatorKind::kStateless,
                                       .selectivity = 0.2,
                                       .deserialize_us = 1.0,
                                       .process_us = 2.0,
                                       .serialize_us = 1.0,
                                       .state_mb = 8.0});
  const auto auctions = t.add_operator({.name = "auctions-filter",
                                        .kind = sim::OperatorKind::kStateless,
                                        .selectivity = 0.8,
                                        .deserialize_us = 1.0,
                                        .process_us = 2.0,
                                        .serialize_us = 1.0,
                                        .state_mb = 8.0});
  const auto join = t.add_operator({.name = "window-join",
                                    .kind = sim::OperatorKind::kSlidingWindow,
                                    .selectivity = 0.0,
                                    .deserialize_us = 10.0,
                                    .process_us = 64.0,
                                    .serialize_us = 6.0,
                                    .state_mb = 160.0});
  t.connect(source, persons);
  t.connect(source, auctions);
  t.connect(persons, join);
  t.connect(auctions, join);
  return spec;
}

sim::JobSpec synthetic_chain(std::size_t n,
                             std::shared_ptr<const sim::RateSchedule> schedule,
                             double cost_us) {
  if (n < 2) {
    throw std::invalid_argument("synthetic_chain: need at least 2 operators");
  }
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  for (std::size_t i = 0; i < n; ++i) {
    sim::OperatorSpec op;
    op.name = "op" + std::to_string(i);
    op.kind = i == 0 ? sim::OperatorKind::kSource
                     : (i + 1 == n ? sim::OperatorKind::kSink
                                   : sim::OperatorKind::kStateless);
    op.selectivity = i + 1 == n ? 0.0 : 1.0;
    op.process_us = cost_us;
    op.state_mb = 16.0;
    t.add_operator(op);
    if (i > 0) t.connect(i - 1, i);
  }
  return spec;
}

}  // namespace autra::workloads

#include "workloads/workloads.hpp"

#include <stdexcept>

namespace autra::workloads {

namespace {

sim::JobSpec base_spec(std::shared_ptr<const sim::RateSchedule> schedule) {
  if (!schedule) {
    throw std::invalid_argument("workload: null rate schedule");
  }
  sim::JobSpec spec;
  spec.cluster = sim::paper_cluster();
  spec.schedule = std::move(schedule);
  return spec;
}

}  // namespace

sim::JobSpec word_count(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  const auto source = t.add_operator({.name = "source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 0.6,
                                      .process_us = 0.4,
                                      .serialize_us = 0.2,
                                      .state_mb = 8.0});
  const auto flat_map = t.add_operator({.name = "flatmap",
                                        .kind = sim::OperatorKind::kStateless,
                                        .selectivity = 1.8,
                                        .deserialize_us = 0.4,
                                        .process_us = 1.2,
                                        .serialize_us = 0.4,
                                        .state_mb = 8.0});
  const auto count = t.add_operator({.name = "count",
                                     .kind = sim::OperatorKind::kKeyedAggregate,
                                     .selectivity = 1.0,
                                     .deserialize_us = 0.6,
                                     .process_us = 3.0,
                                     .serialize_us = 0.4,
                                     .state_mb = 96.0});
  const auto sink = t.add_operator({.name = "sink",
                                    .kind = sim::OperatorKind::kSink,
                                    .selectivity = 0.0,
                                    .deserialize_us = 0.4,
                                    .process_us = 1.8,
                                    .serialize_us = 0.3,
                                    .state_mb = 8.0});
  t.connect(source, flat_map);
  t.connect(flat_map, count);
  t.connect(count, sink);
  return spec;
}

sim::JobSpec yahoo_streaming(
    std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  // JSON event deserialisation makes the Yahoo source expensive; the
  // Redis-backed window sink is the other heavy stage, which is why the
  // paper's parallelism vectors look like (k, 1, 1, 1, K).
  const auto source = t.add_operator({.name = "source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 90.0,
                                      .process_us = 40.0,
                                      .serialize_us = 20.0,
                                      .state_mb = 16.0});
  const auto deserialize =
      t.add_operator({.name = "deserialize",
                      .kind = sim::OperatorKind::kStateless,
                      .selectivity = 1.0,
                      .deserialize_us = 2.0,
                      .process_us = 7.0,
                      .serialize_us = 1.0,
                      .state_mb = 8.0});
  const auto filter = t.add_operator({.name = "filter",
                                      .kind = sim::OperatorKind::kStateless,
                                      .selectivity = 1.0,
                                      .deserialize_us = 1.0,
                                      .process_us = 4.0,
                                      .serialize_us = 1.0,
                                      .state_mb = 8.0});
  const auto join = t.add_operator({.name = "join",
                                    .kind = sim::OperatorKind::kStateless,
                                    .selectivity = 1.0,
                                    .deserialize_us = 2.0,
                                    .process_us = 8.0,
                                    .serialize_us = 2.0,
                                    .state_mb = 32.0});
  const auto window_sink =
      t.add_operator({.name = "window-sink",
                      .kind = sim::OperatorKind::kSink,
                      .selectivity = 0.0,
                      .deserialize_us = 20.0,
                      .process_us = 340.0,
                      .serialize_us = 40.0,
                      .state_mb = 128.0,
                      .external_service = std::string(kYahooRedisService),
                      .external_calls_per_record = 1.0});
  t.connect(source, deserialize);
  t.connect(deserialize, filter);
  t.connect(filter, join);
  t.connect(join, window_sink);
  spec.services.push_back({.name = kYahooRedisService,
                           .max_calls_per_sec = kYahooRedisCallsPerSec,
                           .burst_sec = 0.5,
                           .call_latency_ms = 0.3});
  return spec;
}

sim::JobSpec nexmark_q5(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  const auto source = t.add_operator({.name = "bids-source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 10.0,
                                      .process_us = 8.0,
                                      .serialize_us = 2.0,
                                      .state_mb = 16.0});
  const auto window =
      t.add_operator({.name = "sliding-window",
                      .kind = sim::OperatorKind::kSlidingWindow,
                      .selectivity = 0.0,
                      .deserialize_us = 60.0,
                      .process_us = 480.0,
                      .serialize_us = 60.0,
                      .state_mb = 192.0});
  t.connect(source, window);
  return spec;
}

sim::JobSpec nexmark_q11(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  const auto source = t.add_operator({.name = "bids-source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 4.0,
                                      .process_us = 3.0,
                                      .serialize_us = 1.0,
                                      .state_mb = 16.0});
  const auto window =
      t.add_operator({.name = "session-window",
                      .kind = sim::OperatorKind::kSessionWindow,
                      .selectivity = 0.0,
                      .deserialize_us = 12.0,
                      .process_us = 84.0,
                      .serialize_us = 12.0,
                      .state_mb = 128.0});
  t.connect(source, window);
  return spec;
}

sim::JobSpec nexmark_q1(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  const auto source = t.add_operator({.name = "bids-source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 3.0,
                                      .process_us = 1.5,
                                      .serialize_us = 0.5,
                                      .state_mb = 8.0});
  const auto convert = t.add_operator({.name = "currency-convert",
                                       .kind = sim::OperatorKind::kStateless,
                                       .selectivity = 1.0,
                                       .deserialize_us = 0.5,
                                       .process_us = 2.0,
                                       .serialize_us = 0.5,
                                       .state_mb = 4.0});
  const auto sink = t.add_operator({.name = "sink",
                                    .kind = sim::OperatorKind::kSink,
                                    .selectivity = 0.0,
                                    .deserialize_us = 0.5,
                                    .process_us = 1.0,
                                    .serialize_us = 0.5,
                                    .state_mb = 4.0});
  t.connect(source, convert);
  t.connect(convert, sink);
  return spec;
}

sim::JobSpec nexmark_q8(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  // One event stream split by type into persons (20%) and auctions (80%),
  // rejoined by a tumbling-window join — the fan-out/fan-in diamond.
  const auto source = t.add_operator({.name = "events-source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 6.0,
                                      .process_us = 3.0,
                                      .serialize_us = 1.0,
                                      .state_mb = 16.0});
  const auto persons = t.add_operator({.name = "persons-filter",
                                       .kind = sim::OperatorKind::kStateless,
                                       .selectivity = 0.2,
                                       .deserialize_us = 1.0,
                                       .process_us = 2.0,
                                       .serialize_us = 1.0,
                                       .state_mb = 8.0});
  const auto auctions = t.add_operator({.name = "auctions-filter",
                                        .kind = sim::OperatorKind::kStateless,
                                        .selectivity = 0.8,
                                        .deserialize_us = 1.0,
                                        .process_us = 2.0,
                                        .serialize_us = 1.0,
                                        .state_mb = 8.0});
  const auto join = t.add_operator({.name = "window-join",
                                    .kind = sim::OperatorKind::kSlidingWindow,
                                    .selectivity = 0.0,
                                    .deserialize_us = 10.0,
                                    .process_us = 64.0,
                                    .serialize_us = 6.0,
                                    .state_mb = 160.0});
  t.connect(source, persons);
  t.connect(source, auctions);
  t.connect(persons, join);
  t.connect(auctions, join);
  return spec;
}

sim::JobSpec stream_stream_join(
    std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  const auto clicks = t.add_operator({.name = "clicks-source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 4.0,
                                      .process_us = 3.0,
                                      .serialize_us = 1.0,
                                      .state_mb = 16.0});
  const auto impressions =
      t.add_operator({.name = "impressions-source",
                      .kind = sim::OperatorKind::kSource,
                      .selectivity = 1.0,
                      .deserialize_us = 4.0,
                      .process_us = 3.0,
                      .serialize_us = 1.0,
                      .state_mb = 16.0});
  // Both join sides live in one keyed operator: every record probes the
  // other side's window and appends to its own, so per-record cost and
  // state are both high.
  const auto join = t.add_operator({.name = "interval-join",
                                    .kind = sim::OperatorKind::kKeyedAggregate,
                                    .selectivity = 0.8,
                                    .deserialize_us = 3.0,
                                    .process_us = 18.0,
                                    .serialize_us = 3.0,
                                    .state_mb = 384.0});
  const auto project = t.add_operator({.name = "project",
                                       .kind = sim::OperatorKind::kStateless,
                                       .selectivity = 1.0,
                                       .deserialize_us = 0.5,
                                       .process_us = 2.0,
                                       .serialize_us = 0.5,
                                       .state_mb = 8.0});
  const auto sink = t.add_operator({.name = "sink",
                                    .kind = sim::OperatorKind::kSink,
                                    .selectivity = 0.0,
                                    .deserialize_us = 0.5,
                                    .process_us = 1.5,
                                    .serialize_us = 0.5,
                                    .state_mb = 8.0});
  t.connect(clicks, join);
  t.connect(impressions, join);
  t.connect(join, project);
  t.connect(project, sink);
  return spec;
}

sim::JobSpec sessionization(
    std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  const auto source = t.add_operator({.name = "events-source",
                                      .kind = sim::OperatorKind::kSource,
                                      .selectivity = 1.0,
                                      .deserialize_us = 5.0,
                                      .process_us = 3.0,
                                      .serialize_us = 1.0,
                                      .state_mb = 16.0});
  // Keyed by user, hot users make it skew-prone; ~20 events per closed
  // session gives selectivity 0.05.
  const auto sessionize =
      t.add_operator({.name = "sessionize",
                      .kind = sim::OperatorKind::kSessionWindow,
                      .selectivity = 0.05,
                      .deserialize_us = 8.0,
                      .process_us = 56.0,
                      .serialize_us = 8.0,
                      .state_mb = 256.0,
                      .key_skew = 0.6});
  const auto enrich = t.add_operator({.name = "enrich",
                                      .kind = sim::OperatorKind::kStateless,
                                      .selectivity = 1.0,
                                      .deserialize_us = 2.0,
                                      .process_us = 6.0,
                                      .serialize_us = 2.0,
                                      .state_mb = 16.0});
  const auto sink = t.add_operator({.name = "sink",
                                    .kind = sim::OperatorKind::kSink,
                                    .selectivity = 0.0,
                                    .deserialize_us = 1.0,
                                    .process_us = 2.0,
                                    .serialize_us = 1.0,
                                    .state_mb = 8.0});
  t.connect(source, sessionize);
  t.connect(sessionize, enrich);
  t.connect(enrich, sink);
  return spec;
}

sim::JobSpec fanin_tree(std::shared_ptr<const sim::RateSchedule> schedule) {
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  // 4 sharded sources -> 4 local pre-aggregates -> 2 combiners -> root
  // aggregate -> sink: every level is a shuffle that can cross racks.
  std::size_t sources[4];
  std::size_t preaggs[4];
  for (int i = 0; i < 4; ++i) {
    sources[i] =
        t.add_operator({.name = "shard-source-" + std::to_string(i),
                        .kind = sim::OperatorKind::kSource,
                        .selectivity = 1.0,
                        .deserialize_us = 3.0,
                        .process_us = 2.0,
                        .serialize_us = 1.0,
                        .state_mb = 8.0});
    preaggs[i] =
        t.add_operator({.name = "pre-agg-" + std::to_string(i),
                        .kind = sim::OperatorKind::kKeyedAggregate,
                        .selectivity = 0.25,
                        .deserialize_us = 1.0,
                        .process_us = 6.0,
                        .serialize_us = 1.0,
                        .state_mb = 64.0});
    t.connect(sources[i], preaggs[i]);
  }
  std::size_t combiners[2];
  for (int i = 0; i < 2; ++i) {
    combiners[i] =
        t.add_operator({.name = "combine-" + std::to_string(i),
                        .kind = sim::OperatorKind::kKeyedAggregate,
                        .selectivity = 0.5,
                        .deserialize_us = 1.0,
                        .process_us = 8.0,
                        .serialize_us = 2.0,
                        .state_mb = 96.0});
    t.connect(preaggs[2 * i], combiners[i]);
    t.connect(preaggs[2 * i + 1], combiners[i]);
  }
  const auto root = t.add_operator({.name = "root-agg",
                                    .kind = sim::OperatorKind::kKeyedAggregate,
                                    .selectivity = 0.1,
                                    .deserialize_us = 2.0,
                                    .process_us = 12.0,
                                    .serialize_us = 2.0,
                                    .state_mb = 128.0});
  t.connect(combiners[0], root);
  t.connect(combiners[1], root);
  const auto sink = t.add_operator({.name = "sink",
                                    .kind = sim::OperatorKind::kSink,
                                    .selectivity = 0.0,
                                    .deserialize_us = 0.5,
                                    .process_us = 1.5,
                                    .serialize_us = 0.5,
                                    .state_mb = 8.0});
  t.connect(root, sink);
  return spec;
}

sim::JobSpec synthetic_chain(std::size_t n,
                             std::shared_ptr<const sim::RateSchedule> schedule,
                             double cost_us) {
  if (n < 2) {
    throw std::invalid_argument("synthetic_chain: need at least 2 operators");
  }
  sim::JobSpec spec = base_spec(std::move(schedule));
  sim::Topology& t = spec.topology;
  for (std::size_t i = 0; i < n; ++i) {
    sim::OperatorSpec op;
    op.name = "op" + std::to_string(i);
    op.kind = i == 0 ? sim::OperatorKind::kSource
                     : (i + 1 == n ? sim::OperatorKind::kSink
                                   : sim::OperatorKind::kStateless);
    op.selectivity = i + 1 == n ? 0.0 : 1.0;
    op.process_us = cost_us;
    op.state_mb = 16.0;
    t.add_operator(op);
    if (i > 0) t.connect(i - 1, i);
  }
  return spec;
}

}  // namespace autra::workloads

// The paper's four evaluation workloads as simulator job specs.
//
// Per-record costs are calibrated so the *shape* of the paper's results
// holds on the simulated 3x20-core cluster (sub-linear scaling, which
// operators dominate, where the Redis cap bites), not the absolute numbers
// of the authors' testbed — see EXPERIMENTS.md for the mapping.
#pragma once

#include <memory>

#include "streamsim/job_runner.hpp"

namespace autra::workloads {

/// WordCount streaming job (paper Sec. II & V-B): a linear 4-operator DAG
///   Source -> FlatMap -> Count -> Sink
/// FlatMap expands lines to words (selectivity > 1), so the keyed Count is
/// the bottleneck — a single pipeline sustains roughly 150k lines/s and
/// scales sub-linearly, matching Fig. 2.
[[nodiscard]] sim::JobSpec word_count(
    std::shared_ptr<const sim::RateSchedule> schedule);

/// Yahoo streaming benchmark, extended version (paper Fig. 4), collapsed to
/// the 5 scaling groups the paper reports parallelism vectors for:
///   Source -> Deserialize -> Filter -> Join -> WindowSink
/// WindowSink reads/writes Redis; the Redis service rate cap keeps the
/// job's throughput below the input rate at any parallelism (Fig. 5(b)).
[[nodiscard]] sim::JobSpec yahoo_streaming(
    std::shared_ptr<const sim::RateSchedule> schedule);

/// Name of the Redis stand-in service inside yahoo_streaming().
inline constexpr const char* kYahooRedisService = "redis";

/// Aggregate Redis capacity (calls/s) used by yahoo_streaming().
inline constexpr double kYahooRedisCallsPerSec = 40000.0;

/// Nexmark Query5 (hot items, sliding window): Source -> SlidingWindow.
/// The window aggregate is heavy (~600 us/record), so moderate input rates
/// already need double-digit window parallelism.
[[nodiscard]] sim::JobSpec nexmark_q5(
    std::shared_ptr<const sim::RateSchedule> schedule);

/// Nexmark Query11 (bids per session, session window): Source ->
/// SessionWindow. Lighter per-record cost than Query5 but higher rates.
[[nodiscard]] sim::JobSpec nexmark_q11(
    std::shared_ptr<const sim::RateSchedule> schedule);

/// Nexmark Query1 (currency conversion): Source -> Map -> Sink, all
/// stateless and cheap — the fully chainable pipeline every streaming
/// system uses as its lightest benchmark.
[[nodiscard]] sim::JobSpec nexmark_q1(
    std::shared_ptr<const sim::RateSchedule> schedule);

/// Nexmark Query8 (new-user monitor): one event stream split by type into
/// persons (20%) and auctions (80%) and rejoined by a tumbling-window
/// join — the fan-out/fan-in diamond that exercises multi-input scaling.
[[nodiscard]] sim::JobSpec nexmark_q8(
    std::shared_ptr<const sim::RateSchedule> schedule);

/// Stream-stream join (ad attribution): two sources (Clicks and
/// Impressions) feeding one state-heavy keyed join —
///   {Clicks, Impressions} -> Join -> Project -> Sink
/// Both sources pull from the shared ingest log in topology order, so
/// their capacities gate each other; the join holds both sides' windows
/// (384 MB/instance), making rescales expensive to move.
[[nodiscard]] sim::JobSpec stream_stream_join(
    std::shared_ptr<const sim::RateSchedule> schedule);

/// Sessionization pipeline: Source -> Sessionize -> Enrich -> Sink.
/// The session-window stage is keyed by user and deliberately skewed
/// (key_skew = 0.6: a hot user keeps one instance at 1.6x the uniform
/// share), so policies that assume uniform keys overestimate its
/// capacity; sessions close at ~1/20th the record rate (selectivity
/// 0.05).
[[nodiscard]] sim::JobSpec sessionization(
    std::shared_ptr<const sim::RateSchedule> schedule);

/// Fan-in aggregation tree: four sharded sources each pre-aggregate
/// locally, pairs combine, and a root aggregate feeds the sink —
/// 12 operators in a 4 -> 4 -> 2 -> 1 -> 1 tree. The deep fan-in is the
/// worst case for the rack/uplink network model: every tree level is a
/// shuffle that can cross racks.
[[nodiscard]] sim::JobSpec fanin_tree(
    std::shared_ptr<const sim::RateSchedule> schedule);

/// A synthetic linear chain of `n` operators with uniform costs — used by
/// the Table-IV overhead benchmark and the property-test suites, where the
/// topology's size matters but its content does not.
[[nodiscard]] sim::JobSpec synthetic_chain(
    std::size_t n, std::shared_ptr<const sim::RateSchedule> schedule,
    double cost_us = 10.0);

}  // namespace autra::workloads

#include "fault/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "baselines/dhalion.hpp"
#include "baselines/threshold.hpp"
#include "core/controller.hpp"
#include "core/throughput_opt.hpp"
#include "fault/fault_injecting_backend.hpp"
#include "runtime/metrics.hpp"

namespace autra::fault {

namespace {

/// One live Dhalion control step: the same diagnose -> culprit -> pressure
/// resolution DhalionPolicy::run applies offline, against the latest
/// window snapshot. No rollback/blacklist — a live loop cannot replay a
/// window to compare.
runtime::Parallelism dhalion_step(const baselines::DhalionPolicy& policy,
                                  const sim::Topology& topology,
                                  const runtime::JobMetrics& m,
                                  int max_parallelism) {
  std::vector<std::size_t> bottlenecks = policy.diagnose(m);
  if (m.lag_growth_per_sec > 0.01 * std::max(m.input_rate, 1.0)) {
    for (std::size_t s : topology.sources()) {
      if (std::find(bottlenecks.begin(), bottlenecks.end(), s) ==
          bottlenecks.end()) {
        bottlenecks.push_back(s);
      }
    }
  }
  runtime::Parallelism next = m.parallelism;
  for (std::size_t b : bottlenecks) {
    const std::size_t op = policy.culprit_of(m, b);
    const runtime::OperatorRates& r = m.operators[op];
    const double capacity =
        r.true_rate_per_instance * std::max(r.parallelism, 1);
    const double demand =
        std::max(r.total_input_rate, m.operators[b].total_input_rate);
    const double pressure = capacity > 0.0 ? demand / capacity : 1.5;
    const int target = static_cast<int>(
        std::ceil(next[op] * std::max(pressure, 1.0 + 1e-3)));
    next[op] = std::clamp(std::max(target, next[op] + 1), 1, max_parallelism);
  }
  return next;
}

/// Fills the QoS half of the report from the session's ground-truth
/// history (gauges arrive at ~1 Hz, so sample counts are seconds).
void summarize(const sim::ScalingSession& session,
               const FaultSchedule& schedule, double horizon,
               ResilienceReport& r) {
  namespace mn = runtime::metric_names;
  const runtime::MetricStore& db = session.history();
  const runtime::MetricId thr_id = db.find(mn::kThroughput);
  const runtime::MetricId rate_id = db.find(mn::kInputRate);
  const runtime::MetricId lag_id = db.find(mn::kKafkaLag);
  r.mean_throughput = db.mean(thr_id, 0.0, horizon).value_or(0.0);
  r.mean_input_rate = db.mean(rate_id, 0.0, horizon).value_or(0.0);
  if (lag_id.valid()) {
    for (double v : db.series(lag_id).values) {
      r.max_lag = std::max(r.max_lag, v);
    }
    if (const auto last = db.last(lag_id)) r.end_lag = last->value;
  }
  if (!thr_id.valid() || !rate_id.valid()) return;
  const runtime::MetricStore::SeriesView thr = db.series(thr_id);
  const runtime::MetricStore::SeriesView rate = db.series(rate_id);
  const std::size_t n = std::min(thr.values.size(), rate.values.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (thr.values[i] < 0.9 * rate.values[i]) r.violation_sec += 1.0;
  }
  if (schedule.empty()) {
    r.recovery_sec = 0.0;
    return;
  }
  const double fault_end = schedule.last_fault_end();
  int streak = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (thr.times[i] < fault_end) continue;
    if (thr.values[i] >= 0.9 * rate.values[i]) {
      if (++streak >= 5) {
        r.recovery_sec = thr.times[i] - fault_end;
        return;
      }
    } else {
      streak = 0;
    }
  }
  r.recovery_sec = -1.0;
}

}  // namespace

std::vector<std::string> resilience_policies() {
  return {"autrascale", "threshold", "ds2", "dhalion", "static"};
}

ResilienceReport run_resilience(const std::string& policy,
                                const sim::JobSpec& spec,
                                const FaultSchedule& schedule,
                                const ResilienceOptions& options) {
  const std::vector<std::string> known = resilience_policies();
  if (std::find(known.begin(), known.end(), policy) == known.end()) {
    std::string msg = "run_resilience: unknown policy '" + policy +
                      "'; valid policies:";
    for (const std::string& name : known) msg += " " + name;
    throw std::invalid_argument(msg);
  }
  if (options.horizon_sec <= 0.0 || options.policy_interval_sec <= 0.0) {
    throw std::invalid_argument("run_resilience: bad options");
  }

  sim::JobSpec job = spec;
  job.engine.seed += options.seed * 6151;  // decorrelate seeded reruns
  const sim::Parallelism initial =
      options.initial.empty()
          ? sim::Parallelism(job.topology.num_operators(), 1)
          : options.initial;
  sim::ScalingSession session(job, initial);
  FaultInjectingBackend faulted(session, schedule);

  ResilienceReport report;
  report.policy = policy;
  const int max_parallelism = sim::Cluster(job.cluster).max_parallelism();
  const double interval = options.policy_interval_sec;

  if (policy == "static") {
    faulted.run_for(options.horizon_sec);
  } else if (policy == "autrascale") {
    core::ControllerParams params;
    params.steady.target_latency_ms = options.target_latency_ms;
    params.steady.target_throughput = 0.0;  // track the input rate
    params.steady.bootstrap_m = 4;
    params.steady.max_evaluations = 24;
    params.policy_interval_sec = interval;
    params.policy_running_time_sec = 2.0 * interval;
    params.resilience.metric_interval_sec = job.engine.metric_interval_sec;
    params.resilience.failure_cooldown_sec = interval;
    core::AuTraScaleController controller(
        job.topology, sim::make_trial_service(job), params);
    for (const core::ControlDecision& d :
         controller.run(faulted, options.horizon_sec)) {
      if (!d.execute_failed) ++report.decisions;
    }
    report.unhealthy_windows = controller.stats().unhealthy_windows;
    report.rescale_retries = controller.stats().rescale_retries;
  } else {
    // Reactive baselines: the published step rule fires every interval
    // against the engine's own window counters, with no Execute retry — a
    // failed rescale is simply lost until the rule fires again.
    baselines::ThresholdParams tp;
    tp.max_parallelism = max_parallelism;
    const baselines::ThresholdPolicy threshold(tp);
    baselines::DhalionParams dp;
    dp.max_parallelism = max_parallelism;
    const baselines::DhalionPolicy dhalion(job.topology, dp);
    while (faulted.now() < options.horizon_sec) {
      faulted.reset_window();
      faulted.run_for(
          std::min(interval, options.horizon_sec - faulted.now()));
      const runtime::JobMetrics m = faulted.window_metrics();
      runtime::Parallelism next;
      if (policy == "threshold") {
        next = threshold.step(m);
      } else if (policy == "ds2") {
        next = core::scale_step(job.topology, m, m.input_rate,
                                max_parallelism);
      } else {
        next = dhalion_step(dhalion, job.topology, m, max_parallelism);
      }
      if (next == faulted.parallelism()) continue;
      try {
        faulted.reconfigure(next);
        ++report.decisions;
      } catch (const runtime::RescaleFailed&) {
      }
    }
  }

  summarize(session, schedule, options.horizon_sec, report);
  report.failed_rescales = faulted.failed_rescales();
  report.restarts = session.restarts();
  report.failure_restarts = session.failure_restarts();
  return report;
}

}  // namespace autra::fault

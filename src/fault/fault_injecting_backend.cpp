#include "fault/fault_injecting_backend.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "fault/fault_host.hpp"

namespace autra::fault {

namespace {
constexpr double kEps = 1e-9;
}

FaultInjectingBackend::FaultInjectingBackend(runtime::StreamingBackend& inner,
                                             FaultSchedule schedule)
    : inner_(inner), schedule_(std::move(schedule)) {
  mirror_metrics_ = schedule_.has_metric_faults();
  failure_budget_.reserve(schedule_.events().size());
  for (const FaultEvent& e : schedule_.events()) {
    failure_budget_.push_back(
        e.kind == FaultKind::kRescaleFailure && e.magnitude > 0.0
            ? static_cast<int>(e.magnitude)
            : -1);
  }
  deliver_host_faults();
  if (mirror_metrics_) sync_history();
}

void FaultInjectingBackend::deliver_host_faults() {
  if (!schedule_.has_host_faults()) return;
  auto* host = dynamic_cast<FaultHost*>(&inner_);
  if (host == nullptr) {
    throw std::invalid_argument(
        "FaultInjectingBackend: schedule contains engine-level faults but "
        "the inner backend does not implement fault::FaultHost");
  }
  for (const FaultEvent& e : schedule_.events()) {
    switch (e.kind) {
      case FaultKind::kMachineDown:
        host->host_machine_down(e.machine, e.at, e.end(),
                                e.detection_delay_sec);
        break;
      case FaultKind::kSlowNode:
        host->host_slow_node(e.machine, e.magnitude, e.at, e.end());
        break;
      case FaultKind::kServiceOutage:
        host->host_service_outage(e.service, e.at, e.end());
        break;
      case FaultKind::kIngestStall:
        host->host_ingest_stall(e.at, e.end());
        break;
      case FaultKind::kRackDown:
        host->host_rack_down(e.machines, e.at, e.end(),
                             e.detection_delay_sec);
        break;
      case FaultKind::kNetworkPartition:
        host->host_network_partition(e.machines, e.at, e.end());
        break;
      case FaultKind::kMetricDropout:
      case FaultKind::kMetricDelay:
      case FaultKind::kRescaleFailure:
        break;  // Handled by the decorator itself.
    }
  }
}

bool FaultInjectingBackend::dropped_at(double t) const noexcept {
  for (const FaultEvent& e : schedule_.events()) {
    if (e.kind == FaultKind::kMetricDropout && t >= e.at && t < e.end()) {
      return true;
    }
  }
  return false;
}

double FaultInjectingBackend::reveal_time(double t) const noexcept {
  double reveal = t;
  for (const FaultEvent& e : schedule_.events()) {
    if (e.kind == FaultKind::kMetricDelay && t >= e.at && t < e.end()) {
      reveal = std::max(reveal, t + e.magnitude);
    }
  }
  return reveal;
}

void FaultInjectingBackend::sync_history() {
  const runtime::MetricStore& source = inner_.history();
  const runtime::MetricRegistry& registry = source.registry();
  const double now = inner_.now();
  for (std::uint32_t s = 0; s < registry.size(); ++s) {
    const runtime::MetricId id(s);
    if (s >= cursor_.size()) {
      cursor_.push_back(0);
      mirror_ids_.push_back(mirror_.resolve(registry.name(id)));
    }
    const runtime::MetricStore::SeriesView view = source.series(id);
    std::size_t& cur = cursor_[s];
    // Points are revealed in timestamp order: a delayed point stalls
    // everything behind it in the same series, like a real backed-up
    // metrics pipeline. Dropped points are skipped for good.
    while (cur < view.times.size()) {
      const double t = view.times[cur];
      if (dropped_at(t)) {
        ++cur;
        continue;
      }
      if (reveal_time(t) > now + kEps) break;
      mirror_.record(mirror_ids_[s], t, view.values[cur]);
      ++cur;
    }
  }
}

void FaultInjectingBackend::run_for(double sec) {
  inner_.run_for(sec);
  if (mirror_metrics_) sync_history();
}

void FaultInjectingBackend::reconfigure(const runtime::Parallelism& p,
                                        runtime::RescaleMode mode) {
  // A no-op reconfigure (same config) cannot fail — forward it untouched
  // so the decorator keeps the inner backend's no-op semantics.
  if (p != inner_.parallelism()) {
    const double t = inner_.now();
    const std::vector<FaultEvent>& events = schedule_.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const FaultEvent& e = events[i];
      if (e.kind != FaultKind::kRescaleFailure) continue;
      if (t < e.at || t >= e.end() || failure_budget_[i] == 0) continue;
      if (failure_budget_[i] > 0) --failure_budget_[i];
      ++failed_rescales_;
      throw runtime::RescaleFailed(
          "FaultInjectingBackend: injected transient rescale failure at t=" +
          std::to_string(t));
    }
  }
  inner_.reconfigure(p, mode);
}

}  // namespace autra::fault

// Chaos-mode fault generation: a seed-deterministic sampler that turns a
// ChaosProfile (event-mix weights, intensity, horizon, cluster shape) into
// a valid FaultSchedule.
//
// The canned schedules in fault_schedule.cpp are three hand-written
// stories; chaos mode is the space *between* them — hundreds of seeded,
// structurally valid schedules that exercise the controller in
// combinations no hand would write. Every event the generator emits passes
// the same validation the FaultSchedule builders enforce, machine and rack
// indices always refer to real cluster members, and partitions are always
// proper subsets, so a generated schedule can be handed straight to
// FaultInjectingBackend. Identical (profile, seed) pairs produce
// bit-identical schedules, which is the foundation of both the
// property-based harness and the golden-trace corpus.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_schedule.hpp"
#include "streamsim/cluster.hpp"
#include "streamsim/job_runner.hpp"

namespace autra::fault {

/// Relative weights of the event classes a chaos draw picks from. Weights
/// are relative, not probabilities — only ratios matter. A zero weight
/// removes the class entirely (the way the conformance suite disables
/// uncommanded restarts).
struct ChaosMix {
  double machine_down = 1.0;
  double slow_node = 2.0;
  double service_outage = 1.0;
  double ingest_stall = 1.0;
  double metric_dropout = 1.5;
  double metric_delay = 1.0;
  double rescale_failure = 1.0;
  double rack_down = 0.5;
  double network_partition = 0.5;

  friend bool operator==(const ChaosMix&, const ChaosMix&) = default;
};

/// Everything the generator needs to know to sample valid schedules.
struct ChaosProfile {
  ChaosMix mix;
  /// Events are placed so their windows (and machine-down detection
  /// delays) finish inside the horizon — the recovery-drain property needs
  /// a fault-free tail to measure in.
  double horizon_sec = 1800.0;
  /// Expected number of events per 300 simulated seconds. 0 is legal and
  /// yields the empty schedule (the bit-identical-to-fault-free baseline).
  double intensity = 1.0;
  /// Cluster shape: indices sampled for machine/rack/partition events.
  std::size_t num_machines = 0;
  /// Rack groups (each a machine-index set) for correlated crashes;
  /// rack_down weight is ignored when empty.
  std::vector<std::vector<std::size_t>> racks;
  /// Failure domains for network partitions. When at least two domains are
  /// present, a partition island is a union of a proper subset of them —
  /// real partitions sever rack uplinks, so islands align with the
  /// topology's failure domains instead of sampling arbitrary machine
  /// subsets. for_cluster() fills this with *every* rack (singletons
  /// included: a one-machine rack is still its own uplink domain). Empty
  /// falls back to per-machine islands; network_partition weight is gated
  /// off when neither form is possible.
  std::vector<std::vector<std::size_t>> partition_domains;
  /// Candidate services for outages; service_outage weight is ignored when
  /// empty.
  std::vector<std::string> services;
  /// Event-duration bounds: uniform in [min_duration_sec,
  /// max_duration_frac * horizon_sec].
  double min_duration_sec = 20.0;
  double max_duration_frac = 0.12;
  /// Time correlation of event onsets, in [0, 1). 0 (the default) keeps
  /// the legacy independent-uniform placements — and the legacy RNG
  /// stream, so existing golden schedules are untouched. > 0 draws
  /// onsets from the arrival subsystem's Hawkes sampler with this
  /// branching ratio: each fault raises the odds of another right
  /// behind it, so faults land in storms separated by calm (the
  /// "everything pages at once" incident shape).
  double burst_clustering = 0.0;

  /// Profile for a cluster: machine count, rack groups, default mix.
  [[nodiscard]] static ChaosProfile for_cluster(const sim::Cluster& cluster,
                                                double horizon_sec = 1800.0,
                                                double intensity = 1.0);
  /// Profile for a job: for_cluster() plus the job's external services.
  [[nodiscard]] static ChaosProfile for_job(const sim::JobSpec& spec,
                                            double horizon_sec = 1800.0,
                                            double intensity = 1.0);
};

/// The sampler. Construction validates the profile (and throws
/// std::invalid_argument on nonsense: negative weights, empty cluster,
/// out-of-range rack members, no usable event class at positive
/// intensity); generate() is const and thread-safe — each call owns its
/// RNG, so the same seed gives the same schedule regardless of what other
/// threads are generating.
class ChaosGenerator {
 public:
  explicit ChaosGenerator(ChaosProfile profile);

  /// Samples one schedule. Deterministic in `seed`: same profile + same
  /// seed is bit-identical, different seeds decorrelate.
  [[nodiscard]] FaultSchedule generate(std::uint64_t seed) const;

  [[nodiscard]] const ChaosProfile& profile() const noexcept {
    return profile_;
  }

  /// The event classes actually drawable under this profile (positive
  /// weight and structurally possible), in draw order — exposed so tests
  /// can assert the gating logic.
  [[nodiscard]] const std::vector<FaultKind>& enabled_kinds() const noexcept {
    return kinds_;
  }

 private:
  ChaosProfile profile_;
  std::vector<FaultKind> kinds_;
  std::vector<double> cumulative_;  ///< Prefix sums of effective weights.
};

}  // namespace autra::fault

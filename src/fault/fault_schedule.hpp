// Deterministic fault injection: the event taxonomy and the seedable
// schedule that drives it.
//
// The paper's MAPE loop assumes a healthy cluster — metrics always arrive,
// restarts always succeed, machines never die. Production does not. A
// FaultSchedule is a reproducible stream of adversity: every event carries
// an absolute simulation-time window, so the same schedule (and seed)
// produces the same run, bit for bit. Schedules are consumed by
// FaultInjectingBackend, which applies metric-path and Execute-path faults
// itself and delivers engine-level events to any backend implementing
// FaultHost (the fluid simulator's ScalingSession does).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace autra::fault {

/// The failure classes the subsystem can create (StreamShield's taxonomy
/// for Flink-at-scale, adapted to this repository's observables).
enum class FaultKind {
  kMachineDown,     ///< Task-manager loss: instances gone until recovery.
  kSlowNode,        ///< Degraded machine (co-tenant burst, failing disk).
  kServiceOutage,   ///< External (Redis-like) service unreachable.
  kIngestStall,     ///< Source cannot fetch from Kafka; lag accumulates.
  kMetricDropout,   ///< Gauges in the window are lost, never delivered.
  kMetricDelay,     ///< Gauges arrive late (stalled metrics pipeline).
  kRescaleFailure,  ///< reconfigure() fails transiently (savepoint timeout).
  kRackDown,        ///< Correlated crash: a rack's machines die together.
  kNetworkPartition,  ///< Machines split; cross-cut operator edges stall.
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// One fault, active during [at, at + duration).
struct FaultEvent {
  FaultKind kind = FaultKind::kMachineDown;
  double at = 0.0;
  double duration = 0.0;
  /// kMachineDown / kSlowNode: which machine.
  std::size_t machine = 0;
  /// kSlowNode: speed factor in (0, 1); kMetricDelay: delay seconds;
  /// kRescaleFailure: number of attempts that fail (0 = every attempt in
  /// the window).
  double magnitude = 0.0;
  /// kMachineDown / kRackDown: seconds from the crash until the framework
  /// notices and forces a restart (one restart per event, even for a rack).
  double detection_delay_sec = 0.0;
  /// kServiceOutage: which service.
  std::string service;
  /// kRackDown: the machines crashing together; kNetworkPartition: the
  /// island cut off from the rest of the cluster.
  std::vector<std::size_t> machines;

  [[nodiscard]] double end() const noexcept { return at + duration; }

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// An ordered, validated collection of fault events. Immutable once handed
/// to a backend; the builder methods return *this for chaining.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  /// Builds a schedule from a hand-assembled (possibly unsorted) event
  /// vector: every event is validated exactly as the builder methods
  /// validate it, then the set is stable-sorted by start time — so an
  /// unsorted hand-built schedule behaves identically to its sorted form.
  /// Throws std::invalid_argument on any invalid event.
  explicit FaultSchedule(std::vector<FaultEvent> events);

  FaultSchedule& machine_down(std::size_t machine, double at, double duration,
                              double detection_delay_sec = 10.0);
  FaultSchedule& slow_node(std::size_t machine, double speed_factor,
                           double at, double duration);
  FaultSchedule& service_outage(std::string service, double at,
                                double duration);
  FaultSchedule& ingest_stall(double at, double duration);
  FaultSchedule& metric_dropout(double at, double duration);
  FaultSchedule& metric_delay(double at, double duration, double delay_sec);
  FaultSchedule& rescale_failure(double at, double duration,
                                 int failures = 0);
  /// Correlated crash group: every machine in `machines` is lost during
  /// the window and the framework forces ONE restart for the whole group
  /// after the shared detection delay.
  FaultSchedule& rack_down(std::vector<std::size_t> machines, double at,
                           double duration, double detection_delay_sec = 10.0);
  /// Network partition: `island` is cut off from the rest of the cluster;
  /// operator edges spanning the cut stop transferring.
  FaultSchedule& network_partition(std::vector<std::size_t> island, double at,
                                   double duration);

  /// Events sorted by start time.
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// True if any event manipulates the metric path (dropout/delay) — the
  /// decorator only mirrors the history when this holds, so an empty or
  /// metric-clean schedule keeps history() a zero-cost passthrough.
  [[nodiscard]] bool has_metric_faults() const noexcept;
  /// True if any event must be delivered to a FaultHost (engine-level).
  [[nodiscard]] bool has_host_faults() const noexcept;

  /// End of the last fault window, including machine-down detection
  /// delays (recovery-time measurements start here). 0 when empty.
  [[nodiscard]] double last_fault_end() const noexcept;

  /// The named, canned schedules used by bench_resilience, the CLI and the
  /// tests. `seed` perturbs the randomised placements deterministically;
  /// event times scale with `horizon_sec`. Throws std::invalid_argument on
  /// an unknown name (the message lists the valid ones).
  [[nodiscard]] static FaultSchedule canned(std::string_view name,
                                            std::uint64_t seed = 1,
                                            double horizon_sec = 1800.0);
  [[nodiscard]] static std::vector<std::string> canned_names();

 private:
  FaultSchedule& push(FaultEvent event);

  std::vector<FaultEvent> events_;
};

}  // namespace autra::fault

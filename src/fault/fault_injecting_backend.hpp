// FaultInjectingBackend: a StreamingBackend decorator that applies a
// FaultSchedule to any inner backend without the policy code knowing.
//
// Responsibilities are split by path:
//   - metric path (kMetricDropout / kMetricDelay): the decorator mirrors
//     the inner history into its own store, skipping dropped points and
//     withholding delayed ones until the pipeline "catches up" (points are
//     revealed in timestamp order, so a delay stalls the whole series —
//     exactly how a backed-up metrics pipeline behaves);
//   - Execute path (kRescaleFailure): reconfigure() throws
//     runtime::RescaleFailed while a failure window is active and its
//     failure budget lasts;
//   - engine level (machine down, slow node, service outage, ingest
//     stall): delivered once, at construction, to the inner backend via
//     the FaultHost interface.
//
// With an empty schedule the decorator is observationally transparent and
// zero-cost: every call forwards, and history() returns the inner store
// by reference (no mirroring).
#pragma once

#include <vector>

#include "fault/fault_schedule.hpp"
#include "runtime/backend.hpp"

namespace autra::fault {

class FaultInjectingBackend final : public runtime::StreamingBackend {
 public:
  /// `inner` must outlive the decorator. Throws std::invalid_argument when
  /// the schedule contains engine-level events and `inner` does not
  /// implement FaultHost.
  FaultInjectingBackend(runtime::StreamingBackend& inner,
                        FaultSchedule schedule);

  void run_for(double sec) override;
  void reconfigure(const runtime::Parallelism& p,
                   runtime::RescaleMode mode =
                       runtime::RescaleMode::kColdRestart) override;
  [[nodiscard]] double now() const override { return inner_.now(); }
  [[nodiscard]] const runtime::Parallelism& parallelism() const override {
    return inner_.parallelism();
  }
  [[nodiscard]] runtime::JobMetrics window_metrics() const override {
    return inner_.window_metrics();
  }
  void reset_window() override { inner_.reset_window(); }
  [[nodiscard]] const runtime::MetricStore& history() const override {
    return mirror_metrics_ ? mirror_ : inner_.history();
  }
  [[nodiscard]] int restarts() const override { return inner_.restarts(); }

  [[nodiscard]] const FaultSchedule& schedule() const noexcept {
    return schedule_;
  }
  /// reconfigure() calls the schedule made fail so far.
  [[nodiscard]] int failed_rescales() const noexcept {
    return failed_rescales_;
  }

 private:
  void deliver_host_faults();
  void sync_history();
  [[nodiscard]] bool dropped_at(double t) const noexcept;
  [[nodiscard]] double reveal_time(double t) const noexcept;

  runtime::StreamingBackend& inner_;
  FaultSchedule schedule_;
  bool mirror_metrics_ = false;

  /// Faulted view of the inner history (only maintained when the schedule
  /// contains metric faults).
  runtime::MetricStore mirror_;
  /// Per inner series: next point index to consider, and the id of the
  /// same series in mirror_.
  std::vector<std::size_t> cursor_;
  std::vector<runtime::MetricId> mirror_ids_;

  /// Remaining failures per kRescaleFailure event (-1 = unlimited within
  /// the window), indexed in schedule event order.
  std::vector<int> failure_budget_;
  int failed_rescales_ = 0;
};

}  // namespace autra::fault

#include "fault/chaos.hpp"

#include <algorithm>

#include "arrival/hawkes.hpp"
#include <cmath>
#include <random>
#include <stdexcept>
#include <utility>

namespace autra::fault {

namespace {

// Mean events per this many simulated seconds at intensity 1.0.
constexpr double kIntensityWindowSec = 300.0;
// Events (including machine-down detection) must end by this fraction of
// the horizon so every run has a fault-free tail to recover in.
constexpr double kLastEndFrac = 0.9;

void require(bool ok, const char* msg) {
  if (!ok) throw std::invalid_argument(std::string("ChaosGenerator: ") + msg);
}

bool usable(FaultKind kind, const ChaosProfile& p) {
  switch (kind) {
    case FaultKind::kServiceOutage:
      return !p.services.empty();
    case FaultKind::kRackDown:
      return !p.racks.empty();
    case FaultKind::kNetworkPartition:
      // Domain-aligned islands need a proper subset of >= 2 domains; the
      // domain-free fallback needs >= 2 machines. One domain covering the
      // whole cluster can never leave a mainland.
      return p.partition_domains.size() >= 2 ||
             (p.partition_domains.empty() && p.num_machines >= 2);
    default:
      return true;
  }
}

double weight_of(FaultKind kind, const ChaosMix& m) {
  switch (kind) {
    case FaultKind::kMachineDown:
      return m.machine_down;
    case FaultKind::kSlowNode:
      return m.slow_node;
    case FaultKind::kServiceOutage:
      return m.service_outage;
    case FaultKind::kIngestStall:
      return m.ingest_stall;
    case FaultKind::kMetricDropout:
      return m.metric_dropout;
    case FaultKind::kMetricDelay:
      return m.metric_delay;
    case FaultKind::kRescaleFailure:
      return m.rescale_failure;
    case FaultKind::kRackDown:
      return m.rack_down;
    case FaultKind::kNetworkPartition:
      return m.network_partition;
  }
  return 0.0;
}

constexpr FaultKind kAllKinds[] = {
    FaultKind::kMachineDown,   FaultKind::kSlowNode,
    FaultKind::kServiceOutage, FaultKind::kIngestStall,
    FaultKind::kMetricDropout, FaultKind::kMetricDelay,
    FaultKind::kRescaleFailure, FaultKind::kRackDown,
    FaultKind::kNetworkPartition,
};

}  // namespace

ChaosProfile ChaosProfile::for_cluster(const sim::Cluster& cluster,
                                       double horizon_sec, double intensity) {
  ChaosProfile p;
  p.horizon_sec = horizon_sec;
  p.intensity = intensity;
  p.num_machines = cluster.num_machines();
  // Only multi-machine racks are correlated-failure domains worth
  // crashing as a group; singletons are plain machine-down territory.
  for (const std::vector<std::size_t>& rack : cluster.racks()) {
    if (rack.size() >= 2) p.racks.push_back(rack);
  }
  if (p.racks.empty()) p.mix.rack_down = 0.0;
  // Partition islands sever rack uplinks, so every rack — singletons
  // included — is a partition domain (kRackDown's failure domains, reused).
  p.partition_domains = cluster.racks();
  return p;
}

ChaosProfile ChaosProfile::for_job(const sim::JobSpec& spec,
                                   double horizon_sec, double intensity) {
  ChaosProfile p =
      for_cluster(sim::Cluster(spec.cluster), horizon_sec, intensity);
  for (const sim::ExternalServiceSpec& svc : spec.services) {
    p.services.push_back(svc.name);
  }
  if (p.services.empty()) p.mix.service_outage = 0.0;
  return p;
}

ChaosGenerator::ChaosGenerator(ChaosProfile profile)
    : profile_(std::move(profile)) {
  require(profile_.horizon_sec > 0.0, "horizon must be > 0");
  require(profile_.intensity >= 0.0 && std::isfinite(profile_.intensity),
          "intensity must be finite and >= 0");
  require(profile_.num_machines >= 1, "cluster has no machines");
  require(profile_.min_duration_sec > 0.0 &&
              profile_.min_duration_sec <= kLastEndFrac * profile_.horizon_sec,
          "min duration must be in (0, 0.9 * horizon]");
  require(profile_.max_duration_frac > 0.0 &&
              profile_.max_duration_frac <= kLastEndFrac,
          "max duration fraction must be in (0, 0.9]");
  require(profile_.burst_clustering >= 0.0 && profile_.burst_clustering < 1.0,
          "burst_clustering must be in [0, 1)");
  for (const std::vector<std::size_t>& rack : profile_.racks) {
    require(!rack.empty(), "empty rack group");
    for (std::size_t m : rack) {
      require(m < profile_.num_machines, "rack member out of range");
    }
  }
  {
    std::vector<char> seen(profile_.num_machines, 0);
    for (const std::vector<std::size_t>& dom : profile_.partition_domains) {
      require(!dom.empty(), "empty partition domain");
      for (std::size_t m : dom) {
        require(m < profile_.num_machines,
                "partition domain member out of range");
        require(!seen[m], "partition domains must be disjoint");
        seen[m] = 1;
      }
    }
  }
  double total = 0.0;
  for (FaultKind kind : kAllKinds) {
    const double w = weight_of(kind, profile_.mix);
    require(w >= 0.0 && std::isfinite(w), "weights must be finite and >= 0");
    if (w <= 0.0 || !usable(kind, profile_)) continue;
    kinds_.push_back(kind);
    total += w;
    cumulative_.push_back(total);
  }
  require(!kinds_.empty() || profile_.intensity == 0.0,
          "no event class is drawable (all weights zero or gated off)");
}

FaultSchedule ChaosGenerator::generate(std::uint64_t seed) const {
  FaultSchedule schedule;
  const double mean =
      profile_.intensity * profile_.horizon_sec / kIntensityWindowSec;
  if (mean <= 0.0) return schedule;

  std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 0xc2b2ae3d27d4eb4full);
  // Spread the event count uniformly around the mean (0.5x..1.5x, never
  // below 1): deterministic, and different seeds get genuinely different
  // schedule sizes, not just different placements.
  const int lo = std::max(1, static_cast<int>(std::floor(0.5 * mean)));
  const int hi =
      std::max(lo, static_cast<int>(std::ceil(1.5 * mean)));
  const int count = std::uniform_int_distribution<int>(lo, hi)(rng);

  const double h = profile_.horizon_sec;
  const double max_duration =
      std::max(profile_.min_duration_sec, profile_.max_duration_frac * h);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> duration_dist(
      profile_.min_duration_sec, max_duration);
  std::uniform_int_distribution<std::size_t> machine_dist(
      0, profile_.num_machines - 1);

  // Time-correlated mode: pre-sample clustered onset times from the
  // arrival subsystem's Hawkes sampler. mu is calibrated so the expected
  // cascade total (mu * span / (1 - branching)) matches `count`; any
  // shortfall falls back to the legacy uniform placement below. Only the
  // burst_clustering > 0 path touches the RNG here, so clustering-off
  // schedules stay bit-identical to the golden corpus.
  std::vector<double> onsets;
  if (profile_.burst_clustering > 0.0) {
    const double span = kLastEndFrac * h;
    const double mu =
        static_cast<double>(count) * (1.0 - profile_.burst_clustering) / span;
    // Burst memory ~ the shortest event: storms tighter than a single
    // fault's duration still read as distinct events.
    const double decay = 1.0 / profile_.min_duration_sec;
    onsets = arrival::sample_hawkes_event_times(
        mu, profile_.burst_clustering, decay, span, rng);
  }

  for (int n = 0; n < count; ++n) {
    const double pick = unit(rng) * cumulative_.back();
    const std::size_t k = static_cast<std::size_t>(
        std::lower_bound(cumulative_.begin(), cumulative_.end(), pick) -
        cumulative_.begin());
    const FaultKind kind = kinds_[std::min(k, kinds_.size() - 1)];

    const double duration = duration_dist(rng);
    // Detection delay counts toward the event's footprint so even a crash
    // at the latest admissible start is detected (and restarted from)
    // before the fault-free tail.
    const bool crash =
        kind == FaultKind::kMachineDown || kind == FaultKind::kRackDown;
    const double detect =
        crash ? std::uniform_real_distribution<double>(5.0, 20.0)(rng) : 0.0;
    const double footprint = std::max(duration, detect);
    const double latest = std::max(0.0, kLastEndFrac * h - footprint);
    const double at = static_cast<std::size_t>(n) < onsets.size()
                          ? std::min(onsets[static_cast<std::size_t>(n)],
                                     latest)
                          : unit(rng) * latest;

    switch (kind) {
      case FaultKind::kMachineDown:
        schedule.machine_down(machine_dist(rng), at, duration, detect);
        break;
      case FaultKind::kSlowNode:
        schedule.slow_node(
            machine_dist(rng),
            std::uniform_real_distribution<double>(0.25, 0.7)(rng), at,
            duration);
        break;
      case FaultKind::kServiceOutage: {
        std::uniform_int_distribution<std::size_t> svc(
            0, profile_.services.size() - 1);
        schedule.service_outage(profile_.services[svc(rng)], at, duration);
        break;
      }
      case FaultKind::kIngestStall:
        schedule.ingest_stall(at, duration);
        break;
      case FaultKind::kMetricDropout:
        schedule.metric_dropout(at, duration);
        break;
      case FaultKind::kMetricDelay:
        schedule.metric_delay(
            at, duration,
            std::uniform_real_distribution<double>(
                10.0, std::max(10.0, 0.05 * h))(rng));
        break;
      case FaultKind::kRescaleFailure:
        schedule.rescale_failure(
            at, duration, std::uniform_int_distribution<int>(1, 3)(rng));
        break;
      case FaultKind::kRackDown: {
        std::uniform_int_distribution<std::size_t> rack(
            0, profile_.racks.size() - 1);
        schedule.rack_down(profile_.racks[rack(rng)], at, duration, detect);
        break;
      }
      case FaultKind::kNetworkPartition: {
        // A proper, non-empty island spelled in ascending machine order so
        // the same island set always serialises the same way. With
        // partition domains the island is a union of a proper subset of
        // racks (a partition severs uplinks, so it cannot split a rack);
        // without them, any proper machine subset (the legacy form).
        std::vector<std::size_t> island;
        if (!profile_.partition_domains.empty()) {
          const std::size_t nd = profile_.partition_domains.size();
          std::vector<std::size_t> order(nd);
          for (std::size_t i = 0; i < nd; ++i) order[i] = i;
          for (std::size_t i = nd - 1; i > 0; --i) {
            const std::size_t j =
                std::uniform_int_distribution<std::size_t>(0, i)(rng);
            std::swap(order[i], order[j]);
          }
          const std::size_t size =
              std::uniform_int_distribution<std::size_t>(1, nd - 1)(rng);
          for (std::size_t d = 0; d < size; ++d) {
            const std::vector<std::size_t>& dom =
                profile_.partition_domains[order[d]];
            island.insert(island.end(), dom.begin(), dom.end());
          }
        } else {
          std::vector<std::size_t> order(profile_.num_machines);
          for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
          for (std::size_t i = order.size() - 1; i > 0; --i) {
            const std::size_t j =
                std::uniform_int_distribution<std::size_t>(0, i)(rng);
            std::swap(order[i], order[j]);
          }
          const std::size_t size = std::uniform_int_distribution<std::size_t>(
              1, profile_.num_machines - 1)(rng);
          island.assign(order.begin(), order.begin() + size);
        }
        std::sort(island.begin(), island.end());
        schedule.network_partition(std::move(island), at, duration);
        break;
      }
    }
  }
  return schedule;
}

}  // namespace autra::fault

#include "fault/fault_schedule.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <utility>

namespace autra::fault {

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kMachineDown:
      return "machine-down";
    case FaultKind::kSlowNode:
      return "slow-node";
    case FaultKind::kServiceOutage:
      return "service-outage";
    case FaultKind::kIngestStall:
      return "ingest-stall";
    case FaultKind::kMetricDropout:
      return "metric-dropout";
    case FaultKind::kMetricDelay:
      return "metric-delay";
    case FaultKind::kRescaleFailure:
      return "rescale-failure";
    case FaultKind::kRackDown:
      return "rack-down";
    case FaultKind::kNetworkPartition:
      return "network-partition";
  }
  return "unknown";
}

namespace {

bool has_duplicate_machines(const std::vector<std::size_t>& machines) {
  std::vector<std::size_t> sorted(machines);
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end();
}

// Validation shared between the builder methods and the vector constructor
// so a hand-assembled event passes exactly the same checks a built one does.
void validate_event(const FaultEvent& e) {
  if (e.at < 0.0 || e.duration <= 0.0) {
    throw std::invalid_argument(std::string("FaultSchedule: event '") +
                                to_string(e.kind) +
                                "' needs at >= 0 and duration > 0");
  }
  switch (e.kind) {
    case FaultKind::kMachineDown:
      if (e.detection_delay_sec < 0.0) {
        throw std::invalid_argument(
            "FaultSchedule::machine_down: negative detection delay");
      }
      break;
    case FaultKind::kSlowNode:
      if (e.magnitude <= 0.0 || e.magnitude >= 1.0) {
        throw std::invalid_argument(
            "FaultSchedule::slow_node: speed factor must be in (0, 1)");
      }
      break;
    case FaultKind::kServiceOutage:
      if (e.service.empty()) {
        throw std::invalid_argument(
            "FaultSchedule::service_outage: empty service name");
      }
      break;
    case FaultKind::kMetricDelay:
      if (e.magnitude <= 0.0) {
        throw std::invalid_argument(
            "FaultSchedule::metric_delay: delay must be > 0");
      }
      break;
    case FaultKind::kRescaleFailure:
      if (e.magnitude < 0.0) {
        throw std::invalid_argument(
            "FaultSchedule::rescale_failure: negative failure count");
      }
      break;
    case FaultKind::kRackDown:
      if (e.machines.empty()) {
        throw std::invalid_argument(
            "FaultSchedule::rack_down: empty machine group");
      }
      if (has_duplicate_machines(e.machines)) {
        throw std::invalid_argument(
            "FaultSchedule::rack_down: duplicate machine in group");
      }
      if (e.detection_delay_sec < 0.0) {
        throw std::invalid_argument(
            "FaultSchedule::rack_down: negative detection delay");
      }
      break;
    case FaultKind::kNetworkPartition:
      // The island must be a set: duplicates would let "{1, 1}" pose as a
      // two-machine island ("covers the whole cluster" checks downstream
      // compare sizes, and Engine::inject_network_partition knows the real
      // machine count).
      if (e.machines.empty()) {
        throw std::invalid_argument(
            "FaultSchedule::network_partition: empty island");
      }
      if (has_duplicate_machines(e.machines)) {
        throw std::invalid_argument(
            "FaultSchedule::network_partition: duplicate machine in island");
      }
      break;
    case FaultKind::kIngestStall:
    case FaultKind::kMetricDropout:
      break;
  }
}

}  // namespace

FaultSchedule::FaultSchedule(std::vector<FaultEvent> events) {
  for (const FaultEvent& e : events) validate_event(e);
  std::stable_sort(
      events.begin(), events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  events_ = std::move(events);
}

FaultSchedule& FaultSchedule::push(FaultEvent event) {
  validate_event(event);
  // Keep events_ sorted by start time (insertion is cold; reads are hot).
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), event.at,
      [](double at, const FaultEvent& e) { return at < e.at; });
  events_.insert(pos, std::move(event));
  return *this;
}

FaultSchedule& FaultSchedule::machine_down(std::size_t machine, double at,
                                           double duration,
                                           double detection_delay_sec) {
  return push({.kind = FaultKind::kMachineDown,
               .at = at,
               .duration = duration,
               .machine = machine,
               .detection_delay_sec = detection_delay_sec});
}

FaultSchedule& FaultSchedule::slow_node(std::size_t machine,
                                        double speed_factor, double at,
                                        double duration) {
  return push({.kind = FaultKind::kSlowNode,
               .at = at,
               .duration = duration,
               .machine = machine,
               .magnitude = speed_factor});
}

FaultSchedule& FaultSchedule::service_outage(std::string service, double at,
                                             double duration) {
  return push({.kind = FaultKind::kServiceOutage,
               .at = at,
               .duration = duration,
               .service = std::move(service)});
}

FaultSchedule& FaultSchedule::ingest_stall(double at, double duration) {
  return push(
      {.kind = FaultKind::kIngestStall, .at = at, .duration = duration});
}

FaultSchedule& FaultSchedule::metric_dropout(double at, double duration) {
  return push(
      {.kind = FaultKind::kMetricDropout, .at = at, .duration = duration});
}

FaultSchedule& FaultSchedule::metric_delay(double at, double duration,
                                           double delay_sec) {
  return push({.kind = FaultKind::kMetricDelay,
               .at = at,
               .duration = duration,
               .magnitude = delay_sec});
}

FaultSchedule& FaultSchedule::rescale_failure(double at, double duration,
                                              int failures) {
  return push({.kind = FaultKind::kRescaleFailure,
               .at = at,
               .duration = duration,
               .magnitude = static_cast<double>(failures)});
}

FaultSchedule& FaultSchedule::rack_down(std::vector<std::size_t> machines,
                                        double at, double duration,
                                        double detection_delay_sec) {
  return push({.kind = FaultKind::kRackDown,
               .at = at,
               .duration = duration,
               .detection_delay_sec = detection_delay_sec,
               .machines = std::move(machines)});
}

FaultSchedule& FaultSchedule::network_partition(
    std::vector<std::size_t> island, double at, double duration) {
  return push({.kind = FaultKind::kNetworkPartition,
               .at = at,
               .duration = duration,
               .machines = std::move(island)});
}

bool FaultSchedule::has_metric_faults() const noexcept {
  return std::any_of(events_.begin(), events_.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kMetricDropout ||
           e.kind == FaultKind::kMetricDelay;
  });
}

bool FaultSchedule::has_host_faults() const noexcept {
  return std::any_of(events_.begin(), events_.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kMachineDown ||
           e.kind == FaultKind::kSlowNode ||
           e.kind == FaultKind::kServiceOutage ||
           e.kind == FaultKind::kIngestStall ||
           e.kind == FaultKind::kRackDown ||
           e.kind == FaultKind::kNetworkPartition;
  });
}

double FaultSchedule::last_fault_end() const noexcept {
  double end = 0.0;
  for (const FaultEvent& e : events_) {
    end = std::max(end, e.end());
    if (e.kind == FaultKind::kMachineDown ||
        e.kind == FaultKind::kRackDown) {
      end = std::max(end, e.at + e.detection_delay_sec);
    }
  }
  return end;
}

FaultSchedule FaultSchedule::canned(std::string_view name, std::uint64_t seed,
                                    double horizon_sec) {
  if (horizon_sec <= 0.0) {
    throw std::invalid_argument("FaultSchedule::canned: horizon must be > 0");
  }
  const double h = horizon_sec;
  FaultSchedule s;
  if (name == "machine-crash") {
    // One task manager dies a third of the way in, stays dead for 20% of
    // the horizon, and the framework notices after 10 s — the classic
    // instance-loss / detection-delay / restart / lag-catch-up cycle.
    s.machine_down(1, h / 3.0, 0.20 * h, 10.0);
    return s;
  }
  if (name == "metric-chaos") {
    // The Monitor path misbehaves while the cluster itself is healthy: two
    // dropout windows and one stalled-pipeline stretch. A naive controller
    // mistakes the silence for a dead job and rescales; a hardened one
    // marks the windows unhealthy and sits still.
    s.metric_dropout(0.25 * h, 0.10 * h);
    s.metric_delay(0.45 * h, 0.10 * h, 0.08 * h);
    s.metric_dropout(0.70 * h, 0.08 * h);
    return s;
  }
  if (name == "degraded-cluster") {
    // Rolling degradation, randomised by `seed`: slow nodes come and go,
    // the external service blips, Kafka ingest stalls once, and every
    // rescale attempted during the middle third fails twice before
    // succeeding.
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
    std::uniform_real_distribution<double> when(0.1, 0.75);
    std::uniform_real_distribution<double> factor(0.25, 0.6);
    std::uniform_int_distribution<std::size_t> which(0, 2);
    for (int i = 0; i < 3; ++i) {
      s.slow_node(which(rng), factor(rng), when(rng) * h, 0.12 * h);
    }
    s.service_outage("redis", when(rng) * h, 0.05 * h);
    s.ingest_stall(when(rng) * h, 0.04 * h);
    s.rescale_failure(h / 3.0, h / 3.0, 2);
    return s;
  }
  std::string msg = "FaultSchedule::canned: unknown schedule '";
  msg += name;
  msg += "'; valid:";
  for (const std::string& n : canned_names()) msg += " " + n;
  throw std::invalid_argument(msg);
}

std::vector<std::string> FaultSchedule::canned_names() {
  return {"machine-crash", "metric-chaos", "degraded-cluster"};
}

}  // namespace autra::fault

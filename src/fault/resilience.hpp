// Resilience harness: one policy, one job, one fault schedule — and a
// ground-truth report of how the combination behaved.
//
// The harness wires a live ScalingSession behind a FaultInjectingBackend
// and drives it with one of five controllers: the full AuTraScale MAPE
// loop (with its resilience features enabled), the reactive baselines
// (threshold, DS2, Dhalion — each applying its published step rule every
// policy interval, *without* retrying failed rescales, which is exactly
// how the original systems behave), or a static configuration. QoS is read
// from the inner session's unfaulted metric history, so the report is
// ground truth even when the schedule corrupts the controller-visible
// Monitor path.
//
// Scope notes (documented asymmetries, not accidents):
//   - AuTraScale reads the *faulted* history through the decorator; the
//     reactive baselines read window_metrics(), the engine's own counters,
//     because the original systems sample their engines directly.
//   - AuTraScale's Plan-stage trials run in a fault-free sandbox (fresh
//     JobRunner per candidate) — trials model offline profiling runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_schedule.hpp"
#include "streamsim/job_runner.hpp"

namespace autra::fault {

struct ResilienceOptions {
  double horizon_sec = 1800.0;
  /// Cadence of every controller's decision loop.
  double policy_interval_sec = 60.0;
  double target_latency_ms = 300.0;
  /// Initial configuration; empty means every operator at parallelism 1.
  sim::Parallelism initial;
  /// Perturbs simulator noise (not the schedule — seed that separately via
  /// FaultSchedule::canned).
  std::uint64_t seed = 1;
};

/// Ground-truth outcome of one (policy, job, schedule) run.
struct ResilienceReport {
  std::string policy;
  double mean_throughput = 0.0;
  double mean_input_rate = 0.0;
  /// Seconds (1 Hz gauge samples) with throughput below 90% of the rate.
  double violation_sec = 0.0;
  double max_lag = 0.0;
  double end_lag = 0.0;
  /// Seconds from the end of the last fault window until throughput held
  /// at >= 90% of the input rate for five consecutive samples; -1 when the
  /// job never recovered within the horizon, 0 for an empty schedule.
  double recovery_sec = -1.0;
  int restarts = 0;          ///< All engine rebuilds (rescale + failure).
  int failure_restarts = 0;  ///< Crash-forced restarts among them.
  int failed_rescales = 0;   ///< Injected reconfigure() failures hit.
  int decisions = 0;         ///< Configuration changes applied.
  int unhealthy_windows = 0; ///< AuTraScale only: windows skipped.
  int rescale_retries = 0;   ///< AuTraScale only: RescaleFailed retried.
};

/// The policy names run_resilience() accepts.
[[nodiscard]] std::vector<std::string> resilience_policies();

/// Runs `policy` over `spec` with `schedule` injected. Throws
/// std::invalid_argument on an unknown policy name.
[[nodiscard]] ResilienceReport run_resilience(const std::string& policy,
                                              const sim::JobSpec& spec,
                                              const FaultSchedule& schedule,
                                              const ResilienceOptions& options = {});

}  // namespace autra::fault

// Optional capability interface for backends that own machines, services
// and an ingest path — the delivery surface for engine-level fault events.
//
// FaultInjectingBackend handles metric-path (dropout/delay) and
// Execute-path (transient rescale failure) faults itself; everything that
// must happen *inside* the engine — a machine dying, a node degrading, an
// external service going dark, Kafka ingest stalling — is delivered through
// this interface via dynamic_cast. A backend that cannot host such faults
// (e.g. runtime::ReplayBackend, which replays a fixed trace) simply does
// not implement it, and the decorator rejects schedules that need it.
//
// Header-only on purpose: the fluid simulator implements this without
// linking against the fault library.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace autra::fault {

class FaultHost {
 public:
  virtual ~FaultHost() = default;

  /// Machine `machine` is lost during [from_sec, until_sec); the framework
  /// notices `detection_delay_sec` after the crash and forces a restart
  /// (full restart downtime, Kafka lag keeps accumulating meanwhile).
  virtual void host_machine_down(std::size_t machine, double from_sec,
                                 double until_sec,
                                 double detection_delay_sec) = 0;

  /// Machine `machine` runs at `speed_factor` (in (0,1)) during
  /// [from_sec, until_sec).
  virtual void host_slow_node(std::size_t machine, double speed_factor,
                              double from_sec, double until_sec) = 0;

  /// External service `service` grants no calls during [from_sec,
  /// until_sec). Unknown service names are a no-op (an outage of a service
  /// the job never calls is unobservable).
  virtual void host_service_outage(const std::string& service,
                                   double from_sec, double until_sec) = 0;

  /// Sources consume nothing during [from_sec, until_sec) while producers
  /// keep appending — consumer lag builds, then catches up.
  virtual void host_ingest_stall(double from_sec, double until_sec) = 0;

  /// Correlated crash: every machine in `machines` is lost during
  /// [from_sec, until_sec) — a shared rack switch or power feed failing.
  /// The framework detects the group loss once (shared detection delay)
  /// and forces a single restart for the whole group.
  virtual void host_rack_down(const std::vector<std::size_t>& machines,
                              double from_sec, double until_sec,
                              double detection_delay_sec) = 0;

  /// Network partition: the machines in `island` cannot exchange records
  /// with the rest of the cluster during [from_sec, until_sec). Operator
  /// edges whose endpoints span the cut stop transferring; queues back up
  /// and backpressure propagates upstream.
  virtual void host_network_partition(const std::vector<std::size_t>& island,
                                      double from_sec, double until_sec) = 0;
};

}  // namespace autra::fault

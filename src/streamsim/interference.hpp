// Interference and coordination-overhead model.
//
// Flink slots share machine CPUs without isolation, so co-located operator
// instances contend; and keyed shuffles cost more as parallelism grows.
// These two effects produce the paper's motivating observations:
//   - Obs. 2.1: throughput grows sub-linearly with parallelism, and
//   - Obs. 2.2: latency has a sweet spot — too much parallelism hurts.
// DS2's linear-scaling assumption ignores both; AuTraScale's GP absorbs
// them from measurements. Disabling this model (`enabled = false`) is the
// interference ablation: with it off, DS2 becomes near-optimal.
#pragma once

#include <vector>

namespace autra::sim {

struct InterferenceParams {
  bool enabled = true;

  /// Per-machine contention: when the *busy-equivalent* load on a machine is
  /// L instances over C cores, each instance's effective speed is divided by
  ///   1 + bandwidth_penalty * max(0, L - 1) / C       (L <= C)
  ///   (as above) * L / C                              (L >  C, time slicing)
  double bandwidth_penalty = 0.6;

  /// Per-operator coordination overhead: an operator running with
  /// parallelism k pays a per-record cost multiplier
  ///   1 + coordination_penalty * (k - 1)^coordination_exponent / 10
  /// modelling keyed-shuffle fan-out, state synchronisation and buffer
  /// management.
  double coordination_penalty = 0.3;
  double coordination_exponent = 0.8;

  /// Smoothing factor for the busy-load estimate carried between ticks
  /// (exponential moving average weight of the newest tick).
  double load_smoothing = 0.35;
};

/// Effective-speed computations shared by the engine.
class InterferenceModel {
 public:
  explicit InterferenceModel(InterferenceParams params = {});

  [[nodiscard]] const InterferenceParams& params() const noexcept {
    return params_;
  }

  /// Cost multiplier from running an operator at parallelism k.
  [[nodiscard]] double coordination_factor(int parallelism) const noexcept;

  /// Speed divisor for an instance on a machine whose smoothed busy load is
  /// `busy_load` instances over `cores` cores.
  [[nodiscard]] double contention_divisor(double busy_load,
                                          int cores) const noexcept;

  /// Degraded-machine variant: a slow node running at `speed_factor` of
  /// nominal offers proportionally fewer effective cycles, so the same
  /// busy load contends harder — fault-injected slow-node events feed the
  /// contention model through this overload (speed_factor == 1 is exactly
  /// the healthy path).
  [[nodiscard]] double contention_divisor(double busy_load, int cores,
                                          double speed_factor) const noexcept;

 private:
  InterferenceParams params_;
};

}  // namespace autra::sim

#include "streamsim/topology.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace autra::sim {

const char* to_string(OperatorKind kind) noexcept {
  switch (kind) {
    case OperatorKind::kSource:
      return "source";
    case OperatorKind::kStateless:
      return "stateless";
    case OperatorKind::kKeyedAggregate:
      return "keyed-aggregate";
    case OperatorKind::kSlidingWindow:
      return "sliding-window";
    case OperatorKind::kSessionWindow:
      return "session-window";
    case OperatorKind::kSink:
      return "sink";
  }
  return "unknown";
}

std::size_t Topology::add_operator(OperatorSpec spec) {
  ops_.push_back(std::move(spec));
  downstream_.emplace_back();
  upstream_.emplace_back();
  return ops_.size() - 1;
}

void Topology::connect(std::size_t from, std::size_t to) {
  if (from >= ops_.size() || to >= ops_.size()) {
    throw std::invalid_argument("Topology::connect: bad operator index");
  }
  if (from == to) {
    throw std::invalid_argument("Topology::connect: self loop");
  }
  auto& down = downstream_[from];
  if (std::find(down.begin(), down.end(), to) != down.end()) {
    throw std::invalid_argument("Topology::connect: duplicate edge");
  }
  down.push_back(to);
  upstream_[to].push_back(from);
}

std::vector<std::size_t> Topology::sources() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (upstream_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Topology::sinks() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (downstream_[i].empty()) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Topology::topological_order() const {
  std::vector<std::size_t> indegree(ops_.size(), 0);
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    indegree[i] = upstream_[i].size();
  }
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::vector<std::size_t> order;
  order.reserve(ops_.size());
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop();
    order.push_back(i);
    for (std::size_t j : downstream_[i]) {
      if (--indegree[j] == 0) ready.push(j);
    }
  }
  if (order.size() != ops_.size()) {
    throw std::logic_error("Topology: graph has a cycle");
  }
  return order;
}

void Topology::validate() const {
  if (ops_.empty()) {
    throw std::logic_error("Topology: empty job graph");
  }
  const auto srcs = sources();
  if (srcs.empty()) {
    throw std::logic_error("Topology: no source operator");
  }
  for (std::size_t s : srcs) {
    if (ops_[s].kind != OperatorKind::kSource) {
      throw std::logic_error("Topology: root operator '" + ops_[s].name +
                             "' is not a source");
    }
  }
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].kind == OperatorKind::kSource && !upstream_[i].empty()) {
      throw std::logic_error("Topology: source '" + ops_[i].name +
                             "' has upstream operators");
    }
    if (ops_[i].selectivity < 0.0) {
      throw std::logic_error("Topology: negative selectivity on '" +
                             ops_[i].name + "'");
    }
    if (ops_[i].total_cost_us() <= 0.0) {
      throw std::logic_error("Topology: non-positive record cost on '" +
                             ops_[i].name + "'");
    }
    if (ops_[i].key_skew < 0.0) {
      throw std::logic_error("Topology: negative key skew on '" +
                             ops_[i].name + "'");
    }
  }
  // Reachability from sources (also detects cycles via topological_order).
  (void)topological_order();
  std::vector<bool> reach(ops_.size(), false);
  std::queue<std::size_t> bfs;
  for (std::size_t s : srcs) {
    reach[s] = true;
    bfs.push(s);
  }
  while (!bfs.empty()) {
    const std::size_t i = bfs.front();
    bfs.pop();
    for (std::size_t j : downstream_[i]) {
      if (!reach[j]) {
        reach[j] = true;
        bfs.push(j);
      }
    }
  }
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (!reach[i]) {
      throw std::logic_error("Topology: operator '" + ops_[i].name +
                             "' unreachable from any source");
    }
  }
}

std::size_t Topology::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    if (ops_[i].name == name) return i;
  }
  throw std::out_of_range("Topology: no operator named '" + name + "'");
}

}  // namespace autra::sim

// Input-rate schedules: how fast the producers write into the Kafka log as
// a function of simulation time. The paper's cases use constant rates and
// staircase ramps (Fig. 1: 100k records/s + 50k every 10 minutes).
#pragma once

#include <functional>
#include <memory>
#include <vector>

namespace autra::sim {

/// Rate in records/second at simulation time t (seconds).
class RateSchedule {
 public:
  virtual ~RateSchedule() = default;
  [[nodiscard]] virtual double rate_at(double t) const = 0;
  [[nodiscard]] virtual std::unique_ptr<RateSchedule> clone() const = 0;
};

/// Constant rate.
class ConstantRate final : public RateSchedule {
 public:
  explicit ConstantRate(double rate);
  [[nodiscard]] double rate_at(double) const override { return rate_; }
  [[nodiscard]] std::unique_ptr<RateSchedule> clone() const override {
    return std::make_unique<ConstantRate>(*this);
  }

 private:
  double rate_;
};

/// Staircase: starts at `base`, increases by `step` every `period` seconds.
class StaircaseRate final : public RateSchedule {
 public:
  StaircaseRate(double base, double step, double period);
  [[nodiscard]] double rate_at(double t) const override;
  [[nodiscard]] std::unique_ptr<RateSchedule> clone() const override {
    return std::make_unique<StaircaseRate>(*this);
  }

 private:
  double base_;
  double step_;
  double period_;
};

/// Piecewise-constant: sorted (start_time, rate) breakpoints.
class PiecewiseRate final : public RateSchedule {
 public:
  /// Throws std::invalid_argument if empty or times not strictly increasing
  /// starting at 0.
  explicit PiecewiseRate(std::vector<std::pair<double, double>> breakpoints);
  [[nodiscard]] double rate_at(double t) const override;
  [[nodiscard]] std::unique_ptr<RateSchedule> clone() const override {
    return std::make_unique<PiecewiseRate>(*this);
  }

 private:
  std::vector<std::pair<double, double>> breakpoints_;
};

}  // namespace autra::sim

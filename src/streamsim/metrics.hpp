// In-memory time-series metric store — the InfluxDB stand-in of the MAPE
// loop's Monitor stage. The engine emits gauges under hierarchical names
// mirroring Flink's metric paths (e.g.
// "taskmanager.job.task.trueProcessingRate.<op>"), and the Metric
// Aggregator queries windows of them.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace autra::sim {

struct MetricPoint {
  double time = 0.0;
  double value = 0.0;
};

class MetricsDb {
 public:
  /// Appends one point to series `name`. Time must be non-decreasing per
  /// series; throws std::invalid_argument otherwise.
  void record(const std::string& name, double time, double value);

  /// All points of a series in [t0, t1]; empty when the series is unknown.
  [[nodiscard]] std::vector<MetricPoint> query(const std::string& name,
                                               double t0, double t1) const;

  /// Mean of a series over [t0, t1]; nullopt when no points fall in range.
  [[nodiscard]] std::optional<double> mean(const std::string& name, double t0,
                                           double t1) const;

  /// Latest point of a series; nullopt when the series is unknown/empty.
  [[nodiscard]] std::optional<MetricPoint> last(const std::string& name) const;

  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] bool has_series(const std::string& name) const;
  void clear();

  /// Writes the selected series as CSV (`time,<series...>`), one row per
  /// distinct timestamp, empty cells where a series has no point at that
  /// time — ready for gnuplot/pandas. Unknown series produce empty
  /// columns. Selecting no series exports every series in the store.
  void write_csv(std::ostream& out,
                 std::span<const std::string> series = {}) const;

 private:
  std::map<std::string, std::vector<MetricPoint>> series_;
};

/// Flink-like metric path helpers.
namespace metric_names {

[[nodiscard]] std::string true_rate(const std::string& op);
[[nodiscard]] std::string observed_rate(const std::string& op);
[[nodiscard]] std::string input_rate(const std::string& op);
[[nodiscard]] std::string output_rate(const std::string& op);
[[nodiscard]] std::string queue_size(const std::string& op);
inline const std::string kThroughput = "job.throughput";
inline const std::string kLatencyMean = "job.latency.mean";
inline const std::string kEventLatencyMean = "job.eventLatency.mean";
inline const std::string kKafkaLag = "kafka.consumerLag";
inline const std::string kInputRate = "kafka.produceRate";
inline const std::string kBusyCores = "job.busyCores";
inline const std::string kParallelismTotal = "job.totalParallelism";

}  // namespace metric_names

}  // namespace autra::sim

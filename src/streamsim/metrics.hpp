// In-memory time-series metric store — the InfluxDB stand-in of the MAPE
// loop's Monitor stage. The engine emits gauges under hierarchical names
// mirroring Flink's metric paths (e.g.
// "taskmanager.job.task.trueProcessingRate.<op>"), and the Metric
// Aggregator queries windows of them.
//
// The store itself is backend-neutral and lives in the runtime layer
// (runtime::MetricStore, with interned MetricIds on the hot write path);
// these aliases keep the simulator's historical sim:: spelling.
#pragma once

#include "runtime/metrics.hpp"

namespace autra::sim {

using MetricPoint = runtime::MetricPoint;
using MetricsDb = runtime::MetricStore;
namespace metric_names = runtime::metric_names;

}  // namespace autra::sim

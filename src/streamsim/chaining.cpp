#include "streamsim/chaining.hpp"

#include <algorithm>
#include <stdexcept>

namespace autra::sim {

bool chainable(const Topology& t, std::size_t op) {
  if (op >= t.num_operators()) {
    throw std::out_of_range("chainable: bad operator index");
  }
  const OperatorSpec& spec = t.op(op);
  // Only stateless operators (and sinks, which are terminal pass-throughs
  // cost-wise) can be fused onto a predecessor; keyed and window operators
  // need a shuffle in front of them.
  if (spec.kind != OperatorKind::kStateless &&
      spec.kind != OperatorKind::kSink) {
    return false;
  }
  // Operators with external-service calls stay unfused so the token-bucket
  // accounting remains per-operator.
  if (spec.external_service.has_value()) return false;
  if (t.upstream(op).size() != 1) return false;
  const std::size_t up = t.upstream(op).front();
  // The upstream must forward only to us (1:1 edge).
  if (t.downstream(up).size() != 1) return false;
  // And must not itself demand a shuffle out (keyed operators repartition
  // downstream in Flink only when keys change; we conservatively allow
  // fusing behind any operator, matching Flink's forward-edge rule).
  if (t.op(up).external_service.has_value()) return false;
  if (t.op(up).key_skew > 0.0 || spec.key_skew > 0.0) return false;
  return true;
}

ChainingResult chain_operators(const Topology& t) {
  t.validate();
  const std::size_t n = t.num_operators();

  // Pass 1: assign each operator to a chain head.
  std::vector<std::size_t> head(n);
  for (std::size_t i : t.topological_order()) {
    head[i] = chainable(t, i) ? head[t.upstream(i).front()] : i;
  }

  ChainingResult result;
  result.group_of.assign(n, 0);

  // Pass 2: build fused operators, one per distinct head, in topological
  // order of the head.
  std::vector<std::ptrdiff_t> group_index(n, -1);
  for (std::size_t i : t.topological_order()) {
    const std::size_t h = head[i];
    if (group_index[h] < 0) {
      OperatorSpec fused = t.op(h);
      fused.name = t.op(h).name;
      group_index[h] = static_cast<std::ptrdiff_t>(
          result.topology.add_operator(fused));
    }
    const auto g = static_cast<std::size_t>(group_index[h]);
    result.group_of[i] = g;
    if (i != h) {
      // Accumulate this member into the fused spec. Its per-record costs
      // apply to the stream *after* the group's selectivity so far, so
      // weight them by the current cumulative selectivity.
      OperatorSpec& fused = result.topology.op(g);
      const double expansion = fused.selectivity;
      fused.deserialize_us += t.op(i).deserialize_us * expansion;
      fused.process_us += t.op(i).process_us * expansion;
      fused.serialize_us += t.op(i).serialize_us * expansion;
      fused.state_mb += t.op(i).state_mb;
      fused.selectivity *= t.op(i).selectivity;
      if (t.op(i).kind == OperatorKind::kSink) {
        fused.kind = fused.kind == OperatorKind::kSource
                         ? OperatorKind::kSource
                         : OperatorKind::kSink;
      }
      fused.name += "+" + t.op(i).name;
    }
  }

  // Pass 3: edges between groups.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d : t.downstream(i)) {
      const std::size_t from = result.group_of[i];
      const std::size_t to = result.group_of[d];
      if (from == to) continue;
      // Avoid duplicate edges (diamonds collapsing onto the same groups).
      const auto& down = result.topology.downstream(from);
      if (std::find(down.begin(), down.end(), to) == down.end()) {
        result.topology.connect(from, to);
      }
    }
  }

  result.topology.validate();
  return result;
}

Parallelism unchain_parallelism(const ChainingResult& chained,
                                const Parallelism& grouped) {
  if (grouped.size() != chained.topology.num_operators()) {
    throw std::invalid_argument(
        "unchain_parallelism: parallelism size mismatch");
  }
  Parallelism out(chained.group_of.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = grouped[chained.group_of[i]];
  }
  return out;
}

}  // namespace autra::sim

#include "streamsim/job_runner.hpp"

#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>

namespace autra::sim {

double JobSpec::initial_rate() const {
  if (!schedule) {
    throw std::logic_error("JobSpec: no rate schedule");
  }
  return schedule->rate_at(0.0);
}

std::unique_ptr<Engine> make_engine(const JobSpec& spec, const Parallelism& p,
                                    double start_time,
                                    std::uint64_t seed_salt) {
  if (!spec.schedule) {
    throw std::invalid_argument("make_engine: spec has no rate schedule");
  }
  EngineParams params = spec.engine;
  params.start_time = start_time;
  params.seed += seed_salt * 7919;  // decorrelate reruns
  auto engine = std::make_unique<Engine>(
      spec.topology, Cluster(spec.cluster), p,
      std::make_unique<KafkaLog>(spec.schedule->clone()), params);
  for (const ExternalServiceSpec& svc : spec.services) {
    engine->add_external_service(
        ExternalService(svc.name, svc.max_calls_per_sec, svc.burst_sec,
                        svc.call_latency_ms));
  }
  return engine;
}

JobMetrics snapshot(const Engine& engine) {
  JobMetrics m;
  m.parallelism = engine.parallelism();
  m.throughput = engine.throughput();
  m.input_rate = engine.kafka().rate_at(engine.now());
  const LatencyStats& lat = engine.processing_latency();
  m.latency_ms = lat.mean() * 1000.0;
  m.latency_p50_ms = lat.quantile(0.5) * 1000.0;
  m.latency_p95_ms = lat.quantile(0.95) * 1000.0;
  m.latency_p99_ms = lat.quantile(0.99) * 1000.0;
  m.event_latency_ms = engine.event_latency().mean() * 1000.0;
  m.kafka_lag = engine.kafka().lag();
  m.lag_growth_per_sec = engine.lag_growth_per_sec();
  m.busy_cores = engine.busy_cores();
  m.memory_mb = engine.memory_mb();
  for (std::size_t i = 0; i < engine.topology().num_operators(); ++i) {
    m.operators.push_back(engine.rates(i));
  }
  return m;
}

JobRunner::JobRunner(JobSpec spec, double warmup_sec, double measure_sec)
    : spec_(std::move(spec)),
      warmup_sec_(warmup_sec),
      measure_sec_(measure_sec) {
  spec_.topology.validate();
  if (warmup_sec_ < 0.0 || measure_sec_ <= 0.0) {
    throw std::invalid_argument("JobRunner: bad window lengths");
  }
}

int JobRunner::max_parallelism() const {
  return Cluster(spec_.cluster).max_parallelism();
}

JobMetrics JobRunner::measure(const Parallelism& p,
                              std::uint64_t seed_salt) const {
  auto engine = make_engine(spec_, p, 0.0, seed_salt);
  engine->run_until(warmup_sec_);
  engine->reset_counters();
  engine->run_until(warmup_sec_ + measure_sec_);
  JobMetrics m = snapshot(*engine);
  ++evaluations_;
  return m;
}

ScalingSession::ScalingSession(JobSpec spec, Parallelism initial,
                               double restart_downtime_sec,
                               double hot_downtime_sec)
    : spec_(std::move(spec)),
      restart_downtime_sec_(restart_downtime_sec),
      hot_downtime_sec_(hot_downtime_sec) {
  spec_.topology.validate();
  engine_ = make_engine(spec_, initial, 0.0, 0);
  engine_->set_external_metrics(&history_);
}

void ScalingSession::run_for(double sec) {
  engine_->run_until(engine_->now() + sec);
}

void ScalingSession::reconfigure(const Parallelism& p, RescaleMode mode) {
  if (p == engine_->parallelism()) return;
  if (mode == RescaleMode::kHotScaleOut) {
    const Parallelism& current = engine_->parallelism();
    for (std::size_t i = 0; i < p.size() && i < current.size(); ++i) {
      if (p[i] < current[i]) {
        throw std::invalid_argument(
            "ScalingSession: hot scale-out cannot shrink an operator");
      }
    }
  }
  const double downtime = mode == RescaleMode::kHotScaleOut
                              ? hot_downtime_sec_
                              : restart_downtime_sec_;
  const double t = engine_->now();
  std::unique_ptr<KafkaLog> kafka = engine_->release_kafka();

  EngineParams params = spec_.engine;
  params.start_time = t;
  params.seed += ++reconfig_salt_ * 104729;
  auto next = std::make_unique<Engine>(spec_.topology, Cluster(spec_.cluster),
                                       p, std::move(kafka), params);
  for (const ExternalServiceSpec& svc : spec_.services) {
    next->add_external_service(
        ExternalService(svc.name, svc.max_calls_per_sec, svc.burst_sec,
                        svc.call_latency_ms));
  }
  next->set_external_metrics(&history_);
  next->suspend_until(t + downtime);
  engine_ = std::move(next);
  ++restarts_;
}

JobMetrics ScalingSession::window_metrics() const {
  return snapshot(*engine_);
}

void ScalingSession::reset_window() { engine_->reset_counters(); }

SimTrialService::SimTrialService(JobSpec spec) : spec_(std::move(spec)) {
  spec_.topology.validate();
  if (!spec_.schedule) {
    throw std::invalid_argument("SimTrialService: spec has no rate schedule");
  }
}

runtime::Evaluator SimTrialService::evaluator_at(double rate,
                                                 double warmup_sec,
                                                 double measure_sec) const {
  JobSpec trial_spec = spec_;
  trial_spec.schedule = std::make_shared<ConstantRate>(rate);
  auto runner =
      std::make_shared<JobRunner>(std::move(trial_spec), warmup_sec,
                                  measure_sec);
  // Noise seeds derive from the configuration itself (plus a mutex-guarded
  // rerun counter), never from a shared call counter: concurrent or
  // reordered evaluations see the same noise a serial run would, which the
  // TrialService contract requires for thread-count-independent decisions.
  struct Reruns {
    std::mutex mu;
    std::map<Parallelism, std::uint64_t> counts;
  };
  auto reruns = std::make_shared<Reruns>();
  return [runner, reruns](const Parallelism& p) {
    std::uint64_t rerun = 0;
    {
      const std::lock_guard<std::mutex> lock(reruns->mu);
      rerun = reruns->counts[p]++;
    }
    return runner->measure(p, runtime::trial_seed_salt(p) + rerun);
  };
}

int SimTrialService::max_parallelism() const {
  return Cluster(spec_.cluster).max_parallelism();
}

double SimTrialService::scheduled_rate_at(double t) const {
  return spec_.schedule->rate_at(t);
}

std::shared_ptr<runtime::TrialService> make_trial_service(JobSpec spec) {
  return std::make_shared<SimTrialService>(std::move(spec));
}

}  // namespace autra::sim

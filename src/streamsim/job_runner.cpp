#include "streamsim/job_runner.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>

namespace autra::sim {

double JobSpec::initial_rate() const {
  if (!schedule) {
    throw std::logic_error("JobSpec: no rate schedule");
  }
  return schedule->rate_at(0.0);
}

std::unique_ptr<Engine> make_engine(const JobSpec& spec, const Parallelism& p,
                                    double start_time,
                                    std::uint64_t seed_salt) {
  if (!spec.schedule) {
    throw std::invalid_argument("make_engine: spec has no rate schedule");
  }
  EngineParams params = spec.engine;
  params.start_time = start_time;
  params.seed += seed_salt * 7919;  // decorrelate reruns
  auto engine = std::make_unique<Engine>(
      spec.topology, Cluster(spec.cluster), p,
      std::make_unique<KafkaLog>(spec.schedule), params);
  for (const ExternalServiceSpec& svc : spec.services) {
    engine->add_external_service(
        ExternalService(svc.name, svc.max_calls_per_sec, svc.burst_sec,
                        svc.call_latency_ms));
  }
  return engine;
}

JobMetrics snapshot(const Engine& engine) {
  JobMetrics m;
  m.parallelism = engine.parallelism();
  m.throughput = engine.throughput();
  m.input_rate = engine.kafka().rate_at(engine.now());
  const LatencyStats& lat = engine.processing_latency();
  m.latency_ms = lat.mean() * 1000.0;
  m.latency_p50_ms = lat.quantile(0.5) * 1000.0;
  m.latency_p95_ms = lat.quantile(0.95) * 1000.0;
  m.latency_p99_ms = lat.quantile(0.99) * 1000.0;
  m.event_latency_ms = engine.event_latency().mean() * 1000.0;
  m.kafka_lag = engine.kafka().lag();
  m.lag_growth_per_sec = engine.lag_growth_per_sec();
  m.busy_cores = engine.busy_cores();
  m.memory_mb = engine.memory_mb();
  for (std::size_t i = 0; i < engine.topology().num_operators(); ++i) {
    m.operators.push_back(engine.rates(i));
  }
  return m;
}

JobRunner::JobRunner(JobSpec spec, RunnerParams params)
    : spec_(std::move(spec)), params_(params) {
  spec_.topology.validate();
  if (params_.warmup_sec < 0.0 || params_.measure_sec <= 0.0) {
    throw std::invalid_argument("JobRunner: bad window lengths");
  }
}

int JobRunner::max_parallelism() const {
  return Cluster(spec_.cluster).max_parallelism();
}

JobMetrics JobRunner::measure(const Parallelism& p,
                              std::uint64_t seed_salt) const {
  auto engine = make_engine(spec_, p, 0.0, seed_salt);
  engine->run_until(params_.warmup_sec);
  engine->reset_counters();
  engine->run_until(params_.warmup_sec + params_.measure_sec);
  JobMetrics m = snapshot(*engine);
  ++evaluations_;
  return m;
}

ScalingSession::ScalingSession(JobSpec spec, Parallelism initial,
                               SessionParams params)
    : spec_(std::move(spec)), params_(params) {
  spec_.topology.validate();
  engine_ = make_engine(spec_, initial, 0.0, 0);
  engine_->set_external_metrics(&history_);
}

void ScalingSession::run_for(double sec) { run_to(engine_->now() + sec); }

void ScalingSession::run_to(double until_sec) {
  const double target = until_sec;
  // Machine and rack crashes force framework-style restarts: run up to the
  // moment the crash is detected, then rebuild the engine at the current
  // parallelism with the full restart downtime. A rack crash costs ONE
  // restart for the whole group (the framework notices the correlated loss
  // as one incident). The crash window usually extends past the restart,
  // so the successor engine (faults re-applied) still sees the machines
  // down until they recover.
  for (;;) {
    bool* pending = nullptr;
    double restart_at = 0.0;
    for (MachineDownFault& f : machine_down_faults_) {
      const double at = f.from + f.detect;
      if (f.restarted || at > target) continue;
      if (pending == nullptr || at < restart_at) {
        pending = &f.restarted;
        restart_at = at;
      }
    }
    for (RackDownFault& f : rack_down_faults_) {
      const double at = f.from + f.detect;
      if (f.restarted || at > target) continue;
      if (pending == nullptr || at < restart_at) {
        pending = &f.restarted;
        restart_at = at;
      }
    }
    if (pending == nullptr) break;
    engine_->run_until(std::max(restart_at, engine_->now()));
    *pending = true;
    ++failure_restarts_;
    const Parallelism p = engine_->parallelism();
    rebuild_engine(p, params_.restart_downtime_sec);
  }
  engine_->run_until(target);
}

void ScalingSession::reconfigure(const Parallelism& p, RescaleMode mode) {
  if (p == engine_->parallelism()) return;
  if (mode == RescaleMode::kHotScaleOut) {
    const Parallelism& current = engine_->parallelism();
    for (std::size_t i = 0; i < p.size() && i < current.size(); ++i) {
      if (p[i] < current[i]) {
        throw std::invalid_argument(
            "ScalingSession: hot scale-out cannot shrink an operator");
      }
    }
  }
  rebuild_engine(p, mode == RescaleMode::kHotScaleOut
                        ? params_.hot_downtime_sec
                        : params_.restart_downtime_sec);
}

void ScalingSession::set_external_machine_load(
    const std::vector<double>& load) {
  engine_->set_external_machine_load(load);  // validates
  external_machine_load_ = load;
}

void ScalingSession::set_external_uplink_load(
    const std::vector<double>& records_per_sec) {
  engine_->set_external_uplink_load(records_per_sec);  // validates
  external_uplink_load_ = records_per_sec;
}

std::vector<double> ScalingSession::uplink_consumed_records() const {
  std::vector<double> total = engine_->network().consumed_records();
  for (std::size_t r = 0;
       r < total.size() && r < uplink_consumed_base_.size(); ++r) {
    total[r] += uplink_consumed_base_[r];
  }
  return total;
}

void ScalingSession::rebuild_engine(const Parallelism& p, double downtime) {
  const double t = engine_->now();
  // Uplink consumption accounting survives the rebuild: fold the outgoing
  // engine's cumulative counters into the base before discarding it.
  const std::vector<double>& consumed = engine_->network().consumed_records();
  if (!consumed.empty()) {
    uplink_consumed_base_.resize(consumed.size(), 0.0);
    for (std::size_t r = 0; r < consumed.size(); ++r) {
      uplink_consumed_base_[r] += consumed[r];
    }
  }
  std::unique_ptr<KafkaLog> kafka = engine_->release_kafka();

  EngineParams params = spec_.engine;
  params.start_time = t;
  params.seed += ++reconfig_salt_ * 104729;
  auto next = std::make_unique<Engine>(spec_.topology, Cluster(spec_.cluster),
                                       p, std::move(kafka), params);
  for (const ExternalServiceSpec& svc : spec_.services) {
    next->add_external_service(
        ExternalService(svc.name, svc.max_calls_per_sec, svc.burst_sec,
                        svc.call_latency_ms));
  }
  apply_faults_to(*next);
  next->set_external_metrics(&history_);
  // Co-tenant interference survives the rebuild too (empty vectors are
  // no-ops, so the single-tenant path is untouched).
  if (!external_machine_load_.empty()) {
    next->set_external_machine_load(external_machine_load_);
  }
  if (!external_uplink_load_.empty()) {
    next->set_external_uplink_load(external_uplink_load_);
  }
  next->suspend_until(t + downtime);
  engine_ = std::move(next);
  ++restarts_;
}

void ScalingSession::apply_faults_to(Engine& engine) const {
  for (const MachineDownFault& f : machine_down_faults_) {
    engine.inject_machine_down(f.machine, f.from, f.until);
  }
  for (const SlowNodeFault& f : slow_node_faults_) {
    engine.inject_slowdown(f.machine, f.factor, f.from, f.until);
  }
  for (const ServiceOutageFault& f : service_outage_faults_) {
    engine.inject_service_outage(f.service, f.from, f.until);
  }
  for (const StallFault& f : stall_faults_) {
    engine.inject_ingest_stall(f.from, f.until);
  }
  for (const RackDownFault& f : rack_down_faults_) {
    for (std::size_t m : f.machines) {
      engine.inject_machine_down(m, f.from, f.until);
    }
  }
  for (const PartitionFault& f : partition_faults_) {
    engine.inject_network_partition(f.island, f.from, f.until);
  }
}

void ScalingSession::host_machine_down(std::size_t machine, double from_sec,
                                       double until_sec,
                                       double detection_delay_sec) {
  if (detection_delay_sec < 0.0) {
    throw std::invalid_argument(
        "ScalingSession: negative machine-down detection delay");
  }
  engine_->inject_machine_down(machine, from_sec, until_sec);  // validates
  machine_down_faults_.push_back(
      {machine, from_sec, until_sec, detection_delay_sec, false});
}

void ScalingSession::host_slow_node(std::size_t machine, double speed_factor,
                                    double from_sec, double until_sec) {
  engine_->inject_slowdown(machine, speed_factor, from_sec,
                           until_sec);  // validates
  slow_node_faults_.push_back({machine, speed_factor, from_sec, until_sec});
}

void ScalingSession::host_service_outage(const std::string& service,
                                         double from_sec, double until_sec) {
  engine_->inject_service_outage(service, from_sec, until_sec);  // validates
  service_outage_faults_.push_back({service, from_sec, until_sec});
}

void ScalingSession::host_ingest_stall(double from_sec, double until_sec) {
  engine_->inject_ingest_stall(from_sec, until_sec);  // validates
  stall_faults_.push_back({from_sec, until_sec});
}

void ScalingSession::host_rack_down(const std::vector<std::size_t>& machines,
                                    double from_sec, double until_sec,
                                    double detection_delay_sec) {
  if (detection_delay_sec < 0.0) {
    throw std::invalid_argument(
        "ScalingSession: negative rack-down detection delay");
  }
  // Validate everything before touching the engine so a bad group leaves
  // no partial crash behind.
  if (machines.empty() || until_sec <= from_sec) {
    throw std::invalid_argument("ScalingSession::host_rack_down: bad group");
  }
  for (std::size_t m : machines) {
    if (m >= engine_->cluster().num_machines()) {
      throw std::invalid_argument(
          "ScalingSession::host_rack_down: bad machine index");
    }
  }
  for (std::size_t m : machines) {
    engine_->inject_machine_down(m, from_sec, until_sec);
  }
  rack_down_faults_.push_back(
      {machines, from_sec, until_sec, detection_delay_sec, false});
}

void ScalingSession::host_network_partition(
    const std::vector<std::size_t>& island, double from_sec,
    double until_sec) {
  engine_->inject_network_partition(island, from_sec, until_sec);  // validates
  partition_faults_.push_back({island, from_sec, until_sec});
}

JobMetrics ScalingSession::window_metrics() const {
  return snapshot(*engine_);
}

void ScalingSession::reset_window() { engine_->reset_counters(); }

SimTrialService::SimTrialService(JobSpec spec) : spec_(std::move(spec)) {
  spec_.topology.validate();
  if (!spec_.schedule) {
    throw std::invalid_argument("SimTrialService: spec has no rate schedule");
  }
}

runtime::Evaluator SimTrialService::evaluator_at(double rate,
                                                 double warmup_sec,
                                                 double measure_sec) const {
  JobSpec trial_spec = spec_;
  trial_spec.schedule = std::make_shared<ConstantRate>(rate);
  auto runner = std::make_shared<JobRunner>(
      std::move(trial_spec),
      RunnerParams{.warmup_sec = warmup_sec, .measure_sec = measure_sec});
  // Noise seeds derive from the configuration itself (plus a mutex-guarded
  // rerun counter), never from a shared call counter: concurrent or
  // reordered evaluations see the same noise a serial run would, which the
  // TrialService contract requires for thread-count-independent decisions.
  struct Reruns {
    std::mutex mu;
    std::map<Parallelism, std::uint64_t> counts;
  };
  auto reruns = std::make_shared<Reruns>();
  return [runner, reruns](const Parallelism& p) {
    std::uint64_t rerun = 0;
    {
      const std::lock_guard<std::mutex> lock(reruns->mu);
      rerun = reruns->counts[p]++;
    }
    return runner->measure(p, runtime::trial_seed_salt(p) + rerun);
  };
}

int SimTrialService::max_parallelism() const {
  return Cluster(spec_.cluster).max_parallelism();
}

double SimTrialService::scheduled_rate_at(double t) const {
  return spec_.schedule->rate_at(t);
}

std::shared_ptr<runtime::TrialService> make_trial_service(JobSpec spec) {
  return std::make_shared<SimTrialService>(std::move(spec));
}

}  // namespace autra::sim

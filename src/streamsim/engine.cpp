#include "streamsim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace autra::sim {

namespace {
constexpr double kEps = 1e-12;
}

Engine::Engine(Topology topology, Cluster cluster, Parallelism parallelism,
               std::unique_ptr<KafkaLog> kafka, EngineParams params)
    : topo_(std::move(topology)),
      cluster_(std::move(cluster)),
      parallelism_(std::move(parallelism)),
      kafka_(std::move(kafka)),
      params_(params),
      interference_(params.interference),
      faults_(cluster_.num_machines()),
      proc_latency_(4096, params.seed),
      event_latency_(4096, params.seed + 1),
      interval_proc_latency_(1024, params.seed + 2),
      interval_event_latency_(1024, params.seed + 3),
      rng_(params.seed) {
  topo_.validate();
  if (!kafka_) {
    throw std::invalid_argument("Engine: null kafka log");
  }
  if (parallelism_.size() != topo_.num_operators()) {
    throw std::invalid_argument("Engine: parallelism size != operator count");
  }
  if (!cluster_.feasible(parallelism_)) {
    throw std::invalid_argument("Engine: infeasible parallelism for cluster");
  }
  if (params_.tick_sec <= 0.0 || params_.metric_interval_sec <= 0.0) {
    throw std::invalid_argument("Engine: bad timing parameters");
  }

  topo_order_ = topo_.topological_order();
  state_.resize(topo_.num_operators());
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    const double base_rate = 1e6 / topo_.op(i).total_cost_us();
    // The buffer must hold at least one tick of flow or the per-tick
    // emit limit, not backpressure, becomes the throughput bound.
    const double buffer_sec = std::max(params_.buffer_sec, params_.tick_sec);
    state_[i].queue_capacity =
        std::max(params_.min_buffer_records, base_rate * buffer_sec) *
        static_cast<double>(parallelism_[i]);
  }
  now_ = params_.start_time;
  window_start_ = now_;
  interval_start_ = now_;
  next_metric_time_ = now_ + params_.metric_interval_sec;
  metric_ids_ = resolve_metric_ids(metrics_);
}

Engine::MetricIdSet Engine::resolve_metric_ids(
    runtime::MetricSink& sink) const {
  namespace mn = metric_names;
  MetricIdSet ids;
  ids.op.reserve(topo_.num_operators());
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    const std::string& name = topo_.op(i).name;
    ids.op.push_back({sink.resolve(mn::true_rate(name)),
                      sink.resolve(mn::observed_rate(name)),
                      sink.resolve(mn::input_rate(name)),
                      sink.resolve(mn::output_rate(name)),
                      sink.resolve(mn::queue_size(name))});
  }
  ids.throughput = sink.resolve(mn::kThroughput);
  ids.latency_mean = sink.resolve(mn::kLatencyMean);
  ids.event_latency_mean = sink.resolve(mn::kEventLatencyMean);
  ids.kafka_lag = sink.resolve(mn::kKafkaLag);
  ids.input_rate = sink.resolve(mn::kInputRate);
  ids.busy_cores = sink.resolve(mn::kBusyCores);
  ids.parallelism_total = sink.resolve(mn::kParallelismTotal);
  return ids;
}

void Engine::set_external_metrics(runtime::MetricSink* sink) {
  external_metrics_ = sink;
  external_ids_ = sink != nullptr ? resolve_metric_ids(*sink) : MetricIdSet{};
}

void Engine::inject_slowdown(std::size_t machine, double speed_factor,
                             double from_sec, double until_sec) {
  if (machine >= cluster_.num_machines() || speed_factor <= 0.0 ||
      until_sec <= from_sec) {
    throw std::invalid_argument("Engine::inject_slowdown: bad arguments");
  }
  faults_.add_slowdown(machine, speed_factor, from_sec, until_sec);
}

void Engine::inject_machine_down(std::size_t machine, double from_sec,
                                 double until_sec) {
  if (machine >= cluster_.num_machines() || until_sec <= from_sec) {
    throw std::invalid_argument("Engine::inject_machine_down: bad arguments");
  }
  faults_.add_machine_down(machine, from_sec, until_sec);
}

void Engine::inject_ingest_stall(double from_sec, double until_sec) {
  if (until_sec <= from_sec) {
    throw std::invalid_argument("Engine::inject_ingest_stall: bad arguments");
  }
  faults_.add_ingest_stall(from_sec, until_sec);
}

void Engine::inject_service_outage(const std::string& service,
                                   double from_sec, double until_sec) {
  if (service.empty() || until_sec <= from_sec) {
    throw std::invalid_argument(
        "Engine::inject_service_outage: bad arguments");
  }
  faults_.add_service_outage(service, from_sec, until_sec);
}

void Engine::inject_network_partition(const std::vector<std::size_t>& island,
                                      double from_sec, double until_sec) {
  if (island.empty() || until_sec <= from_sec) {
    throw std::invalid_argument(
        "Engine::inject_network_partition: bad arguments");
  }
  std::vector<char> on_island(cluster_.num_machines(), 0);
  for (std::size_t m : island) {
    if (m >= cluster_.num_machines() || on_island[m]) {
      throw std::invalid_argument(
          "Engine::inject_network_partition: bad or duplicate machine");
    }
    on_island[m] = 1;
  }
  // An island holding every machine leaves no mainland: nothing is cut and
  // the "partition" silently becomes a no-op, which is always a schedule
  // bug rather than an intent.
  if (island.size() == cluster_.num_machines()) {
    throw std::invalid_argument(
        "Engine::inject_network_partition: island covers the whole "
        "cluster; a partition must leave a mainland");
  }

  // Which sides of the cut host instances of each operator: bit 0 =
  // mainland, bit 1 = island. An edge functions only when every instance
  // of both endpoints sits on one side — keyed shuffles are all-to-all, so
  // one unreachable channel blocks the exchange.
  std::vector<int> span(topo_.num_operators(), 0);
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    for (int j = 0; j < parallelism_[i]; ++j) {
      span[i] |= on_island[cluster_.machine_of_instance(j)] ? 2 : 1;
    }
  }
  PartitionSpec ps;
  ps.edge_cut.resize(topo_.num_operators());
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    const std::vector<std::size_t>& down = topo_.downstream(i);
    ps.edge_cut[i].resize(down.size());
    for (std::size_t di = 0; di < down.size(); ++di) {
      ps.edge_cut[i][di] = (span[i] | span[down[di]]) == 3;
    }
  }
  const std::size_t index = faults_.add_partition(from_sec, until_sec);
  partitions_.push_back(std::move(ps));
  if (index + 1 != partitions_.size()) {
    throw std::logic_error("Engine: partition index out of sync");
  }
}

bool Engine::edge_cut_now(std::size_t op, std::size_t di) const noexcept {
  for (std::size_t p : faults_.active_partitions()) {
    if (partitions_[p].edge_cut[op][di]) return true;
  }
  return false;
}

void Engine::add_external_service(ExternalService service) {
  if (started_) {
    throw std::logic_error(
        "Engine::add_external_service: engine already started");
  }
  const std::string name = service.name();
  if (!services_.emplace(name, std::move(service)).second) {
    throw std::invalid_argument("Engine: duplicate external service " + name);
  }
}

double Engine::latency_floor_sec() const noexcept {
  // Every non-source operator is one network hop whose cost grows with the
  // receiver's parallelism (keyed shuffle fan-out): Obs. 2.2's
  // communication cost.
  double floor_ms = 0.0;
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    const OperatorSpec& spec = topo_.op(i);
    if (spec.external_service) {
      const auto it = services_.find(*spec.external_service);
      if (it != services_.end()) {
        floor_ms += it->second.call_latency_ms() *
                    spec.external_calls_per_record;
      }
    }
    if (spec.kind == OperatorKind::kSource) continue;
    floor_ms += params_.buffer_timeout_ms +
                params_.shuffle_ms_per_parallelism *
                    std::sqrt(static_cast<double>(parallelism_[i] - 1));
  }
  return floor_ms / 1000.0;
}

double Engine::congestion_delay_sec() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    const double rho = std::clamp(state_[i].smoothed_busy, 0.0, 0.995);
    const double coord = interference_.coordination_factor(parallelism_[i]);
    const double service_sec = topo_.op(i).total_cost_us() * coord / 1e6;
    const double w = params_.congestion_burst_records * service_sec * rho /
                     (1.0 - rho);
    total += std::min(w, params_.congestion_cap_sec);
  }
  return total;
}

void Engine::push_downstream(std::size_t op, double mass, double produced,
                             double ingested) {
  for (std::size_t d : topo_.downstream(op)) {
    OperatorState& ds = state_[d];
    // Merge into the current tick's tail cohort to bound queue length.
    if (!ds.queue.empty() &&
        std::abs(ds.queue.back().ingested_time - ingested) < kEps &&
        std::abs(ds.queue.back().produced_time - produced) < 1.0) {
      const double total = ds.queue.back().mass + mass;
      ds.queue.back().produced_time =
          (ds.queue.back().produced_time * ds.queue.back().mass +
           produced * mass) /
          total;
      ds.queue.back().mass = total;
    } else {
      ds.queue.push_back({mass, produced, ingested});
    }
    ds.queue_mass += mass;
    ds.counters.records_in += mass;
  }
}

void Engine::tick() {
  started_ = true;
  const double dt = params_.tick_sec;
  const double t = now_;

  // One cursor advance services every fault query this tick makes.
  faults_.advance_to(t);

  kafka_->produce(t, dt);
  for (auto& [_, svc] : services_) svc.tick(dt);

  const bool suspended = t < suspended_until_;

  // Per-machine busy load: co-tenant background load plus the previous
  // tick's smoothed busy fractions of this job's instances.
  std::vector<double> load(cluster_.num_machines(), 0.0);
  for (std::size_t m = 0; m < cluster_.num_machines(); ++m) {
    load[m] = cluster_.spec().machines[m].background_load;
  }
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    for (int j = 0; j < parallelism_[i]; ++j) {
      load[cluster_.machine_of_instance(j)] += state_[i].smoothed_busy;
    }
  }

  double tick_busy_core_seconds = 0.0;
  // Constant across operators within one tick (depends on configuration
  // and smoothed utilisation, both fixed during the tick).
  const double floor = latency_floor_sec() + congestion_delay_sec();

  for (std::size_t i : topo_order_) {
    const OperatorSpec& spec = topo_.op(i);
    OperatorState& st = state_[i];
    const int k = parallelism_[i];

    // --- Capacity of this operator in this tick -------------------------
    const double coord = interference_.coordination_factor(k);
    double capacity = 0.0;  // records processable this tick
    double hot_capacity = 0.0;  // capacity of the (skew) hot instance 0
    for (int j = 0; j < k; ++j) {
      const std::size_t m = cluster_.machine_of_instance(j);
      const MachineSpec& ms = cluster_.spec().machines[m];
      const double slow = faults_.slowdown_factor(m);
      const double divisor =
          interference_.contention_divisor(load[m], ms.cores, slow);
      const double rate =
          faults_.machine_down(m)
              ? 0.0
              : 1e6 / (spec.total_cost_us() * coord) * (ms.speed * slow) /
                    divisor;
      capacity += rate * dt;
      if (j == 0) hot_capacity = rate * dt;
    }
    // Key skew: the hot instance receives a (1 + skew) multiple of the
    // uniform share and saturates first, capping the whole operator.
    if (spec.key_skew > 0.0 && k > 1) {
      const double hot_share = (1.0 + spec.key_skew) /
                               (static_cast<double>(k) + spec.key_skew);
      capacity = std::min(capacity, hot_capacity / hot_share);
    }

    // --- How much work is available and emittable -----------------------
    // An ingest stall blinds the sources: the broker keeps accepting
    // producer records (lag grows) but consumers fetch nothing.
    double available =
        spec.kind == OperatorKind::kSource
            ? (faults_.ingest_stalled() ? 0.0 : kafka_->lag())
            : st.queue_mass;

    double emit_limit = std::numeric_limits<double>::infinity();
    if (spec.selectivity > 0.0) {
      const std::vector<std::size_t>& down = topo_.downstream(i);
      for (std::size_t di = 0; di < down.size(); ++di) {
        // A partition-cut edge transfers nothing: the operator stalls
        // outright (emitted mass goes to every downstream edge, so one
        // dead edge blocks the emit) and backpressure builds upstream.
        if (edge_cut_now(i, di)) {
          emit_limit = 0.0;
          break;
        }
        const double free =
            state_[down[di]].queue_capacity - state_[down[di]].queue_mass;
        emit_limit =
            std::min(emit_limit, std::max(0.0, free) / spec.selectivity);
      }
    }

    double processed = std::min({available, capacity, emit_limit});
    if (suspended) processed = 0.0;

    // --- External-service throttling (the Redis cap) --------------------
    if (spec.external_service && processed > kEps) {
      auto it = services_.find(*spec.external_service);
      if (it == services_.end()) {
        throw std::logic_error("Engine: operator '" + spec.name +
                               "' references unknown service '" +
                               *spec.external_service + "'");
      }
      if (faults_.service_out(*spec.external_service)) {
        processed = 0.0;  // every per-record call times out
      } else {
        const double want = processed * spec.external_calls_per_record;
        const double granted = it->second.acquire(want);
        processed = granted / spec.external_calls_per_record;
      }
    }

    // --- Move cohorts ----------------------------------------------------
    std::vector<QueueCohort> taken;
    if (spec.kind == OperatorKind::kSource) {
      for (const LogCohort& c : kafka_->consume(processed)) {
        taken.push_back({c.mass, c.produced_time, t + dt});
      }
      double ingested = 0.0;
      for (const QueueCohort& c : taken) ingested += c.mass;
      st.counters.records_in += ingested;
      st.interval.records_in += ingested;
      window_consumed_ += ingested;
      interval_consumed_ += ingested;
    } else {
      double remaining = processed;
      while (remaining > kEps && !st.queue.empty()) {
        QueueCohort& head = st.queue.front();
        if (head.mass <= remaining + kEps) {
          remaining -= head.mass;
          st.queue_mass -= head.mass;
          taken.push_back(head);
          st.queue.pop_front();
        } else {
          taken.push_back({remaining, head.produced_time, head.ingested_time});
          head.mass -= remaining;
          st.queue_mass -= remaining;
          remaining = 0.0;
        }
      }
      st.queue_mass = std::max(st.queue_mass, 0.0);
    }

    double actually_processed = 0.0;
    for (const QueueCohort& c : taken) actually_processed += c.mass;

    // --- Emit or complete -------------------------------------------------
    const bool terminal = topo_.downstream(i).empty();
    for (const QueueCohort& c : taken) {
      if (terminal) {
        const double done = t + dt;
        // Mean-one lognormal dispersion of the processing latency; the
        // pending time in Kafka (event latency minus processing latency)
        // is deterministic backlog and is not jittered.
        double jitter = 1.0;
        if (params_.latency_jitter_sigma > 0.0) {
          const double s = params_.latency_jitter_sigma;
          std::normal_distribution<double> n(-0.5 * s * s, s);
          jitter = std::exp(n(rng_));
        }
        const double proc = (done - c.ingested_time + floor) * jitter;
        const double pending = c.ingested_time - c.produced_time;
        proc_latency_.add(proc, c.mass);
        event_latency_.add(pending + proc, c.mass);
        interval_proc_latency_.add(proc, c.mass);
        interval_event_latency_.add(pending + proc, c.mass);
      } else if (spec.selectivity > 0.0) {
        push_downstream(i, c.mass * spec.selectivity, c.produced_time,
                        c.ingested_time);
        st.counters.records_out += c.mass * spec.selectivity;
        st.interval.records_out += c.mass * spec.selectivity;
      }
    }

    // --- Busy-time accounting (true vs observed rate) --------------------
    const double busy_frac =
        capacity > kEps ? std::clamp(actually_processed / capacity, 0.0, 1.0)
                        : 0.0;
    st.counters.processed += actually_processed;
    st.counters.busy_time += busy_frac * dt * static_cast<double>(k);
    st.counters.wall_time += dt * static_cast<double>(k);
    st.interval.processed += actually_processed;
    st.interval.busy_time += busy_frac * dt * static_cast<double>(k);
    st.interval.wall_time += dt * static_cast<double>(k);
    tick_busy_core_seconds += busy_frac * dt * static_cast<double>(k);

    const double a = params_.interference.load_smoothing;
    st.smoothed_busy = (1.0 - a) * st.smoothed_busy + a * busy_frac;
  }

  window_busy_core_seconds_ += tick_busy_core_seconds;
  interval_busy_core_seconds_ += tick_busy_core_seconds;
  now_ += dt;

  if (now_ + kEps >= next_metric_time_) {
    write_metrics();
    next_metric_time_ += params_.metric_interval_sec;
  }
}

void Engine::run_until(double until_sec) {
  while (now_ + kEps < until_sec) tick();
}

void Engine::suspend_until(double until_sec) {
  suspended_until_ = std::max(suspended_until_, until_sec);
}

OperatorRates Engine::rates(std::size_t op) const {
  if (op >= topo_.num_operators()) {
    throw std::out_of_range("Engine::rates: bad operator index");
  }
  return rates_from(op, state_[op].counters);
}

const OperatorCounters& Engine::counters(std::size_t op) const {
  if (op >= topo_.num_operators()) {
    throw std::out_of_range("Engine::counters: bad operator index");
  }
  return state_[op].counters;
}

OperatorRates Engine::rates_from(std::size_t op,
                                 const OperatorCounters& c) const {
  const OperatorState& st = state_[op];
  const int k = parallelism_[op];

  OperatorRates r;
  r.parallelism = k;
  r.queue_length = st.queue_mass;

  const double window = c.wall_time / static_cast<double>(k);
  if (window > kEps) {
    r.observed_rate_per_instance = c.processed / c.wall_time;
    r.total_input_rate = c.records_in / window;
    r.total_output_rate = c.records_out / window;
  }
  if (c.busy_time > kEps && c.processed > kEps) {
    // Eq. 2: records / busy time, averaged over instances.
    r.true_rate_per_instance = c.processed / c.busy_time;
  } else {
    // Idle operator: its true rate is its potential rate. Estimate from the
    // base cost and coordination factor (no contention while idle).
    const double coord = interference_.coordination_factor(k);
    r.true_rate_per_instance = 1e6 / (topo_.op(op).total_cost_us() * coord);
  }
  return r;
}

double Engine::throughput() const noexcept {
  const double window = now_ - window_start_;
  return window > kEps ? window_consumed_ / window : 0.0;
}

double Engine::lag_growth_per_sec() const noexcept {
  const double window = now_ - window_start_;
  return window > kEps ? (kafka_->lag() - window_start_lag_) / window : 0.0;
}

double Engine::busy_cores() const noexcept {
  const double window = now_ - window_start_;
  return window > kEps ? window_busy_core_seconds_ / window : 0.0;
}

void Engine::reset_counters() {
  for (OperatorState& st : state_) st.counters = {};
  proc_latency_.reset();
  event_latency_.reset();
  window_start_ = now_;
  window_consumed_ = 0.0;
  window_busy_core_seconds_ = 0.0;
  window_start_lag_ = kafka_ ? kafka_->lag() : 0.0;
}

double Engine::memory_mb() const noexcept {
  double mb = 0.0;
  int max_k = 0;
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    mb += topo_.op(i).state_mb * static_cast<double>(parallelism_[i]);
    max_k = std::max(max_k, parallelism_[i]);
  }
  // Slot sharing: the job occupies max-parallelism slots.
  mb += cluster_.spec().slot_overhead_mb * static_cast<double>(max_k);
  return mb;
}

double Engine::noisy(double value) {
  if (params_.measurement_noise <= 0.0) return value;
  std::normal_distribution<double> n(0.0, params_.measurement_noise);
  return value * (1.0 + n(rng_));
}

void Engine::write_metrics() {
  const double t = now_;
  // All ids were resolved at construction/attach time: each write below is
  // an id-indexed append — no string construction, no map lookup.
  const auto put = [&](auto select, double value) {
    metrics_.record(select(metric_ids_), t, value);
    if (external_metrics_ != nullptr) {
      external_metrics_->record(select(external_ids_), t, value);
    }
  };
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    const OperatorRates r = rates_from(i, state_[i].interval);
    const auto op = [i](const MetricIdSet& s) -> const MetricIdSet::PerOp& {
      return s.op[i];
    };
    put([&](const MetricIdSet& s) { return op(s).true_rate; },
        noisy(r.true_rate_per_instance));
    put([&](const MetricIdSet& s) { return op(s).observed_rate; },
        noisy(r.observed_rate_per_instance));
    put([&](const MetricIdSet& s) { return op(s).input_rate; },
        noisy(r.total_input_rate));
    put([&](const MetricIdSet& s) { return op(s).output_rate; },
        noisy(r.total_output_rate));
    put([&](const MetricIdSet& s) { return op(s).queue_size; },
        r.queue_length);
    state_[i].interval = {};
  }
  const double interval = t - interval_start_;
  const double tput = interval > kEps ? interval_consumed_ / interval : 0.0;
  put([](const MetricIdSet& s) { return s.throughput; }, noisy(tput));
  put([](const MetricIdSet& s) { return s.latency_mean; },
      noisy(interval_proc_latency_.mean()));
  put([](const MetricIdSet& s) { return s.event_latency_mean; },
      noisy(interval_event_latency_.mean()));
  put([](const MetricIdSet& s) { return s.kafka_lag; }, kafka_->lag());
  put([](const MetricIdSet& s) { return s.input_rate; }, kafka_->rate_at(t));
  put([](const MetricIdSet& s) { return s.busy_cores; },
      interval > kEps ? interval_busy_core_seconds_ / interval : 0.0);
  int total_parallelism = 0;
  for (int k : parallelism_) total_parallelism += k;
  put([](const MetricIdSet& s) { return s.parallelism_total; },
      total_parallelism);
  interval_busy_core_seconds_ = 0.0;
  interval_consumed_ = 0.0;
  interval_start_ = t;
  interval_proc_latency_.reset();
  interval_event_latency_.reset();
}

}  // namespace autra::sim

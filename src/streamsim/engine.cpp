#include "streamsim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace autra::sim {

namespace {
constexpr double kEps = 1e-12;
/// Placement entries folded per capacity chunk. Fixed so the serial and
/// sharded refresh paths evaluate the identical partial sums.
constexpr std::size_t kCapacityChunk = 1024;
}  // namespace

NetworkModel Engine::make_network() const {
  topo_.validate();
  if (!kafka_) {
    throw std::invalid_argument("Engine: null kafka log");
  }
  if (parallelism_.size() != topo_.num_operators()) {
    throw std::invalid_argument("Engine: parallelism size != operator count");
  }
  if (!cluster_.feasible(parallelism_)) {
    throw std::invalid_argument("Engine: infeasible parallelism for cluster");
  }
  if (params_.tick_sec <= 0.0 || params_.metric_interval_sec <= 0.0) {
    throw std::invalid_argument("Engine: bad timing parameters");
  }
  if (params_.load_epsilon < 0.0) {
    throw std::invalid_argument("Engine: negative load_epsilon");
  }
  return NetworkModel(topo_, cluster_, parallelism_);
}

Engine::Engine(Topology topology, Cluster cluster, Parallelism parallelism,
               std::unique_ptr<KafkaLog> kafka, EngineParams params)
    : topo_(std::move(topology)),
      cluster_(std::move(cluster)),
      parallelism_(std::move(parallelism)),
      kafka_(std::move(kafka)),
      params_(params),
      interference_(params.interference),
      faults_(cluster_.num_machines()),
      network_(make_network()),
      exec_(params.threads),
      proc_latency_(4096, params.seed),
      event_latency_(4096, params.seed + 1),
      interval_proc_latency_(1024, params.seed + 2),
      interval_event_latency_(1024, params.seed + 3),
      rng_(params.seed) {
  const std::size_t num_ops = topo_.num_operators();
  const std::size_t num_machines = cluster_.num_machines();

  topo_order_ = topo_.topological_order();
  state_.resize(num_ops);
  queue_mass_.assign(num_ops, 0.0);
  queue_capacity_.assign(num_ops, 0.0);
  smoothed_busy_.assign(num_ops, 0.0);
  sb_snapshot_.assign(num_ops, 0.0);
  base_rate_.assign(num_ops, 0.0);
  hot_share_.assign(num_ops, 0.0);
  capacity_.assign(num_ops, 0.0);
  hot_capacity_.assign(num_ops, 0.0);

  machine_bg_.assign(num_machines, 0.0);
  machine_load_.assign(num_machines, 0.0);
  machine_factor_.assign(num_machines, 0.0);
  for (std::size_t m = 0; m < num_machines; ++m) {
    machine_bg_[m] = cluster_.spec().machines[m].background_load;
  }
  hot_machine_ = cluster_.machine_of_slot(0);

  // Static placement: which machines host how many instances of each
  // operator (round-robin slot sharing makes this dense in the machine
  // prefix), its inversion, and the chunked capacity partial sums.
  placement_.resize(num_ops);
  machine_ops_.resize(num_machines);
  std::vector<double> count(num_machines, 0.0);
  for (std::size_t i = 0; i < num_ops; ++i) {
    const OperatorSpec& spec = topo_.op(i);
    const int k = parallelism_[i];
    base_rate_[i] =
        1e6 / (spec.total_cost_us() * interference_.coordination_factor(k));
    if (spec.key_skew > 0.0 && k > 1) {
      hot_share_[i] =
          (1.0 + spec.key_skew) / (static_cast<double>(k) + spec.key_skew);
    }
    // The buffer must hold at least one tick of flow or the per-tick
    // emit limit, not backpressure, becomes the throughput bound.
    const double buffer_sec = std::max(params_.buffer_sec, params_.tick_sec);
    queue_capacity_[i] =
        std::max(params_.min_buffer_records,
                 1e6 / spec.total_cost_us() * buffer_sec) *
        static_cast<double>(k);

    std::fill(count.begin(), count.end(), 0.0);
    for (int j = 0; j < k; ++j) {
      count[cluster_.machine_of_instance(j)] += 1.0;
    }
    OpPlacement& pl = placement_[i];
    pl.entry_of.assign(num_machines, -1);
    for (std::size_t m = 0; m < num_machines; ++m) {
      if (count[m] <= 0.0) continue;
      pl.entry_of[m] = static_cast<std::int32_t>(pl.machine.size());
      pl.machine.push_back(m);
      pl.count.push_back(count[m]);
      machine_ops_[m].emplace_back(i, count[m]);
    }
    const std::size_t chunks =
        (pl.machine.size() + kCapacityChunk - 1) / kCapacityChunk;
    pl.chunk_sum.assign(chunks, 0.0);
    for (std::size_t c = 0; c < chunks; ++c) {
      all_chunks_.emplace_back(static_cast<std::uint32_t>(i),
                               static_cast<std::uint32_t>(c));
    }
  }

  now_ = params_.start_time;
  window_start_ = now_;
  interval_start_ = now_;
  next_metric_time_ = now_ + params_.metric_interval_sec;
  metric_ids_ = resolve_metric_ids(metrics_);
}

Engine::MetricIdSet Engine::resolve_metric_ids(
    runtime::MetricSink& sink) const {
  namespace mn = metric_names;
  MetricIdSet ids;
  ids.op.reserve(topo_.num_operators());
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    const std::string& name = topo_.op(i).name;
    ids.op.push_back({sink.resolve(mn::true_rate(name)),
                      sink.resolve(mn::observed_rate(name)),
                      sink.resolve(mn::input_rate(name)),
                      sink.resolve(mn::output_rate(name)),
                      sink.resolve(mn::queue_size(name))});
  }
  ids.throughput = sink.resolve(mn::kThroughput);
  ids.latency_mean = sink.resolve(mn::kLatencyMean);
  ids.event_latency_mean = sink.resolve(mn::kEventLatencyMean);
  ids.kafka_lag = sink.resolve(mn::kKafkaLag);
  ids.input_rate = sink.resolve(mn::kInputRate);
  ids.busy_cores = sink.resolve(mn::kBusyCores);
  ids.parallelism_total = sink.resolve(mn::kParallelismTotal);
  return ids;
}

void Engine::set_external_metrics(runtime::MetricSink* sink) {
  external_metrics_ = sink;
  external_ids_ = sink != nullptr ? resolve_metric_ids(*sink) : MetricIdSet{};
}

void Engine::set_external_machine_load(const std::vector<double>& load) {
  std::vector<double> next;
  bool all_zero = true;
  for (const double l : load) {
    if (l < 0.0) {
      throw std::invalid_argument(
          "Engine::set_external_machine_load: negative load");
    }
    if (l != 0.0) all_zero = false;
  }
  if (!all_zero) {
    if (load.size() != cluster_.num_machines()) {
      throw std::invalid_argument(
          "Engine::set_external_machine_load: bad machine count");
    }
    next = load;
  }
  if (next == external_load_) return;
  external_load_ = std::move(next);
  // The cached machine loads are stale; force a refold at the next tick.
  sb_drift_ = true;
}

void Engine::set_external_uplink_load(
    const std::vector<double>& records_per_sec) {
  network_.set_external_load(records_per_sec);
}

std::vector<double> Engine::machine_busy_load() const {
  std::vector<double> load(cluster_.num_machines(), 0.0);
  for (std::size_t m = 0; m < load.size(); ++m) {
    for (const auto& [op, cnt] : machine_ops_[m]) {
      load[m] += cnt * smoothed_busy_[op];
    }
  }
  return load;
}

void Engine::inject_slowdown(std::size_t machine, double speed_factor,
                             double from_sec, double until_sec) {
  if (machine >= cluster_.num_machines() || speed_factor <= 0.0 ||
      until_sec <= from_sec) {
    throw std::invalid_argument("Engine::inject_slowdown: bad arguments");
  }
  faults_.add_slowdown(machine, speed_factor, from_sec, until_sec);
}

void Engine::inject_machine_down(std::size_t machine, double from_sec,
                                 double until_sec) {
  if (machine >= cluster_.num_machines() || until_sec <= from_sec) {
    throw std::invalid_argument("Engine::inject_machine_down: bad arguments");
  }
  faults_.add_machine_down(machine, from_sec, until_sec);
}

void Engine::inject_ingest_stall(double from_sec, double until_sec) {
  if (until_sec <= from_sec) {
    throw std::invalid_argument("Engine::inject_ingest_stall: bad arguments");
  }
  faults_.add_ingest_stall(from_sec, until_sec);
}

void Engine::inject_service_outage(const std::string& service,
                                   double from_sec, double until_sec) {
  if (service.empty() || until_sec <= from_sec) {
    throw std::invalid_argument(
        "Engine::inject_service_outage: bad arguments");
  }
  faults_.add_service_outage(service, from_sec, until_sec);
}

void Engine::inject_network_partition(const std::vector<std::size_t>& island,
                                      double from_sec, double until_sec) {
  if (island.empty() || until_sec <= from_sec) {
    throw std::invalid_argument(
        "Engine::inject_network_partition: bad arguments");
  }
  std::vector<char> on_island(cluster_.num_machines(), 0);
  for (std::size_t m : island) {
    if (m >= cluster_.num_machines() || on_island[m]) {
      throw std::invalid_argument(
          "Engine::inject_network_partition: bad or duplicate machine");
    }
    on_island[m] = 1;
  }
  // An island holding every machine leaves no mainland: nothing is cut and
  // the "partition" silently becomes a no-op, which is always a schedule
  // bug rather than an intent.
  if (island.size() == cluster_.num_machines()) {
    throw std::invalid_argument(
        "Engine::inject_network_partition: island covers the whole "
        "cluster; a partition must leave a mainland");
  }
  const std::size_t net_index = network_.add_partition(on_island);
  const std::size_t fault_index = faults_.add_partition(from_sec, until_sec);
  if (net_index != fault_index) {
    throw std::logic_error("Engine: partition index out of sync");
  }
}

void Engine::add_external_service(ExternalService service) {
  if (started_) {
    throw std::logic_error(
        "Engine::add_external_service: engine already started");
  }
  const std::string name = service.name();
  if (!services_.emplace(name, std::move(service)).second) {
    throw std::invalid_argument("Engine: duplicate external service " + name);
  }
}

double Engine::latency_floor_sec() const noexcept {
  // Every non-source operator is one network hop whose cost grows with the
  // receiver's parallelism (keyed shuffle fan-out): Obs. 2.2's
  // communication cost.
  double floor_ms = 0.0;
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    const OperatorSpec& spec = topo_.op(i);
    if (spec.external_service) {
      const auto it = services_.find(*spec.external_service);
      if (it != services_.end()) {
        floor_ms += it->second.call_latency_ms() *
                    spec.external_calls_per_record;
      }
    }
    if (spec.kind == OperatorKind::kSource) continue;
    floor_ms += params_.buffer_timeout_ms +
                params_.shuffle_ms_per_parallelism *
                    std::sqrt(static_cast<double>(parallelism_[i] - 1));
  }
  return floor_ms / 1000.0;
}

double Engine::congestion_delay_sec() const noexcept {
  double total = 0.0;
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    const double rho = std::clamp(smoothed_busy_[i], 0.0, 0.995);
    const double coord = interference_.coordination_factor(parallelism_[i]);
    const double service_sec = topo_.op(i).total_cost_us() * coord / 1e6;
    const double w = params_.congestion_burst_records * service_sec * rho /
                     (1.0 - rho);
    total += std::min(w, params_.congestion_cap_sec);
  }
  return total;
}

void Engine::push_downstream(std::size_t op, double mass, double produced,
                             double ingested) {
  for (std::size_t d : topo_.downstream(op)) {
    OperatorState& ds = state_[d];
    // Merge into the current tick's tail cohort to bound queue length.
    if (!ds.queue.empty() &&
        std::abs(ds.queue.back().ingested_time - ingested) < kEps &&
        std::abs(ds.queue.back().produced_time - produced) < 1.0) {
      const double total = ds.queue.back().mass + mass;
      ds.queue.back().produced_time =
          (ds.queue.back().produced_time * ds.queue.back().mass +
           produced * mass) /
          total;
      ds.queue.back().mass = total;
    } else {
      ds.queue.push_back({mass, produced, ingested});
    }
    queue_mass_[d] += mass;
    ds.counters.records_in += mass;
  }
}

// --- Epoch cache maintenance (DESIGN.md §11) ------------------------------

double Engine::compute_factor(std::size_t m, double load) const {
  if (faults_.machine_down(m)) return 0.0;
  const MachineSpec& ms = cluster_.spec().machines[m];
  const double slow = faults_.slowdown_factor(m);
  return (ms.speed * slow) /
         interference_.contention_divisor(load, ms.cores, slow);
}

bool Engine::use_parallel_refresh() const {
  // Sharding pays for itself only at platform scale, and worker threads
  // must never open a nested region (engines run inside Plan-stage
  // parallel trials — the serial fallback keeps that composition legal).
  return exec_.threads() > 1 && cluster_.num_machines() >= 512 &&
         !exec::detail::in_parallel_region();
}

void Engine::recompute_chunk(std::size_t op, std::size_t c) {
  OpPlacement& pl = placement_[op];
  const double base = base_rate_[op];
  const double dt = params_.tick_sec;
  const std::size_t begin = c * kCapacityChunk;
  const std::size_t end =
      std::min(begin + kCapacityChunk, pl.machine.size());
  double sum = 0.0;
  for (std::size_t e = begin; e < end; ++e) {
    sum += pl.count[e] * (base * machine_factor_[pl.machine[e]] * dt);
  }
  pl.chunk_sum[c] = sum;
}

void Engine::fold_capacity(std::size_t op) {
  const OpPlacement& pl = placement_[op];
  double capacity = 0.0;
  for (const double s : pl.chunk_sum) capacity += s;
  hot_capacity_[op] =
      base_rate_[op] * machine_factor_[hot_machine_] * params_.tick_sec;
  // Key skew: the hot instance receives a (1 + skew) multiple of the
  // uniform share and saturates first, capping the whole operator.
  if (hot_share_[op] > 0.0) {
    capacity = std::min(capacity, hot_capacity_[op] / hot_share_[op]);
  }
  capacity_[op] = capacity;
}

void Engine::full_refresh() {
  ++epoch_stats_.full_refreshes;
  const exec::ExecContext ctx =
      use_parallel_refresh() ? exec_ : exec::ExecContext::serial();

  // Per-machine busy load (co-tenant background load plus the previous
  // fold's smoothed busy fractions of this job's instances) and the rate
  // factor it implies. Index-addressed: bit-identical at any thread count.
  exec::parallel_for(ctx, cluster_.num_machines(), [this](std::size_t m) {
    double load = machine_bg_[m];
    // Dynamic co-tenant load (multi-tenant coupling). The branch keeps the
    // decoupled sum bitwise identical to the pre-multi-tenant expression.
    if (!external_load_.empty()) load += external_load_[m];
    for (const auto& [op, cnt] : machine_ops_[m]) {
      load += cnt * smoothed_busy_[op];
    }
    machine_load_[m] = load;
    machine_factor_[m] = compute_factor(m, load);
  });

  std::copy(smoothed_busy_.begin(), smoothed_busy_.end(),
            sb_snapshot_.begin());

  exec::parallel_for(ctx, all_chunks_.size(), [this](std::size_t idx) {
    recompute_chunk(all_chunks_[idx].first, all_chunks_[idx].second);
  });
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) fold_capacity(i);
}

void Engine::refresh_factor(std::size_t m) {
  ++epoch_stats_.machine_refreshes;
  // Loads depend only on busy fractions, which are bit-equal to the last
  // fold's snapshot on this path (otherwise sb_drift_ would have forced a
  // full refresh) — so the cached load feeds the factor unchanged.
  machine_factor_[m] = compute_factor(m, machine_load_[m]);
  for (const auto& [op, cnt] : machine_ops_[m]) {
    (void)cnt;
    OpPlacement& pl = placement_[op];
    pl.dirty_chunks.push_back(
        static_cast<std::uint32_t>(pl.entry_of[m]) /
        static_cast<std::uint32_t>(kCapacityChunk));
    dirty_ops_.push_back(op);
  }
}

void Engine::refresh_epoch_caches(const FaultTimeline::Delta& delta) {
  if (params_.core == EngineCore::kTickDriven) {
    // The reference core recomputes everything from live state every tick.
    full_refresh();
    return;
  }
  if (!caches_primed_ || delta.rebuilt || sb_drift_) {
    full_refresh();
    caches_primed_ = true;
    sb_drift_ = false;
    return;
  }
  if (delta.machines.empty()) return;

  dirty_ops_.clear();
  for (const std::size_t m : delta.machines) refresh_factor(m);
  std::sort(dirty_ops_.begin(), dirty_ops_.end());
  dirty_ops_.erase(std::unique(dirty_ops_.begin(), dirty_ops_.end()),
                   dirty_ops_.end());
  for (const std::size_t op : dirty_ops_) {
    OpPlacement& pl = placement_[op];
    std::sort(pl.dirty_chunks.begin(), pl.dirty_chunks.end());
    pl.dirty_chunks.erase(
        std::unique(pl.dirty_chunks.begin(), pl.dirty_chunks.end()),
        pl.dirty_chunks.end());
    for (const std::uint32_t c : pl.dirty_chunks) recompute_chunk(op, c);
    pl.dirty_chunks.clear();
    // Folding over every chunk sum (in chunk order) keeps the result
    // bit-identical to a full recompute: clean chunks are bitwise
    // unchanged by construction.
    fold_capacity(op);
  }
}

bool Engine::op_active(std::size_t i, bool suspended) const {
  // A decayed busy fraction is exactly 0.0 (the EMA underflows to zero
  // after ~2400 idle ticks); until then the operator still moves state.
  if (smoothed_busy_[i] != 0.0) return true;
  if (suspended) return false;
  if (topo_.op(i).kind == OperatorKind::kSource) {
    return !faults_.ingest_stalled() && kafka_->lag() > 0.0;
  }
  // queue_mass_ can be exactly 0.0 while sub-epsilon cohort residue sits in
  // the deque; the kernel takes nothing in that state, so skipping is
  // still exact.
  return queue_mass_[i] > 0.0;
}

void Engine::run_operator(std::size_t i, double t, double dt, bool suspended,
                          double floor, double& tick_busy_core_seconds) {
  const OperatorSpec& spec = topo_.op(i);
  OperatorState& st = state_[i];
  const int k = parallelism_[i];
  const double capacity = capacity_[i];

  // --- How much work is available and emittable -----------------------
  // An ingest stall blinds the sources: the broker keeps accepting
  // producer records (lag grows) but consumers fetch nothing.
  const double available =
      spec.kind == OperatorKind::kSource
          ? (faults_.ingest_stalled() ? 0.0 : kafka_->lag())
          : queue_mass_[i];

  const std::vector<std::size_t>& down = topo_.downstream(i);
  double emit_limit = std::numeric_limits<double>::infinity();
  if (spec.selectivity > 0.0) {
    for (std::size_t di = 0; di < down.size(); ++di) {
      // A partition-cut edge transfers nothing: the operator stalls
      // outright (emitted mass goes to every downstream edge, so one
      // dead edge blocks the emit) and backpressure builds upstream.
      // A bandwidth-limited edge caps the transfer the same way, just
      // with a finite limit instead of zero.
      const double net = network_.edge_limit(i, di);
      if (net <= 0.0) {
        emit_limit = 0.0;
        break;
      }
      const double free = queue_capacity_[down[di]] - queue_mass_[down[di]];
      emit_limit = std::min(
          emit_limit, std::min(std::max(0.0, free), net) / spec.selectivity);
    }
  }

  double processed = std::min({available, capacity, emit_limit});
  if (suspended) processed = 0.0;

  // --- External-service throttling (the Redis cap) --------------------
  if (spec.external_service && processed > kEps) {
    auto it = services_.find(*spec.external_service);
    if (it == services_.end()) {
      throw std::logic_error("Engine: operator '" + spec.name +
                             "' references unknown service '" +
                             *spec.external_service + "'");
    }
    if (faults_.service_out(*spec.external_service)) {
      processed = 0.0;  // every per-record call times out
    } else {
      const double want = processed * spec.external_calls_per_record;
      const double granted = it->second.acquire(want);
      processed = granted / spec.external_calls_per_record;
    }
  }

  // --- Move cohorts ----------------------------------------------------
  std::vector<QueueCohort> taken;
  if (spec.kind == OperatorKind::kSource) {
    for (const LogCohort& c : kafka_->consume(processed)) {
      taken.push_back({c.mass, c.produced_time, t + dt});
    }
    double ingested = 0.0;
    for (const QueueCohort& c : taken) ingested += c.mass;
    st.counters.records_in += ingested;
    st.interval.records_in += ingested;
    window_consumed_ += ingested;
    interval_consumed_ += ingested;
  } else {
    double remaining = processed;
    while (remaining > kEps && !st.queue.empty()) {
      QueueCohort& head = st.queue.front();
      if (head.mass <= remaining + kEps) {
        remaining -= head.mass;
        queue_mass_[i] -= head.mass;
        taken.push_back(head);
        st.queue.pop_front();
      } else {
        taken.push_back({remaining, head.produced_time, head.ingested_time});
        head.mass -= remaining;
        queue_mass_[i] -= remaining;
        remaining = 0.0;
      }
    }
    queue_mass_[i] = std::max(queue_mass_[i], 0.0);
  }

  double actually_processed = 0.0;
  for (const QueueCohort& c : taken) actually_processed += c.mass;

  // --- Emit or complete -------------------------------------------------
  const bool terminal = down.empty();
  double emitted = 0.0;
  for (const QueueCohort& c : taken) {
    if (terminal) {
      const double done = t + dt;
      // Mean-one lognormal dispersion of the processing latency; the
      // pending time in Kafka (event latency minus processing latency)
      // is deterministic backlog and is not jittered.
      double jitter = 1.0;
      if (params_.latency_jitter_sigma > 0.0) {
        const double s = params_.latency_jitter_sigma;
        std::normal_distribution<double> n(-0.5 * s * s, s);
        jitter = std::exp(n(rng_));
      }
      const double proc = (done - c.ingested_time + floor) * jitter;
      const double pending = c.ingested_time - c.produced_time;
      proc_latency_.add(proc, c.mass);
      event_latency_.add(pending + proc, c.mass);
      interval_proc_latency_.add(proc, c.mass);
      interval_event_latency_.add(pending + proc, c.mass);
    } else if (spec.selectivity > 0.0) {
      push_downstream(i, c.mass * spec.selectivity, c.produced_time,
                      c.ingested_time);
      st.counters.records_out += c.mass * spec.selectivity;
      st.interval.records_out += c.mass * spec.selectivity;
      emitted += c.mass * spec.selectivity;
    }
  }
  // Charge the shuffle against the rack uplinks it crossed (every
  // downstream edge carries the full emitted mass — broadcast semantics).
  if (network_.constrained() && emitted > 0.0) {
    for (std::size_t di = 0; di < down.size(); ++di) {
      network_.consume(i, di, emitted);
    }
  }

  // --- Busy-time accounting (true vs observed rate) --------------------
  const double busy_frac =
      capacity > kEps ? std::clamp(actually_processed / capacity, 0.0, 1.0)
                      : 0.0;
  st.counters.processed += actually_processed;
  st.counters.busy_time += busy_frac * dt * static_cast<double>(k);
  st.interval.processed += actually_processed;
  st.interval.busy_time += busy_frac * dt * static_cast<double>(k);
  tick_busy_core_seconds += busy_frac * dt * static_cast<double>(k);

  const double a = params_.interference.load_smoothing;
  smoothed_busy_[i] = (1.0 - a) * smoothed_busy_[i] + a * busy_frac;
}

void Engine::tick() {
  started_ = true;
  const double dt = params_.tick_sec;
  const double t = now_;

  // One cursor advance services every fault query this tick makes, and its
  // delta tells the epoch caches exactly which machines changed.
  const FaultTimeline::Delta& delta = faults_.advance_to(t);

  kafka_->produce(t, dt);
  for (auto& [_, svc] : services_) svc.tick(dt);

  const bool suspended = t < suspended_until_;

  refresh_epoch_caches(delta);
  network_.begin_tick(dt, faults_.active_partitions());

  double tick_busy_core_seconds = 0.0;
  // Constant across operators within one tick (depends on configuration
  // and smoothed utilisation, both fixed during the tick).
  const double floor = latency_floor_sec() + congestion_delay_sec();

  const bool tick_all = params_.core == EngineCore::kTickDriven;
  ++epoch_stats_.ticks;
  for (const std::size_t i : topo_order_) {
    // Wall time accrues whether or not the operator does work — an idle
    // instance still occupies its slot. Kept outside the kernel so both
    // cores add the identical per-tick terms in the identical order.
    const double wall = dt * static_cast<double>(parallelism_[i]);
    OperatorState& st = state_[i];
    st.counters.wall_time += wall;
    st.interval.wall_time += wall;
    if (!tick_all && !op_active(i, suspended)) continue;
    ++epoch_stats_.operators_touched;
    run_operator(i, t, dt, suspended, floor, tick_busy_core_seconds);
  }

  // Busy fractions moved -> the load-dependent caches are stale. With
  // load_epsilon == 0 any exact change forces a full refresh next tick
  // (the bit-identity contract); a positive epsilon tolerates ulp wobble
  // in converged fractions.
  if (!tick_all && !sb_drift_) {
    for (std::size_t i = 0; i < smoothed_busy_.size(); ++i) {
      if (std::abs(smoothed_busy_[i] - sb_snapshot_[i]) >
          params_.load_epsilon) {
        sb_drift_ = true;
        break;
      }
    }
  }

  window_busy_core_seconds_ += tick_busy_core_seconds;
  interval_busy_core_seconds_ += tick_busy_core_seconds;
  now_ += dt;

  if (now_ + kEps >= next_metric_time_) {
    write_metrics();
    next_metric_time_ += params_.metric_interval_sec;
  }
}

void Engine::run_until(double until_sec) {
  while (now_ + kEps < until_sec) tick();
}

void Engine::suspend_until(double until_sec) {
  suspended_until_ = std::max(suspended_until_, until_sec);
}

OperatorRates Engine::rates(std::size_t op) const {
  if (op >= topo_.num_operators()) {
    throw std::out_of_range("Engine::rates: bad operator index");
  }
  return rates_from(op, state_[op].counters);
}

const OperatorCounters& Engine::counters(std::size_t op) const {
  if (op >= topo_.num_operators()) {
    throw std::out_of_range("Engine::counters: bad operator index");
  }
  return state_[op].counters;
}

OperatorRates Engine::rates_from(std::size_t op,
                                 const OperatorCounters& c) const {
  const int k = parallelism_[op];

  OperatorRates r;
  r.parallelism = k;
  r.queue_length = queue_mass_[op];

  const double window = c.wall_time / static_cast<double>(k);
  if (window > kEps) {
    r.observed_rate_per_instance = c.processed / c.wall_time;
    r.total_input_rate = c.records_in / window;
    r.total_output_rate = c.records_out / window;
  }
  if (c.busy_time > kEps && c.processed > kEps) {
    // Eq. 2: records / busy time, averaged over instances.
    r.true_rate_per_instance = c.processed / c.busy_time;
  } else {
    // Idle operator: its true rate is its potential rate. Estimate from the
    // base cost and coordination factor (no contention while idle).
    const double coord = interference_.coordination_factor(k);
    r.true_rate_per_instance = 1e6 / (topo_.op(op).total_cost_us() * coord);
  }
  return r;
}

double Engine::throughput() const noexcept {
  const double window = now_ - window_start_;
  return window > kEps ? window_consumed_ / window : 0.0;
}

double Engine::lag_growth_per_sec() const noexcept {
  const double window = now_ - window_start_;
  return window > kEps ? (kafka_->lag() - window_start_lag_) / window : 0.0;
}

double Engine::busy_cores() const noexcept {
  const double window = now_ - window_start_;
  return window > kEps ? window_busy_core_seconds_ / window : 0.0;
}

void Engine::reset_counters() {
  for (OperatorState& st : state_) st.counters = {};
  proc_latency_.reset();
  event_latency_.reset();
  window_start_ = now_;
  window_consumed_ = 0.0;
  window_busy_core_seconds_ = 0.0;
  window_start_lag_ = kafka_ ? kafka_->lag() : 0.0;
}

double Engine::memory_mb() const noexcept {
  double mb = 0.0;
  int max_k = 0;
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    mb += topo_.op(i).state_mb * static_cast<double>(parallelism_[i]);
    max_k = std::max(max_k, parallelism_[i]);
  }
  // Slot sharing: the job occupies max-parallelism slots.
  mb += cluster_.spec().slot_overhead_mb * static_cast<double>(max_k);
  return mb;
}

double Engine::noisy(double value) {
  if (params_.measurement_noise <= 0.0) return value;
  std::normal_distribution<double> n(0.0, params_.measurement_noise);
  return value * (1.0 + n(rng_));
}

void Engine::write_metrics() {
  const double t = now_;
  // All ids were resolved at construction/attach time: each write below is
  // an id-indexed append — no string construction, no map lookup.
  const auto put = [&](auto select, double value) {
    metrics_.record(select(metric_ids_), t, value);
    if (external_metrics_ != nullptr) {
      external_metrics_->record(select(external_ids_), t, value);
    }
  };
  for (std::size_t i = 0; i < topo_.num_operators(); ++i) {
    const OperatorRates r = rates_from(i, state_[i].interval);
    const auto op = [i](const MetricIdSet& s) -> const MetricIdSet::PerOp& {
      return s.op[i];
    };
    put([&](const MetricIdSet& s) { return op(s).true_rate; },
        noisy(r.true_rate_per_instance));
    put([&](const MetricIdSet& s) { return op(s).observed_rate; },
        noisy(r.observed_rate_per_instance));
    put([&](const MetricIdSet& s) { return op(s).input_rate; },
        noisy(r.total_input_rate));
    put([&](const MetricIdSet& s) { return op(s).output_rate; },
        noisy(r.total_output_rate));
    put([&](const MetricIdSet& s) { return op(s).queue_size; },
        r.queue_length);
    state_[i].interval = {};
  }
  const double interval = t - interval_start_;
  const double tput = interval > kEps ? interval_consumed_ / interval : 0.0;
  put([](const MetricIdSet& s) { return s.throughput; }, noisy(tput));
  put([](const MetricIdSet& s) { return s.latency_mean; },
      noisy(interval_proc_latency_.mean()));
  put([](const MetricIdSet& s) { return s.event_latency_mean; },
      noisy(interval_event_latency_.mean()));
  put([](const MetricIdSet& s) { return s.kafka_lag; }, kafka_->lag());
  put([](const MetricIdSet& s) { return s.input_rate; }, kafka_->rate_at(t));
  put([](const MetricIdSet& s) { return s.busy_cores; },
      interval > kEps ? interval_busy_core_seconds_ / interval : 0.0);
  int total_parallelism = 0;
  for (int k : parallelism_) total_parallelism += k;
  put([](const MetricIdSet& s) { return s.parallelism_total; },
      total_parallelism);
  interval_busy_core_seconds_ = 0.0;
  interval_consumed_ = 0.0;
  interval_start_ = t;
  interval_proc_latency_.reset();
  interval_event_latency_.reset();
}

}  // namespace autra::sim

// Kafka stand-in: a partitioned log that producers append to at a scheduled
// rate and that job sources pull from at their processing capacity. The one
// observable AuTraScale needs from it is the consumer lag (paper Fig. 1(b))
// and the production timestamps that define event-time latency.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "streamsim/rates.hpp"

namespace autra::sim {

/// A cohort of records that entered the log together; the fluid engine
/// moves record *mass* rather than individual records, so production time is
/// tracked per cohort.
struct LogCohort {
  double mass = 0.0;          ///< Number of records (fractional).
  double produced_time = 0.0; ///< Simulation time the cohort was appended.
};

class KafkaLog {
 public:
  /// The log only reads the schedule, so it shares ownership with the
  /// JobSpec/workload that built it — no clone at engine construction.
  explicit KafkaLog(std::shared_ptr<const RateSchedule> schedule);

  [[deprecated(
      "pass a shared_ptr<const RateSchedule>; KafkaLog never mutates the "
      "schedule")]] explicit KafkaLog(std::unique_ptr<RateSchedule> schedule);

  /// Appends `schedule.rate_at(t) * dt` records produced during [t, t+dt).
  void produce(double t, double dt);

  /// Removes up to `want` records from the head of the log. Returns the
  /// cohorts taken (their total mass is <= want).
  [[nodiscard]] std::vector<LogCohort> consume(double want);

  /// Unconsumed records (the Kafka consumer lag metric).
  [[nodiscard]] double lag() const noexcept { return lag_; }

  [[nodiscard]] double total_produced() const noexcept {
    return total_produced_;
  }
  [[nodiscard]] double total_consumed() const noexcept {
    return total_consumed_;
  }
  [[nodiscard]] double rate_at(double t) const { return schedule_->rate_at(t); }

  /// Drops all pending records (used when a test resets the pipeline).
  void clear() noexcept;

 private:
  std::shared_ptr<const RateSchedule> schedule_;
  std::deque<LogCohort> cohorts_;
  double lag_ = 0.0;
  double total_produced_ = 0.0;
  double total_consumed_ = 0.0;
};

}  // namespace autra::sim

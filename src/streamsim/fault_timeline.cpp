#include "streamsim/fault_timeline.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace autra::sim {

namespace {

/// Stable sort of event indices by window start.
template <typename Event>
std::vector<std::size_t> order_by_from(const std::vector<Event>& events) {
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return events[a].from < events[b].from;
                   });
  return order;
}

void check_window(double from, double until, const char* what) {
  if (until <= from) {
    throw std::invalid_argument(std::string("FaultTimeline: ") + what +
                                ": until must be > from");
  }
}

}  // namespace

FaultTimeline::FaultTimeline(std::size_t num_machines)
    : num_machines_(num_machines),
      down_count_(num_machines, 0),
      slow_active_(num_machines) {}

void FaultTimeline::add_slowdown(std::size_t machine, double factor,
                                 double from, double until) {
  check_window(from, until, "slowdown");
  if (machine >= num_machines_ || factor <= 0.0) {
    throw std::invalid_argument("FaultTimeline: bad slowdown event");
  }
  slow_.push_back({machine, factor, from, until});
  dirty_ = true;
}

void FaultTimeline::add_machine_down(std::size_t machine, double from,
                                     double until) {
  check_window(from, until, "machine-down");
  if (machine >= num_machines_) {
    throw std::invalid_argument("FaultTimeline: bad machine index");
  }
  down_.push_back({machine, from, until});
  dirty_ = true;
}

void FaultTimeline::add_ingest_stall(double from, double until) {
  check_window(from, until, "ingest-stall");
  stall_.push_back({from, until});
  dirty_ = true;
}

void FaultTimeline::add_service_outage(std::string service, double from,
                                       double until) {
  check_window(from, until, "service-outage");
  if (service.empty()) {
    throw std::invalid_argument("FaultTimeline: empty service name");
  }
  outage_.push_back({std::move(service), from, until});
  dirty_ = true;
}

std::size_t FaultTimeline::add_partition(double from, double until) {
  check_window(from, until, "partition");
  part_.push_back({from, until});
  dirty_ = true;
  return part_.size() - 1;
}

void FaultTimeline::rebuild() {
  slow_order_ = order_by_from(slow_);
  down_order_ = order_by_from(down_);
  stall_order_ = order_by_from(stall_);
  outage_order_ = order_by_from(outage_);
  part_order_ = order_by_from(part_);
  slow_next_ = down_next_ = stall_next_ = outage_next_ = part_next_ = 0;
  slow_expiry_ = {};
  down_expiry_ = {};
  stall_expiry_ = {};
  outage_expiry_ = {};
  part_expiry_ = {};
  std::fill(down_count_.begin(), down_count_.end(), 0);
  for (auto& active : slow_active_) active.clear();
  stall_count_ = 0;
  outage_count_.clear();
  part_active_.clear();
  dirty_ = false;
  started_ = false;
}

const FaultTimeline::Delta& FaultTimeline::advance_to(double t) {
  delta_.machines.clear();
  delta_.rebuilt = false;
  if (dirty_ || (started_ && t < cursor_time_)) {
    rebuild();
    delta_.rebuilt = true;
  }
  cursor_time_ = t;
  started_ = true;

  // Activate windows that have opened, retire windows that have closed.
  // An event entirely in the past activates and retires in the same call
  // (net zero), which keeps the two phases order-independent. Machine
  // deltas are still reported for such events — a spurious entry costs the
  // caller one redundant refresh, a missed one would corrupt its caches.
  while (slow_next_ < slow_order_.size() &&
         slow_[slow_order_[slow_next_]].from <= t) {
    const std::size_t idx = slow_order_[slow_next_++];
    std::vector<std::size_t>& active = slow_active_[slow_[idx].machine];
    active.insert(std::lower_bound(active.begin(), active.end(), idx), idx);
    slow_expiry_.emplace(slow_[idx].until, idx);
    delta_.machines.push_back(slow_[idx].machine);
  }
  while (!slow_expiry_.empty() && slow_expiry_.top().first <= t) {
    const std::size_t idx = slow_expiry_.top().second;
    slow_expiry_.pop();
    std::vector<std::size_t>& active = slow_active_[slow_[idx].machine];
    active.erase(std::lower_bound(active.begin(), active.end(), idx));
    delta_.machines.push_back(slow_[idx].machine);
  }

  while (down_next_ < down_order_.size() &&
         down_[down_order_[down_next_]].from <= t) {
    const std::size_t idx = down_order_[down_next_++];
    ++down_count_[down_[idx].machine];
    down_expiry_.emplace(down_[idx].until, idx);
    delta_.machines.push_back(down_[idx].machine);
  }
  while (!down_expiry_.empty() && down_expiry_.top().first <= t) {
    delta_.machines.push_back(down_[down_expiry_.top().second].machine);
    --down_count_[down_[down_expiry_.top().second].machine];
    down_expiry_.pop();
  }

  while (stall_next_ < stall_order_.size() &&
         stall_[stall_order_[stall_next_]].from <= t) {
    stall_expiry_.emplace(stall_[stall_order_[stall_next_++]].until, 0);
    ++stall_count_;
  }
  while (!stall_expiry_.empty() && stall_expiry_.top().first <= t) {
    --stall_count_;
    stall_expiry_.pop();
  }

  while (outage_next_ < outage_order_.size() &&
         outage_[outage_order_[outage_next_]].from <= t) {
    const std::size_t idx = outage_order_[outage_next_++];
    ++outage_count_[outage_[idx].service];
    outage_expiry_.emplace(outage_[idx].until, idx);
  }
  while (!outage_expiry_.empty() && outage_expiry_.top().first <= t) {
    --outage_count_[outage_[outage_expiry_.top().second].service];
    outage_expiry_.pop();
  }

  while (part_next_ < part_order_.size() &&
         part_[part_order_[part_next_]].from <= t) {
    const std::size_t idx = part_order_[part_next_++];
    part_active_.insert(
        std::lower_bound(part_active_.begin(), part_active_.end(), idx), idx);
    part_expiry_.emplace(part_[idx].until, idx);
  }
  while (!part_expiry_.empty() && part_expiry_.top().first <= t) {
    const std::size_t idx = part_expiry_.top().second;
    part_expiry_.pop();
    part_active_.erase(
        std::lower_bound(part_active_.begin(), part_active_.end(), idx));
  }
  // A rebuild already tells the caller to refresh everything; the machine
  // entries the catch-up loops above pushed would only duplicate that.
  if (delta_.rebuilt) delta_.machines.clear();
  return delta_;
}

double FaultTimeline::slowdown_factor(std::size_t machine) const noexcept {
  double factor = 1.0;
  for (std::size_t idx : slow_active_[machine]) factor *= slow_[idx].factor;
  return factor;
}

bool FaultTimeline::service_out(const std::string& service) const noexcept {
  const auto it = outage_count_.find(service);
  return it != outage_count_.end() && it->second > 0;
}

bool FaultTimeline::machine_down_linear(std::size_t machine,
                                        double t) const noexcept {
  for (const DownEvent& e : down_) {
    if (e.machine == machine && t >= e.from && t < e.until) return true;
  }
  return false;
}

double FaultTimeline::slowdown_factor_linear(std::size_t machine,
                                             double t) const noexcept {
  double factor = 1.0;
  for (const SlowEvent& e : slow_) {
    if (e.machine == machine && t >= e.from && t < e.until) {
      factor *= e.factor;
    }
  }
  return factor;
}

bool FaultTimeline::ingest_stalled_linear(double t) const noexcept {
  for (const Window& w : stall_) {
    if (t >= w.from && t < w.until) return true;
  }
  return false;
}

bool FaultTimeline::service_out_linear(const std::string& service,
                                       double t) const noexcept {
  for (const OutageEvent& e : outage_) {
    if (t >= e.from && t < e.until && e.service == service) return true;
  }
  return false;
}

std::vector<std::size_t> FaultTimeline::active_partitions_linear(
    double t) const {
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < part_.size(); ++i) {
    if (t >= part_[i].from && t < part_[i].until) active.push_back(i);
  }
  return active;
}

}  // namespace autra::sim

// Sorted-window fault cursors.
//
// The engine used to answer "is machine m down at t?" and "how slow is
// machine m at t?" with a linear scan over every injected event, per
// instance, per tick. That is fine for the three canned schedules but
// quadratic-ish once chaos-mode generation produces thousands of events
// per run. FaultTimeline keeps each event class sorted by start time and
// advances a cursor as simulation time moves forward: events are activated
// when their window opens (cursor walk over the sorted order) and retired
// through a min-heap keyed on window end, so a tick pays O(events that
// changed state this tick) instead of O(all events), and every query
// against the *current* time is an array/map lookup.
//
// Exactness contract: the cursor answers are bit-identical to the linear
// scans they replaced. In particular the slowdown factor is the product of
// the active factors *in insertion order* (the order the old scan
// multiplied them in), so replacing the scan cannot perturb a single ulp
// of a simulation. The linear_* methods keep the reference implementation
// alive for the property tests that pin this equivalence.
//
// Time may move backwards (an engine is rebuilt mid-run) and events may be
// injected after ticking has started; both mark the index dirty and the
// next advance_to() rebuilds cursor state from scratch — cold paths, paid
// per rescale rather than per tick.
#pragma once

#include <cstddef>
#include <map>
#include <queue>
#include <string>
#include <vector>

namespace autra::sim {

class FaultTimeline {
 public:
  explicit FaultTimeline(std::size_t num_machines);

  /// Event registration. Windows are [from, until); machine indices must be
  /// < num_machines and until > from (std::invalid_argument otherwise).
  void add_slowdown(std::size_t machine, double factor, double from,
                    double until);
  void add_machine_down(std::size_t machine, double from, double until);
  void add_ingest_stall(double from, double until);
  void add_service_outage(std::string service, double from, double until);
  /// Registers a partition *window*; what the partition cuts is the
  /// engine's business. Returns the dense partition index (0, 1, ...)
  /// that active_partitions() reports.
  std::size_t add_partition(double from, double until);

  /// What changed during one advance_to() call — the epoch-driven engine
  /// core invalidates its capacity caches from this instead of re-querying
  /// every machine every tick. A rebuild (backwards time, new events)
  /// reports `rebuilt` and callers must treat every machine as changed.
  struct Delta {
    bool rebuilt = false;
    /// Machines whose down or slowdown state flipped this advance (may
    /// contain duplicates); empty after a rebuild.
    std::vector<std::size_t> machines;
    [[nodiscard]] bool any() const noexcept {
      return rebuilt || !machines.empty();
    }
  };

  /// Moves the cursor to time `t` and reports which machine-affecting
  /// state changed. Monotone advances are amortised O(1) per event state
  /// change; going backwards or advancing after new events were added
  /// rebuilds the cursor state (cold path, reported as Delta::rebuilt).
  /// The returned reference is valid until the next advance_to() call.
  const Delta& advance_to(double t);

  // Queries at the advanced-to time (call advance_to first).
  [[nodiscard]] bool machine_down(std::size_t machine) const noexcept {
    return down_count_[machine] > 0;
  }
  [[nodiscard]] double slowdown_factor(std::size_t machine) const noexcept;
  [[nodiscard]] bool ingest_stalled() const noexcept {
    return stall_count_ > 0;
  }
  [[nodiscard]] bool service_out(const std::string& service) const noexcept;
  /// Indices of partitions whose window is open, ascending.
  [[nodiscard]] const std::vector<std::size_t>& active_partitions()
      const noexcept {
    return part_active_;
  }

  // Linear-scan reference implementations — the exact pre-cursor
  // semantics, kept for the equivalence property tests. O(events) each.
  [[nodiscard]] bool machine_down_linear(std::size_t machine,
                                         double t) const noexcept;
  [[nodiscard]] double slowdown_factor_linear(std::size_t machine,
                                              double t) const noexcept;
  [[nodiscard]] bool ingest_stalled_linear(double t) const noexcept;
  [[nodiscard]] bool service_out_linear(const std::string& service,
                                        double t) const noexcept;
  [[nodiscard]] std::vector<std::size_t> active_partitions_linear(
      double t) const;

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return num_machines_;
  }
  [[nodiscard]] std::size_t num_events() const noexcept {
    return slow_.size() + down_.size() + stall_.size() + outage_.size() +
           part_.size();
  }

 private:
  struct SlowEvent {
    std::size_t machine;
    double factor;
    double from, until;
  };
  struct DownEvent {
    std::size_t machine;
    double from, until;
  };
  struct Window {
    double from, until;
  };
  struct OutageEvent {
    std::string service;
    double from, until;
  };

  /// Min-heap of (window end, event index) — the retirement queue.
  using ExpiryHeap =
      std::priority_queue<std::pair<double, std::size_t>,
                          std::vector<std::pair<double, std::size_t>>,
                          std::greater<>>;

  void rebuild();

  std::size_t num_machines_;
  Delta delta_;  ///< Scratch filled by advance_to(); reused across calls.
  bool dirty_ = false;
  double cursor_time_ = 0.0;
  bool started_ = false;  ///< advance_to() has been called at least once.

  std::vector<SlowEvent> slow_;
  std::vector<DownEvent> down_;
  std::vector<Window> stall_;
  std::vector<OutageEvent> outage_;
  std::vector<Window> part_;

  // Per class: indices sorted by `from` (stable), the activation cursor,
  // and the retirement heap.
  std::vector<std::size_t> slow_order_, down_order_, stall_order_,
      outage_order_, part_order_;
  std::size_t slow_next_ = 0, down_next_ = 0, stall_next_ = 0,
              outage_next_ = 0, part_next_ = 0;
  ExpiryHeap slow_expiry_, down_expiry_, stall_expiry_, outage_expiry_,
      part_expiry_;

  // Active state.
  std::vector<int> down_count_;  ///< Per machine.
  /// Per machine: indices of active slowdown events, ascending (insertion
  /// order), so the factor product multiplies in scan order.
  std::vector<std::vector<std::size_t>> slow_active_;
  int stall_count_ = 0;
  std::map<std::string, int> outage_count_;
  std::vector<std::size_t> part_active_;
};

}  // namespace autra::sim

#include "streamsim/rates.hpp"

#include <cmath>
#include <stdexcept>

namespace autra::sim {

ConstantRate::ConstantRate(double rate) : rate_(rate) {
  if (rate < 0.0) {
    throw std::invalid_argument("ConstantRate: negative rate");
  }
}

StaircaseRate::StaircaseRate(double base, double step, double period)
    : base_(base), step_(step), period_(period) {
  if (base < 0.0 || period <= 0.0) {
    throw std::invalid_argument("StaircaseRate: bad parameters");
  }
}

double StaircaseRate::rate_at(double t) const {
  if (t < 0.0) return base_;
  const double steps = std::floor(t / period_);
  return std::max(0.0, base_ + step_ * steps);
}

PiecewiseRate::PiecewiseRate(
    std::vector<std::pair<double, double>> breakpoints)
    : breakpoints_(std::move(breakpoints)) {
  if (breakpoints_.empty() || breakpoints_.front().first != 0.0) {
    throw std::invalid_argument(
        "PiecewiseRate: breakpoints must start at t=0");
  }
  for (std::size_t i = 1; i < breakpoints_.size(); ++i) {
    if (breakpoints_[i].first <= breakpoints_[i - 1].first) {
      throw std::invalid_argument(
          "PiecewiseRate: times must be strictly increasing");
    }
  }
  for (const auto& [t, r] : breakpoints_) {
    if (r < 0.0) {
      throw std::invalid_argument("PiecewiseRate: negative rate");
    }
  }
}

double PiecewiseRate::rate_at(double t) const {
  double rate = breakpoints_.front().second;
  for (const auto& [start, r] : breakpoints_) {
    if (t >= start) {
      rate = r;
    } else {
      break;
    }
  }
  return rate;
}

}  // namespace autra::sim

#include "streamsim/interference.hpp"

#include <cmath>
#include <stdexcept>

namespace autra::sim {

InterferenceModel::InterferenceModel(InterferenceParams params)
    : params_(params) {
  if (params_.bandwidth_penalty < 0.0 || params_.coordination_penalty < 0.0 ||
      params_.coordination_exponent < 0.0 ||
      params_.load_smoothing <= 0.0 || params_.load_smoothing > 1.0) {
    throw std::invalid_argument("InterferenceModel: bad parameters");
  }
}

double InterferenceModel::coordination_factor(int parallelism) const noexcept {
  if (!params_.enabled || parallelism <= 1) return 1.0;
  const double k = static_cast<double>(parallelism - 1);
  return 1.0 + params_.coordination_penalty *
                   std::pow(k, params_.coordination_exponent) / 10.0;
}

double InterferenceModel::contention_divisor(
    double busy_load, int cores, double speed_factor) const noexcept {
  if (speed_factor > 0.0 && speed_factor != 1.0) {
    busy_load /= speed_factor;
  }
  return contention_divisor(busy_load, cores);
}

double InterferenceModel::contention_divisor(double busy_load,
                                             int cores) const noexcept {
  if (!params_.enabled || busy_load <= 1.0) return 1.0;
  const double c = static_cast<double>(cores);
  double divisor =
      1.0 + params_.bandwidth_penalty * (std::min(busy_load, c) - 1.0) / c;
  if (busy_load > c) {
    divisor *= busy_load / c;  // CPU time slicing once oversubscribed.
  }
  return divisor;
}

}  // namespace autra::sim

// Flow-level rack/uplink network model.
//
// The cluster is a two-level topology: machines hang under top-of-rack
// switches, and each rack reaches the rest of the cluster through one
// uplink of finite, oversubscribed bandwidth (ClusterSpec's
// rack_uplink_records_per_sec / rack_oversubscription). Shuffle traffic on
// every operator edge is routed through this model as a fluid flow: for an
// edge u -> d, the fraction of exchanged mass that crosses rack r's uplink
// under a uniform keyed shuffle is
//
//   w_r = f_u(r) * (1 - f_d(r)) + (1 - f_u(r)) * f_d(r)
//
// where f_u(r) / f_d(r) are the fractions of u's / d's instances placed in
// rack r (outbound plus inbound traffic). Each tick every rack uplink has
// a budget of capacity * dt records; edges claim budget in topological
// order (upstream operators win contended bandwidth first, which is what
// credit-based flow control converges to), and an edge's transfer limit is
// min over its racks of budget / w_r.
//
// Network partitions are the degenerate case of the same mechanism: an
// injected island precomputes a cut mask per edge (an all-to-all exchange
// with endpoints on both sides of the cut moves nothing), and a cut edge's
// limit is 0 regardless of budgets. kNetworkPartition and bandwidth
// contention are therefore one mechanism, not two.
//
// Determinism: everything here is a pure function of placement, the
// active-partition set and the per-tick consumption sequence, which the
// engine drives in topology order — no clocks, no RNG, no unordered
// iteration.
#pragma once

#include <cstddef>
#include <vector>

#include "streamsim/cluster.hpp"
#include "streamsim/topology.hpp"

namespace autra::sim {

class NetworkModel {
 public:
  /// Precomputes per-edge rack weights against the (fixed) placement.
  /// References must outlive the model; the parallelism must already be
  /// validated against the cluster by the caller (the engine constructor).
  NetworkModel(const Topology& topology, const Cluster& cluster,
               const Parallelism& parallelism);

  /// Registers a partition island (on_island[m] != 0 for island members)
  /// and precomputes which edges it cuts. Returns the dense partition
  /// index, which must match the caller's FaultTimeline partition index.
  std::size_t add_partition(const std::vector<char>& on_island);

  /// Starts a tick: resets rack budgets to capacity * dt and latches the
  /// active partition set (borrowed until the next begin_tick call).
  void begin_tick(double dt, const std::vector<std::size_t>& active_partitions);

  /// Records transferable on edge op -> downstream(op)[di] this tick:
  /// 0 for partition-cut edges, +infinity when unconstrained, otherwise
  /// the tightest rack budget divided by the edge's uplink weight.
  [[nodiscard]] double edge_limit(std::size_t op, std::size_t di) const;

  /// Charges `mass` emitted records against the rack budgets of the edge.
  void consume(std::size_t op, std::size_t di, double mass);

  /// True when any *active* partition cuts the edge (the legacy scalar
  /// partition semantics, preserved bit-for-bit).
  [[nodiscard]] bool edge_cut(std::size_t op, std::size_t di) const;

  /// Records-per-second co-tenant jobs push through each rack uplink
  /// (multi-tenant interference). Subtracted from every subsequent tick's
  /// budget, clamped at zero. An empty or all-zero vector detaches the
  /// coupling — the single-tenant budget arithmetic is then bit-identical
  /// to a model that never saw this call. No-op when unconstrained.
  /// Throws std::invalid_argument on a size mismatch or negative entry.
  void set_external_load(const std::vector<double>& records_per_sec);

  /// Cumulative records this job's shuffles have pushed through each rack
  /// uplink (the counterpart this tenant publishes to the others). Empty
  /// when unconstrained.
  [[nodiscard]] const std::vector<double>& consumed_records() const noexcept {
    return consumed_;
  }

  /// Whether finite rack uplinks are configured at all. When false the
  /// model costs nothing per tick beyond the cut-mask checks.
  [[nodiscard]] bool constrained() const noexcept { return constrained_; }

  /// Effective uplink capacity (records/sec) after oversubscription;
  /// 0 when unconstrained.
  [[nodiscard]] double uplink_records_per_sec() const noexcept {
    return uplink_per_sec_;
  }

  [[nodiscard]] std::size_t num_partitions() const noexcept {
    return partition_cut_.size();
  }

  /// The (rack, weight) pairs of one edge — exposed for the bandwidth
  /// sharing unit tests. Empty means the edge never crosses a rack
  /// boundary.
  [[nodiscard]] const std::vector<std::pair<std::size_t, double>>&
  edge_rack_weights(std::size_t op, std::size_t di) const {
    return edge_racks_[flat_edge(op, di)];
  }

 private:
  [[nodiscard]] std::size_t flat_edge(std::size_t op,
                                      std::size_t di) const noexcept {
    return edge_offset_[op] + di;
  }

  const Topology* topo_;
  const Cluster* cluster_;
  const Parallelism* parallelism_;

  bool constrained_ = false;
  double uplink_per_sec_ = 0.0;

  /// edge_offset_[op] + di flattens (op, di) into one edge index.
  std::vector<std::size_t> edge_offset_;
  /// Per flat edge: sparse (rack, weight) pairs with weight > 0, rack
  /// ascending. Built only when constrained.
  std::vector<std::vector<std::pair<std::size_t, double>>> edge_racks_;
  /// Per-rack records budget for the current tick.
  std::vector<double> budget_;
  /// Per-rack records/sec claimed by co-tenants; empty when decoupled.
  std::vector<double> external_;
  /// Per-rack cumulative records consumed by this job's shuffles.
  std::vector<double> consumed_;

  /// partition_cut_[p][flat_edge] — does partition p cut the edge?
  std::vector<std::vector<char>> partition_cut_;
  /// Active partition indices, borrowed from the fault timeline between
  /// begin_tick calls (empty before the first tick).
  const std::vector<std::size_t>* active_ = nullptr;
};

}  // namespace autra::sim

// The fluid dataflow engine.
//
// Rather than simulating hundreds of millions of individual records, the
// engine advances in small ticks and moves record *mass* through bounded
// per-operator queues, which keeps a 50-minute cluster experiment under a
// second of wall time while preserving every observable AuTraScale consumes:
//
//   - true processing rate (Eq. 2): processed records / busy time, where
//     busy time excludes idle and backpressure-blocked time;
//   - observed processing rate: processed records / wall time;
//   - per-operator input/output rates, queue lengths;
//   - end-to-end processing latency and event-time latency, tracked exactly
//     via FIFO cohorts stamped with production and ingestion times;
//   - Kafka consumer lag.
//
// Interference (CPU contention between co-located instances, coordination
// overhead growing with parallelism) is injected via InterferenceModel and
// produces the non-linear throughput scaling the paper is built around.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "runtime/job_metrics.hpp"
#include "streamsim/cluster.hpp"
#include "streamsim/external_service.hpp"
#include "streamsim/fault_timeline.hpp"
#include "streamsim/interference.hpp"
#include "streamsim/kafka.hpp"
#include "streamsim/latency.hpp"
#include "streamsim/metrics.hpp"
#include "streamsim/topology.hpp"

namespace autra::sim {

struct EngineParams {
  /// Simulation tick. Smaller = finer latency resolution, slower sim.
  double tick_sec = 0.05;
  /// Input buffer per operator instance, in *seconds of base processing
  /// capacity* (credit-based flow control buffers proportionally more for
  /// faster operators). The backpressure bound per operator is
  /// k * base_rate * buffer_sec records, floored at min_buffer_records.
  double buffer_sec = 0.05;
  double min_buffer_records = 500.0;
  /// Constant per-hop latency floor (framework buffer timeout), ms.
  double buffer_timeout_ms = 5.0;
  /// Additional per-hop shuffle latency, ms, scaled by sqrt(k - 1) of the
  /// receiving operator's parallelism — the communication cost of
  /// Obs. 2.2 (sub-linear: fan-out costs amortise across channels).
  double shuffle_ms_per_parallelism = 2.5;
  /// Stochastic queueing stand-in: the fluid model drains every queue whose
  /// utilisation is below 1, but real operators queue bursts long before
  /// that. Each operator adds a congestion delay of
  ///   burst_records * effective_service_time * rho / (1 - rho)
  /// (capped) to record latency, where rho is its smoothed busy fraction.
  double congestion_burst_records = 150.0;
  double congestion_cap_sec = 0.25;
  /// Per-record latency dispersion: each completing cohort's processing
  /// latency is scaled by a mean-one lognormal with this sigma, giving the
  /// right-skewed per-record distributions real pipelines show
  /// (Fig. 8(b) plots their percentiles).
  double latency_jitter_sigma = 0.25;
  /// How often gauges are written to the MetricsDb.
  double metric_interval_sec = 1.0;
  /// Multiplicative Gaussian noise applied to *recorded* metrics.
  double measurement_noise = 0.02;
  /// Simulation time the engine starts at (a restarted job continues the
  /// wall clock and the rate schedule of its predecessor).
  double start_time = 0.0;
  std::uint64_t seed = 1234;
  InterferenceParams interference;
};

/// Aggregated per-operator counters since the last reset_counters().
struct OperatorCounters {
  double processed = 0.0;       ///< Records processed (all instances).
  double busy_time = 0.0;       ///< Summed instance busy seconds.
  double wall_time = 0.0;       ///< Summed instance wall seconds.
  double records_in = 0.0;      ///< Records that entered the input queue.
  double records_out = 0.0;     ///< Records emitted downstream.
};

/// Live snapshot of one operator's rates (backend-neutral runtime type).
using OperatorRates = runtime::OperatorRates;

class Engine {
 public:
  /// Takes ownership of the Kafka log. The topology must validate; the
  /// parallelism must be feasible on the cluster. Throws otherwise.
  Engine(Topology topology, Cluster cluster, Parallelism parallelism,
         std::unique_ptr<KafkaLog> kafka, EngineParams params = {});

  /// Registers a rate-capped external service operators may reference.
  /// Must be called before the first tick; throws std::logic_error after.
  void add_external_service(ExternalService service);

  /// Failure injection: machine `machine` runs at `speed_factor` (< 1)
  /// during [from_sec, until_sec) — a co-tenant burst, thermal throttling,
  /// or a failing disk stalling the task manager. The degraded speed also
  /// feeds the InterferenceModel (fewer effective cycles -> more
  /// contention). Throws std::invalid_argument on bad arguments.
  void inject_slowdown(std::size_t machine, double speed_factor,
                       double from_sec, double until_sec);

  /// Failure injection: machine `machine` is lost during [from_sec,
  /// until_sec) — its operator instances process nothing. The engine keeps
  /// the surviving instances running; forcing the framework-style restart
  /// (detection delay + downtime) is ScalingSession's job. Throws
  /// std::invalid_argument on bad arguments.
  void inject_machine_down(std::size_t machine, double from_sec,
                           double until_sec);

  /// Failure injection: sources consume nothing from Kafka during
  /// [from_sec, until_sec) while producers keep appending — consumer lag
  /// builds, then catches up.
  void inject_ingest_stall(double from_sec, double until_sec);

  /// Failure injection: external service `service` grants no calls during
  /// [from_sec, until_sec). Unknown names are accepted and unobservable
  /// (an outage of a service the job never calls).
  void inject_service_outage(const std::string& service, double from_sec,
                             double until_sec);

  /// Failure injection: the machines in `island` are network-partitioned
  /// from the rest of the cluster during [from_sec, until_sec). Operator
  /// edges whose endpoint instances do not all live on one side stop
  /// transferring (an all-to-all shuffle with a cut channel blocks the
  /// whole exchange): upstream queues back up and backpressure propagates,
  /// while records already queued downstream keep processing. Which edges
  /// are cut is precomputed against the engine's (fixed) parallelism.
  /// Throws std::invalid_argument on bad machines, duplicates, or an empty
  /// island.
  void inject_network_partition(const std::vector<std::size_t>& island,
                                double from_sec, double until_sec);

  /// Advances the simulation by one tick.
  void tick();

  /// Runs until simulation time reaches `until_sec`.
  void run_until(double until_sec);

  /// Suspends all processing until `until_sec` (savepoint + restart window;
  /// Kafka keeps producing, so lag accumulates — the reconfiguration cost
  /// the paper's "policy running time" exists to amortise).
  void suspend_until(double until_sec);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const Cluster& cluster() const noexcept { return cluster_; }
  [[nodiscard]] const Parallelism& parallelism() const noexcept {
    return parallelism_;
  }
  [[nodiscard]] const KafkaLog& kafka() const noexcept { return *kafka_; }
  [[nodiscard]] const EngineParams& params() const noexcept { return params_; }

  [[nodiscard]] MetricsDb& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsDb& metrics() const noexcept { return metrics_; }

  /// Additional metric sink written alongside the internal one; used by
  /// ScalingSession to keep one continuous time series across restarts.
  /// The sink must outlive the engine; pass nullptr to detach. Series ids
  /// are resolved once here, so the per-tick write path stays string-free.
  void set_external_metrics(runtime::MetricSink* sink);

  /// Releases the Kafka log so a successor engine (job restart) can keep
  /// the accumulated lag. The engine must not be ticked afterwards.
  [[nodiscard]] std::unique_ptr<KafkaLog> release_kafka() noexcept {
    return std::move(kafka_);
  }

  /// Rates over the window since the last reset_counters() call.
  [[nodiscard]] OperatorRates rates(std::size_t op) const;

  /// Raw per-operator counters since the last reset_counters() — the mass
  /// ledger the conservation property tests audit (records in = processed
  /// + still queued, at every tick). Throws std::out_of_range.
  [[nodiscard]] const OperatorCounters& counters(std::size_t op) const;

  /// Latency accumulated since the last reset_counters().
  [[nodiscard]] const LatencyStats& processing_latency() const noexcept {
    return proc_latency_;
  }
  [[nodiscard]] const LatencyStats& event_latency() const noexcept {
    return event_latency_;
  }

  /// Records consumed from Kafka since the last reset_counters(), per
  /// second of window — the job throughput the paper plots.
  [[nodiscard]] double throughput() const noexcept;

  /// Kafka lag change per second over the current window.
  [[nodiscard]] double lag_growth_per_sec() const noexcept;

  /// Average number of busy cores over the window (CPU usage, Fig. 8c).
  [[nodiscard]] double busy_cores() const noexcept;

  /// Clears windowed counters and latency accumulators (not queues/lag).
  void reset_counters();

  /// Static memory footprint of the current configuration in MB
  /// (instance state + per-slot framework overhead).
  [[nodiscard]] double memory_mb() const noexcept;

  /// Latency floor of the current configuration (network/buffer cost), sec.
  [[nodiscard]] double latency_floor_sec() const noexcept;

  /// Current summed per-operator congestion delay (burst queueing), sec.
  [[nodiscard]] double congestion_delay_sec() const noexcept;

 private:
  struct QueueCohort {
    double mass = 0.0;
    double produced_time = 0.0;
    double ingested_time = 0.0;
  };

  struct OperatorState {
    std::deque<QueueCohort> queue;
    double queue_mass = 0.0;
    double queue_capacity = 0.0;
    double smoothed_busy = 0.0;  ///< EMA busy fraction for contention.
    OperatorCounters counters;   ///< Since reset_counters() (JobRunner window).
    OperatorCounters interval;   ///< Since the last metric write (time series).
  };

  [[nodiscard]] OperatorRates rates_from(std::size_t op,
                                         const OperatorCounters& c) const;

  void push_downstream(std::size_t op, double mass, double produced,
                       double ingested);
  [[nodiscard]] double noisy(double value);
  void write_metrics();

  /// Every gauge the engine emits, pre-resolved against one sink at
  /// attach time — the per-tick write path performs no string work.
  struct MetricIdSet {
    struct PerOp {
      runtime::MetricId true_rate, observed_rate, input_rate, output_rate,
          queue_size;
    };
    std::vector<PerOp> op;
    runtime::MetricId throughput, latency_mean, event_latency_mean,
        kafka_lag, input_rate, busy_cores, parallelism_total;
  };
  [[nodiscard]] MetricIdSet resolve_metric_ids(runtime::MetricSink& sink) const;

  /// One injected network partition: its window lives in the fault
  /// timeline (same index); the cut-edge mask is precomputed here against
  /// the engine's parallelism when the partition is injected.
  struct PartitionSpec {
    /// edge_cut[op][di] — is the edge to downstream(op)[di] cut?
    std::vector<std::vector<bool>> edge_cut;
  };

  /// True if any *active* partition cuts the edge op -> downstream(op)[di].
  [[nodiscard]] bool edge_cut_now(std::size_t op,
                                  std::size_t di) const noexcept;

  Topology topo_;
  Cluster cluster_;
  Parallelism parallelism_;
  std::unique_ptr<KafkaLog> kafka_;
  EngineParams params_;
  InterferenceModel interference_;
  std::map<std::string, ExternalService> services_;
  /// Sorted-window cursors over all injected fault events; advanced once
  /// per tick so the per-instance queries in the hot loop are O(1).
  FaultTimeline faults_;
  std::vector<PartitionSpec> partitions_;

  std::vector<std::size_t> topo_order_;
  std::vector<OperatorState> state_;

  MetricsDb metrics_;
  MetricIdSet metric_ids_;
  runtime::MetricSink* external_metrics_ = nullptr;
  MetricIdSet external_ids_;
  LatencyStats proc_latency_;
  LatencyStats event_latency_;

  double now_ = 0.0;
  double suspended_until_ = 0.0;
  double window_start_ = 0.0;
  double next_metric_time_ = 0.0;
  double window_consumed_ = 0.0;
  double window_busy_core_seconds_ = 0.0;
  double window_start_lag_ = 0.0;
  double interval_consumed_ = 0.0;
  double interval_busy_core_seconds_ = 0.0;
  double interval_start_ = 0.0;
  LatencyStats interval_proc_latency_;
  LatencyStats interval_event_latency_;
  bool started_ = false;
  std::mt19937_64 rng_;
};

}  // namespace autra::sim

// The fluid dataflow engine.
//
// Rather than simulating hundreds of millions of individual records, the
// engine advances in small ticks and moves record *mass* through bounded
// per-operator queues, which keeps a 50-minute cluster experiment under a
// second of wall time while preserving every observable AuTraScale consumes:
//
//   - true processing rate (Eq. 2): processed records / busy time, where
//     busy time excludes idle and backpressure-blocked time;
//   - observed processing rate: processed records / wall time;
//   - per-operator input/output rates, queue lengths;
//   - end-to-end processing latency and event-time latency, tracked exactly
//     via FIFO cohorts stamped with production and ingestion times;
//   - Kafka consumer lag.
//
// Interference (CPU contention between co-located instances, coordination
// overhead growing with parallelism) is injected via InterferenceModel and
// produces the non-linear throughput scaling the paper is built around.
//
// The core is *epoch-driven* (DESIGN.md §11): hot per-operator state lives
// in SoA arrays, per-machine rate factors and per-operator capacities are
// cached across ticks and refreshed only when a FaultTimeline delta or a
// smoothed-busy drift invalidates them, and operators with no work and a
// fully decayed busy fraction are skipped outright — a quiescent subgraph
// costs zero per-tick work. The pre-refactor semantics (every operator
// every tick, every cache recomputed from live state) are retained behind
// EngineCore::kTickDriven as the property-test reference; at the default
// load_epsilon of 0 both cores are bit-identical. Shuffle traffic is
// routed through the flow-level rack/uplink NetworkModel, which also owns
// the network-partition cut masks.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "exec/exec.hpp"
#include "runtime/job_metrics.hpp"
#include "streamsim/cluster.hpp"
#include "streamsim/external_service.hpp"
#include "streamsim/fault_timeline.hpp"
#include "streamsim/interference.hpp"
#include "streamsim/kafka.hpp"
#include "streamsim/latency.hpp"
#include "streamsim/metrics.hpp"
#include "streamsim/network.hpp"
#include "streamsim/topology.hpp"

namespace autra::sim {

/// Which per-tick core the engine runs (see file comment).
enum class EngineCore {
  /// Epoch-driven: dirty-set skipping, cached capacities. The default.
  kEventDriven,
  /// Legacy reference: every operator runs every tick and every cache is
  /// recomputed from live state every tick. Bit-identical to kEventDriven
  /// at load_epsilon == 0; kept for the bit-identity property tests and
  /// the ablation bench.
  kTickDriven,
};

struct EngineParams {
  /// Simulation tick. Smaller = finer latency resolution, slower sim.
  double tick_sec = 0.05;
  /// Input buffer per operator instance, in *seconds of base processing
  /// capacity* (credit-based flow control buffers proportionally more for
  /// faster operators). The backpressure bound per operator is
  /// k * base_rate * buffer_sec records, floored at min_buffer_records.
  double buffer_sec = 0.05;
  double min_buffer_records = 500.0;
  /// Constant per-hop latency floor (framework buffer timeout), ms.
  double buffer_timeout_ms = 5.0;
  /// Additional per-hop shuffle latency, ms, scaled by sqrt(k - 1) of the
  /// receiving operator's parallelism — the communication cost of
  /// Obs. 2.2 (sub-linear: fan-out costs amortise across channels).
  double shuffle_ms_per_parallelism = 2.5;
  /// Stochastic queueing stand-in: the fluid model drains every queue whose
  /// utilisation is below 1, but real operators queue bursts long before
  /// that. Each operator adds a congestion delay of
  ///   burst_records * effective_service_time * rho / (1 - rho)
  /// (capped) to record latency, where rho is its smoothed busy fraction.
  double congestion_burst_records = 150.0;
  double congestion_cap_sec = 0.25;
  /// Per-record latency dispersion: each completing cohort's processing
  /// latency is scaled by a mean-one lognormal with this sigma, giving the
  /// right-skewed per-record distributions real pipelines show
  /// (Fig. 8(b) plots their percentiles).
  double latency_jitter_sigma = 0.25;
  /// How often gauges are written to the MetricsDb.
  double metric_interval_sec = 1.0;
  /// Multiplicative Gaussian noise applied to *recorded* metrics.
  double measurement_noise = 0.02;
  /// Simulation time the engine starts at (a restarted job continues the
  /// wall clock and the rate schedule of its predecessor).
  double start_time = 0.0;
  std::uint64_t seed = 1234;
  InterferenceParams interference;
  /// Per-tick core; see EngineCore.
  EngineCore core = EngineCore::kEventDriven;
  /// Epoch quantisation of the load -> capacity feedback: machine loads
  /// (and everything downstream of them) are refolded only when some
  /// operator's smoothed busy fraction has drifted more than this from the
  /// last fold. 0 (default) refreshes on any exact change — the semantics
  /// of the legacy tick core, bit for bit. Platform-scale runs set a small
  /// positive epsilon (e.g. 1e-3) so ulp-level wobble in converged busy
  /// fractions cannot force a whole-cluster refold every tick; this is an
  /// explicit approximation and diverges from kTickDriven.
  double load_epsilon = 0.0;
  /// Threads used to shard epoch cache refreshes over the exec ThreadPool
  /// (index-addressed, bit-identical at any count). 1 = serial (default:
  /// engines usually run inside Plan-stage parallel trials, where nested
  /// regions are forbidden); 0 resolves AUTRA_THREADS/hardware. The engine
  /// falls back to serial automatically when constructed small or called
  /// from inside a parallel region.
  int threads = 1;
};

/// Aggregated per-operator counters since the last reset_counters().
struct OperatorCounters {
  double processed = 0.0;       ///< Records processed (all instances).
  double busy_time = 0.0;       ///< Summed instance busy seconds.
  double wall_time = 0.0;       ///< Summed instance wall seconds.
  double records_in = 0.0;      ///< Records that entered the input queue.
  double records_out = 0.0;     ///< Records emitted downstream.
};

/// Lifetime counters of the epoch-driven core — what the ablation bench
/// reports as operators-touched-per-epoch. Never reset.
struct EngineEpochStats {
  std::uint64_t ticks = 0;              ///< Epochs (ticks) advanced.
  std::uint64_t operators_touched = 0;  ///< Operator kernels actually run.
  std::uint64_t full_refreshes = 0;     ///< Whole-cluster cache refolds.
  std::uint64_t machine_refreshes = 0;  ///< Machine-granular factor updates.
};

/// Live snapshot of one operator's rates (backend-neutral runtime type).
using OperatorRates = runtime::OperatorRates;

class Engine {
 public:
  /// Takes ownership of the Kafka log. The topology must validate; the
  /// parallelism must be feasible on the cluster. Throws otherwise.
  Engine(Topology topology, Cluster cluster, Parallelism parallelism,
         std::unique_ptr<KafkaLog> kafka, EngineParams params = {});

  // The NetworkModel (and the external metric sink) hold pointers into the
  // engine, so its address must be stable — engines live behind unique_ptr.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  Engine(Engine&&) = delete;
  Engine& operator=(Engine&&) = delete;

  /// Registers a rate-capped external service operators may reference.
  /// Must be called before the first tick; throws std::logic_error after.
  void add_external_service(ExternalService service);

  /// Failure injection: machine `machine` runs at `speed_factor` (< 1)
  /// during [from_sec, until_sec) — a co-tenant burst, thermal throttling,
  /// or a failing disk stalling the task manager. The degraded speed also
  /// feeds the InterferenceModel (fewer effective cycles -> more
  /// contention). Throws std::invalid_argument on bad arguments.
  void inject_slowdown(std::size_t machine, double speed_factor,
                       double from_sec, double until_sec);

  /// Failure injection: machine `machine` is lost during [from_sec,
  /// until_sec) — its operator instances process nothing. The engine keeps
  /// the surviving instances running; forcing the framework-style restart
  /// (detection delay + downtime) is ScalingSession's job. Throws
  /// std::invalid_argument on bad arguments.
  void inject_machine_down(std::size_t machine, double from_sec,
                           double until_sec);

  /// Failure injection: sources consume nothing from Kafka during
  /// [from_sec, until_sec) while producers keep appending — consumer lag
  /// builds, then catches up.
  void inject_ingest_stall(double from_sec, double until_sec);

  /// Failure injection: external service `service` grants no calls during
  /// [from_sec, until_sec). Unknown names are accepted and unobservable
  /// (an outage of a service the job never calls).
  void inject_service_outage(const std::string& service, double from_sec,
                             double until_sec);

  /// Failure injection: the machines in `island` are network-partitioned
  /// from the rest of the cluster during [from_sec, until_sec). Operator
  /// edges whose endpoint instances do not all live on one side stop
  /// transferring (an all-to-all shuffle with a cut channel blocks the
  /// whole exchange): upstream queues back up and backpressure propagates,
  /// while records already queued downstream keep processing. The cut
  /// masks live in the NetworkModel — a partition is a zero-capacity link,
  /// the degenerate case of the rack/uplink bandwidth mechanism. Throws
  /// std::invalid_argument on bad machines, duplicates, or an empty
  /// island.
  void inject_network_partition(const std::vector<std::size_t>& island,
                                double from_sec, double until_sec);

  /// Advances the simulation by one tick.
  void tick();

  /// Runs until simulation time reaches `until_sec`.
  void run_until(double until_sec);

  /// Suspends all processing until `until_sec` (savepoint + restart window;
  /// Kafka keeps producing, so lag accumulates — the reconfiguration cost
  /// the paper's "policy running time" exists to amortise).
  void suspend_until(double until_sec);

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const Cluster& cluster() const noexcept { return cluster_; }
  [[nodiscard]] const Parallelism& parallelism() const noexcept {
    return parallelism_;
  }
  [[nodiscard]] const KafkaLog& kafka() const noexcept { return *kafka_; }
  [[nodiscard]] const EngineParams& params() const noexcept { return params_; }
  [[nodiscard]] const NetworkModel& network() const noexcept {
    return network_;
  }

  [[nodiscard]] MetricsDb& metrics() noexcept { return metrics_; }
  [[nodiscard]] const MetricsDb& metrics() const noexcept { return metrics_; }

  /// Additional metric sink written alongside the internal one; used by
  /// ScalingSession to keep one continuous time series across restarts.
  /// The sink must outlive the engine; pass nullptr to detach. Series ids
  /// are resolved once here, so the per-tick write path stays string-free.
  void set_external_metrics(runtime::MetricSink* sink);

  /// Busy-core equivalents co-tenant jobs place on each machine
  /// (multi-tenant coupling; the dynamic counterpart of
  /// MachineSpec::background_load). Folded into the machine loads at the
  /// next epoch refresh. An empty or all-zero vector detaches the
  /// coupling; setting a bitwise-unchanged value is a strict no-op, so a
  /// decoupled engine stays bit-identical to one that never saw this
  /// call. Throws std::invalid_argument on a size mismatch or negative
  /// entry.
  void set_external_machine_load(const std::vector<double>& load);

  /// Records-per-second co-tenant jobs push through each rack uplink;
  /// forwarded to the NetworkModel (no-op when uplinks are unconstrained).
  void set_external_uplink_load(const std::vector<double>& records_per_sec);

  /// This job's own busy-core load per machine (what a co-simulation
  /// harness publishes to the other tenants): sum over placed instances of
  /// the operator's smoothed busy fraction.
  [[nodiscard]] std::vector<double> machine_busy_load() const;

  /// Releases the Kafka log so a successor engine (job restart) can keep
  /// the accumulated lag. The engine must not be ticked afterwards.
  [[nodiscard]] std::unique_ptr<KafkaLog> release_kafka() noexcept {
    return std::move(kafka_);
  }

  /// Rates over the window since the last reset_counters() call.
  [[nodiscard]] OperatorRates rates(std::size_t op) const;

  /// Raw per-operator counters since the last reset_counters() — the mass
  /// ledger the conservation property tests audit (records in = processed
  /// + still queued, at every tick). Throws std::out_of_range.
  [[nodiscard]] const OperatorCounters& counters(std::size_t op) const;

  /// Lifetime epoch-core counters (ticks, kernels run, cache refreshes).
  [[nodiscard]] const EngineEpochStats& epoch_stats() const noexcept {
    return epoch_stats_;
  }

  /// Latency accumulated since the last reset_counters().
  [[nodiscard]] const LatencyStats& processing_latency() const noexcept {
    return proc_latency_;
  }
  [[nodiscard]] const LatencyStats& event_latency() const noexcept {
    return event_latency_;
  }

  /// Records consumed from Kafka since the last reset_counters(), per
  /// second of window — the job throughput the paper plots.
  [[nodiscard]] double throughput() const noexcept;

  /// Kafka lag change per second over the current window.
  [[nodiscard]] double lag_growth_per_sec() const noexcept;

  /// Average number of busy cores over the window (CPU usage, Fig. 8c).
  [[nodiscard]] double busy_cores() const noexcept;

  /// Clears windowed counters and latency accumulators (not queues/lag).
  void reset_counters();

  /// Static memory footprint of the current configuration in MB
  /// (instance state + per-slot framework overhead).
  [[nodiscard]] double memory_mb() const noexcept;

  /// Latency floor of the current configuration (network/buffer cost), sec.
  [[nodiscard]] double latency_floor_sec() const noexcept;

  /// Current summed per-operator congestion delay (burst queueing), sec.
  [[nodiscard]] double congestion_delay_sec() const noexcept;

 private:
  struct QueueCohort {
    double mass = 0.0;
    double produced_time = 0.0;
    double ingested_time = 0.0;
  };

  /// Cold per-operator state. The hot doubles the kernel touches every
  /// tick (queue mass, capacities, smoothed busy) live in the SoA vectors
  /// below instead.
  struct OperatorState {
    std::deque<QueueCohort> queue;
    OperatorCounters counters;   ///< Since reset_counters() (JobRunner window).
    OperatorCounters interval;   ///< Since the last metric write (time series).
  };

  /// Static placement of one operator: which machines host how many of its
  /// instances (machine-ascending), plus the chunked partial sums its
  /// cached capacity folds from. Chunks are fixed-size so the serial and
  /// sharded refresh paths evaluate the identical expression.
  struct OpPlacement {
    std::vector<std::size_t> machine;  ///< Machines hosting >= 1 instance.
    std::vector<double> count;         ///< Instances on machine[e].
    std::vector<double> chunk_sum;     ///< Partial capacity sums per chunk.
    std::vector<std::int32_t> entry_of;  ///< machine -> entry index or -1.
    std::vector<std::uint32_t> dirty_chunks;  ///< Scratch for partial refresh.
  };

  /// Validates the constructor arguments (so bad input throws the
  /// documented std::invalid_argument before NetworkModel dereferences the
  /// placement) and builds the network model. Called from the init list;
  /// only members declared above network_ may be touched.
  [[nodiscard]] NetworkModel make_network() const;

  [[nodiscard]] OperatorRates rates_from(std::size_t op,
                                         const OperatorCounters& c) const;

  void push_downstream(std::size_t op, double mass, double produced,
                       double ingested);
  [[nodiscard]] double noisy(double value);
  void write_metrics();

  // --- Epoch-driven cache maintenance (DESIGN.md §11) -------------------
  /// (speed * slow) / contention_divisor of machine m at the current fault
  /// cursor, 0 when the machine is down. capacity(op) folds
  /// base_rate_[op] * factor over the op's placement.
  [[nodiscard]] double compute_factor(std::size_t m, double load) const;
  /// Recomputes loads (from live smoothed busy fractions), every machine
  /// factor and every capacity. The only path that moves sb_snapshot_.
  void full_refresh();
  /// Recomputes machine m's factor and marks the capacity chunks of every
  /// operator placed on it dirty (loads are untouched: they depend only on
  /// busy fractions, not on fault state).
  void refresh_factor(std::size_t m);
  /// Recomputes chunk `c` of operator `op` from entries and factors.
  void recompute_chunk(std::size_t op, std::size_t c);
  /// Folds chunk sums (in chunk order) and applies the key-skew cap.
  void fold_capacity(std::size_t op);
  /// Per-tick orchestration: full refresh, machine-granular refresh, or
  /// nothing, depending on the core and what changed.
  void refresh_epoch_caches(const FaultTimeline::Delta& delta);
  /// Whether operator i does any work this tick (exact: skipping a
  /// non-active operator is a bitwise no-op).
  [[nodiscard]] bool op_active(std::size_t i, bool suspended) const;
  /// The per-operator kernel both cores share: capacity lookup, emit
  /// limits through the network, cohort movement, busy accounting.
  void run_operator(std::size_t i, double t, double dt, bool suspended,
                    double floor, double& tick_busy_core_seconds);
  [[nodiscard]] bool use_parallel_refresh() const;

  /// Every gauge the engine emits, pre-resolved against one sink at
  /// attach time — the per-tick write path performs no string work.
  struct MetricIdSet {
    struct PerOp {
      runtime::MetricId true_rate, observed_rate, input_rate, output_rate,
          queue_size;
    };
    std::vector<PerOp> op;
    runtime::MetricId throughput, latency_mean, event_latency_mean,
        kafka_lag, input_rate, busy_cores, parallelism_total;
  };
  [[nodiscard]] MetricIdSet resolve_metric_ids(runtime::MetricSink& sink) const;

  Topology topo_;
  Cluster cluster_;
  Parallelism parallelism_;
  std::unique_ptr<KafkaLog> kafka_;
  EngineParams params_;
  InterferenceModel interference_;
  std::map<std::string, ExternalService> services_;
  /// Sorted-window cursors over all injected fault events; advanced once
  /// per tick so the per-machine queries in the refresh path are O(1).
  FaultTimeline faults_;
  /// Flow-level rack/uplink network; owns the partition cut masks.
  NetworkModel network_;
  exec::ExecContext exec_;

  std::vector<std::size_t> topo_order_;
  std::vector<OperatorState> state_;

  // SoA hot state, indexed by operator.
  std::vector<double> queue_mass_;
  std::vector<double> queue_capacity_;
  std::vector<double> smoothed_busy_;  ///< EMA busy fraction for contention.
  std::vector<double> sb_snapshot_;    ///< Busy fractions at the last fold.
  std::vector<double> base_rate_;      ///< 1e6 / (cost * coordination).
  std::vector<double> hot_share_;      ///< Key-skew hot share, 0 = no skew.
  std::vector<double> capacity_;       ///< Cached records per tick.
  std::vector<double> hot_capacity_;   ///< Cached skew hot-instance cap.
  // SoA hot state, indexed by machine.
  std::vector<double> machine_bg_;     ///< Background load (static).
  std::vector<double> external_load_;  ///< Co-tenant load; empty = decoupled.
  std::vector<double> machine_load_;   ///< Busy-core load at the last fold.
  std::vector<double> machine_factor_; ///< (speed*slow)/divisor, 0 if down.

  std::vector<OpPlacement> placement_;
  /// machine -> (operator, instance count) pairs, operator-ascending.
  std::vector<std::vector<std::pair<std::size_t, double>>> machine_ops_;
  /// All (op, chunk) pairs, flattened for the sharded full refresh.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> all_chunks_;
  std::vector<std::size_t> dirty_ops_;  ///< Scratch for partial refresh.
  std::size_t hot_machine_ = 0;         ///< Placement of instance 0.

  bool caches_primed_ = false;
  bool sb_drift_ = false;
  EngineEpochStats epoch_stats_;

  MetricsDb metrics_;
  MetricIdSet metric_ids_;
  runtime::MetricSink* external_metrics_ = nullptr;
  MetricIdSet external_ids_;
  LatencyStats proc_latency_;
  LatencyStats event_latency_;

  double now_ = 0.0;
  double suspended_until_ = 0.0;
  double window_start_ = 0.0;
  double next_metric_time_ = 0.0;
  double window_consumed_ = 0.0;
  double window_busy_core_seconds_ = 0.0;
  double window_start_lag_ = 0.0;
  double interval_consumed_ = 0.0;
  double interval_busy_core_seconds_ = 0.0;
  double interval_start_ = 0.0;
  LatencyStats interval_proc_latency_;
  LatencyStats interval_event_latency_;
  bool started_ = false;
  std::mt19937_64 rng_;
};

}  // namespace autra::sim

#include "streamsim/metrics.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <stdexcept>

namespace autra::sim {

void MetricsDb::record(const std::string& name, double time, double value) {
  auto& points = series_[name];
  if (!points.empty() && time < points.back().time) {
    throw std::invalid_argument("MetricsDb::record: time went backwards for " +
                                name);
  }
  points.push_back({time, value});
}

std::vector<MetricPoint> MetricsDb::query(const std::string& name, double t0,
                                          double t1) const {
  std::vector<MetricPoint> out;
  const auto it = series_.find(name);
  if (it == series_.end()) return out;
  const auto& points = it->second;
  const auto lo = std::lower_bound(
      points.begin(), points.end(), t0,
      [](const MetricPoint& p, double t) { return p.time < t; });
  for (auto p = lo; p != points.end() && p->time <= t1; ++p) {
    out.push_back(*p);
  }
  return out;
}

std::optional<double> MetricsDb::mean(const std::string& name, double t0,
                                      double t1) const {
  const auto points = query(name, t0, t1);
  if (points.empty()) return std::nullopt;
  double s = 0.0;
  for (const MetricPoint& p : points) s += p.value;
  return s / static_cast<double>(points.size());
}

std::optional<MetricPoint> MetricsDb::last(const std::string& name) const {
  const auto it = series_.find(name);
  if (it == series_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::vector<std::string> MetricsDb::series_names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, _] : series_) names.push_back(name);
  return names;
}

bool MetricsDb::has_series(const std::string& name) const {
  return series_.contains(name);
}

void MetricsDb::clear() { series_.clear(); }

void MetricsDb::write_csv(std::ostream& out,
                          std::span<const std::string> series) const {
  std::vector<std::string> names(series.begin(), series.end());
  if (names.empty()) names = series_names();

  // Collect the union of timestamps, then the (possibly missing) value of
  // each series at each timestamp. Duplicate timestamps within one series
  // keep the last value.
  std::set<double> times;
  std::vector<std::map<double, double>> columns(names.size());
  for (std::size_t c = 0; c < names.size(); ++c) {
    const auto it = series_.find(names[c]);
    if (it == series_.end()) continue;
    for (const MetricPoint& p : it->second) {
      times.insert(p.time);
      columns[c][p.time] = p.value;
    }
  }

  out << "time";
  for (const std::string& n : names) out << "," << n;
  out << "\n";
  for (const double t : times) {
    out << t;
    for (std::size_t c = 0; c < names.size(); ++c) {
      out << ",";
      const auto it = columns[c].find(t);
      if (it != columns[c].end()) out << it->second;
    }
    out << "\n";
  }
}

namespace metric_names {

std::string true_rate(const std::string& op) {
  return "taskmanager.job.task.trueProcessingRate." + op;
}
std::string observed_rate(const std::string& op) {
  return "taskmanager.job.task.observedProcessingRate." + op;
}
std::string input_rate(const std::string& op) {
  return "taskmanager.job.task.numRecordsInPerSecond." + op;
}
std::string output_rate(const std::string& op) {
  return "taskmanager.job.task.numRecordsOutPerSecond." + op;
}
std::string queue_size(const std::string& op) {
  return "taskmanager.job.task.inputQueueLength." + op;
}

}  // namespace metric_names

}  // namespace autra::sim

#include "streamsim/network.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace autra::sim {

NetworkModel::NetworkModel(const Topology& topology, const Cluster& cluster,
                           const Parallelism& parallelism)
    : topo_(&topology), cluster_(&cluster), parallelism_(&parallelism) {
  const std::size_t num_ops = topo_->num_operators();
  edge_offset_.resize(num_ops + 1, 0);
  for (std::size_t i = 0; i < num_ops; ++i) {
    edge_offset_[i + 1] = edge_offset_[i] + topo_->downstream(i).size();
  }

  const ClusterSpec& spec = cluster_->spec();
  constrained_ = spec.rack_uplink_records_per_sec > 0.0;
  if (!constrained_) return;
  uplink_per_sec_ =
      spec.rack_uplink_records_per_sec / spec.rack_oversubscription;

  const std::size_t num_racks = cluster_->racks().size();
  budget_.assign(num_racks, 0.0);
  consumed_.assign(num_racks, 0.0);

  // Instances of each operator per rack — the placement is fixed for the
  // engine's lifetime, so the per-edge weights are too.
  std::vector<std::vector<double>> rack_count(num_ops);
  for (std::size_t i = 0; i < num_ops; ++i) {
    rack_count[i].assign(num_racks, 0.0);
    for (int j = 0; j < (*parallelism_)[i]; ++j) {
      rack_count[i][cluster_->rack_of(cluster_->machine_of_instance(j))] +=
          1.0;
    }
  }

  edge_racks_.resize(edge_offset_[num_ops]);
  for (std::size_t i = 0; i < num_ops; ++i) {
    const std::vector<std::size_t>& down = topo_->downstream(i);
    const double ku = static_cast<double>((*parallelism_)[i]);
    for (std::size_t di = 0; di < down.size(); ++di) {
      const double kd = static_cast<double>((*parallelism_)[down[di]]);
      std::vector<std::pair<std::size_t, double>>& racks =
          edge_racks_[flat_edge(i, di)];
      for (std::size_t r = 0; r < num_racks; ++r) {
        const double fu = rack_count[i][r] / ku;
        const double fd = rack_count[down[di]][r] / kd;
        const double w = fu * (1.0 - fd) + (1.0 - fu) * fd;
        if (w > 0.0) racks.emplace_back(r, w);
      }
    }
  }
}

std::size_t NetworkModel::add_partition(const std::vector<char>& on_island) {
  if (on_island.size() != cluster_->num_machines()) {
    throw std::invalid_argument("NetworkModel::add_partition: bad mask size");
  }
  // Which sides of the cut host instances of each operator: bit 0 =
  // mainland, bit 1 = island. An edge functions only when every instance
  // of both endpoints sits on one side — keyed shuffles are all-to-all, so
  // one unreachable channel blocks the exchange.
  const std::size_t num_ops = topo_->num_operators();
  std::vector<int> span(num_ops, 0);
  for (std::size_t i = 0; i < num_ops; ++i) {
    for (int j = 0; j < (*parallelism_)[i]; ++j) {
      span[i] |= on_island[cluster_->machine_of_instance(j)] ? 2 : 1;
    }
  }
  std::vector<char> cut(edge_offset_[num_ops], 0);
  for (std::size_t i = 0; i < num_ops; ++i) {
    const std::vector<std::size_t>& down = topo_->downstream(i);
    for (std::size_t di = 0; di < down.size(); ++di) {
      cut[flat_edge(i, di)] = (span[i] | span[down[di]]) == 3 ? 1 : 0;
    }
  }
  partition_cut_.push_back(std::move(cut));
  return partition_cut_.size() - 1;
}

void NetworkModel::set_external_load(
    const std::vector<double>& records_per_sec) {
  if (!constrained_) return;
  bool all_zero = true;
  for (const double r : records_per_sec) {
    if (r < 0.0) {
      throw std::invalid_argument(
          "NetworkModel::set_external_load: negative rate");
    }
    if (r != 0.0) all_zero = false;
  }
  if (all_zero) {
    external_.clear();
    return;
  }
  if (records_per_sec.size() != budget_.size()) {
    throw std::invalid_argument(
        "NetworkModel::set_external_load: bad rack count");
  }
  external_ = records_per_sec;
}

void NetworkModel::begin_tick(
    double dt, const std::vector<std::size_t>& active_partitions) {
  active_ = &active_partitions;
  if (constrained_) {
    if (external_.empty()) {
      std::fill(budget_.begin(), budget_.end(), uplink_per_sec_ * dt);
    } else {
      for (std::size_t r = 0; r < budget_.size(); ++r) {
        budget_[r] = std::max(0.0, (uplink_per_sec_ - external_[r]) * dt);
      }
    }
  }
}

bool NetworkModel::edge_cut(std::size_t op, std::size_t di) const {
  if (active_ == nullptr) return false;
  const std::size_t e = flat_edge(op, di);
  for (std::size_t p : *active_) {
    if (partition_cut_[p][e] != 0) return true;
  }
  return false;
}

double NetworkModel::edge_limit(std::size_t op, std::size_t di) const {
  if (edge_cut(op, di)) return 0.0;
  double limit = std::numeric_limits<double>::infinity();
  if (!constrained_) return limit;
  for (const auto& [rack, w] : edge_racks_[flat_edge(op, di)]) {
    limit = std::min(limit, budget_[rack] / w);
  }
  return limit;
}

void NetworkModel::consume(std::size_t op, std::size_t di, double mass) {
  if (!constrained_ || mass <= 0.0) return;
  for (const auto& [rack, w] : edge_racks_[flat_edge(op, di)]) {
    budget_[rack] = std::max(0.0, budget_[rack] - mass * w);
    consumed_[rack] += mass * w;
  }
}

}  // namespace autra::sim

// Cluster and slot model mirroring Flink-on-YARN: each machine (task
// manager) exposes a fixed number of slots; an operator subtask with index j
// lives in shared slot j, and slots are spread round-robin over machines.
// Slots isolate managed memory but NOT CPU — the root cause of the
// interference AuTraScale is designed to absorb.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "runtime/job_metrics.hpp"

namespace autra::sim {

/// Parallelism configuration of a job: one entry per operator, in topology
/// operator-index order (defined in the backend-neutral runtime layer).
using Parallelism = runtime::Parallelism;

struct MachineSpec {
  std::string name;
  int cores = 8;
  double memory_gb = 64.0;
  /// Relative CPU speed (1.0 = reference core used by OperatorSpec costs).
  double speed = 1.0;
  /// Busy-core equivalents consumed by co-tenant jobs on this machine
  /// (the paper's "stream processing jobs co-run on the same machine and
  /// interfere with each other"). Enters the contention model as standing
  /// load.
  double background_load = 0.0;
  /// Failure-correlation domain: machines sharing a rack id share a
  /// top-of-rack switch and power feed, so chaos-mode rack faults crash
  /// and recover them together. -1 (default) means "its own rack" — no
  /// correlated failure domain unless the spec opts in.
  int rack = -1;
};

struct ClusterSpec {
  std::vector<MachineSpec> machines;
  /// Slots per machine; by Flink convention defaults to the core count when
  /// zero.
  int slots_per_machine = 0;
  /// Framework memory overhead charged per occupied slot.
  double slot_overhead_mb = 64.0;
  /// Two-level (machine / top-of-rack) network model: capacity of each
  /// rack's uplink into the core, in records per second of shuffle
  /// traffic, before oversubscription. 0 (default) disables the flow-level
  /// network — uplinks are infinite and only network partitions cut edges,
  /// exactly the pre-topology behaviour.
  double rack_uplink_records_per_sec = 0.0;
  /// Oversubscription factor of the rack uplinks (>= 1): the effective
  /// uplink capacity is rack_uplink_records_per_sec / rack_oversubscription,
  /// the usual ToR-to-core taper.
  double rack_oversubscription = 1.0;
};

/// The paper's evaluation cluster: 3x Dell R730xd (20 cores, 256 GB).
/// The fourth machine hosts only Kafka/ZooKeeper in the paper and therefore
/// does not execute operator instances.
[[nodiscard]] ClusterSpec paper_cluster();

/// A homogeneous platform-scale cluster: `num_machines` identical machines
/// filled rack by rack (`machines_per_rack` under each ToR switch, the last
/// rack possibly short). The 10k-machine scaling configurations in
/// bench/ablation_tick and the README are built with this. Throws
/// std::invalid_argument on zero machines or rack size.
[[nodiscard]] ClusterSpec uniform_cluster(std::size_t num_machines,
                                          std::size_t machines_per_rack,
                                          int cores = 8,
                                          int slots_per_machine = 0);

/// Handle through which a job references cluster inventory. A JobSpec no
/// longer embeds its own ClusterSpec: it holds a ClusterRef, which either
/// wraps a private spec (the single-tenant convenience path — implicit
/// conversion keeps existing call sites compiling and behaving exactly as
/// before) or points at the shared spec owned by a mt::SharedCluster,
/// carrying the tenant's slot lease:
///
///   - slot_offset rotates the round-robin slot -> machine map, so
///     co-located tenants start placing instances on different machines;
///   - slot_limit caps the slots visible to the job (its P_max); 0 means
///     every slot.
///
/// offset 0 + limit 0 is bit-identical to building a Cluster from the
/// spec directly — the single-tenant identity contract (DESIGN.md §12).
class ClusterRef {
 public:
  /// Empty handle; spec() throws until assigned.
  ClusterRef() = default;

  /// Single-tenant convenience: the job owns a private copy of `spec`.
  /// Intentionally implicit so `spec.cluster = paper_cluster()` still
  /// reads naturally.
  ClusterRef(ClusterSpec spec)  // NOLINT(google-explicit-constructor)
      : spec_(std::make_shared<const ClusterSpec>(std::move(spec))) {}

  /// Multi-tenant lease of a slot region on a shared spec. Offset and
  /// limit are validated when a Cluster is built from the handle.
  ClusterRef(std::shared_ptr<const ClusterSpec> spec, int slot_offset,
             int slot_limit)
      : spec_(std::move(spec)), slot_offset_(slot_offset),
        slot_limit_(slot_limit) {}

  [[nodiscard]] bool empty() const noexcept { return spec_ == nullptr; }
  /// The referenced spec; throws std::logic_error on an empty handle.
  [[nodiscard]] const ClusterSpec& spec() const;
  [[nodiscard]] int slot_offset() const noexcept { return slot_offset_; }
  [[nodiscard]] int slot_limit() const noexcept { return slot_limit_; }
  /// The shared spec pointer (null for an empty handle).
  [[nodiscard]] const std::shared_ptr<const ClusterSpec>& share()
      const noexcept {
    return spec_;
  }

 private:
  std::shared_ptr<const ClusterSpec> spec_;
  int slot_offset_ = 0;
  int slot_limit_ = 0;
};

/// Placement of a concrete parallelism configuration on a cluster.
class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);
  /// Builds the leased view a ClusterRef describes: the slot -> machine
  /// map is rotated by the ref's slot offset and truncated to its slot
  /// limit. Throws std::invalid_argument on an out-of-range lease and
  /// std::logic_error on an empty ref.
  explicit Cluster(const ClusterRef& ref);

  [[nodiscard]] const ClusterSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::size_t num_machines() const noexcept {
    return spec_.machines.size();
  }
  [[nodiscard]] int slots_per_machine(std::size_t m) const;
  [[nodiscard]] int total_slots() const noexcept { return total_slots_; }

  /// Maximum parallelism any operator may use: the total slot count
  /// (Flink slot sharing lets every slot host one subtask of each
  /// operator). This is the paper's P_max.
  [[nodiscard]] int max_parallelism() const noexcept { return total_slots_; }

  /// Machine index hosting shared slot `slot` (round-robin spread).
  [[nodiscard]] std::size_t machine_of_slot(int slot) const;

  /// True if every operator's parallelism fits within P_max and is >= 1.
  [[nodiscard]] bool feasible(const Parallelism& parallelism) const noexcept;

  /// Instances placed on each machine for a given configuration:
  /// result[m] = number of operator instances on machine m.
  [[nodiscard]] std::vector<int> instances_per_machine(
      const Parallelism& parallelism) const;

  /// Machine hosting subtask `instance` of an operator (== slot placement).
  [[nodiscard]] std::size_t machine_of_instance(int instance) const {
    return machine_of_slot(instance);
  }

  /// Rack groups, dense-indexed in order of first appearance: machines
  /// whose MachineSpec::rack matches share a group; machines with rack ==
  /// -1 each form a singleton. racks().size() == num_machines() therefore
  /// means "no correlated failure domains configured".
  [[nodiscard]] const std::vector<std::vector<std::size_t>>& racks()
      const noexcept {
    return racks_;
  }
  /// Dense rack index of machine `m`. Throws std::out_of_range.
  [[nodiscard]] std::size_t rack_of(std::size_t m) const;

 private:
  void build(int slot_offset, int slot_limit);

  ClusterSpec spec_;
  int total_slots_ = 0;
  std::vector<std::size_t> slot_to_machine_;
  std::vector<std::vector<std::size_t>> racks_;
  std::vector<std::size_t> machine_rack_;
};

}  // namespace autra::sim

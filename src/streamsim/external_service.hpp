// Rate-capped external service: the Redis stand-in. The Yahoo streaming
// benchmark's join/window operators read and write Redis, whose limited
// read/write rate caps the whole job's throughput no matter how much
// parallelism is added (paper Fig. 5(b)). Modelled as a token bucket shared
// by every instance of every operator bound to the service.
#pragma once

#include <algorithm>
#include <string>

namespace autra::sim {

class ExternalService {
 public:
  /// `max_calls_per_sec` is the service's aggregate capacity; `burst_sec`
  /// is how many seconds of capacity may be banked; `call_latency_ms` is
  /// the round-trip time each call adds to a record's latency.
  ExternalService(std::string name, double max_calls_per_sec,
                  double burst_sec = 0.5, double call_latency_ms = 0.0);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double capacity_per_sec() const noexcept { return rate_; }
  [[nodiscard]] double call_latency_ms() const noexcept {
    return call_latency_ms_;
  }

  /// Refills the bucket for an elapsed interval dt.
  void tick(double dt) noexcept;

  /// Attempts to take `want` calls; returns the number granted (<= want).
  [[nodiscard]] double acquire(double want) noexcept;

  [[nodiscard]] double available() const noexcept { return tokens_; }

  /// Total calls granted since construction.
  [[nodiscard]] double total_granted() const noexcept {
    return total_granted_;
  }

 private:
  std::string name_;
  double rate_;
  double burst_;
  double tokens_;
  double call_latency_ms_;
  double total_granted_ = 0.0;
};

}  // namespace autra::sim

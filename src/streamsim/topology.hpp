// Job topology: the directed acyclic graph of operators a streaming job is
// made of, mirroring a Flink JobGraph. Operators carry the per-record cost
// model the fluid engine executes (deserialize + process + serialize, the
// three components of "time used" in the paper's true-rate definition,
// Eq. 2).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace autra::sim {

/// What kind of operator this is; only sources and the cost/state model
/// differ — the fluid engine treats all non-source kinds uniformly.
enum class OperatorKind {
  kSource,          ///< Pulls from the Kafka log.
  kStateless,       ///< Map / FlatMap / Filter.
  kKeyedAggregate,  ///< Keyed running aggregate (e.g. WordCount's Count).
  kSlidingWindow,   ///< Sliding-window aggregate (Nexmark Query5).
  kSessionWindow,   ///< Session-window aggregate (Nexmark Query11).
  kSink,            ///< Terminal operator; completions are latency samples.
};

[[nodiscard]] const char* to_string(OperatorKind kind) noexcept;

/// Static description of one operator.
struct OperatorSpec {
  std::string name;
  OperatorKind kind = OperatorKind::kStateless;

  /// Output records emitted per input record processed.
  double selectivity = 1.0;

  /// Per-record costs in microseconds on one reference core, split the way
  /// the paper splits "time used" (Eq. 2).
  double deserialize_us = 0.0;
  double process_us = 1.0;
  double serialize_us = 0.0;

  /// Managed state per instance, for the memory-usage metric (Fig. 8c).
  double state_mb = 16.0;

  /// If set, every processed record issues `external_calls_per_record`
  /// calls against this named rate-capped external service (the Redis
  /// stand-in that throttles the Yahoo benchmark).
  std::optional<std::string> external_service;
  double external_calls_per_record = 1.0;

  /// Key skew for keyed operators: the hottest instance receives
  /// (1 + key_skew) times the uniform share of incoming records (0 =
  /// uniform, the paper's assumption). A skewed operator saturates its hot
  /// instance first, so its effective capacity is below k times the
  /// per-instance rate — a failure-injection axis for the policies that
  /// assume uniformity (DS2's Eq. 3 and AuTraScale's throughput stage).
  double key_skew = 0.0;

  [[nodiscard]] double total_cost_us() const noexcept {
    return deserialize_us + process_us + serialize_us;
  }
};

/// A DAG of operators. Operators are identified by dense indices in
/// insertion order; edges point downstream.
class Topology {
 public:
  /// Adds an operator, returns its index.
  std::size_t add_operator(OperatorSpec spec);

  /// Adds an edge from `from` to `to`. Throws std::invalid_argument on bad
  /// indices, self-loops, or duplicate edges.
  void connect(std::size_t from, std::size_t to);

  [[nodiscard]] std::size_t num_operators() const noexcept {
    return ops_.size();
  }
  [[nodiscard]] const OperatorSpec& op(std::size_t i) const {
    return ops_.at(i);
  }
  [[nodiscard]] OperatorSpec& op(std::size_t i) { return ops_.at(i); }

  [[nodiscard]] const std::vector<std::size_t>& downstream(
      std::size_t i) const {
    return downstream_.at(i);
  }
  [[nodiscard]] const std::vector<std::size_t>& upstream(std::size_t i) const {
    return upstream_.at(i);
  }

  [[nodiscard]] std::vector<std::size_t> sources() const;
  [[nodiscard]] std::vector<std::size_t> sinks() const;

  /// Topological order of operator indices. Throws std::logic_error if the
  /// graph has a cycle.
  [[nodiscard]] std::vector<std::size_t> topological_order() const;

  /// Validates the job: at least one source, every source is kSource, every
  /// non-source reachable from a source, acyclic. Throws std::logic_error
  /// with a description on failure.
  void validate() const;

  /// Index of the operator with the given name; throws std::out_of_range.
  [[nodiscard]] std::size_t index_of(const std::string& name) const;

 private:
  std::vector<OperatorSpec> ops_;
  std::vector<std::vector<std::size_t>> downstream_;
  std::vector<std::vector<std::size_t>> upstream_;
};

}  // namespace autra::sim

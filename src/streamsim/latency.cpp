#include "streamsim/latency.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autra::sim {

LatencyStats::LatencyStats(std::size_t reservoir_size, std::uint64_t seed)
    : reservoir_size_(std::max<std::size_t>(reservoir_size, 16)), rng_(seed) {
  reservoir_.reserve(reservoir_size_);
}

void LatencyStats::add(double latency_sec, double mass) {
  if (mass <= 0.0) return;
  total_mass_ += mass;
  weighted_sum_ += latency_sec * mass;

  // Weighted reservoir sampling: each unit of mass is a candidate sample.
  // We approximate by inserting one sample per `stride` units of mass where
  // stride keeps the reservoir within bounds, with uniform replacement once
  // full. This preserves the mass-weighted distribution in expectation.
  mass_since_last_keep_ += mass;
  const double stride =
      std::max(1.0, total_mass_ / static_cast<double>(reservoir_size_));
  while (mass_since_last_keep_ >= stride) {
    mass_since_last_keep_ -= stride;
    if (reservoir_.size() < reservoir_size_) {
      reservoir_.push_back(latency_sec);
    } else {
      std::uniform_int_distribution<std::size_t> dist(0, reservoir_.size() - 1);
      reservoir_[dist(rng_)] = latency_sec;
    }
  }
}

double LatencyStats::mean() const noexcept {
  return total_mass_ > 0.0 ? weighted_sum_ / total_mass_ : 0.0;
}

double LatencyStats::quantile(double q) const {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("LatencyStats::quantile: q outside [0,1]");
  }
  if (reservoir_.empty()) return 0.0;
  std::vector<double> sorted = reservoir_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void LatencyStats::reset() {
  reservoir_.clear();
  total_mass_ = 0.0;
  weighted_sum_ = 0.0;
  mass_since_last_keep_ = 0.0;
}

void LatencyStats::merge(const LatencyStats& other) {
  total_mass_ += other.total_mass_;
  weighted_sum_ += other.weighted_sum_;
  for (double v : other.reservoir_) {
    if (reservoir_.size() < reservoir_size_) {
      reservoir_.push_back(v);
    } else {
      std::uniform_int_distribution<std::size_t> dist(0, reservoir_.size() - 1);
      reservoir_[dist(rng_)] = v;
    }
  }
}

}  // namespace autra::sim

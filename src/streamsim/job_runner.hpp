// Job evaluation harness.
//
// JobRunner is the "run the job with this configuration and report QoS"
// primitive every auto-scaling policy in this repository consumes: it runs a
// fresh engine for a warm-up period (the paper's *policy running time*,
// during which metrics are ignored because the restarted job is unstable),
// then measures for a window and returns a JobMetrics snapshot.
//
// ScalingSession models a *continuously running* job that is rescaled over
// its lifetime: the Kafka log (and its lag) and the wall clock survive each
// reconfiguration, and every restart costs a downtime window, exactly like
// Flink's savepoint-stop-restart cycle in the paper's Execute stage.
#pragma once

#include <memory>
#include <vector>

#include "streamsim/engine.hpp"

namespace autra::sim {

/// Description of one external (Redis-like) service a job depends on.
struct ExternalServiceSpec {
  std::string name;
  double max_calls_per_sec = 1e9;
  double burst_sec = 0.5;
  /// Round-trip latency each call adds to a record, milliseconds.
  double call_latency_ms = 0.0;
};

/// Everything needed to instantiate a job, independent of parallelism.
struct JobSpec {
  Topology topology;
  ClusterSpec cluster;
  std::shared_ptr<const RateSchedule> schedule;
  std::vector<ExternalServiceSpec> services;
  EngineParams engine;

  /// Convenience: the schedule's rate at t=0 (the steady input data rate
  /// v_c for constant-rate experiments).
  [[nodiscard]] double initial_rate() const;
};

/// QoS snapshot of one measurement window.
struct JobMetrics {
  Parallelism parallelism;
  double input_rate = 0.0;      ///< External production rate during window.
  double throughput = 0.0;      ///< Records/s consumed from Kafka.
  double latency_ms = 0.0;      ///< Mean processing latency (Flink latency).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double event_latency_ms = 0.0;  ///< Mean event-time latency (incl. lag).
  double kafka_lag = 0.0;         ///< Records pending at window end.
  double lag_growth_per_sec = 0.0;
  double busy_cores = 0.0;        ///< Average CPU cores in use.
  double memory_mb = 0.0;         ///< Static memory footprint.
  std::vector<OperatorRates> operators;

  /// Sum of all operator parallelisms — the "resource units" compared in
  /// the paper's Figs. 7 and 8.
  [[nodiscard]] int total_parallelism() const;
};

/// Builds an engine for a spec (shared by JobRunner and ScalingSession).
[[nodiscard]] std::unique_ptr<Engine> make_engine(const JobSpec& spec,
                                                  const Parallelism& p,
                                                  double start_time = 0.0,
                                                  std::uint64_t seed_salt = 0);

/// Collects a JobMetrics snapshot from an engine's current window.
[[nodiscard]] JobMetrics snapshot(const Engine& engine);

/// Fresh-start evaluation: one configuration, one measurement.
class JobRunner {
 public:
  /// `warmup_sec` is the policy running time; `measure_sec` the metric
  /// aggregation window.
  JobRunner(JobSpec spec, double warmup_sec = 60.0, double measure_sec = 60.0);

  /// Runs the job from a cold start with parallelism `p` and returns the
  /// post-warm-up window metrics. `seed_salt` perturbs measurement noise so
  /// repeated evaluations differ like real reruns do.
  [[nodiscard]] JobMetrics measure(const Parallelism& p,
                                   std::uint64_t seed_salt = 0) const;

  [[nodiscard]] const JobSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] int max_parallelism() const;
  [[nodiscard]] std::size_t num_operators() const noexcept {
    return spec_.topology.num_operators();
  }
  [[nodiscard]] double warmup_sec() const noexcept { return warmup_sec_; }
  [[nodiscard]] double measure_sec() const noexcept { return measure_sec_; }

  /// Total evaluations performed so far (each is one job restart in the
  /// paper's terms — the cost the transfer-learning method saves).
  [[nodiscard]] int evaluations() const noexcept { return evaluations_; }

 private:
  JobSpec spec_;
  double warmup_sec_;
  double measure_sec_;
  mutable int evaluations_ = 0;
};

/// How a reconfiguration is applied.
enum class RescaleMode {
  /// Savepoint + full redeploy: the paper's Execute stage. Applies to any
  /// configuration change.
  kColdRestart,
  /// In-place scale-out (Flink reactive-mode style): new instances join
  /// without stopping the running ones, so the downtime shrinks to the
  /// slot-allocation time. Only valid when no operator's parallelism
  /// shrinks — state never needs to be re-partitioned away from a running
  /// instance. Addresses the paper's future-work item of reducing the
  /// latency overhead of reconfiguration.
  kHotScaleOut,
};

/// A long-running job that can be rescaled in place.
class ScalingSession {
 public:
  /// `restart_downtime_sec` is the savepoint + redeploy window during which
  /// nothing is processed but Kafka keeps producing;
  /// `hot_downtime_sec` is the much smaller pause of an in-place scale-out.
  ScalingSession(JobSpec spec, Parallelism initial,
                 double restart_downtime_sec = 15.0,
                 double hot_downtime_sec = 1.0);

  /// Advances the session by `sec` simulated seconds.
  void run_for(double sec);

  /// Applies `p`, preserving the Kafka log and the wall clock. No-op if
  /// `p` equals the current config. kHotScaleOut throws
  /// std::invalid_argument when any operator shrinks.
  void reconfigure(const Parallelism& p,
                   RescaleMode mode = RescaleMode::kColdRestart);

  /// Metrics accumulated since the last reset_window()/reconfigure().
  [[nodiscard]] JobMetrics window_metrics() const;
  void reset_window();

  [[nodiscard]] double now() const noexcept { return engine_->now(); }
  [[nodiscard]] const Parallelism& parallelism() const noexcept {
    return engine_->parallelism();
  }
  [[nodiscard]] Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const MetricsDb& history() const noexcept { return history_; }
  [[nodiscard]] int restarts() const noexcept { return restarts_; }

 private:
  JobSpec spec_;
  double restart_downtime_sec_;
  double hot_downtime_sec_;
  std::unique_ptr<Engine> engine_;
  MetricsDb history_;
  int restarts_ = 0;
  std::uint64_t reconfig_salt_ = 0;
};

}  // namespace autra::sim

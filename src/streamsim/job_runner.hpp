// Job evaluation harness.
//
// JobRunner is the "run the job with this configuration and report QoS"
// primitive every auto-scaling policy in this repository consumes: it runs a
// fresh engine for a warm-up period (the paper's *policy running time*,
// during which metrics are ignored because the restarted job is unstable),
// then measures for a window and returns a JobMetrics snapshot.
//
// ScalingSession models a *continuously running* job that is rescaled over
// its lifetime: the Kafka log (and its lag) and the wall clock survive each
// reconfiguration, and every restart costs a downtime window, exactly like
// Flink's savepoint-stop-restart cycle in the paper's Execute stage.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "fault/fault_host.hpp"
#include "runtime/backend.hpp"
#include "streamsim/engine.hpp"

namespace autra::sim {

/// Description of one external (Redis-like) service a job depends on.
struct ExternalServiceSpec {
  std::string name;
  double max_calls_per_sec = 1e9;
  double burst_sec = 0.5;
  /// Round-trip latency each call adds to a record, milliseconds.
  double call_latency_ms = 0.0;
};

/// Everything needed to instantiate a job, independent of parallelism.
struct JobSpec {
  Topology topology;
  /// Cluster inventory handle: a private spec for the single-tenant path
  /// (`spec.cluster = paper_cluster()` still works — ClusterRef converts
  /// implicitly), or a slot lease on a mt::SharedCluster.
  ClusterRef cluster;
  std::shared_ptr<const RateSchedule> schedule;
  std::vector<ExternalServiceSpec> services;
  EngineParams engine;

  /// Convenience: the schedule's rate at t=0 (the steady input data rate
  /// v_c for constant-rate experiments).
  [[nodiscard]] double initial_rate() const;
};

/// QoS snapshot of one measurement window (backend-neutral runtime type).
using JobMetrics = runtime::JobMetrics;

/// Builds an engine for a spec (shared by JobRunner and ScalingSession).
[[nodiscard]] std::unique_ptr<Engine> make_engine(const JobSpec& spec,
                                                  const Parallelism& p,
                                                  double start_time = 0.0,
                                                  std::uint64_t seed_salt = 0);

/// Collects a JobMetrics snapshot from an engine's current window.
[[nodiscard]] JobMetrics snapshot(const Engine& engine);

/// Evaluation windows of a fresh-start JobRunner measurement (aggregate
/// with defaulted members, like ResilienceParams — designated initializers
/// keep call sites self-describing).
struct RunnerParams {
  /// The paper's policy running time: metrics are ignored while the
  /// freshly started job stabilises.
  double warmup_sec = 60.0;
  /// Metric aggregation window measured after warm-up.
  double measure_sec = 60.0;
};

/// Fresh-start evaluation: one configuration, one measurement.
class JobRunner {
 public:
  explicit JobRunner(JobSpec spec, RunnerParams params = {});

  [[deprecated("use JobRunner(JobSpec, RunnerParams{...})")]]
  JobRunner(JobSpec spec, double warmup_sec, double measure_sec = 60.0)
      : JobRunner(std::move(spec), RunnerParams{warmup_sec, measure_sec}) {}

  /// Runs the job from a cold start with parallelism `p` and returns the
  /// post-warm-up window metrics. `seed_salt` perturbs measurement noise so
  /// repeated evaluations differ like real reruns do. Safe to call
  /// concurrently: each call builds its own engine and shares only the
  /// immutable spec.
  [[nodiscard]] JobMetrics measure(const Parallelism& p,
                                   std::uint64_t seed_salt = 0) const;

  [[nodiscard]] const JobSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] int max_parallelism() const;
  [[nodiscard]] std::size_t num_operators() const noexcept {
    return spec_.topology.num_operators();
  }
  [[nodiscard]] double warmup_sec() const noexcept {
    return params_.warmup_sec;
  }
  [[nodiscard]] double measure_sec() const noexcept {
    return params_.measure_sec;
  }

  /// Total evaluations performed so far (each is one job restart in the
  /// paper's terms — the cost the transfer-learning method saves).
  [[nodiscard]] int evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }

 private:
  JobSpec spec_;
  RunnerParams params_;
  mutable std::atomic<int> evaluations_{0};
};

/// How a reconfiguration is applied (backend-neutral runtime type).
using RescaleMode = runtime::RescaleMode;

/// Restart-cost knobs of a long-running ScalingSession (aggregate with
/// defaulted members; see RunnerParams).
struct SessionParams {
  /// Savepoint + redeploy window of a cold restart, during which nothing
  /// is processed but Kafka keeps producing.
  double restart_downtime_sec = 15.0;
  /// The much smaller pause of an in-place (hot) scale-out.
  double hot_downtime_sec = 1.0;
};

/// A long-running job that can be rescaled in place — the fluid
/// simulator's implementation of the backend-agnostic runtime interface.
///
/// Also a fault::FaultHost: engine-level fault events registered through
/// the host_* methods survive every engine rebuild (reconfigurations and
/// failure restarts re-apply them to the successor engine), and a machine
/// crash forces a framework-style restart `detection_delay_sec` after the
/// crash instant — full restart downtime, Kafka lag accumulating
/// throughout, exactly the cost model of the Execute stage.
class ScalingSession final : public runtime::StreamingBackend,
                             public fault::FaultHost {
 public:
  ScalingSession(JobSpec spec, Parallelism initial,
                 SessionParams params = {});

  [[deprecated("use ScalingSession(JobSpec, Parallelism, SessionParams{...})")]]
  ScalingSession(JobSpec spec, Parallelism initial,
                 double restart_downtime_sec, double hot_downtime_sec = 1.0)
      : ScalingSession(std::move(spec), std::move(initial),
                       SessionParams{restart_downtime_sec,
                                     hot_downtime_sec}) {}

  /// Advances the session by `sec` simulated seconds.
  void run_for(double sec) override;

  /// Advances to the absolute session time `until_sec` (at or before now()
  /// is a no-op). run_for(sec) == run_to(now() + sec); co-simulation
  /// harnesses advance every tenant through shared absolute targets so
  /// their slicing cannot perturb the float arithmetic of the engine's
  /// whole-tick run_until loop.
  void run_to(double until_sec);

  /// Applies `p`, preserving the Kafka log and the wall clock. No-op if
  /// `p` equals the current config. kHotScaleOut throws
  /// std::invalid_argument when any operator shrinks.
  void reconfigure(const Parallelism& p,
                   RescaleMode mode = RescaleMode::kColdRestart) override;

  /// Metrics accumulated since the last reset_window()/reconfigure().
  [[nodiscard]] JobMetrics window_metrics() const override;
  void reset_window() override;

  [[nodiscard]] double now() const noexcept override { return engine_->now(); }
  [[nodiscard]] const Parallelism& parallelism() const noexcept override {
    return engine_->parallelism();
  }
  [[nodiscard]] Engine& engine() noexcept { return *engine_; }
  [[nodiscard]] const MetricsDb& history() const noexcept override {
    return history_;
  }
  [[nodiscard]] int restarts() const noexcept override { return restarts_; }

  /// Restarts forced by machine crashes (a subset of restarts()).
  [[nodiscard]] int failure_restarts() const noexcept {
    return failure_restarts_;
  }

  // --- Multi-tenant coupling (driven by mt::MultiTenantHarness) ----------
  // Stored on the session — not just on the engine — so engine rebuilds
  // (rescales, crash restarts) re-apply them to the successor engine.

  /// Busy-core equivalents co-tenant jobs place on each machine. An empty
  /// or all-zero vector detaches the coupling (the single-tenant runs stay
  /// bit-identical).
  void set_external_machine_load(const std::vector<double>& load);
  /// Records-per-second co-tenant jobs push through each rack uplink.
  void set_external_uplink_load(const std::vector<double>& records_per_sec);
  /// This job's own busy-core load per machine (what it publishes).
  [[nodiscard]] std::vector<double> machine_busy_load() const {
    return engine_->machine_busy_load();
  }
  /// Cumulative records this job's shuffles pushed through each rack
  /// uplink, summed across engine rebuilds. Empty when uplinks are
  /// unconstrained.
  [[nodiscard]] std::vector<double> uplink_consumed_records() const;

  // fault::FaultHost — events are kept on the session so they survive
  // engine rebuilds. All may be called at any time; events entirely in the
  // past are retained but unobservable.
  void host_machine_down(std::size_t machine, double from_sec,
                         double until_sec,
                         double detection_delay_sec) override;
  void host_slow_node(std::size_t machine, double speed_factor,
                      double from_sec, double until_sec) override;
  void host_service_outage(const std::string& service, double from_sec,
                           double until_sec) override;
  void host_ingest_stall(double from_sec, double until_sec) override;
  void host_rack_down(const std::vector<std::size_t>& machines,
                      double from_sec, double until_sec,
                      double detection_delay_sec) override;
  void host_network_partition(const std::vector<std::size_t>& island,
                              double from_sec, double until_sec) override;

 private:
  struct MachineDownFault {
    std::size_t machine = 0;
    double from = 0.0;
    double until = 0.0;
    double detect = 0.0;      ///< Detection delay after `from`, seconds.
    bool restarted = false;   ///< Forced restart already performed.
  };
  struct SlowNodeFault {
    std::size_t machine = 0;
    double factor = 1.0;
    double from = 0.0;
    double until = 0.0;
  };
  struct ServiceOutageFault {
    std::string service;
    double from = 0.0;
    double until = 0.0;
  };
  struct StallFault {
    double from = 0.0;
    double until = 0.0;
  };
  struct RackDownFault {
    std::vector<std::size_t> machines;
    double from = 0.0;
    double until = 0.0;
    double detect = 0.0;     ///< Shared detection delay, seconds.
    bool restarted = false;  ///< One forced restart for the whole group.
  };
  struct PartitionFault {
    std::vector<std::size_t> island;
    double from = 0.0;
    double until = 0.0;
  };

  /// Registers every stored fault event with a (possibly fresh) engine.
  void apply_faults_to(Engine& engine) const;

  /// Replaces the engine with a successor at the same wall clock: Kafka log
  /// carried over, seed re-salted, faults re-applied, `downtime` seconds of
  /// suspension. Shared by reconfigure() and forced failure restarts.
  void rebuild_engine(const Parallelism& p, double downtime);

  JobSpec spec_;
  SessionParams params_;
  std::unique_ptr<Engine> engine_;
  MetricsDb history_;
  int restarts_ = 0;
  int failure_restarts_ = 0;
  std::uint64_t reconfig_salt_ = 0;
  /// Co-tenant loads, re-applied to every successor engine.
  std::vector<double> external_machine_load_;
  std::vector<double> external_uplink_load_;
  /// Uplink records consumed by engines already torn down.
  std::vector<double> uplink_consumed_base_;
  std::vector<MachineDownFault> machine_down_faults_;
  std::vector<SlowNodeFault> slow_node_faults_;
  std::vector<ServiceOutageFault> service_outage_faults_;
  std::vector<StallFault> stall_faults_;
  std::vector<RackDownFault> rack_down_faults_;
  std::vector<PartitionFault> partition_faults_;
};

/// The simulator's Plan-stage trial provider: every evaluator_at() call
/// wraps a fresh-start JobRunner pinned at a constant rate. Noise salts
/// are derived per configuration (plus a rerun counter), so repeated
/// trials differ like real reruns while concurrent evaluations stay
/// order-independent — the returned evaluator satisfies the
/// const-thread-safety contract of runtime::TrialService.
class SimTrialService final : public runtime::TrialService {
 public:
  explicit SimTrialService(JobSpec spec);

  [[nodiscard]] runtime::Evaluator evaluator_at(
      double rate, double warmup_sec, double measure_sec) const override;
  [[nodiscard]] int max_parallelism() const override;
  [[nodiscard]] double scheduled_rate_at(double t) const override;

  [[nodiscard]] const JobSpec& spec() const noexcept { return spec_; }

 private:
  JobSpec spec_;
};

/// Convenience: the trial service for `spec`, as the policy layer takes it.
[[nodiscard]] std::shared_ptr<runtime::TrialService> make_trial_service(
    JobSpec spec);

}  // namespace autra::sim

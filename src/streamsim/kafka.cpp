#include "streamsim/kafka.hpp"

#include <stdexcept>

namespace autra::sim {

KafkaLog::KafkaLog(std::shared_ptr<const RateSchedule> schedule)
    : schedule_(std::move(schedule)) {
  if (!schedule_) {
    throw std::invalid_argument("KafkaLog: null schedule");
  }
}

KafkaLog::KafkaLog(std::unique_ptr<RateSchedule> schedule)
    : KafkaLog(std::shared_ptr<const RateSchedule>(std::move(schedule))) {}

void KafkaLog::produce(double t, double dt) {
  const double mass = schedule_->rate_at(t) * dt;
  if (mass <= 0.0) return;
  // Stamp the cohort with the middle of the production interval.
  cohorts_.push_back({mass, t + 0.5 * dt});
  lag_ += mass;
  total_produced_ += mass;
}

std::vector<LogCohort> KafkaLog::consume(double want) {
  std::vector<LogCohort> taken;
  while (want > 1e-12 && !cohorts_.empty()) {
    LogCohort& head = cohorts_.front();
    if (head.mass <= want) {
      want -= head.mass;
      lag_ -= head.mass;
      total_consumed_ += head.mass;
      taken.push_back(head);
      cohorts_.pop_front();
    } else {
      taken.push_back({want, head.produced_time});
      head.mass -= want;
      lag_ -= want;
      total_consumed_ += want;
      want = 0.0;
    }
  }
  if (lag_ < 0.0) lag_ = 0.0;
  return taken;
}

void KafkaLog::clear() noexcept {
  cohorts_.clear();
  lag_ = 0.0;
}

}  // namespace autra::sim

#include "streamsim/external_service.hpp"

#include <stdexcept>

namespace autra::sim {

ExternalService::ExternalService(std::string name, double max_calls_per_sec,
                                 double burst_sec, double call_latency_ms)
    : name_(std::move(name)),
      rate_(max_calls_per_sec),
      burst_(max_calls_per_sec * burst_sec),
      tokens_(burst_),
      call_latency_ms_(call_latency_ms) {
  if (rate_ <= 0.0 || burst_sec <= 0.0 || call_latency_ms_ < 0.0) {
    throw std::invalid_argument("ExternalService: bad capacity");
  }
}

void ExternalService::tick(double dt) noexcept {
  tokens_ = std::min(burst_, tokens_ + rate_ * dt);
}

double ExternalService::acquire(double want) noexcept {
  const double granted = std::clamp(want, 0.0, tokens_);
  tokens_ -= granted;
  total_granted_ += granted;
  return granted;
}

}  // namespace autra::sim

// Operator chaining — Flink's task-chaining optimisation.
//
// Consecutive operators connected 1:1 can be fused into one task: records
// pass by function call instead of a serialising network hop. In the
// simulator a chained group becomes a single operator whose per-record cost
// accumulates the members' costs (downstream members weighted by the
// upstream selectivity product, because they process the expanded stream)
// and whose selectivity is the product. Chaining removes per-hop latency
// and lets one slot do the work of several — at the price of coupling the
// members' parallelism, which is exactly why auto-scaling systems like the
// paper's break chains around heavy operators.
//
// Sources may head a chain; keyed/window operators always start a new
// chain (their input is a shuffle, never a local pass); sinks may end one.
#pragma once

#include <vector>

#include "streamsim/cluster.hpp"
#include "streamsim/topology.hpp"

namespace autra::sim {

struct ChainingResult {
  Topology topology;
  /// group_of[original op index] = operator index in the chained topology.
  std::vector<std::size_t> group_of;
};

/// True if `op` may be fused onto the tail of a chain (stateless with
/// exactly one upstream whose only downstream is `op`).
[[nodiscard]] bool chainable(const Topology& t, std::size_t op);

/// Fuses every chainable run of operators. The input topology must
/// validate; the output topology validates too.
[[nodiscard]] ChainingResult chain_operators(const Topology& t);

/// Expands a parallelism vector for the chained topology back to the
/// original operator indices (each original operator inherits its group's
/// parallelism).
[[nodiscard]] Parallelism unchain_parallelism(const ChainingResult& chained,
                                              const Parallelism& grouped);

}  // namespace autra::sim

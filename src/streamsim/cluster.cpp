#include "streamsim/cluster.hpp"

#include <algorithm>
#include <stdexcept>

namespace autra::sim {

ClusterSpec paper_cluster() {
  ClusterSpec spec;
  for (int i = 0; i < 3; ++i) {
    // Two machines share the first rack, the third stands alone — the
    // correlated-failure domain chaos-mode rack faults exercise.
    spec.machines.push_back(
        {.name = "r730xd-" + std::to_string(i), .cores = 20,
         .memory_gb = 256.0, .speed = 1.0, .rack = i < 2 ? 0 : 1});
  }
  return spec;
}

ClusterSpec uniform_cluster(std::size_t num_machines,
                            std::size_t machines_per_rack, int cores,
                            int slots_per_machine) {
  if (num_machines == 0 || machines_per_rack == 0) {
    throw std::invalid_argument("uniform_cluster: zero machines or rack size");
  }
  ClusterSpec spec;
  spec.slots_per_machine = slots_per_machine;
  spec.machines.reserve(num_machines);
  for (std::size_t i = 0; i < num_machines; ++i) {
    // Built in two steps: gcc 12's -Wrestrict misfires on the char* +
    // temporary-string overload under -Werror.
    std::string name = std::to_string(i);
    name.insert(0, 1, 'm');
    spec.machines.push_back(
        {.name = std::move(name), .cores = cores, .memory_gb = 64.0,
         .speed = 1.0, .rack = static_cast<int>(i / machines_per_rack)});
  }
  return spec;
}

const ClusterSpec& ClusterRef::spec() const {
  if (spec_ == nullptr) {
    throw std::logic_error("ClusterRef::spec: empty handle (JobSpec.cluster "
                           "was never assigned)");
  }
  return *spec_;
}

Cluster::Cluster(ClusterSpec spec) : spec_(std::move(spec)) {
  build(0, 0);
}

Cluster::Cluster(const ClusterRef& ref) : spec_(ref.spec()) {
  build(ref.slot_offset(), ref.slot_limit());
}

void Cluster::build(int slot_offset, int slot_limit) {
  if (spec_.machines.empty()) {
    throw std::invalid_argument("Cluster: no machines");
  }
  if (spec_.rack_uplink_records_per_sec < 0.0 ||
      spec_.rack_oversubscription < 1.0) {
    throw std::invalid_argument("Cluster: bad rack uplink parameters");
  }
  for (const MachineSpec& m : spec_.machines) {
    if (m.cores <= 0 || m.memory_gb <= 0.0 || m.speed <= 0.0 ||
        m.background_load < 0.0) {
      throw std::invalid_argument("Cluster: bad machine spec for " + m.name);
    }
  }
  // Build the slot -> machine map with a round-robin spread, the Flink
  // cluster.evenly-spread-out-slots strategy.
  std::vector<int> remaining;
  remaining.reserve(spec_.machines.size());
  for (const MachineSpec& m : spec_.machines) {
    const int s = spec_.slots_per_machine > 0 ? spec_.slots_per_machine
                                              : m.cores;
    remaining.push_back(s);
    total_slots_ += s;
  }
  std::size_t m = 0;
  while (static_cast<int>(slot_to_machine_.size()) < total_slots_) {
    if (remaining[m] > 0) {
      slot_to_machine_.push_back(m);
      --remaining[m];
    }
    m = (m + 1) % spec_.machines.size();
  }
  // A leased view (ClusterRef): rotate the round-robin map so co-located
  // tenants start on different machines, then truncate to the lease size.
  // offset 0 / limit 0 leaves the map untouched — the single-tenant
  // identity path.
  if (slot_offset < 0 || slot_offset >= total_slots_ || slot_limit < 0 ||
      slot_limit > total_slots_) {
    throw std::invalid_argument("Cluster: slot lease out of range");
  }
  if (slot_offset > 0) {
    std::rotate(slot_to_machine_.begin(),
                slot_to_machine_.begin() + slot_offset,
                slot_to_machine_.end());
  }
  if (slot_limit > 0 && slot_limit < total_slots_) {
    slot_to_machine_.resize(static_cast<std::size_t>(slot_limit));
    total_slots_ = slot_limit;
  }
  // Rack groups: dense indices in order of first appearance; rack == -1
  // machines are singletons.
  std::vector<int> seen_rack_ids;
  machine_rack_.resize(spec_.machines.size());
  for (std::size_t i = 0; i < spec_.machines.size(); ++i) {
    const int id = spec_.machines[i].rack;
    std::size_t dense = racks_.size();
    if (id >= 0) {
      const auto it =
          std::find(seen_rack_ids.begin(), seen_rack_ids.end(), id);
      if (it != seen_rack_ids.end()) {
        dense = static_cast<std::size_t>(it - seen_rack_ids.begin());
      }
    }
    if (dense == racks_.size()) {
      seen_rack_ids.push_back(id >= 0 ? id : -1 - static_cast<int>(i));
      racks_.emplace_back();
    }
    racks_[dense].push_back(i);
    machine_rack_[i] = dense;
  }
}

std::size_t Cluster::rack_of(std::size_t m) const {
  if (m >= machine_rack_.size()) {
    throw std::out_of_range("Cluster::rack_of: bad machine index");
  }
  return machine_rack_[m];
}

int Cluster::slots_per_machine(std::size_t m) const {
  if (m >= spec_.machines.size()) {
    throw std::out_of_range("Cluster::slots_per_machine: bad machine index");
  }
  return spec_.slots_per_machine > 0 ? spec_.slots_per_machine
                                     : spec_.machines[m].cores;
}

std::size_t Cluster::machine_of_slot(int slot) const {
  if (slot < 0 || slot >= total_slots_) {
    throw std::out_of_range("Cluster::machine_of_slot: bad slot index");
  }
  return slot_to_machine_[static_cast<std::size_t>(slot)];
}

bool Cluster::feasible(const Parallelism& parallelism) const noexcept {
  if (parallelism.empty()) return false;
  for (int k : parallelism) {
    if (k < 1 || k > max_parallelism()) return false;
  }
  return true;
}

std::vector<int> Cluster::instances_per_machine(
    const Parallelism& parallelism) const {
  std::vector<int> count(spec_.machines.size(), 0);
  for (int k : parallelism) {
    for (int j = 0; j < k; ++j) {
      ++count[machine_of_slot(j)];
    }
  }
  return count;
}

}  // namespace autra::sim

// Mass-weighted latency statistics. The fluid engine contributes
// (latency, record-mass) pairs at the sink; this accumulator keeps a running
// mean plus a fixed-size weighted reservoir for percentile queries
// (Fig. 8(b) plots per-record latency distributions).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace autra::sim {

class LatencyStats {
 public:
  explicit LatencyStats(std::size_t reservoir_size = 4096,
                        std::uint64_t seed = 7);

  /// Adds `mass` records that each experienced `latency_sec`.
  void add(double latency_sec, double mass);

  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double total_mass() const noexcept { return total_mass_; }
  [[nodiscard]] bool empty() const noexcept { return total_mass_ <= 0.0; }

  /// Approximate quantile from the reservoir, q in [0, 1].
  /// Returns 0 when empty; throws std::invalid_argument for q outside [0,1].
  [[nodiscard]] double quantile(double q) const;

  void reset();

  /// Merges another accumulator's running mean and reservoir.
  void merge(const LatencyStats& other);

 private:
  std::size_t reservoir_size_;
  std::vector<double> reservoir_;
  double total_mass_ = 0.0;
  double weighted_sum_ = 0.0;
  double mass_since_last_keep_ = 0.0;
  std::mt19937_64 rng_;
};

}  // namespace autra::sim

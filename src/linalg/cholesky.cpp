#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace autra::linalg {

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky::factor: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) return std::nullopt;
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return Cholesky(std::move(l));
}

Cholesky Cholesky::factor_with_jitter(Matrix a, double jitter,
                                      double max_jitter,
                                      double* applied_jitter) {
  if (auto c = factor(a)) {
    if (applied_jitter != nullptr) *applied_jitter = 0.0;
    return std::move(*c);
  }
  for (double j = jitter; j <= max_jitter; j *= 10.0) {
    Matrix jittered = a;
    jittered.add_diagonal(j);
    if (auto c = factor(jittered)) {
      if (applied_jitter != nullptr) *applied_jitter = j;
      return std::move(*c);
    }
  }
  throw std::runtime_error(
      "Cholesky::factor_with_jitter: matrix not positive definite even with "
      "maximum jitter");
}

Cholesky Cholesky::from_lower(Matrix l) {
  if (l.rows() != l.cols() || l.rows() == 0) {
    throw std::invalid_argument(
        "Cholesky::from_lower: factor must be square and non-empty");
  }
  for (std::size_t i = 0; i < l.rows(); ++i) {
    if (!(l(i, i) > 0.0) || !std::isfinite(l(i, i))) {
      throw std::invalid_argument(
          "Cholesky::from_lower: diagonal must be positive and finite");
    }
    for (std::size_t j = i + 1; j < l.cols(); ++j) l(i, j) = 0.0;
  }
  return Cholesky(std::move(l));
}

namespace {

/// In-place rank-1 update sweep shared by update() and drop_first():
/// rewrites the lower-triangular `l` into the factor of L L^T + v v^T.
/// Consumes `v` as scratch.
void rank1_update_sweep(Matrix& l, Vector& v) {
  const std::size_t n = l.rows();
  for (std::size_t k = 0; k < n; ++k) {
    const double r = std::hypot(l(k, k), v[k]);
    const double c = r / l(k, k);
    const double s = v[k] / l(k, k);
    l(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      l(i, k) = (l(i, k) + s * v[i]) / c;
      v[i] = c * v[i] - s * l(i, k);
    }
  }
}

}  // namespace

void Cholesky::update(const Vector& v) {
  if (v.size() != size()) {
    throw std::invalid_argument("Cholesky::update: size mismatch");
  }
  Vector w = v;
  rank1_update_sweep(l_, w);
}

void Cholesky::downdate(const Vector& v) {
  const std::size_t n = size();
  if (v.size() != n) {
    throw std::invalid_argument("Cholesky::downdate: size mismatch");
  }
  // Dry-run the hyperbolic sweep on copies: the factor must be left
  // untouched when A - v v^T loses positive definiteness.
  Matrix l = l_;
  Vector w = v;
  for (std::size_t k = 0; k < n; ++k) {
    const double r2 = (l(k, k) - w[k]) * (l(k, k) + w[k]);
    if (!(r2 > 0.0) || !std::isfinite(r2)) {
      throw std::runtime_error(
          "Cholesky::downdate: matrix would lose positive definiteness");
    }
    const double r = std::sqrt(r2);
    const double c = r / l(k, k);
    const double s = w[k] / l(k, k);
    l(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      l(i, k) = (l(i, k) - s * w[i]) / c;
      w[i] = c * w[i] - s * l(i, k);
    }
  }
  l_ = std::move(l);
}

void Cholesky::append_row(const Vector& cross, double diag) {
  const std::size_t n = size();
  if (cross.size() != n) {
    throw std::invalid_argument("Cholesky::append_row: size mismatch");
  }
  const Vector l_row = solve_lower(cross);
  const double d2 = diag - dot(l_row, l_row);
  if (!(d2 > 0.0) || !std::isfinite(d2)) {
    throw std::runtime_error(
        "Cholesky::append_row: extended matrix is not positive definite");
  }
  Matrix grown(n + 1, n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) grown(i, j) = l_(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = l_row[j];
  grown(n, n) = std::sqrt(d2);
  l_ = std::move(grown);
}

void Cholesky::drop_first() {
  const std::size_t n = size();
  if (n < 2) {
    throw std::logic_error("Cholesky::drop_first: need at least two rows");
  }
  // With L = [[l00, 0], [l10, L11]], the trailing block of A satisfies
  // A22 = l10 l10^T + L11 L11^T, so chol(A22) is L11 rank-1 updated by l10.
  Vector v(n - 1);
  for (std::size_t i = 1; i < n; ++i) v[i - 1] = l_(i, 0);
  Matrix sub(n - 1, n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    for (std::size_t j = 1; j <= i; ++j) sub(i - 1, j - 1) = l_(i, j);
  }
  rank1_update_sweep(sub, v);
  l_ = std::move(sub);
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) {
    throw std::invalid_argument("Cholesky::solve_lower: size mismatch");
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

Vector Cholesky::solve_upper(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) {
    throw std::invalid_argument("Cholesky::solve_upper: size mismatch");
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::solve(const Vector& b) const {
  return solve_upper(solve_lower(b));
}

double Cholesky::log_determinant() const noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace autra::linalg

#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

namespace autra::linalg {

std::optional<Cholesky> Cholesky::factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Cholesky::factor: matrix must be square");
  }
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0 || !std::isfinite(s)) return std::nullopt;
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return Cholesky(std::move(l));
}

Cholesky Cholesky::factor_with_jitter(Matrix a, double jitter,
                                      double max_jitter) {
  if (auto c = factor(a)) return std::move(*c);
  for (double j = jitter; j <= max_jitter; j *= 10.0) {
    Matrix jittered = a;
    jittered.add_diagonal(j);
    if (auto c = factor(jittered)) return std::move(*c);
  }
  throw std::runtime_error(
      "Cholesky::factor_with_jitter: matrix not positive definite even with "
      "maximum jitter");
}

Vector Cholesky::solve_lower(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) {
    throw std::invalid_argument("Cholesky::solve_lower: size mismatch");
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

Vector Cholesky::solve_upper(const Vector& b) const {
  const std::size_t n = size();
  if (b.size() != n) {
    throw std::invalid_argument("Cholesky::solve_upper: size mismatch");
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::solve(const Vector& b) const {
  return solve_upper(solve_lower(b));
}

double Cholesky::log_determinant() const noexcept {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace autra::linalg

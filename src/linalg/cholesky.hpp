// Cholesky factorisation and solves for symmetric positive-definite systems.
// This is the numerical core of the GP regressor: K = L L^T, alpha = K^-1 y,
// and log|K| all come from here.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace autra::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
class Cholesky {
 public:
  /// Factorises `a` (must be square, symmetric, positive definite).
  /// Returns std::nullopt if the matrix is not positive definite.
  [[nodiscard]] static std::optional<Cholesky> factor(const Matrix& a);

  /// Factorises `a + jitter*I`, growing the jitter by 10x (up to
  /// `max_jitter`) until the factorisation succeeds. Throws
  /// std::runtime_error if even the maximum jitter fails. This is the
  /// standard defence against nearly-singular GP kernel matrices built from
  /// duplicated sample points.
  [[nodiscard]] static Cholesky factor_with_jitter(Matrix a,
                                                   double jitter = 1e-10,
                                                   double max_jitter = 1e-2);

  /// Solves L x = b (forward substitution).
  [[nodiscard]] Vector solve_lower(const Vector& b) const;

  /// Solves L^T x = b (back substitution).
  [[nodiscard]] Vector solve_upper(const Vector& b) const;

  /// Solves the full system (L L^T) x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// log|A| = 2 * sum(log L_ii).
  [[nodiscard]] double log_determinant() const noexcept;

  [[nodiscard]] const Matrix& lower() const noexcept { return l_; }
  [[nodiscard]] std::size_t size() const noexcept { return l_.rows(); }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

}  // namespace autra::linalg

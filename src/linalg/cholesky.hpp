// Cholesky factorisation and solves for symmetric positive-definite systems.
// This is the numerical core of the GP regressor: K = L L^T, alpha = K^-1 y,
// and log|K| all come from here.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace autra::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
class Cholesky {
 public:
  /// Factorises `a` (must be square, symmetric, positive definite).
  /// Returns std::nullopt if the matrix is not positive definite.
  [[nodiscard]] static std::optional<Cholesky> factor(const Matrix& a);

  /// Factorises `a + jitter*I`, growing the jitter by 10x (up to
  /// `max_jitter`) until the factorisation succeeds. Throws
  /// std::runtime_error if even the maximum jitter fails. This is the
  /// standard defence against nearly-singular GP kernel matrices built from
  /// duplicated sample points. When `applied_jitter` is non-null it
  /// receives the jitter that was actually added (0.0 when the plain
  /// factorisation succeeded) — the incremental GP only extends factors it
  /// knows to be jitter-free.
  [[nodiscard]] static Cholesky factor_with_jitter(
      Matrix a, double jitter = 1e-10, double max_jitter = 1e-2,
      double* applied_jitter = nullptr);

  /// Wraps an externally produced lower-triangular factor (e.g. one read
  /// back from a model snapshot). Entries above the diagonal are forced to
  /// zero. Throws std::invalid_argument unless `l` is square with strictly
  /// positive, finite diagonal entries.
  [[nodiscard]] static Cholesky from_lower(Matrix l);

  /// Rank-1 update: after the call this is the factor of A + v v^T, in
  /// O(n^2) (standard `cholupdate` Givens sweep). Throws
  /// std::invalid_argument on size mismatch.
  void update(const Vector& v);

  /// Rank-1 downdate: after the call this is the factor of A - v v^T, in
  /// O(n^2) (hyperbolic rotations). Throws std::invalid_argument on size
  /// mismatch and std::runtime_error — leaving the factor untouched — when
  /// A - v v^T is not positive definite (the result must never be a
  /// silently NaN-poisoned factor).
  void downdate(const Vector& v);

  /// Factor extension: after the call this is the factor of the bordered
  /// matrix [[A, cross], [cross^T, diag]] — a new observation appended
  /// without refactorising, in O(n^2) (one triangular solve). Throws
  /// std::invalid_argument on size mismatch and std::runtime_error when
  /// the extended matrix is not positive definite (the factor is left
  /// untouched so the caller can fall back to a full refactorisation).
  void append_row(const Vector& cross, double diag);

  /// Removes the first row/column of A (the oldest point of a sliding
  /// observation window): the trailing (n-1)x(n-1) block is rank-1
  /// *updated* with the first column's sub-diagonal entries, in O(n^2).
  /// Throws std::logic_error when the factor has fewer than two rows.
  void drop_first();

  /// Solves L x = b (forward substitution).
  [[nodiscard]] Vector solve_lower(const Vector& b) const;

  /// Solves L^T x = b (back substitution).
  [[nodiscard]] Vector solve_upper(const Vector& b) const;

  /// Solves the full system (L L^T) x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// log|A| = 2 * sum(log L_ii).
  [[nodiscard]] double log_determinant() const noexcept;

  [[nodiscard]] const Matrix& lower() const noexcept { return l_; }
  [[nodiscard]] std::size_t size() const noexcept { return l_.rows(); }

 private:
  explicit Cholesky(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

}  // namespace autra::linalg

#include "linalg/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace autra::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) {
    throw std::out_of_range("Matrix::at: index out of range");
  }
  return (*this)(r, c);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::operator*: shape mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  // ikj loop order keeps the inner loop contiguous in both operands.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  if (cols_ != v.size()) {
    throw std::invalid_argument("Matrix::operator*(Vector): shape mismatch");
  }
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    out[i] = dot(row(i), v);
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::operator-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

void Matrix::append_row(std::span<const double> values) {
  if (data_.empty() && rows_ == 0) {
    cols_ = values.size();
  } else if (values.size() != cols_) {
    throw std::invalid_argument("Matrix::append_row: length mismatch");
  }
  data_.insert(data_.end(), values.begin(), values.end());
  ++rows_;
}

void Matrix::drop_first_row() {
  if (rows_ == 0) {
    throw std::logic_error("Matrix::drop_first_row: empty matrix");
  }
  data_.erase(data_.begin(),
              data_.begin() + static_cast<std::ptrdiff_t>(cols_));
  --rows_;
}

void Matrix::add_diagonal(double v) noexcept {
  const std::size_t n = rows_ < cols_ ? rows_ : cols_;
  for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += v;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("dot: length mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) noexcept {
  double s = 0.0;
  for (double x : a) s += x * x;
  return std::sqrt(s);
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw std::invalid_argument("squared_distance: length mismatch");
  }
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace autra::linalg

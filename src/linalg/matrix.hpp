// Dense row-major matrix and vector types used by the Gaussian-process
// regressor. Deliberately small: the GP training sets in AuTraScale are tens
// of samples, so a cache-friendly plain implementation beats pulling in a
// full BLAS dependency.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace autra::linalg {

/// Column vector backed by std::vector<double>.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// Invariants: data_.size() == rows_ * cols_ at all times.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length. Throws std::invalid_argument otherwise.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws std::out_of_range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// View of row r as a contiguous span.
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> data() noexcept { return data_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return data_; }

  /// Identity matrix of size n.
  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] Matrix transposed() const;

  /// Matrix product this * rhs. Throws std::invalid_argument on shape
  /// mismatch.
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;

  /// Matrix-vector product. Throws std::invalid_argument on shape mismatch.
  [[nodiscard]] Vector operator*(const Vector& v) const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;

  /// Adds `v` to every diagonal element (used for jitter / noise terms).
  void add_diagonal(double v) noexcept;

  /// Appends one row; `values` must match cols() (any length is accepted on
  /// an empty matrix, which then adopts it as the column count). Throws
  /// std::invalid_argument on mismatch. Used by the incremental GP to grow
  /// its observation window in O(cols).
  void append_row(std::span<const double> values);

  /// Removes the first row (the oldest observation of a sliding window).
  /// Throws std::logic_error on an empty matrix.
  void drop_first_row();

  [[nodiscard]] bool operator==(const Matrix& rhs) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Dot product; throws std::invalid_argument on length mismatch.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> a) noexcept;

/// Squared Euclidean distance between two equal-length vectors.
[[nodiscard]] double squared_distance(std::span<const double> a,
                                      std::span<const double> b);

}  // namespace autra::linalg

#include "baselines/dhalion.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autra::baselines {

DhalionPolicy::DhalionPolicy(const sim::Topology& topology,
                             DhalionParams params)
    : topology_(topology), params_(params) {
  if (params_.max_parallelism < 1 || params_.max_iterations < 1 ||
      params_.backpressure_queue_threshold <= 0.0 ||
      params_.min_improvement < 0.0) {
    throw std::invalid_argument("DhalionPolicy: bad parameters");
  }
}

std::vector<std::size_t> DhalionPolicy::diagnose(
    const runtime::JobMetrics& metrics) const {
  std::vector<std::pair<double, std::size_t>> severity;
  for (std::size_t i = 0; i < metrics.operators.size(); ++i) {
    const runtime::OperatorRates& r = metrics.operators[i];
    const double per_instance_queue =
        r.parallelism > 0 ? r.queue_length / r.parallelism : 0.0;
    if (per_instance_queue > params_.backpressure_queue_threshold) {
      severity.emplace_back(per_instance_queue, i);
    }
  }
  std::sort(severity.rbegin(), severity.rend());
  std::vector<std::size_t> out;
  out.reserve(severity.size());
  for (const auto& [_, i] : severity) out.push_back(i);
  return out;
}

std::size_t DhalionPolicy::culprit_of(const runtime::JobMetrics& metrics,
                                      std::size_t jammed) const {
  const auto utilization = [&](std::size_t i) {
    const runtime::OperatorRates& r = metrics.operators[i];
    return r.true_rate_per_instance > 0.0
               ? r.observed_rate_per_instance / r.true_rate_per_instance
               : 0.0;
  };
  // BFS downstream from the jam looking for a saturated operator.
  std::vector<std::size_t> frontier{jammed};
  std::vector<bool> seen(metrics.operators.size(), false);
  while (!frontier.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : frontier) {
      if (seen[i]) continue;
      seen[i] = true;
      if (utilization(i) >= 0.8) return i;
      for (std::size_t d : topology_.downstream(i)) next.push_back(d);
    }
    frontier = std::move(next);
  }
  return jammed;  // Nothing saturated downstream: the jam itself is slow.
}

DhalionResult DhalionPolicy::run(const core::Evaluator& evaluate,
                                 const runtime::Parallelism& initial) const {
  DhalionResult result;
  runtime::Parallelism current = initial;
  runtime::JobMetrics metrics = evaluate(current);
  ++result.iterations;
  std::set<runtime::Parallelism> blacklist;

  while (result.iterations < params_.max_iterations) {
    // The job is also unhealthy when the source cannot keep up (growing
    // Kafka lag shows up as source-side pressure).
    std::vector<std::size_t> bottlenecks = diagnose(metrics);
    if (metrics.lag_growth_per_sec >
        0.01 * std::max(metrics.input_rate, 1.0)) {
      for (std::size_t s : topology_.sources()) {
        if (std::find(bottlenecks.begin(), bottlenecks.end(), s) ==
            bottlenecks.end()) {
          bottlenecks.push_back(s);
        }
      }
    }
    if (bottlenecks.empty()) {
      result.healthy = true;
      break;
    }

    // Resolution: for each jam, scale the culprit (the saturated operator
    // downstream of the backlog) by its observed pressure ratio.
    runtime::Parallelism next = current;
    for (std::size_t b : bottlenecks) {
      const std::size_t target_op = culprit_of(metrics, b);
      const runtime::OperatorRates& r = metrics.operators[target_op];
      // Pressure: what the culprit would have to absorb, including the
      // demand currently piling up upstream (the jam's input rate carried
      // through to it), relative to its current capacity.
      const double capacity =
          r.true_rate_per_instance * std::max(r.parallelism, 1);
      const double demand = std::max(
          r.total_input_rate,
          metrics.operators[b].total_input_rate);
      const double pressure =
          capacity > 0.0 ? demand / capacity : 1.5;
      const int target = static_cast<int>(
          std::ceil(next[target_op] * std::max(pressure, 1.0 + 1e-3)));
      next[target_op] = std::clamp(std::max(target, next[target_op] + 1), 1,
                                   params_.max_parallelism);
    }
    if (next == current || blacklist.contains(next)) {
      break;  // Nothing new to try.
    }

    const runtime::JobMetrics trial = evaluate(next);
    ++result.iterations;
    const double gain = trial.throughput - metrics.throughput;
    // A resolution is useful when it raised throughput OR cleared some of
    // the symptom (fewer backpressured operators).
    const bool symptom_improved =
        diagnose(trial).size() < bottlenecks.size();
    if (!symptom_improved &&
        gain < params_.min_improvement * std::max(metrics.throughput, 1.0)) {
      // No benefit: roll back and blacklist this resolution.
      blacklist.insert(next);
      result.blacklisted.push_back(next);
      // Keep the old configuration and stop — every further resolution the
      // rule engine can produce from the same symptom is the same plan.
      break;
    }
    current = next;
    metrics = trial;
  }

  result.final_config = current;
  result.final_metrics = metrics;
  return result;
}

}  // namespace autra::baselines

#include "baselines/threshold.hpp"

#include <algorithm>
#include <stdexcept>

namespace autra::baselines {

ThresholdPolicy::ThresholdPolicy(ThresholdParams params) : params_(params) {
  if (params_.scale_down_utilization < 0.0 ||
      params_.scale_up_utilization <= params_.scale_down_utilization ||
      params_.scale_up_utilization > 1.0) {
    throw std::invalid_argument("ThresholdPolicy: bad utilisation bounds");
  }
  if (params_.max_parallelism < 1 || params_.max_iterations < 1) {
    throw std::invalid_argument("ThresholdPolicy: bad bounds");
  }
}

runtime::Parallelism ThresholdPolicy::step(const runtime::JobMetrics& metrics) const {
  runtime::Parallelism next = metrics.parallelism;
  for (std::size_t i = 0; i < metrics.operators.size(); ++i) {
    const runtime::OperatorRates& r = metrics.operators[i];
    if (r.true_rate_per_instance <= 0.0) continue;
    const double util =
        r.observed_rate_per_instance / r.true_rate_per_instance;
    if (util > params_.scale_up_utilization) {
      next[i] = std::min(next[i] + 1, params_.max_parallelism);
    } else if (util < params_.scale_down_utilization) {
      next[i] = std::max(next[i] - 1, 1);
    }
  }
  return next;
}

ThresholdResult ThresholdPolicy::run(const core::Evaluator& evaluate,
                                     const runtime::Parallelism& initial) const {
  ThresholdResult result;
  runtime::Parallelism current = initial;
  runtime::JobMetrics metrics;

  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    metrics = evaluate(current);
    ++result.iterations;
    const runtime::Parallelism next = step(metrics);
    if (next == current) {
      result.converged = true;
      break;
    }
    current = next;
  }
  result.final_config = current;
  result.final_metrics = metrics;
  return result;
}

}  // namespace autra::baselines

// Dhalion-style baseline (Floratou et al., VLDB 2017) — the rule-based,
// backpressure-driven policy from the paper's related work (Sec. VI).
//
// The controller watches for symptoms, diagnoses a bottleneck, and applies
// a resolution:
//   - an operator whose input queue keeps growing (backpressure) is the
//     bottleneck; the resolution scales it up proportionally to how far
//     its processing lags its input;
//   - a resolution that produced no throughput improvement is blacklisted
//     and not tried again.
//
// Two published limitations are preserved on purpose, because the paper
// leans on them: backpressure monitoring *cannot produce a scale-down plan*
// for an over-provisioned job, and an externally capped job (the Yahoo
// benchmark's Redis) keeps showing backpressure, driving useless scale-ups
// until everything is blacklisted.
#pragma once

#include <set>
#include <vector>

#include "core/evaluator.hpp"
#include "streamsim/topology.hpp"

namespace autra::baselines {

struct DhalionParams {
  /// Queue length (records per instance) above which an operator is
  /// diagnosed as backpressured.
  double backpressure_queue_threshold = 500.0;
  /// Relative throughput gain below which a resolution is judged useless
  /// and blacklisted.
  double min_improvement = 0.02;
  int max_parallelism = 1;
  int max_iterations = 15;
};

struct DhalionResult {
  runtime::Parallelism final_config;
  runtime::JobMetrics final_metrics;
  int iterations = 0;
  bool healthy = false;  ///< No symptom at termination.
  /// Resolutions that were rolled back and blacklisted.
  std::vector<runtime::Parallelism> blacklisted;
};

class DhalionPolicy {
 public:
  DhalionPolicy(const sim::Topology& topology, DhalionParams params);

  [[nodiscard]] DhalionResult run(const core::Evaluator& evaluate,
                                  const runtime::Parallelism& initial) const;

  /// Diagnosis step (exposed for tests): indices of backpressured
  /// operators (jammed input queues), most severe first.
  [[nodiscard]] std::vector<std::size_t> diagnose(
      const runtime::JobMetrics& metrics) const;

  /// Resolution target for a jammed operator: the backlog sits in front of
  /// the operator that is *blocked*, while the slow operator causing it
  /// sits downstream running at full utilisation. Walks downstream from
  /// `jammed` to the first operator with utilisation >= 0.8; falls back to
  /// the jammed operator itself when the whole chain is merely slow.
  [[nodiscard]] std::size_t culprit_of(const runtime::JobMetrics& metrics,
                                       std::size_t jammed) const;

 private:
  const sim::Topology& topology_;
  DhalionParams params_;
};

}  // namespace autra::baselines

// Utilisation-threshold baseline (the "threshold-based policy" family from
// the paper's related-work section, Sec. VI): a purely reactive controller
// that scales an operator up when its instances look saturated and down
// when they look idle. Included as an ablation reference point — it has no
// model, so it oscillates on non-linear jobs and cannot target a latency.
#pragma once

#include <vector>

#include "core/evaluator.hpp"

namespace autra::baselines {

struct ThresholdParams {
  /// Utilisation (observed rate / true rate) above which an operator gains
  /// an instance.
  double scale_up_utilization = 0.85;
  /// Utilisation below which an operator loses an instance.
  double scale_down_utilization = 0.30;
  int max_parallelism = 1;
  int max_iterations = 20;
};

struct ThresholdResult {
  runtime::Parallelism final_config;
  runtime::JobMetrics final_metrics;
  int iterations = 0;
  bool converged = false;  ///< A full pass changed nothing.
};

class ThresholdPolicy {
 public:
  explicit ThresholdPolicy(ThresholdParams params);

  [[nodiscard]] ThresholdResult run(const core::Evaluator& evaluate,
                                    const runtime::Parallelism& initial) const;

  /// One reactive step (exposed for testing).
  [[nodiscard]] runtime::Parallelism step(const runtime::JobMetrics& metrics) const;

 private:
  ThresholdParams params_;
};

}  // namespace autra::baselines

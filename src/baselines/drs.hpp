// DRS baseline (Fu et al., ICDCS 2015 / TPDS 2017) — the queueing-theory
// scaling policy AuTraScale compares against for latency guarantees.
//
// DRS models the job as a Jackson open queueing network: every operator is
// an M/M/k queue whose expected sojourn time follows Erlang-C, and the
// job's expected latency is the sum along the dataflow path. Allocation is
// greedy: start from the minimal stable configuration, then repeatedly add
// one instance to the operator whose extra instance most reduces the
// predicted latency, until the prediction meets the target.
//
// Its published weakness — the one the paper's evaluation exercises — is
// that the service rates feeding the model are measured under the *current*
// configuration and interference, so predictions are wrong after the
// configuration changes. Following Sec. V-A, the policy runs with either
// the observed processing rate or the true processing rate as the service
// rate ("DRS-observed" / "DRS-true").
#pragma once

#include <vector>

#include "core/evaluator.hpp"
#include "streamsim/topology.hpp"

namespace autra::baselines {

enum class RateMetric {
  kTrueRate,      ///< Eq. 2 busy-time rate.
  kObservedRate,  ///< Wall-clock rate (includes idle/blocked time).
};

/// Which queueing approximation predicts per-operator sojourn times.
enum class QueueModel {
  /// M/M/k with exact Erlang-C (Poisson arrivals, exponential service).
  kErlangC,
  /// G/G/k via the Allen-Cunneen/Kingman approximation: the M/M/k wait
  /// scaled by (ca^2 + cs^2)/2, for squared coefficients of variation of
  /// inter-arrival and service times. The paper's related work (Sec. VI)
  /// cites Kingman's formula as the other queueing-model family used by
  /// latency-predicting auto-scalers.
  kKingman,
};

struct DrsParams {
  double target_latency_ms = 0.0;
  /// Target throughput for propagating arrival rates; <= 0 means the
  /// measured input data rate.
  double target_throughput = 0.0;
  RateMetric rate_metric = RateMetric::kTrueRate;
  QueueModel queue_model = QueueModel::kErlangC;
  /// Squared coefficients of variation for kKingman (1, 1 degenerates to
  /// Erlang-C's waiting time).
  double arrival_scv = 1.0;
  double service_scv = 1.0;
  int max_parallelism = 1;
  /// Outer measure-model-allocate iterations.
  int max_iterations = 8;
};

struct DrsResult {
  runtime::Parallelism final_config;
  runtime::JobMetrics final_metrics;
  int iterations = 0;
  bool converged = false;            ///< Allocation stopped changing.
  bool prediction_feasible = false;  ///< Model predicted target met.
  /// The model's own latency prediction for the final configuration, for
  /// comparing model error against the measured value.
  double predicted_latency_ms = 0.0;
};

/// Expected sojourn time (waiting + service) of an M/M/k queue, seconds.
/// `arrival_rate` and `service_rate` are per-second; `servers` >= 1.
/// Returns +inf when the queue is unstable (rho >= 1).
[[nodiscard]] double mmk_sojourn_time(double arrival_rate,
                                      double service_rate, int servers);

/// G/G/k sojourn time via Allen-Cunneen: the M/M/k waiting time scaled by
/// (arrival_scv + service_scv) / 2, plus the service time. Degenerates to
/// mmk_sojourn_time at scv = 1, 1. Returns +inf when unstable.
[[nodiscard]] double ggk_sojourn_time(double arrival_rate,
                                      double service_rate, int servers,
                                      double arrival_scv,
                                      double service_scv);

class DrsPolicy {
 public:
  DrsPolicy(const sim::Topology& topology, DrsParams params);

  [[nodiscard]] DrsResult run(const core::Evaluator& evaluate,
                              const runtime::Parallelism& initial) const;

  /// The greedy allocation step given measured metrics (exposed for
  /// testing): picks the configuration the queueing model believes meets
  /// the latency target with the fewest instances.
  [[nodiscard]] runtime::Parallelism allocate(const runtime::JobMetrics& metrics,
                                          double* predicted_latency_ms =
                                              nullptr) const;

 private:
  const sim::Topology& topology_;
  DrsParams params_;
};

}  // namespace autra::baselines

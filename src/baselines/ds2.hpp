// DS2 baseline (Kalavri et al., OSDI 2018) — the dataflow-model scaling
// policy AuTraScale compares against.
//
// DS2 measures the true processing rate of every operator instance and sets
// each operator's parallelism to ceil(target input rate / true rate per
// instance), propagating rates through the DAG — the same Eq. 3 core
// AuTraScale's throughput optimiser borrows, but with DS2's two published
// limitations kept intact:
//
//   * the linear-scaling assumption: no awareness that added instances
//     interfere with each other (its convergence loop just repeats the rule
//     until the throughput target is met or the recommendation stops
//     changing *because measurements agree*, not because of an explicit
//     external-cap termination — on an externally capped job it keeps
//     oscillating until the iteration bound);
//   * no latency objective: latency is only an incidental beneficiary.
//
// Offline mode (used in the paper's Fig. 8 comparison) performs the
// measure-scale loop from a given starting configuration and returns the
// final configuration once the throughput target is met or the iteration
// budget is exhausted.
#pragma once

#include "core/evaluator.hpp"
#include "core/throughput_opt.hpp"
#include "streamsim/topology.hpp"

namespace autra::baselines {

struct Ds2Params {
  /// Target throughput; <= 0 means "the input data rate".
  double target_throughput = 0.0;
  double tolerance = 0.03;
  int max_iterations = 12;
  int max_parallelism = 1;
};

struct Ds2Result {
  runtime::Parallelism final_config;
  runtime::JobMetrics final_metrics;
  int iterations = 0;
  bool reached_target = false;
  /// True when the iteration budget ran out without the target being met —
  /// DS2's failure mode on externally capped jobs (paper Sec. III-C).
  bool hit_iteration_bound = false;
  std::vector<core::ThroughputIteration> trajectory;
};

class Ds2Policy {
 public:
  Ds2Policy(const sim::Topology& topology, Ds2Params params);

  /// Runs the DS2 convergence loop from `initial`.
  [[nodiscard]] Ds2Result run(const core::Evaluator& evaluate,
                              const runtime::Parallelism& initial) const;

 private:
  const sim::Topology& topology_;
  Ds2Params params_;
};

}  // namespace autra::baselines

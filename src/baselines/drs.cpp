#include "baselines/drs.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace autra::baselines {

namespace {
constexpr double kEps = 1e-9;
}

double mmk_sojourn_time(double arrival_rate, double service_rate,
                        int servers) {
  if (service_rate <= 0.0 || servers < 1) {
    throw std::invalid_argument("mmk_sojourn_time: bad queue parameters");
  }
  if (arrival_rate <= kEps) return 1.0 / service_rate;
  const double a = arrival_rate / service_rate;  // offered load
  const double k = static_cast<double>(servers);
  if (a >= k - kEps) return std::numeric_limits<double>::infinity();

  // Erlang-C via the stable iterative form:
  //   B(0) = 1; B(n) = a*B(n-1) / (n + a*B(n-1))   (Erlang-B recursion)
  //   C = B(k) / (1 - rho + rho*B(k))
  double b = 1.0;
  for (int n = 1; n <= servers; ++n) {
    b = a * b / (static_cast<double>(n) + a * b);
  }
  const double rho = a / k;
  const double c = b / (1.0 - rho + rho * b);
  const double wait = c / (k * service_rate - arrival_rate);
  return wait + 1.0 / service_rate;
}

double ggk_sojourn_time(double arrival_rate, double service_rate, int servers,
                        double arrival_scv, double service_scv) {
  if (arrival_scv < 0.0 || service_scv < 0.0) {
    throw std::invalid_argument("ggk_sojourn_time: negative scv");
  }
  const double mmk = mmk_sojourn_time(arrival_rate, service_rate, servers);
  if (std::isinf(mmk)) return mmk;
  const double service = 1.0 / service_rate;
  const double wait = mmk - service;
  return wait * 0.5 * (arrival_scv + service_scv) + service;
}

DrsPolicy::DrsPolicy(const sim::Topology& topology, DrsParams params)
    : topology_(topology), params_(params) {
  if (params_.target_latency_ms <= 0.0) {
    throw std::invalid_argument("DrsPolicy: no latency target");
  }
  if (params_.max_parallelism < 1 || params_.max_iterations < 1) {
    throw std::invalid_argument("DrsPolicy: bad bounds");
  }
}

runtime::Parallelism DrsPolicy::allocate(const runtime::JobMetrics& metrics,
                                     double* predicted_latency_ms) const {
  const std::size_t n = topology_.num_operators();
  if (metrics.operators.size() != n) {
    throw std::invalid_argument("DrsPolicy::allocate: metrics mismatch");
  }

  // Arrival rates: the target input rate propagated through measured
  // selectivities (same DAG propagation DS2 uses).
  const double target = params_.target_throughput > 0.0
                            ? params_.target_throughput
                            : metrics.input_rate;
  std::vector<double> arrival(n, 0.0);
  std::vector<double> service(n, 0.0);
  for (std::size_t i : topology_.topological_order()) {
    const runtime::OperatorRates& r = metrics.operators[i];
    if (topology_.op(i).kind == sim::OperatorKind::kSource) {
      arrival[i] = target;
    }
    double selectivity = topology_.op(i).selectivity;
    if (r.total_input_rate > kEps) {
      selectivity = r.total_output_rate / r.total_input_rate;
    }
    for (std::size_t d : topology_.downstream(i)) {
      arrival[d] += arrival[i] * selectivity;
    }
    service[i] = params_.rate_metric == RateMetric::kTrueRate
                     ? r.true_rate_per_instance
                     : r.observed_rate_per_instance;
    // An idle observed rate can be ~0; clamp to something positive so the
    // model stays defined (this is exactly why observed-rate DRS
    // over-provisions).
    service[i] = std::max(service[i], 1.0);
  }

  // Minimal stable configuration.
  runtime::Parallelism config(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    const int k = static_cast<int>(std::floor(arrival[i] / service[i])) + 1;
    config[i] = std::clamp(k, 1, params_.max_parallelism);
  }

  const auto sojourn = [&](double lambda, double mu, int k) {
    return params_.queue_model == QueueModel::kKingman
               ? ggk_sojourn_time(lambda, mu, k, params_.arrival_scv,
                                  params_.service_scv)
               : mmk_sojourn_time(lambda, mu, k);
  };
  const auto total_latency = [&](const runtime::Parallelism& c) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += sojourn(arrival[i], service[i], c[i]);
    }
    return sum;
  };

  // Greedy: add the instance with the largest marginal latency reduction.
  const double target_sec = params_.target_latency_ms / 1000.0;
  double current_lat = total_latency(config);
  while (current_lat > target_sec) {
    std::size_t best_op = n;
    double best_lat = current_lat;
    for (std::size_t i = 0; i < n; ++i) {
      if (config[i] >= params_.max_parallelism) continue;
      ++config[i];
      const double lat = total_latency(config);
      --config[i];
      if (lat < best_lat - kEps) {
        best_lat = lat;
        best_op = i;
      }
    }
    if (best_op == n) break;  // No further improvement possible.
    ++config[best_op];
    current_lat = best_lat;
  }

  if (predicted_latency_ms != nullptr) {
    *predicted_latency_ms = current_lat * 1000.0;
  }
  return config;
}

DrsResult DrsPolicy::run(const core::Evaluator& evaluate,
                         const runtime::Parallelism& initial) const {
  if (initial.size() != topology_.num_operators()) {
    throw std::invalid_argument("DrsPolicy::run: initial config mismatch");
  }
  DrsResult result;
  runtime::Parallelism current = initial;
  runtime::JobMetrics metrics;

  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    metrics = evaluate(current);
    ++result.iterations;

    double predicted = 0.0;
    const runtime::Parallelism next = allocate(metrics, &predicted);
    result.predicted_latency_ms = predicted;
    result.prediction_feasible =
        predicted <= params_.target_latency_ms + kEps;

    if (next == current) {
      result.converged = true;
      break;
    }
    current = next;
  }

  result.final_config = current;
  result.final_metrics =
      result.converged ? metrics : evaluate(current);
  if (!result.converged) ++result.iterations;
  return result;
}

}  // namespace autra::baselines

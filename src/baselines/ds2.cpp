#include "baselines/ds2.hpp"

#include <stdexcept>

namespace autra::baselines {

Ds2Policy::Ds2Policy(const sim::Topology& topology, Ds2Params params)
    : topology_(topology), params_(params) {
  if (params_.max_iterations < 1 || params_.max_parallelism < 1) {
    throw std::invalid_argument("Ds2Policy: bad parameters");
  }
}

Ds2Result Ds2Policy::run(const core::Evaluator& evaluate,
                         const runtime::Parallelism& initial) const {
  if (initial.size() != topology_.num_operators()) {
    throw std::invalid_argument("Ds2Policy: initial config size mismatch");
  }
  Ds2Result result;
  runtime::Parallelism current = initial;

  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    runtime::JobMetrics m = evaluate(current);
    ++result.iterations;

    const double target = params_.target_throughput > 0.0
                              ? params_.target_throughput
                              : m.input_rate;
    const runtime::Parallelism rec = core::scale_step(
        topology_, m, target, params_.max_parallelism);
    result.trajectory.push_back({current, std::move(m), rec});

    const double achieved = result.trajectory.back().metrics.throughput;
    if (achieved + target * params_.tolerance >= target) {
      result.reached_target = true;
      result.final_config = current;
      result.final_metrics = result.trajectory.back().metrics;
      return result;
    }
    if (rec == current) {
      // Measurements reproduced the same configuration; DS2 considers the
      // system converged (it has no notion of an external cap, so on a
      // capped job this is reached only when the measured true rates are
      // stable).
      result.final_config = current;
      result.final_metrics = result.trajectory.back().metrics;
      return result;
    }
    current = rec;
  }

  result.hit_iteration_bound = true;
  result.final_config = result.trajectory.back().config;
  result.final_metrics = result.trajectory.back().metrics;
  return result;
}

}  // namespace autra::baselines

#include "bayesopt/search_space.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace autra::bo {

SearchSpace::SearchSpace(Config lower, Config upper)
    : lower_(std::move(lower)), upper_(std::move(upper)) {
  if (lower_.empty() || lower_.size() != upper_.size()) {
    throw std::invalid_argument("SearchSpace: bad bounds");
  }
  for (std::size_t i = 0; i < lower_.size(); ++i) {
    if (lower_[i] > upper_[i]) {
      throw std::invalid_argument("SearchSpace: lower > upper");
    }
  }
}

SearchSpace::SearchSpace(std::size_t dims, int lo, int hi)
    : SearchSpace(Config(dims, lo), Config(dims, hi)) {}

bool SearchSpace::contains(const Config& c) const noexcept {
  if (c.size() != dims()) return false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c[i] < lower_[i] || c[i] > upper_[i]) return false;
  }
  return true;
}

Config SearchSpace::clamp(Config c) const noexcept {
  c.resize(dims(), 0);
  for (std::size_t i = 0; i < c.size(); ++i) {
    c[i] = std::clamp(c[i], lower_[i], upper_[i]);
  }
  return c;
}

std::uint64_t SearchSpace::cardinality() const noexcept {
  std::uint64_t n = 1;
  for (std::size_t i = 0; i < dims(); ++i) {
    const std::uint64_t w = static_cast<std::uint64_t>(upper_[i] - lower_[i]) + 1;
    if (n > std::numeric_limits<std::uint64_t>::max() / w) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    n *= w;
  }
  return n;
}

std::vector<Config> SearchSpace::enumerate(std::uint64_t max_points) const {
  const std::uint64_t n = cardinality();
  if (n > max_points) {
    throw std::length_error("SearchSpace::enumerate: space too large");
  }
  std::vector<Config> out;
  out.reserve(static_cast<std::size_t>(n));
  Config c = lower_;
  while (true) {
    out.push_back(c);
    // Odometer increment, last dimension fastest.
    std::size_t i = dims();
    while (i-- > 0) {
      if (c[i] < upper_[i]) {
        ++c[i];
        std::fill(c.begin() + static_cast<std::ptrdiff_t>(i) + 1, c.end(), 0);
        for (std::size_t j = i + 1; j < dims(); ++j) c[j] = lower_[j];
        break;
      }
      if (i == 0) return out;
    }
  }
}

std::vector<Config> SearchSpace::sample(std::size_t n,
                                        std::mt19937_64& rng) const {
  std::vector<Config> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    Config c(dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      std::uniform_int_distribution<int> dist(lower_[i], upper_[i]);
      c[i] = dist(rng);
    }
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Config> SearchSpace::candidates(std::size_t budget,
                                            std::mt19937_64& rng) const {
  if (cardinality() <= budget) return enumerate(budget);
  std::set<Config> unique;
  // Always include the two extreme corners so the acquisition maximiser can
  // reach the boundary of the space even with a small random budget.
  unique.insert(lower_);
  unique.insert(upper_);
  for (const Config& c : sample(budget, rng)) unique.insert(c);
  return {unique.begin(), unique.end()};
}

std::vector<Config> SearchSpace::local_candidates(const Config& center,
                                                  int radius) const {
  const Config c = clamp(center);
  std::set<Config> unique;
  // Single-coordinate moves.
  for (std::size_t i = 0; i < dims(); ++i) {
    for (int d = 1; d <= radius; ++d) {
      for (int sign : {-1, 1}) {
        Config m = c;
        m[i] += sign * d;
        if (contains(m)) unique.insert(std::move(m));
      }
    }
  }
  // Coordinate-pair moves (+-1).
  for (std::size_t i = 0; i < dims(); ++i) {
    for (std::size_t j = i + 1; j < dims(); ++j) {
      for (int si : {-1, 1}) {
        for (int sj : {-1, 1}) {
          Config m = c;
          m[i] += si;
          m[j] += sj;
          if (contains(m)) unique.insert(std::move(m));
        }
      }
    }
  }
  // Uniform +-1 across all coordinates.
  for (int sign : {-1, 1}) {
    Config m = c;
    for (int& k : m) k += sign;
    if (contains(m)) unique.insert(std::move(m));
  }
  return {unique.begin(), unique.end()};
}

std::vector<Config> SearchSpace::axis_candidates(const Config& center,
                                                 int levels) const {
  const Config c = clamp(center);
  std::set<Config> unique;
  for (std::size_t i = 0; i < dims(); ++i) {
    const int lo = lower_[i];
    const int hi = upper_[i];
    const int steps = std::max(1, levels - 1);
    for (int s = 0; s < levels; ++s) {
      Config m = c;
      m[i] = lo + static_cast<int>(std::llround(
                      static_cast<double>(hi - lo) * s / steps));
      if (m != c) unique.insert(std::move(m));
    }
  }
  return {unique.begin(), unique.end()};
}

std::vector<double> to_features(const Config& c) {
  return {c.begin(), c.end()};
}

}  // namespace autra::bo

// Generic discrete Bayesian optimisation loop: a Gaussian-process surrogate
// over an integer search space with Expected Improvement acquisition.
//
// AuTraScale's Algorithm 1 drives this loop with its benefit scoring
// function; the loop itself is policy-free (observe / suggest / best).
#pragma once

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "bayesopt/search_space.hpp"
#include "gp/acquisition.hpp"
#include "gp/gp_regressor.hpp"

namespace autra::bo {

struct BayesOptConfig {
  gp::GpConfig gp;
  /// Exploration parameter xi of the EI acquisition (paper Eq. 6).
  double xi = 0.01;
  /// Max candidate points evaluated per suggest() call.
  std::size_t candidate_budget = 4096;
  std::uint64_t seed = 42;
  /// When true, new observations reach the surrogate through
  /// GpRegressor::observe() (O(n^2) cached-factor extension) instead of a
  /// from-scratch fit per suggest(). Off by default: the incremental factor
  /// differs from a refit in the low bits, which would perturb committed
  /// golden decision streams.
  bool incremental = false;
};

/// One evaluated sample.
struct Observation {
  Config config;
  double score = 0.0;
};

/// How suggest() arrived at its proposal. Callers that terminate on a
/// repeated suggestion can branch on this instead of re-deriving the
/// optimiser's internal state from the returned config.
enum class SuggestionSource {
  kAcquisition,            ///< Unobserved candidate maximising EI.
  kBestObservedFallback,   ///< Model fully exploited; incumbent returned.
  kRandomBootstrap,        ///< < 2 observations; random exploration.
};

[[nodiscard]] const char* to_string(SuggestionSource source) noexcept;

/// Everything needed to reconstruct a BayesOpt mid-run in a fresh process
/// such that its future suggest()/observe() trajectory is bit-identical to
/// the uninterrupted original: observations, the surrogate's fitted state,
/// and the acquisition RNG stream position (serialised via the standard
/// mt19937_64 stream operators).
struct BayesOptSnapshot {
  std::vector<Observation> observations;
  bool surrogate_fitted = false;
  gp::GpSnapshot surrogate;  ///< Valid only when surrogate_fitted.
  std::size_t surrogate_observations = 0;
  std::string rng_state;
  bool dirty = true;
  bool needs_full_refit = false;
};

/// The result of one acquisition step.
struct Suggestion {
  Config config;
  /// EI of `config` under the current surrogate. 0 for the fallback and
  /// bootstrap sources (no surrogate was consulted, or nothing improves).
  double expected_improvement = 0.0;
  SuggestionSource source = SuggestionSource::kAcquisition;
};

class BayesOpt {
 public:
  BayesOpt(SearchSpace space, BayesOptConfig config = {});

  /// Records an evaluated configuration. Re-observing a config replaces the
  /// stored score (the latest measurement wins). Throws
  /// std::invalid_argument if the config is outside the space.
  void observe(const Config& config, double score);

  /// Fits the surrogate on all observations and returns the unobserved
  /// candidate with maximal expected improvement (source kAcquisition).
  /// Falls back to the best *observed* point when every candidate has
  /// EI == 0 (kBestObservedFallback), and to a random unobserved point when
  /// there are fewer than two observations (kRandomBootstrap). Throws
  /// std::logic_error with zero observations. EI scoring across the
  /// candidate batch is parallelised per config_.gp.threads; the returned
  /// suggestion is bit-identical at any thread count.
  [[nodiscard]] Suggestion suggest();

  /// Best observation so far; nullopt before any observe().
  [[nodiscard]] std::optional<Observation> best() const;

  /// Posterior prediction of the current surrogate at `config`.
  /// Refits lazily if observations changed since the last fit.
  [[nodiscard]] gp::Prediction predict(const Config& config);

  /// Captures the optimiser's full mutable state; restore() on a BayesOpt
  /// built over the same space and config reproduces the future decision
  /// stream bit-for-bit (see BayesOptSnapshot).
  [[nodiscard]] BayesOptSnapshot snapshot() const;

  /// Reinstates a snapshot. Throws std::invalid_argument when an
  /// observation lies outside this optimiser's space or the RNG state
  /// string does not parse.
  void restore(const BayesOptSnapshot& snap);

  [[nodiscard]] const std::vector<Observation>& observations() const noexcept {
    return observations_;
  }
  [[nodiscard]] const SearchSpace& space() const noexcept { return space_; }
  [[nodiscard]] const gp::GpRegressor& surrogate() const noexcept {
    return surrogate_;
  }

 private:
  void refit_if_dirty();

  SearchSpace space_;
  BayesOptConfig config_;
  gp::GpRegressor surrogate_;
  std::vector<Observation> observations_;
  /// How many observations_ (a prefix) the surrogate was trained on; the
  /// incremental path feeds only the suffix through observe().
  std::size_t surrogate_obs_ = 0;
  /// Set when an existing observation's score was replaced — a rewrite the
  /// factor extension cannot express, so the next refit must be full.
  bool needs_full_refit_ = false;
  std::mt19937_64 rng_;
  bool dirty_ = true;
};

}  // namespace autra::bo

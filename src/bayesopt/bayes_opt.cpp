#include "bayesopt/bayes_opt.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "exec/exec.hpp"

namespace autra::bo {

const char* to_string(SuggestionSource source) noexcept {
  switch (source) {
    case SuggestionSource::kAcquisition:
      return "acquisition";
    case SuggestionSource::kBestObservedFallback:
      return "best_observed_fallback";
    case SuggestionSource::kRandomBootstrap:
      return "random_bootstrap";
  }
  return "unknown";
}

BayesOpt::BayesOpt(SearchSpace space, BayesOptConfig config)
    : space_(std::move(space)),
      config_(std::move(config)),
      surrogate_(config_.gp),
      rng_(config_.seed) {}

void BayesOpt::observe(const Config& config, double score) {
  if (!space_.contains(config)) {
    throw std::invalid_argument("BayesOpt::observe: config outside space");
  }
  for (Observation& o : observations_) {
    if (o.config == config) {
      o.score = score;
      // A score rewrite on an already-incorporated point cannot be
      // expressed as a factor extension; force the next refit to be full.
      needs_full_refit_ = true;
      dirty_ = true;
      return;
    }
  }
  observations_.push_back({config, score});
  dirty_ = true;
}

void BayesOpt::refit_if_dirty() {
  if (!dirty_) return;
  if (observations_.empty()) {
    throw std::logic_error("BayesOpt: no observations");
  }
  if (config_.incremental && !needs_full_refit_ && surrogate_.is_fitted() &&
      surrogate_obs_ > 0 && observations_.size() > surrogate_obs_) {
    // Feed only the new suffix through the O(n^2) incremental path; the
    // regressor itself falls back to a full fit when it must (point outside
    // the normalisation box, jittered factor, reoptimisation cadence).
    for (std::size_t i = surrogate_obs_; i < observations_.size(); ++i) {
      surrogate_.observe(to_features(observations_[i].config),
                         observations_[i].score);
    }
    surrogate_obs_ = observations_.size();
    dirty_ = false;
    return;
  }
  linalg::Matrix x(observations_.size(), space_.dims());
  linalg::Vector y(observations_.size());
  for (std::size_t i = 0; i < observations_.size(); ++i) {
    const auto f = to_features(observations_[i].config);
    std::copy(f.begin(), f.end(), x.row(i).begin());
    y[i] = observations_[i].score;
  }
  surrogate_.fit(x, y);
  surrogate_obs_ = observations_.size();
  needs_full_refit_ = false;
  dirty_ = false;
}

BayesOptSnapshot BayesOpt::snapshot() const {
  BayesOptSnapshot s;
  s.observations = observations_;
  s.surrogate_fitted = surrogate_.is_fitted();
  if (s.surrogate_fitted) s.surrogate = surrogate_.snapshot();
  s.surrogate_observations = surrogate_obs_;
  std::ostringstream rng_out;
  rng_out << rng_;
  s.rng_state = rng_out.str();
  s.dirty = dirty_;
  s.needs_full_refit = needs_full_refit_;
  return s;
}

void BayesOpt::restore(const BayesOptSnapshot& snap) {
  for (const Observation& o : snap.observations) {
    if (!space_.contains(o.config)) {
      throw std::invalid_argument(
          "BayesOpt::restore: observation outside space");
    }
  }
  std::mt19937_64 rng;
  std::istringstream rng_in(snap.rng_state);
  rng_in >> rng;
  if (rng_in.fail()) {
    throw std::invalid_argument("BayesOpt::restore: malformed RNG state");
  }
  observations_ = snap.observations;
  surrogate_ = gp::GpRegressor(config_.gp);
  if (snap.surrogate_fitted) surrogate_.restore(snap.surrogate);
  surrogate_obs_ = snap.surrogate_observations;
  rng_ = rng;
  dirty_ = snap.dirty;
  needs_full_refit_ = snap.needs_full_refit;
}

Suggestion BayesOpt::suggest() {
  if (observations_.empty()) {
    throw std::logic_error("BayesOpt::suggest: observe at least one sample");
  }

  std::set<Config> seen;
  for (const Observation& o : observations_) seen.insert(o.config);

  std::vector<Config> cands =
      space_.candidates(config_.candidate_budget, rng_);
  // Random candidates almost never land next to the points that matter in
  // a large space; add local moves around the incumbent, the best few
  // observations, and the lower corner (the base configuration).
  const auto add_local = [&](const Config& center) {
    for (Config& c : space_.local_candidates(center)) {
      cands.push_back(std::move(c));
    }
    for (Config& c : space_.axis_candidates(center)) {
      cands.push_back(std::move(c));
    }
  };
  add_local(space_.lower());
  std::vector<const Observation*> ranked;
  ranked.reserve(observations_.size());
  for (const Observation& o : observations_) ranked.push_back(&o);
  std::sort(ranked.begin(), ranked.end(),
            [](const Observation* a, const Observation* b) {
              return a->score > b->score;
            });
  for (std::size_t i = 0; i < ranked.size() && i < 3; ++i) {
    add_local(ranked[i]->config);
  }

  if (observations_.size() < 2) {
    // Not enough data for a meaningful surrogate: explore randomly.
    std::vector<Config> fresh;
    for (const Config& c : cands) {
      if (!seen.contains(c)) fresh.push_back(c);
    }
    if (fresh.empty()) {
      return {observations_.front().config, 0.0,
              SuggestionSource::kBestObservedFallback};
    }
    std::uniform_int_distribution<std::size_t> dist(0, fresh.size() - 1);
    return {fresh[dist(rng_)], 0.0, SuggestionSource::kRandomBootstrap};
  }

  refit_if_dirty();
  const double incumbent = best()->score;

  // Score the whole candidate batch in parallel (each EI is an independent
  // GP posterior read), then pick the winner with a serial scan in candidate
  // order so the suggestion is identical at any thread count. Seen configs
  // score nullopt and never participate in the selection.
  const exec::ExecContext ctx(config_.gp.threads);
  const std::vector<std::optional<double>> eis = exec::parallel_map(
      ctx, cands.size(), [&](std::size_t i) -> std::optional<double> {
        if (seen.contains(cands[i])) return std::nullopt;
        const gp::Prediction p = surrogate_.predict(to_features(cands[i]));
        return gp::expected_improvement(p, incumbent, config_.xi);
      });

  double best_ei = 0.0;
  std::optional<std::size_t> best_idx;
  for (std::size_t i = 0; i < cands.size(); ++i) {
    if (!eis[i]) continue;
    if (!best_idx || *eis[i] > best_ei) {
      best_ei = *eis[i];
      best_idx = i;
    }
  }
  if (!best_idx || best_ei <= 0.0) {
    // Model fully exploited (or space exhausted): return the incumbent so
    // the caller's repeated-config termination condition can fire.
    return {best()->config, 0.0, SuggestionSource::kBestObservedFallback};
  }
  return {cands[*best_idx], best_ei, SuggestionSource::kAcquisition};
}

std::optional<Observation> BayesOpt::best() const {
  if (observations_.empty()) return std::nullopt;
  return *std::max_element(
      observations_.begin(), observations_.end(),
      [](const Observation& a, const Observation& b) { return a.score < b.score; });
}

gp::Prediction BayesOpt::predict(const Config& config) {
  refit_if_dirty();
  return surrogate_.predict(to_features(config));
}

}  // namespace autra::bo

// Discrete integer search space for parallelism configurations.
//
// In AuTraScale the BO search space is the integer box
// [k'_i, P_max]^N (paper Sec. III-D): per-operator parallelism bounded below
// by the throughput-optimal configuration and above by the maximum
// parallelism the cluster resources allow.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace autra::bo {

/// A point in the search space: one parallelism per operator.
using Config = std::vector<int>;

/// Integer box [lower_i, upper_i] per dimension.
class SearchSpace {
 public:
  /// Throws std::invalid_argument if bounds are empty, of different length,
  /// or any lower bound exceeds its upper bound.
  SearchSpace(Config lower, Config upper);

  /// Uniform box [lo, hi]^dims.
  SearchSpace(std::size_t dims, int lo, int hi);

  [[nodiscard]] std::size_t dims() const noexcept { return lower_.size(); }
  [[nodiscard]] const Config& lower() const noexcept { return lower_; }
  [[nodiscard]] const Config& upper() const noexcept { return upper_; }

  [[nodiscard]] bool contains(const Config& c) const noexcept;

  /// Clamps each coordinate into its bounds.
  [[nodiscard]] Config clamp(Config c) const noexcept;

  /// Total number of points, saturating at max uint64 on overflow.
  [[nodiscard]] std::uint64_t cardinality() const noexcept;

  /// All points of the space in lexicographic order. Throws
  /// std::length_error if cardinality() exceeds `max_points`.
  [[nodiscard]] std::vector<Config> enumerate(
      std::uint64_t max_points = 200000) const;

  /// `n` points sampled uniformly at random (with replacement).
  [[nodiscard]] std::vector<Config> sample(std::size_t n,
                                           std::mt19937_64& rng) const;

  /// Candidate set for acquisition maximisation: full enumeration when the
  /// space is small, otherwise `budget` random samples plus the corners of
  /// the box. Duplicates are removed.
  [[nodiscard]] std::vector<Config> candidates(std::size_t budget,
                                               std::mt19937_64& rng) const;

  /// Local moves around `center`, clamped into the space: every single
  /// coordinate changed by ±1..±radius, every coordinate pair changed by
  /// ±1, and the all-coordinates ±1 steps. In a large discrete space
  /// random candidates almost never fall next to the incumbent, yet the
  /// optimum of a benefit surface usually does — mixing these in is what
  /// makes EI able to fine-tune a configuration.
  [[nodiscard]] std::vector<Config> local_candidates(const Config& center,
                                                     int radius = 2) const;

  /// Axis sweeps through `center`: for every dimension, `levels` values
  /// spread over [lower_i, upper_i] with the other coordinates fixed at
  /// (the clamped) center. These cover the coordinate profiles between the
  /// base configuration and the incumbent — where per-operator benefit
  /// surfaces put their optima — which neither random sampling nor +-2
  /// local moves reach in a large space.
  [[nodiscard]] std::vector<Config> axis_candidates(const Config& center,
                                                    int levels = 8) const;

 private:
  Config lower_;
  Config upper_;
};

/// Converts an integer config to the double feature vector the GP consumes.
[[nodiscard]] std::vector<double> to_features(const Config& c);

}  // namespace autra::bo

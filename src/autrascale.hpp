// Umbrella header: the whole AuTraScale public API in one include.
//
//   #include "autrascale.hpp"
//
// Layers (each usable on its own):
//   exec      — shared thread pool + deterministic parallel primitives
//   linalg    — dense matrices + Cholesky (the GP's numerical core)
//   gp        — kernels, GP regression, Expected Improvement
//   bo        — discrete search space + generic Bayesian-optimisation loop
//   sim       — the streaming-system simulator (topology, cluster, engine,
//               Kafka/Redis stand-ins, job runner, chaining)
//   workloads — the paper's evaluation jobs
//   core      — AuTraScale: throughput optimisation, scoring, Algorithm 1,
//               Algorithm 2, rate-aware extension, model persistence, MAPE
//               controller
//   baselines — DS2, DRS, threshold, Dhalion
#pragma once

#include "exec/exec.hpp"

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

#include "gp/acquisition.hpp"
#include "gp/gp_regressor.hpp"
#include "gp/kernel.hpp"
#include "gp/normal.hpp"

#include "bayesopt/bayes_opt.hpp"
#include "bayesopt/search_space.hpp"

#include "streamsim/chaining.hpp"
#include "streamsim/cluster.hpp"
#include "streamsim/engine.hpp"
#include "streamsim/external_service.hpp"
#include "streamsim/interference.hpp"
#include "streamsim/job_runner.hpp"
#include "streamsim/kafka.hpp"
#include "streamsim/latency.hpp"
#include "streamsim/metrics.hpp"
#include "streamsim/rates.hpp"
#include "streamsim/topology.hpp"

#include "workloads/workloads.hpp"

#include "core/bootstrap.hpp"
#include "core/controller.hpp"
#include "core/evaluator.hpp"
#include "core/model_io.hpp"
#include "core/rate_aware.hpp"
#include "core/scoring.hpp"
#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "core/transfer.hpp"

#include "baselines/dhalion.hpp"
#include "baselines/drs.hpp"
#include "baselines/ds2.hpp"
#include "baselines/threshold.hpp"

// Rate-aware benefit model — the paper's stated future work ("unbind
// benefit models from input data rates", Sec. VII), implemented as an
// extension.
//
// Instead of one GP per input rate plus a residual transfer between them
// (Algorithm 2), a single GP is trained over the joint feature vector
// (k_1..k_N, rate). Samples gathered at *every* rate the job has run at
// feed one model, which can then recommend configurations at rates it has
// never seen. The trade-offs versus Algorithm 2:
//
//   + every historical sample helps at every future rate (no closest-model
//     selection, no N_num switch-over);
//   + zero real runs are needed before the first recommendation at a new
//     rate;
//   - the score surface must vary smoothly with the rate for the joint
//     kernel to interpolate well (true for the workloads here);
//   - the model grows with the whole history, not one rate's samples.
//
// `bench/extension_rate_model` compares it against Algorithm 2 and
// from-scratch Algorithm 1.
#pragma once

#include <optional>
#include <random>

#include "core/steady_rate.hpp"

namespace autra::core {

/// One training record: a configuration evaluated at some input rate.
struct RatedSample {
  runtime::Parallelism config;
  double rate = 0.0;
  double score = 0.0;
};

struct RateAwareParams {
  SteadyRateParams steady;
  /// Real evaluations allowed at the new rate.
  int max_evaluations = 15;
};

struct RateAwareResult {
  runtime::Parallelism best;
  double best_score = 0.0;
  runtime::JobMetrics best_metrics;
  int real_evaluations = 0;
  bool converged = false;
};

/// The joint (configuration, rate) benefit model.
class RateAwareModel {
 public:
  explicit RateAwareModel(gp::GpConfig gp_config = {});

  /// Adds real samples observed at `rate`. Call fit() afterwards.
  void add_samples(double rate, std::span<const SamplePoint> samples);
  void add_sample(RatedSample sample);

  /// Fits the joint GP; throws std::logic_error with no samples.
  void fit();

  [[nodiscard]] bool is_fitted() const noexcept { return gp_.is_fitted(); }
  [[nodiscard]] std::size_t num_samples() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] const std::vector<RatedSample>& samples() const noexcept {
    return samples_;
  }

  /// Posterior mean score of `config` at `rate`.
  [[nodiscard]] double predict_mean(const runtime::Parallelism& config,
                                    double rate) const;

  /// EI-optimal configuration for a new rate, without any real run:
  /// maximises expected improvement over the incumbent predicted score in
  /// the search space [base, P_max]^N at that rate.
  [[nodiscard]] runtime::Parallelism recommend(const runtime::Parallelism& base,
                                           double rate,
                                           const SteadyRateParams& params,
                                           std::mt19937_64& rng) const;

 private:
  [[nodiscard]] std::vector<double> features(const runtime::Parallelism& config,
                                             double rate) const;

  gp::GpConfig gp_config_;
  gp::GpRegressor gp_;
  std::vector<RatedSample> samples_;
};

/// Optimisation loop at a new rate driven by the joint model: recommend,
/// run for real, add the sample, refit — until the measured sample meets
/// the steady-rate termination conditions or the budget runs out.
[[nodiscard]] RateAwareResult run_rate_aware(const Evaluator& evaluate,
                                             const runtime::Parallelism& base,
                                             double rate,
                                             RateAwareModel& model,
                                             const RateAwareParams& params);

}  // namespace autra::core

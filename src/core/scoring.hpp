// AuTraScale's benefit scoring function (paper Eq. 4) and the BO
// termination threshold derived from the user's over-allocation budget
// (Eqs. 8-9).
//
// The score jointly quantifies latency compliance and resource frugality:
//
//   F = alpha * min(1, l_t / l_r)
//     + (1 - alpha) * (1/N) * sum_i k'_i / k_i
//
// where l_r is the measured processing latency, l_t the target, k'_i the
// minimum parallelism of operator i that maximises throughput (the base
// configuration from the throughput-optimisation step), and k_i the current
// parallelism. Both halves are <= 1, so F <= 1, with equality exactly at
// the base configuration meeting the latency target.
//
// (The paper prints the latency term as min(1, l_i/l_t), which contradicts
// its own rule "the lower the latency, the higher the score"; we use the
// orientation the rule demands.)
#pragma once

#include "runtime/job_metrics.hpp"

namespace autra::core {

struct ScoreParams {
  /// Latency target l_t, milliseconds.
  double target_latency_ms = 0.0;
  /// Relative importance of latency vs resource frugality.
  double alpha = 0.5;
  /// Base configuration k' (per-operator minimum parallelism that
  /// maximises throughput).
  runtime::Parallelism base;
};

/// Eq. 4. Throws std::invalid_argument on bad parameters or mismatched
/// configuration size.
[[nodiscard]] double benefit_score(const runtime::Parallelism& current,
                                   double latency_ms,
                                   const ScoreParams& params);

/// Convenience overload reading latency from a metrics snapshot.
[[nodiscard]] double benefit_score(const runtime::JobMetrics& metrics,
                                   const ScoreParams& params);

/// Eq. 9: the score threshold implied by an over-allocation budget w:
///   F >= alpha + (1 - alpha) / (1 + w).
[[nodiscard]] double score_threshold(double alpha, double over_allocation_w);

}  // namespace autra::core

#include "core/steady_rate.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/bootstrap.hpp"
#include "exec/exec.hpp"

namespace autra::core {

namespace {

bo::SearchSpace make_space(const runtime::Parallelism& base,
                           int max_parallelism) {
  bo::Config lower(base.begin(), base.end());
  bo::Config upper(base.size(), max_parallelism);
  return {std::move(lower), std::move(upper)};
}

bo::BayesOptConfig make_bo_config(const SteadyRateParams& params) {
  bo::BayesOptConfig cfg;
  cfg.gp.kernel = params.gp_kernel;
  cfg.gp.threads = params.threads;
  cfg.gp.max_observations = params.max_observations;
  cfg.xi = params.xi;
  cfg.seed = params.seed;
  cfg.incremental = params.incremental;
  return cfg;
}

ScoreParams make_score_params(const SteadyRateParams& params,
                              const runtime::Parallelism& base) {
  return {.target_latency_ms = params.target_latency_ms,
          .alpha = params.alpha,
          .base = base};
}

void validate(const runtime::Parallelism& base, const SteadyRateParams& params) {
  if (base.empty()) {
    throw std::invalid_argument("run_steady_rate: empty base configuration");
  }
  if (params.target_latency_ms <= 0.0) {
    throw std::invalid_argument("run_steady_rate: no latency target");
  }
  if (params.max_parallelism <
      *std::max_element(base.begin(), base.end())) {
    throw std::invalid_argument(
        "run_steady_rate: P_max below the base configuration");
  }
  if (params.max_evaluations < 1) {
    throw std::invalid_argument("run_steady_rate: no evaluation budget");
  }
}

}  // namespace

const SamplePoint* pick_best_fallback(std::span<const SamplePoint> samples,
                                      const SteadyRateParams& params) {
  const auto tier = [&](const SamplePoint& s) {
    const runtime::JobMetrics& m = *s.metrics;
    const double target = params.target_throughput > 0.0
                              ? params.target_throughput
                              : m.input_rate;
    const bool latency_ok = m.latency_ms <= params.target_latency_ms;
    const bool throughput_ok =
        m.throughput + target * params.throughput_tolerance >= target;
    return (latency_ok ? 2 : 0) + (throughput_ok ? 1 : 0);
  };
  const SamplePoint* best = nullptr;
  int best_tier = -1;
  for (const SamplePoint& s : samples) {
    if (s.estimated()) continue;
    const int t = tier(s);
    if (best == nullptr || t > best_tier ||
        (t == best_tier && s.score > best->score)) {
      best = &s;
      best_tier = t;
    }
  }
  return best;
}

bool meets_requirements(const SamplePoint& sample,
                        const SteadyRateParams& params) {
  if (sample.estimated()) return false;
  const runtime::JobMetrics& m = *sample.metrics;
  if (m.latency_ms > params.target_latency_ms) return false;
  const double target = params.target_throughput > 0.0
                            ? params.target_throughput
                            : m.input_rate;
  if (m.throughput + target * params.throughput_tolerance < target) {
    return false;
  }
  return sample.score >= params.score_threshold;
}

SteadyRateResult run_steady_rate(const Evaluator& evaluate,
                                 const runtime::Parallelism& base,
                                 const SteadyRateParams& params,
                                 std::span<const SamplePoint> seed_samples,
                                 bool skip_bootstrap) {
  validate(base, params);
  const ScoreParams score_params = make_score_params(params, base);

  bo::BayesOpt opt(make_space(base, params.max_parallelism),
                   make_bo_config(params));
  SteadyRateResult result;
  // References into history are held across iterations; pre-reserving keeps
  // them stable (at most seeds + evaluation budget entries are added).
  result.history.reserve(seed_samples.size() +
                         static_cast<std::size_t>(params.max_evaluations) + 1);

  const auto record = [&](SamplePoint sample) -> const SamplePoint& {
    opt.observe(bo::Config(sample.config.begin(), sample.config.end()),
                sample.score);
    result.history.push_back(std::move(sample));
    return result.history.back();
  };

  for (const SamplePoint& s : seed_samples) record(s);

  int budget = params.max_evaluations;

  const auto measure = [&](const runtime::Parallelism& config)
      -> const SamplePoint& {
    runtime::JobMetrics m = evaluate(config);
    SamplePoint s;
    s.config = config;
    s.score = benefit_score(m, score_params);
    s.metrics = std::move(m);
    --budget;
    return record(std::move(s));
  };

  if (!skip_bootstrap) {
    // Bootstrap samples are independent of each other, so the trial fan-out
    // runs in parallel; results are recorded serially in sample order, which
    // keeps the surrogate's training set (and every downstream decision)
    // identical at any thread count. The evaluator must satisfy the
    // const-thread-safety contract of runtime::TrialService::evaluator_at.
    std::vector<runtime::Parallelism> configs =
        bootstrap_samples(base, params.max_parallelism, params.bootstrap_m);
    if (std::cmp_greater(configs.size(), budget)) {
      configs.resize(static_cast<std::size_t>(std::max(budget, 0)));
    }
    const exec::ExecContext ctx(params.threads);
    std::vector<runtime::JobMetrics> metrics =
        exec::parallel_map(ctx, configs.size(), [&](std::size_t i) {
          return evaluate(configs[i]);
        });
    for (std::size_t i = 0; i < configs.size(); ++i) {
      SamplePoint s;
      s.config = configs[i];
      s.score = benefit_score(metrics[i], score_params);
      s.metrics = std::move(metrics[i]);
      --budget;
      record(std::move(s));
      ++result.bootstrap_evaluations;
    }
  }

  // Termination may already hold on a seed/bootstrap sample.
  const SamplePoint* satisfied = nullptr;
  for (const SamplePoint& s : result.history) {
    if (meets_requirements(s, params)) {
      satisfied = &s;
      break;
    }
  }

  while (satisfied == nullptr && budget > 0) {
    const bo::Suggestion next = opt.suggest();
    const runtime::Parallelism config(next.config.begin(), next.config.end());

    // Acquisition and random-bootstrap suggestions are unobserved by
    // construction; only the best-observed fallback can repeat a config. A
    // fallback onto an already *really measured* configuration means the
    // model is fully exploited; measuring it again would not change the
    // decision, so stop and fall through to best-effort selection. (A
    // fallback onto an estimated seed sample is still worth one real run.)
    if (next.source == bo::SuggestionSource::kBestObservedFallback) {
      const bool repeat = std::any_of(
          result.history.begin(), result.history.end(),
          [&](const SamplePoint& s) {
            return !s.estimated() && s.config == config;
          });
      if (repeat) break;
    }

    const SamplePoint& s = measure(config);
    ++result.bo_iterations;
    if (meets_requirements(s, params)) satisfied = &s;
  }

  if (satisfied != nullptr) {
    result.converged = true;
    result.best = satisfied->config;
    result.best_score = satisfied->score;
    result.best_metrics = *satisfied->metrics;
    return result;
  }

  // Budget exhausted: best-effort selection by feasibility tier.
  const SamplePoint* best = pick_best_fallback(result.history, params);
  if (best == nullptr) {
    throw std::logic_error("run_steady_rate: no real sample was evaluated");
  }
  result.best = best->config;
  result.best_score = best->score;
  result.best_metrics = *best->metrics;
  return result;
}

runtime::Parallelism recommend_next(std::span<const SamplePoint> samples,
                                const runtime::Parallelism& base,
                                const SteadyRateParams& params) {
  validate(base, params);
  if (samples.empty()) {
    throw std::invalid_argument("recommend_next: no samples");
  }
  bo::BayesOpt opt(make_space(base, params.max_parallelism),
                   make_bo_config(params));
  for (const SamplePoint& s : samples) {
    opt.observe(bo::Config(s.config.begin(), s.config.end()), s.score);
  }
  const bo::Suggestion next = opt.suggest();
  return {next.config.begin(), next.config.end()};
}

}  // namespace autra::core

#include "core/rate_aware.hpp"

#include <algorithm>
#include <stdexcept>

namespace autra::core {

RateAwareModel::RateAwareModel(gp::GpConfig gp_config)
    : gp_config_(std::move(gp_config)), gp_(gp_config_) {}

void RateAwareModel::add_samples(double rate,
                                 std::span<const SamplePoint> samples) {
  for (const SamplePoint& s : samples) {
    if (s.estimated()) continue;  // Only real measurements train the model.
    add_sample({s.config, rate, s.score});
  }
}

void RateAwareModel::add_sample(RatedSample sample) {
  if (sample.config.empty() || sample.rate <= 0.0) {
    throw std::invalid_argument("RateAwareModel: bad sample");
  }
  if (!samples_.empty() &&
      samples_.front().config.size() != sample.config.size()) {
    throw std::invalid_argument("RateAwareModel: inconsistent config size");
  }
  samples_.push_back(std::move(sample));
}

std::vector<double> RateAwareModel::features(const runtime::Parallelism& config,
                                             double rate) const {
  std::vector<double> f(config.begin(), config.end());
  // The GP normalises inputs per dimension, so the raw rate is fine as a
  // feature; scaling to thousands just keeps the numbers readable.
  f.push_back(rate / 1000.0);
  return f;
}

void RateAwareModel::fit() {
  if (samples_.empty()) {
    throw std::logic_error("RateAwareModel::fit: no samples");
  }
  const std::size_t d = samples_.front().config.size() + 1;
  linalg::Matrix x(samples_.size(), d);
  linalg::Vector y(samples_.size());
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const auto f = features(samples_[i].config, samples_[i].rate);
    std::copy(f.begin(), f.end(), x.row(i).begin());
    y[i] = samples_[i].score;
  }
  gp_.fit(x, y);
}

double RateAwareModel::predict_mean(const runtime::Parallelism& config,
                                    double rate) const {
  if (!gp_.is_fitted()) {
    throw std::logic_error("RateAwareModel: model not fitted");
  }
  return gp_.predict(features(config, rate)).mean;
}

runtime::Parallelism RateAwareModel::recommend(const runtime::Parallelism& base,
                                           double rate,
                                           const SteadyRateParams& params,
                                           std::mt19937_64& rng) const {
  if (!gp_.is_fitted()) {
    throw std::logic_error("RateAwareModel::recommend: model not fitted");
  }
  bo::SearchSpace space(bo::Config(base.begin(), base.end()),
                        bo::Config(base.size(), params.max_parallelism));

  std::vector<bo::Config> cands = space.candidates(2048, rng);
  for (bo::Config& c : space.local_candidates(
           bo::Config(base.begin(), base.end()))) {
    cands.push_back(std::move(c));
  }
  // Local moves around configurations that scored well at nearby rates.
  std::vector<const RatedSample*> ranked;
  for (const RatedSample& s : samples_) ranked.push_back(&s);
  std::sort(ranked.begin(), ranked.end(),
            [](const RatedSample* a, const RatedSample* b) {
              return a->score > b->score;
            });
  for (std::size_t i = 0; i < ranked.size() && i < 3; ++i) {
    const bo::Config center(ranked[i]->config.begin(),
                            ranked[i]->config.end());
    const bo::Config clamped = space.clamp(center);
    for (bo::Config& c : space.local_candidates(clamped)) {
      cands.push_back(std::move(c));
    }
    cands.push_back(clamped);
  }

  // Incumbent: the best predicted score at this rate among candidates of
  // interest (there are no observations at the new rate yet).
  const double incumbent = predict_mean(base, rate);

  double best_ei = -1.0;
  bo::Config best = space.clamp(bo::Config(base.begin(), base.end()));
  for (const bo::Config& c : cands) {
    const runtime::Parallelism config(c.begin(), c.end());
    const gp::Prediction p = gp_.predict(features(config, rate));
    const double ei = gp::expected_improvement(p, incumbent, params.xi);
    if (ei > best_ei) {
      best_ei = ei;
      best = c;
    }
  }
  return {best.begin(), best.end()};
}

RateAwareResult run_rate_aware(const Evaluator& evaluate,
                               const runtime::Parallelism& base, double rate,
                               RateAwareModel& model,
                               const RateAwareParams& params) {
  if (params.max_evaluations < 1) {
    throw std::invalid_argument("run_rate_aware: no evaluation budget");
  }
  const SteadyRateParams& sp = params.steady;
  const ScoreParams score_params{.target_latency_ms = sp.target_latency_ms,
                                 .alpha = sp.alpha,
                                 .base = base};
  std::mt19937_64 rng(sp.seed);

  RateAwareResult result;
  std::vector<SamplePoint> measured;

  while (result.real_evaluations < params.max_evaluations) {
    runtime::Parallelism next = model.is_fitted()
                                ? model.recommend(base, rate, sp, rng)
                                : base;
    const bool repeat = std::any_of(
        measured.begin(), measured.end(),
        [&](const SamplePoint& s) { return s.config == next; });
    if (repeat) {
      // The model keeps recommending something already measured below the
      // thresholds: fall back to the base configuration once, then stop.
      if (next == base) break;
      next = base;
    }

    runtime::JobMetrics m = evaluate(next);
    SamplePoint s;
    s.config = next;
    s.score = benefit_score(m, score_params);
    s.metrics = std::move(m);
    ++result.real_evaluations;
    model.add_sample({s.config, rate, s.score});
    model.fit();
    measured.push_back(s);

    if (meets_requirements(s, sp)) {
      result.converged = true;
      result.best = s.config;
      result.best_score = s.score;
      result.best_metrics = *s.metrics;
      return result;
    }
  }

  // Budget exhausted: best-effort selection by feasibility tier.
  const SamplePoint* best = pick_best_fallback(measured, sp);
  if (best == nullptr) {
    throw std::logic_error("run_rate_aware: nothing was measured");
  }
  result.best = best->config;
  result.best_score = best->score;
  result.best_metrics = *best->metrics;
  return result;
}

}  // namespace autra::core

// The AuTraScale system (paper Sec. IV): a MAPE control loop around a live
// streaming job.
//
//   Monitor  — the backend writes Flink-path gauges into a MetricStore
//              (the InfluxDB stand-in);
//   Analyze  — the Metric Aggregator summarises the last policy interval;
//              the Scaling Manager decides whether action is needed and
//              whether a benefit model exists for the current rate;
//   Plan     — the Policy Controller runs throughput optimisation plus
//              Algorithm 1 (no model for this rate) or Algorithm 2
//              (transfer from the closest model), updating the model
//              library;
//   Execute  — the System Scheduler stops the job with a savepoint and
//              restarts it with the recommended configuration (modelled as
//              a downtime window by the backend's reconfigure()).
//
// The controller is compiled only against the backend-agnostic runtime
// layer: it drives any runtime::StreamingBackend (the fluid simulator, a
// trace replay, a real cluster adapter) and evaluates Plan-stage trials
// through a runtime::TrialService.
//
// Two cadence parameters from the paper: the *policy interval* (how often
// the loop runs) and the *policy running time* (how long after a restart
// metrics are ignored while the job stabilises).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/steady_rate.hpp"
#include "core/throughput_opt.hpp"
#include "core/transfer.hpp"
#include "runtime/backend.hpp"
#include "runtime/tenant.hpp"
#include "streamsim/topology.hpp"

namespace autra::core {

/// Analyze-stage summary of one policy interval.
struct AggregatedMetrics {
  double window_start = 0.0;
  double window_end = 0.0;
  double input_rate = 0.0;   ///< Kafka production rate (mean over window).
  double throughput = 0.0;
  double latency_ms = 0.0;
  double kafka_lag = 0.0;
  /// Per-operator mean true rate per instance and total input rate.
  std::vector<double> true_rate;
  std::vector<double> input_rate_per_op;
};

/// Health verdict for one aggregation window — the Analyze stage's defence
/// against a faulted Monitor path. A window is unhealthy when core series
/// are missing or sparse (metric dropout/delay upstream) or when it
/// overlaps a restart the controller did not command (the job was
/// recovering, so its gauges describe a transient, not the steady state).
struct WindowHealth {
  int missing_series = 0;  ///< Core series absent or empty over the window.
  int sparse_series = 0;   ///< Core series below the expected point density.
  bool contaminated = false;  ///< Window overlaps an uncommanded restart.

  [[nodiscard]] bool healthy() const noexcept {
    return missing_series == 0 && sparse_series == 0 && !contaminated;
  }
};

/// Reads a window of the metric store into an AggregatedMetrics summary.
///
/// Series ids are resolved once per store and cached; each aggregate()
/// call then reads incrementally maintained window sums (two binary
/// searches per series), never copying point vectors.
///
/// When `metric_interval_sec` is positive, the aggregator also grades
/// window health: each core series is expected to deliver one point per
/// interval, and a series delivering less than `1 - max_missing_fraction`
/// of that is flagged sparse. With the default (0), density checks are
/// off and only missing series are reported.
class MetricAggregator {
 public:
  explicit MetricAggregator(const sim::Topology& topology,
                            double metric_interval_sec = 0.0,
                            double max_missing_fraction = 0.5);
  [[nodiscard]] AggregatedMetrics aggregate(const runtime::MetricStore& db,
                                            double t0, double t1,
                                            WindowHealth* health = nullptr)
      const;

 private:
  struct ResolvedIds {
    const runtime::MetricStore* db = nullptr;
    runtime::MetricId input_rate, throughput, latency_mean, kafka_lag;
    std::vector<runtime::MetricId> true_rate;
    std::vector<runtime::MetricId> input_rate_per_op;
  };
  void bind(const runtime::MetricStore& db) const;
  void grade(const runtime::MetricStore& db, runtime::MetricId id, double t0,
             double t1, WindowHealth& health) const;

  const sim::Topology& topology_;
  double metric_interval_sec_;
  double max_missing_fraction_;
  mutable ResolvedIds ids_;
};

/// Why the Scaling Manager asked for action.
enum class ScalingTrigger {
  kNone,
  kThroughputViolation,  ///< Throughput below the input rate (lag grows).
  kLatencyViolation,     ///< Latency above target.
  kOverProvisioned,      ///< Benefit score below threshold.
  kRateChanged,          ///< Input rate moved away from the model's rate.
  kLagDrain,             ///< Post-recovery over-provisioning to drain lag.
};

[[nodiscard]] const char* to_string(ScalingTrigger trigger) noexcept;

/// Fault-tolerance knobs for the control loop. The defaults keep every
/// resilience feature inert on a healthy cluster: no density grading, and
/// the retry loop only runs when reconfigure() actually throws
/// runtime::RescaleFailed.
struct ResilienceParams {
  /// Expected gauge cadence for window-health density checks; <= 0 turns
  /// density grading off (missing series are still reported).
  double metric_interval_sec = 0.0;
  /// Fraction of a window's expected points a series may miss before the
  /// window is declared unhealthy.
  double max_missing_fraction = 0.5;
  /// Transient Execute failures (runtime::RescaleFailed) are retried this
  /// many times with capped exponential backoff before the decision is
  /// abandoned for the interval.
  int max_rescale_retries = 4;
  double rescale_backoff_initial_sec = 5.0;
  double rescale_backoff_max_sec = 60.0;
  /// Extra stabilisation added on top of the policy running time after a
  /// restart the controller did not command (a crash recovery): the
  /// freshly restarted job is draining lag and its windows would read as
  /// violations the Plan stage cannot fix.
  double failure_cooldown_sec = 0.0;
  /// Lag-drain trigger (EXPERIMENTS.md residual-lag finding): after a
  /// crash recovery the job restarts at its steady-state configuration,
  /// which has no headroom, so the lag accumulated during downtime can
  /// persist for the rest of the run. When this bound is positive, a
  /// detected failure restart temporarily *over*-provisions the job
  /// (every operator scaled by lag_drain_boost) until the Kafka lag drops
  /// below `lag_drain_bound_sec` seconds of the current input rate — then
  /// the pre-drain configuration is restored. 0 (default) keeps the
  /// feature inert.
  double lag_drain_bound_sec = 0.0;
  /// Multiplier applied to each operator's parallelism while draining
  /// (rounded up, clamped to the cluster's slot capacity).
  double lag_drain_boost = 1.5;
  /// Give-up bound: the boosted configuration is restored after this many
  /// policy intervals even if the lag bound was never reached.
  int lag_drain_max_intervals = 5;
};

/// Counters describing how the loop coped with a faulty environment.
struct LoopStats {
  int windows = 0;            ///< Aggregation windows considered.
  int unhealthy_windows = 0;  ///< Windows skipped on health grounds.
  int failure_restarts = 0;   ///< Uncommanded restarts observed.
  int rescale_retries = 0;    ///< RescaleFailed caught and retried.
  int rescale_aborts = 0;     ///< Decisions abandoned after max retries.
  int lag_drains = 0;         ///< Post-recovery lag-drain boosts entered.
  /// Which tenant's loop these counters describe (invalid = single-tenant).
  runtime::TenantId tenant;

  friend bool operator==(const LoopStats&, const LoopStats&) = default;
};

struct ControllerParams {
  SteadyRateParams steady;
  TransferParams transfer;
  ThroughputOptParams throughput;
  ResilienceParams resilience;
  /// Seconds between control-loop invocations.
  double policy_interval_sec = 60.0;
  /// Seconds after a restart during which decisions are suppressed; the
  /// paper recommends an integer multiple of the policy interval.
  double policy_running_time_sec = 120.0;
  /// Relative rate change that counts as "the rate changed".
  double rate_change_tolerance = 0.10;
  /// Tenant this controller acts for on a shared cluster; stamped into
  /// LoopStats and every ControlDecision. Invalid (default) means
  /// single-tenant.
  runtime::TenantId tenant;
};

/// Decision record for observability/tests.
struct ControlDecision {
  double time = 0.0;
  ScalingTrigger trigger = ScalingTrigger::kNone;
  std::string algorithm;  ///< "none", "algorithm1", "algorithm2".
  runtime::Parallelism applied;
  int evaluations = 0;
  int rescale_retries = 0;     ///< Transient Execute failures survived.
  bool execute_failed = false; ///< Gave up applying after max retries.
  /// Tenant the deciding controller acts for (invalid = single-tenant).
  runtime::TenantId tenant;

  friend bool operator==(const ControlDecision&,
                         const ControlDecision&) = default;
};

/// The full AuTraScale controller driving a live StreamingBackend.
///
/// The Plan stage's algorithms evaluate candidate configurations through
/// the TrialService (the paper likewise restarts the real job per trial);
/// the chosen configuration is then applied to the live session.
class AuTraScaleController {
 public:
  AuTraScaleController(sim::Topology topology,
                       std::shared_ptr<const runtime::TrialService> trials,
                       ControllerParams params);

  /// Runs the MAPE loop against `session` until session time reaches
  /// `until_sec`. Returns all decisions taken. Equivalent to prime() once,
  /// then per window: reset_window(), advance one policy interval,
  /// observe_window().
  std::vector<ControlDecision> run(runtime::StreamingBackend& session,
                                   double until_sec);

  /// Latches the restart watermark and the stabilisation clock against the
  /// session's current state. run() calls this on entry; a co-simulation
  /// harness that owns the advance loop (mt::MultiTenantHarness) calls it
  /// once before its first window.
  void prime(const runtime::StreamingBackend& session);

  /// One Monitor -> Analyze -> Plan -> Execute iteration over the window
  /// that began at `t0` and ends at session.now(). The caller has already
  /// reset the window and advanced the session (run() does both; a
  /// harness advances all tenants in lockstep instead). Decisions taken
  /// are appended to `decisions`.
  void observe_window(runtime::StreamingBackend& session, double t0,
                      std::vector<ControlDecision>& decisions);

  [[nodiscard]] const ModelLibrary& library() const noexcept {
    return library_;
  }
  [[nodiscard]] ModelLibrary& library() noexcept { return library_; }

  /// Replaces the model library (e.g. restored from disk via model_io).
  /// A controller restarted with its previous library answers rate changes
  /// with Algorithm 2 instead of re-paying the bootstrap at every rate.
  void set_library(ModelLibrary library) { library_ = std::move(library); }

  /// Resilience counters accumulated across run() calls.
  [[nodiscard]] const LoopStats& stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] ScalingTrigger analyze(
      const AggregatedMetrics& m, const runtime::Parallelism& current) const;
  ControlDecision plan_and_execute(runtime::StreamingBackend& session,
                                   ScalingTrigger trigger, double rate);
  /// Enters lag-drain mode after a detected crash recovery (no-op when the
  /// feature is inert or a drain is already active).
  void maybe_start_lag_drain(runtime::StreamingBackend& session,
                             std::vector<ControlDecision>& decisions);
  /// One per-window drain check: restores the saved configuration once the
  /// lag bound (or the interval cap) is reached. Returns true while the
  /// drain owns the loop (analyze/plan are skipped).
  bool lag_drain_step(runtime::StreamingBackend& session,
                      const AggregatedMetrics& m,
                      std::vector<ControlDecision>& decisions);

  sim::Topology topology_;
  std::shared_ptr<const runtime::TrialService> trials_;
  ControllerParams params_;
  MetricAggregator aggregator_;
  LoopStats stats_;
  ModelLibrary library_;
  double model_rate_ = -1.0;   ///< Rate of the base config currently applied.
  runtime::Parallelism base_;  ///< k' for the current rate.

  // Lag-drain state (survives across run() calls).
  bool lag_draining_ = false;
  runtime::Parallelism lag_drain_saved_;  ///< Config to restore after drain.
  int lag_drain_windows_left_ = 0;

  // Loop state shared by run() and the prime()/observe_window() pair.
  double stable_since_ = 0.0;  ///< When the job last (re)stabilised.
  int known_restarts_ = 0;     ///< Restart watermark at the last window.
};

}  // namespace autra::core

#include "core/bootstrap.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autra::core {

std::vector<runtime::Parallelism> bootstrap_samples(const runtime::Parallelism& base,
                                                int max_parallelism,
                                                int m_uniform) {
  if (base.empty()) {
    throw std::invalid_argument("bootstrap_samples: empty base config");
  }
  if (m_uniform < 1) {
    throw std::invalid_argument("bootstrap_samples: M must be >= 1");
  }
  const int k_max = *std::max_element(base.begin(), base.end());
  if (k_max < 1 || k_max > max_parallelism) {
    throw std::invalid_argument(
        "bootstrap_samples: base config exceeds P_max");
  }

  std::vector<runtime::Parallelism> samples;

  // The base configuration itself: the job already runs at k' when the BO
  // stage starts (the throughput optimiser left it there), so its QoS is
  // known — and it anchors the resource end of the model.
  samples.push_back(base);

  // Family 1: uniform sweeps from k'_max to P_max.
  const double span = static_cast<double>(max_parallelism - k_max);
  const int steps = std::max(1, m_uniform - 1);
  for (int i = 0; i < m_uniform; ++i) {
    const int level =
        k_max + static_cast<int>(std::lround(span * i / steps));
    samples.emplace_back(base.size(), level);
  }

  // Family 2: one operator at P_max, the rest at the base configuration.
  for (std::size_t j = 0; j < base.size(); ++j) {
    runtime::Parallelism s = base;
    s[j] = max_parallelism;
    samples.push_back(std::move(s));
  }

  // De-duplicate, preserving first occurrence.
  std::vector<runtime::Parallelism> unique;
  for (runtime::Parallelism& s : samples) {
    if (std::find(unique.begin(), unique.end(), s) == unique.end()) {
      unique.push_back(std::move(s));
    }
  }
  return unique;
}

}  // namespace autra::core

// Throughput optimisation (paper Sec. III-C, Eq. 3).
//
// Starting from an under-provisioned configuration, each iteration measures
// the operators' true processing rates and scales every operator so its
// total true rate catches the input data rate propagated through the DAG
// with the measured selectivities — the DS2 dataflow rule. AuTraScale adds
// two things on top of plain DS2:
//
//   1. a termination condition for jobs whose throughput is capped by an
//      external factor (two consecutive identical recommendations — without
//      it DS2 loops forever on the Redis-limited Yahoo job), and
//   2. a trajectory review that returns the configuration with maximum
//      throughput and, among ties, the least total parallelism (Fig. 5(b):
//      p2 = (4,2,1,1,34) beats the larger p4).
//
// The result's configuration is the base configuration k' every subsequent
// AuTraScale stage builds on.
#pragma once

#include <vector>

#include "core/evaluator.hpp"
#include "streamsim/topology.hpp"

namespace autra::core {

struct ThroughputOptParams {
  /// Target throughput; <= 0 means "the external input data rate".
  double target_throughput = 0.0;
  /// Relative tolerance for "throughput reached the target".
  double tolerance = 0.03;
  /// Safety bound on iterations (the paper observes <= 4 in practice).
  int max_iterations = 12;
  /// Upper parallelism bound P_max (cluster slot count).
  int max_parallelism = 1;
};

struct ThroughputIteration {
  runtime::Parallelism config;
  runtime::JobMetrics metrics;
  runtime::Parallelism recommended;  ///< Eq. 3 output measured on `config`.
};

struct ThroughputOptResult {
  runtime::Parallelism best;           ///< The base configuration k'.
  double best_throughput = 0.0;
  int iterations = 0;              ///< Number of job evaluations.
  bool reached_target = false;     ///< Throughput met the target.
  bool externally_limited = false; ///< Terminated via repeated config.
  std::vector<ThroughputIteration> trajectory;
};

/// One step of Eq. 3: given measured metrics for `current`, the
/// recommended parallelism that lets each operator's total true rate match
/// the input rate `target_rate` propagated through measured selectivities.
/// Needs the topology for the DAG structure. Parallelism is clamped to
/// [1, max_parallelism].
[[nodiscard]] runtime::Parallelism scale_step(const sim::Topology& topology,
                                          const runtime::JobMetrics& metrics,
                                          double target_rate,
                                          int max_parallelism);

class ThroughputOptimizer {
 public:
  ThroughputOptimizer(const sim::Topology& topology,
                      ThroughputOptParams params);

  /// Runs the iterative optimisation from `initial` (the paper starts all
  /// workloads at parallelism 1).
  [[nodiscard]] ThroughputOptResult optimize(
      const Evaluator& evaluate, const runtime::Parallelism& initial) const;

 private:
  const sim::Topology& topology_;
  ThroughputOptParams params_;
};

}  // namespace autra::core

#include "core/controller.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace autra::core {

MetricAggregator::MetricAggregator(const sim::Topology& topology,
                                   double metric_interval_sec,
                                   double max_missing_fraction)
    : topology_(topology),
      metric_interval_sec_(metric_interval_sec),
      max_missing_fraction_(max_missing_fraction) {
  if (max_missing_fraction_ < 0.0 || max_missing_fraction_ > 1.0) {
    throw std::invalid_argument(
        "MetricAggregator: max_missing_fraction must be in [0, 1]");
  }
}

void MetricAggregator::grade(const runtime::MetricStore& db,
                             runtime::MetricId id, double t0, double t1,
                             WindowHealth& health) const {
  if (!id.valid()) {
    ++health.missing_series;
    return;
  }
  const auto [first, last] = db.range(id, t0, t1);
  const std::size_t n = last - first;
  if (n == 0) {
    ++health.missing_series;
    return;
  }
  if (metric_interval_sec_ > 0.0) {
    const double expected = (t1 - t0) / metric_interval_sec_;
    if (static_cast<double>(n) <
        expected * (1.0 - max_missing_fraction_) - 0.5) {
      ++health.sparse_series;
    }
  }
}

void MetricAggregator::bind(const runtime::MetricStore& db) const {
  namespace mn = runtime::metric_names;
  if (ids_.db != &db) {
    ids_ = ResolvedIds{};
    ids_.db = &db;
    ids_.true_rate.resize(topology_.num_operators());
    ids_.input_rate_per_op.resize(topology_.num_operators());
  }
  // A series only exists in the store after its first write, so early
  // aggregate() calls may precede some series; re-find any still missing.
  if (!ids_.input_rate.valid()) ids_.input_rate = db.find(mn::kInputRate);
  if (!ids_.throughput.valid()) ids_.throughput = db.find(mn::kThroughput);
  if (!ids_.latency_mean.valid()) ids_.latency_mean = db.find(mn::kLatencyMean);
  if (!ids_.kafka_lag.valid()) ids_.kafka_lag = db.find(mn::kKafkaLag);
  for (std::size_t i = 0; i < topology_.num_operators(); ++i) {
    const std::string& name = topology_.op(i).name;
    if (!ids_.true_rate[i].valid()) {
      ids_.true_rate[i] = db.find(mn::true_rate(name));
    }
    if (!ids_.input_rate_per_op[i].valid()) {
      ids_.input_rate_per_op[i] = db.find(mn::input_rate(name));
    }
  }
}

AggregatedMetrics MetricAggregator::aggregate(const runtime::MetricStore& db,
                                              double t0, double t1,
                                              WindowHealth* health) const {
  bind(db);
  if (health != nullptr) {
    // Grade every series a decision depends on. latency_mean is excluded:
    // its gauges legitimately thin out when few records complete.
    grade(db, ids_.input_rate, t0, t1, *health);
    grade(db, ids_.throughput, t0, t1, *health);
    grade(db, ids_.kafka_lag, t0, t1, *health);
    for (std::size_t i = 0; i < topology_.num_operators(); ++i) {
      grade(db, ids_.true_rate[i], t0, t1, *health);
      grade(db, ids_.input_rate_per_op[i], t0, t1, *health);
    }
  }
  AggregatedMetrics out;
  out.window_start = t0;
  out.window_end = t1;
  out.input_rate = db.mean(ids_.input_rate, t0, t1).value_or(0.0);
  out.throughput = db.mean(ids_.throughput, t0, t1).value_or(0.0);
  // Mean latency over gauges that actually saw completions, read straight
  // off the columnar series — no point-vector copy.
  if (ids_.latency_mean.valid()) {
    const runtime::MetricStore::SeriesView lat = db.series(ids_.latency_mean);
    const auto [lat_first, lat_last] = db.range(ids_.latency_mean, t0, t1);
    double lat_sum = 0.0;
    int lat_n = 0;
    for (std::size_t i = lat_first; i < lat_last; ++i) {
      if (lat.values[i] > 0.0) {
        lat_sum += lat.values[i];
        ++lat_n;
      }
    }
    out.latency_ms = lat_n > 0 ? lat_sum / lat_n * 1000.0 : 0.0;
  }
  if (ids_.kafka_lag.valid()) {
    if (const auto lag = db.last(ids_.kafka_lag)) out.kafka_lag = lag->value;
  }
  for (std::size_t i = 0; i < topology_.num_operators(); ++i) {
    out.true_rate.push_back(db.mean(ids_.true_rate[i], t0, t1).value_or(0.0));
    out.input_rate_per_op.push_back(
        db.mean(ids_.input_rate_per_op[i], t0, t1).value_or(0.0));
  }
  return out;
}

const char* to_string(ScalingTrigger trigger) noexcept {
  switch (trigger) {
    case ScalingTrigger::kNone:
      return "none";
    case ScalingTrigger::kThroughputViolation:
      return "throughput-violation";
    case ScalingTrigger::kLatencyViolation:
      return "latency-violation";
    case ScalingTrigger::kOverProvisioned:
      return "over-provisioned";
    case ScalingTrigger::kRateChanged:
      return "rate-changed";
    case ScalingTrigger::kLagDrain:
      return "lag-drain";
  }
  return "unknown";
}

AuTraScaleController::AuTraScaleController(
    sim::Topology topology,
    std::shared_ptr<const runtime::TrialService> trials,
    ControllerParams params)
    : topology_(std::move(topology)),
      trials_(std::move(trials)),
      params_(std::move(params)),
      aggregator_(topology_, params_.resilience.metric_interval_sec,
                  params_.resilience.max_missing_fraction) {
  if (trials_ == nullptr) {
    throw std::invalid_argument("AuTraScaleController: null trial service");
  }
  if (params_.policy_interval_sec <= 0.0 ||
      params_.policy_running_time_sec < params_.policy_interval_sec) {
    throw std::invalid_argument(
        "AuTraScaleController: policy running time must be at least the "
        "policy interval");
  }
  stats_.tenant = params_.tenant;
}

ScalingTrigger AuTraScaleController::analyze(
    const AggregatedMetrics& m, const runtime::Parallelism& current) const {
  if (model_rate_ > 0.0 && m.input_rate > 0.0 &&
      std::abs(m.input_rate - model_rate_) / model_rate_ >
          params_.rate_change_tolerance) {
    return ScalingTrigger::kRateChanged;
  }
  const double target = params_.steady.target_throughput > 0.0
                            ? params_.steady.target_throughput
                            : m.input_rate;
  if (m.throughput + target * params_.steady.throughput_tolerance < target) {
    return ScalingTrigger::kThroughputViolation;
  }
  if (m.latency_ms > params_.steady.target_latency_ms) {
    return ScalingTrigger::kLatencyViolation;
  }
  if (!base_.empty() && base_.size() == current.size()) {
    const double score =
        benefit_score(current, m.latency_ms,
                      {.target_latency_ms = params_.steady.target_latency_ms,
                       .alpha = params_.steady.alpha,
                       .base = base_});
    if (score < params_.steady.score_threshold) {
      return ScalingTrigger::kOverProvisioned;
    }
  } else {
    // No base configuration yet for this rate: fall back to a utilisation
    // heuristic — an operator with several instances mostly sitting idle is
    // over-provisioned.
    for (std::size_t i = 0; i < current.size() && i < m.true_rate.size();
         ++i) {
      if (current[i] <= 1 || m.true_rate[i] <= 0.0) continue;
      const double utilization =
          m.input_rate_per_op[i] / (m.true_rate[i] * current[i]);
      if (utilization < 0.5) return ScalingTrigger::kOverProvisioned;
    }
  }
  return ScalingTrigger::kNone;
}

ControlDecision AuTraScaleController::plan_and_execute(
    runtime::StreamingBackend& session, ScalingTrigger trigger, double rate) {
  ControlDecision decision;
  decision.time = session.now();
  decision.trigger = trigger;
  decision.tenant = params_.tenant;

  // The Plan stage evaluates candidates on fresh-start trials of the same
  // job at the current rate (each is one real job restart in the paper).
  const Evaluator evaluate =
      trials_->evaluator_at(rate, params_.policy_running_time_sec / 2.0,
                            params_.policy_running_time_sec / 2.0);
  const int max_parallelism = trials_->max_parallelism();

  // Base configuration k' for this rate via throughput optimisation.
  ThroughputOptParams topt = params_.throughput;
  topt.max_parallelism = max_parallelism;
  const ThroughputOptimizer optimizer(topology_, topt);
  const ThroughputOptResult base_result = optimizer.optimize(
      evaluate, runtime::Parallelism(topology_.num_operators(), 1));
  base_ = base_result.best;
  model_rate_ = rate;
  decision.evaluations += base_result.iterations;

  SteadyRateParams sp = params_.steady;
  sp.max_parallelism = max_parallelism;

  const BenefitModel* prior = library_.closest(rate);
  const bool use_transfer =
      prior != nullptr && !library_.has_model_for(rate) &&
      prior->base.size() == base_.size();

  if (use_transfer) {
    decision.algorithm = "algorithm2";
    TransferParams tp = params_.transfer;
    tp.steady = sp;
    TransferResult r = run_transfer(evaluate, base_, *prior, tp);
    decision.evaluations += r.real_evaluations;
    decision.applied = r.best;
    BenefitModel model;
    model.rate = rate;
    model.base = base_;
    model.kernel = sp.gp_kernel;
    model.threads = sp.threads;
    model.max_observations = sp.max_observations;
    model.samples = std::move(r.real_samples);
    model.fit();
    library_.add(std::move(model));
  } else {
    decision.algorithm = "algorithm1";
    // Always-on mode: when a model already covers this rate, seed
    // Algorithm 1 from it instead of re-paying the bootstrap, then fold
    // the new real samples back into it through the incremental GP path.
    BenefitModel* warm =
        params_.steady.incremental ? library_.find_for(rate) : nullptr;
    if (warm != nullptr && warm->base.size() != base_.size()) warm = nullptr;
    if (warm != nullptr) {
      const std::size_t n_seeds = warm->samples.size();
      const SteadyRateResult r = run_steady_rate(
          evaluate, base_, sp, warm->samples, /*skip_bootstrap=*/true);
      decision.evaluations += r.bootstrap_evaluations + r.bo_iterations;
      decision.applied = r.best;
      for (std::size_t i = n_seeds; i < r.history.size(); ++i) {
        if (!r.history[i].estimated()) warm->observe(r.history[i]);
      }
    } else {
      const SteadyRateResult r = run_steady_rate(evaluate, base_, sp);
      decision.evaluations += r.bootstrap_evaluations + r.bo_iterations;
      decision.applied = r.best;
      if (!library_.has_model_for(rate)) {
        library_.add(make_benefit_model(rate, base_, r, sp.gp_kernel,
                                        sp.threads, sp.max_observations));
      }
    }
  }

  // Execute with retry: a transient failure (runtime::RescaleFailed) is
  // waited out with capped exponential backoff — the job keeps running on
  // its old configuration meanwhile. Permanent errors propagate.
  double backoff = params_.resilience.rescale_backoff_initial_sec;
  for (int attempt = 0;; ++attempt) {
    try {
      session.reconfigure(decision.applied);
      break;
    } catch (const runtime::RescaleFailed&) {
      ++stats_.rescale_retries;
      ++decision.rescale_retries;
      if (attempt >= params_.resilience.max_rescale_retries) {
        ++stats_.rescale_aborts;
        decision.execute_failed = true;
        decision.applied = session.parallelism();
        break;
      }
      session.run_for(backoff);
      backoff = std::min(backoff * 2.0,
                         params_.resilience.rescale_backoff_max_sec);
    }
  }
  return decision;
}

void AuTraScaleController::maybe_start_lag_drain(
    runtime::StreamingBackend& session,
    std::vector<ControlDecision>& decisions) {
  if (params_.resilience.lag_drain_bound_sec <= 0.0 || lag_draining_) return;

  const runtime::Parallelism saved = session.parallelism();
  const int max_parallelism = trials_->max_parallelism();
  runtime::Parallelism boosted = saved;
  for (int& k : boosted) {
    k = std::min(max_parallelism,
                 static_cast<int>(std::ceil(
                     k * params_.resilience.lag_drain_boost)));
  }
  if (boosted == saved) return;  // Already at capacity: nothing to boost.

  ControlDecision decision;
  decision.time = session.now();
  decision.trigger = ScalingTrigger::kLagDrain;
  decision.algorithm = "lag-drain";
  decision.applied = boosted;
  decision.tenant = params_.tenant;
  // A single attempt only: the drain is an opportunistic optimisation, and
  // a cluster that cannot rescale right after a crash recovery should not
  // be hammered with retries for it.
  try {
    session.reconfigure(boosted);
  } catch (const runtime::RescaleFailed&) {
    ++stats_.rescale_retries;
    decision.rescale_retries = 1;
    decision.execute_failed = true;
    decision.applied = saved;
    decisions.push_back(std::move(decision));
    return;
  }
  decisions.push_back(std::move(decision));
  lag_draining_ = true;
  lag_drain_saved_ = saved;
  lag_drain_windows_left_ = params_.resilience.lag_drain_max_intervals;
  ++stats_.lag_drains;
}

bool AuTraScaleController::lag_drain_step(
    runtime::StreamingBackend& session, const AggregatedMetrics& m,
    std::vector<ControlDecision>& decisions) {
  if (!lag_draining_) return false;

  --lag_drain_windows_left_;
  const double rate = m.input_rate > 0.0
                          ? m.input_rate
                          : trials_->scheduled_rate_at(session.now());
  const double lag_bound = params_.resilience.lag_drain_bound_sec * rate;
  const bool drained = m.kafka_lag <= lag_bound;
  if (!drained && lag_drain_windows_left_ > 0) return true;

  // Restore the pre-drain configuration (single attempt, as above; on
  // failure the job simply keeps the boosted configuration and the
  // over-provisioned trigger will shrink it through the normal path).
  ControlDecision decision;
  decision.time = session.now();
  decision.trigger = ScalingTrigger::kLagDrain;
  decision.algorithm = "lag-drain-restore";
  decision.applied = lag_drain_saved_;
  decision.tenant = params_.tenant;
  try {
    session.reconfigure(lag_drain_saved_);
  } catch (const runtime::RescaleFailed&) {
    ++stats_.rescale_retries;
    decision.rescale_retries = 1;
    decision.execute_failed = true;
    decision.applied = session.parallelism();
  }
  decisions.push_back(std::move(decision));
  lag_draining_ = false;
  return true;
}

void AuTraScaleController::prime(const runtime::StreamingBackend& session) {
  stable_since_ = session.now();
  known_restarts_ = session.restarts();
}

void AuTraScaleController::observe_window(
    runtime::StreamingBackend& session, double t0,
    std::vector<ControlDecision>& decisions) {
  const double t1 = session.now();
  ++stats_.windows;

  // A restart the controller did not command (crash recovery inside the
  // backend) contaminates this window and restarts the stabilisation
  // clock, with optional extra cooldown while the recovered job drains
  // the lag it accumulated during downtime. When the lag-drain trigger
  // is armed, the recovery also enters a temporary over-provisioned
  // configuration instead of waiting the lag out at steady state.
  if (session.restarts() != known_restarts_) {
    known_restarts_ = session.restarts();
    ++stats_.failure_restarts;
    ++stats_.unhealthy_windows;
    stable_since_ = t1 + params_.resilience.failure_cooldown_sec;
    maybe_start_lag_drain(session, decisions);
    known_restarts_ = session.restarts();  // The boost was commanded.
    return;  // Never decide on a window that overlaps the recovery.
  }
  // An active drain owns the loop (before the stabilisation gate: the
  // whole point is to act while the job would otherwise sit in cooldown)
  // and skips Analyze/Plan until the lag bound or interval cap hits.
  if (lag_draining_) {
    const AggregatedMetrics dm =
        aggregator_.aggregate(session.history(), t0, t1, nullptr);
    if (lag_drain_step(session, dm, decisions)) {
      if (!lag_draining_) {
        // Just restored: the commanded restart restabilises as usual.
        stable_since_ = session.now();
        known_restarts_ = session.restarts();
      }
      return;
    }
  }
  if (t1 - stable_since_ < params_.policy_running_time_sec) {
    return;  // Job still stabilising after the last restart.
  }

  // Window health is graded only when a gauge cadence is configured —
  // the guard costs nothing on a healthy deployment.
  WindowHealth health;
  const bool guard = params_.resilience.metric_interval_sec > 0.0;
  const AggregatedMetrics m = aggregator_.aggregate(
      session.history(), t0, t1, guard ? &health : nullptr);
  if (!health.healthy()) {
    ++stats_.unhealthy_windows;
    return;  // Never decide on a window the Monitor path corrupted.
  }
  const ScalingTrigger trigger = analyze(m, session.parallelism());
  if (trigger == ScalingTrigger::kNone) return;

  const double rate = m.input_rate > 0.0
                          ? m.input_rate
                          : trials_->scheduled_rate_at(session.now());
  decisions.push_back(plan_and_execute(session, trigger, rate));
  stable_since_ = session.now();
  known_restarts_ = session.restarts();
}

std::vector<ControlDecision> AuTraScaleController::run(
    runtime::StreamingBackend& session, double until_sec) {
  std::vector<ControlDecision> decisions;
  prime(session);

  while (session.now() < until_sec) {
    session.reset_window();
    const double t0 = session.now();
    session.run_for(
        std::min(params_.policy_interval_sec, until_sec - session.now()));
    observe_window(session, t0, decisions);
  }
  return decisions;
}

}  // namespace autra::core

// Persistence for the Plan stage's model library.
//
// A long-running AuTraScale deployment accumulates benefit models at many
// input rates; losing them on a controller restart means re-paying the
// bootstrap cost at every rate. This module serialises a ModelLibrary to a
// small line-oriented text format and restores it. Models without a gp
// block are refitted from the stored samples; models with one restore the
// exact fitted state (GpRegressor::snapshot/restore), so a controller
// restarted mid-run reproduces its future decisions bit-for-bit — all
// numbers are written with 17 significant digits, which round-trips IEEE
// doubles exactly.
//
// Format (one record per line, '#' comments ignored):
//   model <rate> <num_base> <base...> [<kernel>]
//   sample <config...> <score>
//   gp <signal_var> <length_scale> <noise_var> <jitter> <max_obs>
//      <observe_count> <n> <d>                                   [optional]
//   gplo <d values>            normalisation-box lower corner
//   gphi <d values>            normalisation-box upper corner
//   gpo <x...> <y>             n raw observations (the GP window)
//   gpl <i+1 values>           n rows of the lower Cholesky factor
//   end
// The kernel name is optional on load (older files omit it) and defaults
// to matern52; unknown names fail at parse time, as does any malformed or
// incomplete gp block.
#pragma once

#include <iosfwd>
#include <string>

#include "core/transfer.hpp"

namespace autra::core {

/// Writes the library's models (rates, base configurations, and real
/// samples) to `out`.
void save_library(const ModelLibrary& library, std::ostream& out);

/// Parses a library previously written by save_library and refits every
/// model. Throws std::runtime_error on malformed input.
[[nodiscard]] ModelLibrary load_library(std::istream& in);

/// File-path conveniences; throw std::runtime_error when the file cannot
/// be opened.
void save_library_file(const ModelLibrary& library, const std::string& path);
[[nodiscard]] ModelLibrary load_library_file(const std::string& path);

}  // namespace autra::core

// Evaluation abstraction shared by every auto-scaling policy.
//
// An Evaluator runs a job with one parallelism configuration and reports
// the QoS observed after the policy running time — the "run" of the
// paper's recommend-run-judge loop. The type itself lives in the
// backend-agnostic runtime layer; policies never include a concrete
// engine header, so the same algorithm code drives a fresh-start
// JobRunner, a live session, or a test double.
#pragma once

#include "runtime/backend.hpp"

namespace autra::sim {
class JobRunner;
}  // namespace autra::sim

namespace autra::core {

using Evaluator = runtime::Evaluator;

/// Evaluator backed by fresh-start JobRunner::measure calls. Each call's
/// noise salt derives from the configuration measured plus a per-config
/// rerun counter (runtime::trial_seed_salt), so repeated evaluations
/// differ like real reruns while staying independent of the order calls
/// are issued in — safe for concurrent use from the Plan stage.
[[nodiscard]] Evaluator make_runner_evaluator(const sim::JobRunner& runner);

}  // namespace autra::core

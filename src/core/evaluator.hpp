// Evaluation abstraction shared by every auto-scaling policy.
//
// An Evaluator runs a job with one parallelism configuration and reports the
// QoS observed after the policy running time — the "run" of the paper's
// recommend-run-judge loop. Policies never talk to the simulator directly,
// so the same algorithm code drives a fresh-start JobRunner, a live
// ScalingSession, or a test double.
#pragma once

#include <functional>

#include "streamsim/job_runner.hpp"

namespace autra::core {

using Evaluator = std::function<sim::JobMetrics(const sim::Parallelism&)>;

/// Evaluator backed by fresh-start JobRunner::measure calls, with a
/// distinct noise salt per call so repeated evaluations differ like real
/// reruns.
[[nodiscard]] Evaluator make_runner_evaluator(const sim::JobRunner& runner);

}  // namespace autra::core

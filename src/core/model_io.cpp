#include "core/model_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace autra::core {

void save_library(const ModelLibrary& library, std::ostream& out) {
  out << "# AuTraScale benefit-model library v1\n";
  for (const BenefitModel& model : library.models()) {
    out << "model " << model.rate << " " << model.base.size();
    for (int k : model.base) out << " " << k;
    out << " " << gp::to_string(model.kernel) << "\n";
    for (const SamplePoint& s : model.samples) {
      if (s.estimated()) continue;  // Only real measurements persist.
      out << "sample";
      for (int k : s.config) out << " " << k;
      out << " " << s.score << "\n";
    }
    out << "end\n";
  }
}

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("load_library: line " + std::to_string(line_no) +
                           ": " + what);
}

}  // namespace

ModelLibrary load_library(std::istream& in) {
  ModelLibrary library;
  std::string line;
  std::size_t line_no = 0;
  BenefitModel current;
  bool open = false;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "model") {
      if (open) fail(line_no, "nested model record");
      BenefitModel fresh;
      current = std::move(fresh);
      std::size_t n = 0;
      if (!(ss >> current.rate >> n) || current.rate <= 0.0 || n == 0) {
        fail(line_no, "bad model header");
      }
      current.base.resize(n);
      for (int& k : current.base) {
        if (!(ss >> k) || k < 1) fail(line_no, "bad base configuration");
      }
      // Optional trailing kernel name (absent in files written before the
      // kernel was persisted; those default to Matern 5/2).
      if (std::string kernel_name; ss >> kernel_name) {
        try {
          current.kernel = gp::parse_kernel_kind(kernel_name);
        } catch (const std::invalid_argument& e) {
          fail(line_no, e.what());
        }
      }
      open = true;
    } else if (tag == "sample") {
      if (!open) fail(line_no, "sample outside model record");
      SamplePoint s;
      s.config.resize(current.base.size());
      for (int& k : s.config) {
        if (!(ss >> k) || k < 1) fail(line_no, "bad sample configuration");
      }
      if (!(ss >> s.score)) fail(line_no, "missing sample score");
      // Stored samples were real measurements; the metrics themselves are
      // not persisted, so mark them with an empty snapshot.
      s.metrics = runtime::JobMetrics{};
      current.samples.push_back(std::move(s));
    } else if (tag == "end") {
      if (!open) fail(line_no, "end without model");
      if (current.samples.empty()) fail(line_no, "model without samples");
      library.add(std::move(current));
      open = false;
    } else {
      fail(line_no, "unknown record '" + tag + "'");
    }
  }
  if (open) fail(line_no, "unterminated model record");
  return library;
}

void save_library_file(const ModelLibrary& library, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_library_file: cannot open " + path);
  }
  save_library(library, out);
}

ModelLibrary load_library_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_library_file: cannot open " + path);
  }
  return load_library(in);
}

}  // namespace autra::core

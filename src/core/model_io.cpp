#include "core/model_io.hpp"

#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace autra::core {

void save_library(const ModelLibrary& library, std::ostream& out) {
  // 17 significant digits round-trip IEEE doubles exactly; the restored
  // library must reproduce the live controller's decisions bit-for-bit.
  out.precision(std::numeric_limits<double>::max_digits10);
  out << "# AuTraScale benefit-model library v1\n";
  for (const BenefitModel& model : library.models()) {
    out << "model " << model.rate << " " << model.base.size();
    for (int k : model.base) out << " " << k;
    out << " " << gp::to_string(model.kernel) << "\n";
    for (const SamplePoint& s : model.samples) {
      if (s.estimated()) continue;  // Only real measurements persist.
      out << "sample";
      for (int k : s.config) out << " " << k;
      out << " " << s.score << "\n";
    }
    if (model.gp.is_fitted()) {
      const gp::GpSnapshot snap = model.gp.snapshot();
      const std::size_t n = snap.x.rows();
      const std::size_t d = snap.x.cols();
      out << "gp " << snap.signal_variance << " " << snap.length_scale << " "
          << snap.noise_variance << " " << snap.jitter << " "
          << model.max_observations << " " << snap.observe_count << " " << n
          << " " << d << "\n";
      out << "gplo";
      for (double v : snap.x_lo) out << " " << v;
      out << "\ngphi";
      for (double v : snap.x_hi) out << " " << v;
      out << "\n";
      for (std::size_t i = 0; i < n; ++i) {
        out << "gpo";
        for (std::size_t j = 0; j < d; ++j) out << " " << snap.x(i, j);
        out << " " << snap.y[i] << "\n";
      }
      for (std::size_t i = 0; i < n; ++i) {
        out << "gpl";
        for (std::size_t j = 0; j <= i; ++j) out << " " << snap.l(i, j);
        out << "\n";
      }
    }
    out << "end\n";
  }
}

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("load_library: line " + std::to_string(line_no) +
                           ": " + what);
}

}  // namespace

ModelLibrary load_library(std::istream& in) {
  ModelLibrary library;
  std::string line;
  std::size_t line_no = 0;
  BenefitModel current;
  bool open = false;

  // In-progress gp block of the current model (absent in older files).
  std::optional<gp::GpSnapshot> snap;
  std::size_t gp_n = 0, gp_d = 0;
  std::size_t gp_obs_read = 0, gp_rows_read = 0;
  bool gp_box_read = false;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line.front() == '#') continue;
    std::istringstream ss(line);
    std::string tag;
    ss >> tag;
    if (tag == "model") {
      if (open) fail(line_no, "nested model record");
      BenefitModel fresh;
      current = std::move(fresh);
      snap.reset();
      std::size_t n = 0;
      if (!(ss >> current.rate >> n) || current.rate <= 0.0 || n == 0) {
        fail(line_no, "bad model header");
      }
      current.base.resize(n);
      for (int& k : current.base) {
        if (!(ss >> k) || k < 1) fail(line_no, "bad base configuration");
      }
      // Optional trailing kernel name (absent in files written before the
      // kernel was persisted; those default to Matern 5/2).
      if (std::string kernel_name; ss >> kernel_name) {
        try {
          current.kernel = gp::parse_kernel_kind(kernel_name);
        } catch (const std::invalid_argument& e) {
          fail(line_no, e.what());
        }
      }
      open = true;
    } else if (tag == "sample") {
      if (!open) fail(line_no, "sample outside model record");
      SamplePoint s;
      s.config.resize(current.base.size());
      for (int& k : s.config) {
        if (!(ss >> k) || k < 1) fail(line_no, "bad sample configuration");
      }
      if (!(ss >> s.score)) fail(line_no, "missing sample score");
      // Stored samples were real measurements; the metrics themselves are
      // not persisted, so mark them with an empty snapshot.
      s.metrics = runtime::JobMetrics{};
      current.samples.push_back(std::move(s));
    } else if (tag == "gp") {
      if (!open) fail(line_no, "gp outside model record");
      if (snap.has_value()) fail(line_no, "duplicate gp record");
      snap.emplace();
      snap->kernel = current.kernel;
      int max_obs = 0;
      if (!(ss >> snap->signal_variance >> snap->length_scale >>
            snap->noise_variance >> snap->jitter >> max_obs >>
            snap->observe_count >> gp_n >> gp_d) ||
          gp_n == 0 || gp_d == 0 || max_obs < 0) {
        fail(line_no, "bad gp header");
      }
      current.max_observations = max_obs;
      snap->x = linalg::Matrix(gp_n, gp_d);
      snap->y.assign(gp_n, 0.0);
      snap->l = linalg::Matrix(gp_n, gp_n);
      snap->x_lo.clear();
      snap->x_hi.clear();
      gp_obs_read = gp_rows_read = 0;
      gp_box_read = false;
    } else if (tag == "gplo" || tag == "gphi") {
      if (!snap.has_value()) fail(line_no, tag + " outside gp record");
      linalg::Vector& box = tag == "gplo" ? snap->x_lo : snap->x_hi;
      if (!box.empty()) fail(line_no, "duplicate " + tag + " record");
      box.resize(gp_d);
      for (double& v : box) {
        if (!(ss >> v)) fail(line_no, "bad " + tag + " record");
      }
      gp_box_read = !snap->x_lo.empty() && !snap->x_hi.empty();
    } else if (tag == "gpo") {
      if (!snap.has_value()) fail(line_no, "gpo outside gp record");
      if (gp_obs_read >= gp_n) fail(line_no, "too many gpo records");
      for (std::size_t j = 0; j < gp_d; ++j) {
        if (!(ss >> snap->x(gp_obs_read, j))) fail(line_no, "bad gpo record");
      }
      if (!(ss >> snap->y[gp_obs_read])) fail(line_no, "bad gpo record");
      ++gp_obs_read;
    } else if (tag == "gpl") {
      if (!snap.has_value()) fail(line_no, "gpl outside gp record");
      if (gp_rows_read >= gp_n) fail(line_no, "too many gpl records");
      for (std::size_t j = 0; j <= gp_rows_read; ++j) {
        if (!(ss >> snap->l(gp_rows_read, j))) fail(line_no, "bad gpl record");
      }
      ++gp_rows_read;
    } else if (tag == "end") {
      if (!open) fail(line_no, "end without model");
      if (current.samples.empty()) fail(line_no, "model without samples");
      if (snap.has_value()) {
        if (!gp_box_read || gp_obs_read != gp_n || gp_rows_read != gp_n) {
          fail(line_no, "incomplete gp record");
        }
        gp::GpConfig cfg = current.gp.config();
        cfg.kernel = current.kernel;
        cfg.threads = current.threads;
        cfg.max_observations = current.max_observations;
        current.gp = gp::GpRegressor(cfg);
        try {
          current.gp.restore(*snap);
        } catch (const std::invalid_argument& e) {
          fail(line_no, e.what());
        }
        snap.reset();
      }
      library.add(std::move(current));
      open = false;
    } else {
      fail(line_no, "unknown record '" + tag + "'");
    }
  }
  if (open) fail(line_no, "unterminated model record");
  return library;
}

void save_library_file(const ModelLibrary& library, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("save_library_file: cannot open " + path);
  }
  save_library(library, out);
}

ModelLibrary load_library_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_library_file: cannot open " + path);
  }
  return load_library(in);
}

}  // namespace autra::core

#include "core/scoring.hpp"

#include <algorithm>
#include <stdexcept>

namespace autra::core {

double benefit_score(const runtime::Parallelism& current, double latency_ms,
                     const ScoreParams& params) {
  if (params.alpha < 0.0 || params.alpha > 1.0) {
    throw std::invalid_argument("benefit_score: alpha outside [0,1]");
  }
  if (params.target_latency_ms <= 0.0) {
    throw std::invalid_argument("benefit_score: non-positive latency target");
  }
  if (params.base.empty() || params.base.size() != current.size()) {
    throw std::invalid_argument(
        "benefit_score: base/current configuration size mismatch");
  }

  // A job that measured zero latency (no records completed yet) is treated
  // as meeting the target: the resource term then dominates.
  const double latency_term =
      latency_ms <= 0.0
          ? 1.0
          : std::min(1.0, params.target_latency_ms / latency_ms);

  double resource_term = 0.0;
  for (std::size_t i = 0; i < current.size(); ++i) {
    if (current[i] < 1 || params.base[i] < 1) {
      throw std::invalid_argument("benefit_score: parallelism below 1");
    }
    resource_term += std::min(
        1.0, static_cast<double>(params.base[i]) / current[i]);
  }
  resource_term /= static_cast<double>(current.size());

  return params.alpha * latency_term + (1.0 - params.alpha) * resource_term;
}

double benefit_score(const runtime::JobMetrics& metrics,
                     const ScoreParams& params) {
  return benefit_score(metrics.parallelism, metrics.latency_ms, params);
}

double score_threshold(double alpha, double over_allocation_w) {
  if (alpha < 0.0 || alpha > 1.0) {
    throw std::invalid_argument("score_threshold: alpha outside [0,1]");
  }
  if (over_allocation_w < 0.0) {
    throw std::invalid_argument("score_threshold: negative w");
  }
  return alpha + (1.0 - alpha) / (1.0 + over_allocation_w);
}

}  // namespace autra::core

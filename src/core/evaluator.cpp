#include "core/evaluator.hpp"

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "streamsim/job_runner.hpp"

namespace autra::core {

Evaluator make_runner_evaluator(const sim::JobRunner& runner) {
  // Per-config deterministic salts (plus a rerun counter so repeating a
  // config draws fresh noise): results depend only on *what* is measured
  // and how many times, never on the order concurrent evaluations land in.
  struct Reruns {
    std::mutex mu;
    std::map<runtime::Parallelism, std::uint64_t> counts;
  };
  auto reruns = std::make_shared<Reruns>();
  return [&runner, reruns](const runtime::Parallelism& p) {
    std::uint64_t rerun = 0;
    {
      const std::lock_guard<std::mutex> lock(reruns->mu);
      rerun = reruns->counts[p]++;
    }
    return runner.measure(p, runtime::trial_seed_salt(p) + rerun);
  };
}

}  // namespace autra::core

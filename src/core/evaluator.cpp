#include "core/evaluator.hpp"

#include <memory>

#include "streamsim/job_runner.hpp"

namespace autra::core {

Evaluator make_runner_evaluator(const sim::JobRunner& runner) {
  auto salt = std::make_shared<std::uint64_t>(0);
  return [&runner, salt](const runtime::Parallelism& p) {
    return runner.measure(p, (*salt)++);
  };
}

}  // namespace autra::core

#include "core/transfer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/bootstrap.hpp"

namespace autra::core {

namespace {

linalg::Matrix features_of(const std::vector<SamplePoint>& samples) {
  if (samples.empty()) {
    throw std::invalid_argument("BenefitModel: no samples");
  }
  const std::size_t d = samples.front().config.size();
  linalg::Matrix x(samples.size(), d);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (samples[i].config.size() != d) {
      throw std::invalid_argument("BenefitModel: ragged sample configs");
    }
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = static_cast<double>(samples[i].config[j]);
    }
  }
  return x;
}

std::vector<double> config_features(const runtime::Parallelism& config) {
  return {config.begin(), config.end()};
}

}  // namespace

void BenefitModel::fit() {
  const linalg::Matrix x = features_of(samples);
  linalg::Vector y(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) y[i] = samples[i].score;
  gp::GpConfig cfg = gp.config();
  cfg.kernel = kernel;
  cfg.threads = threads;
  cfg.max_observations = max_observations;
  gp = gp::GpRegressor(cfg);
  gp.fit(x, y);
}

void BenefitModel::observe(const SamplePoint& sample) {
  samples.push_back(sample);
  if (!gp.is_fitted()) {
    fit();
    return;
  }
  gp.observe(config_features(sample.config), sample.score);
  // The GP evicts its own window; mirror it so `samples` stays the exact
  // training set (model I/O and refits rebuild from it).
  while (samples.size() > gp.num_samples()) {
    samples.erase(samples.begin());
  }
}

double BenefitModel::predict_mean(const runtime::Parallelism& config) const {
  return gp.predict(config_features(config)).mean;
}

BenefitModel make_benefit_model(double rate, const runtime::Parallelism& base,
                                const SteadyRateResult& result,
                                gp::KernelKind kernel, int threads,
                                int max_observations) {
  BenefitModel model;
  model.rate = rate;
  model.base = base;
  model.kernel = kernel;
  model.threads = threads;
  model.max_observations = max_observations;
  for (const SamplePoint& s : result.history) {
    if (!s.estimated()) model.samples.push_back(s);
  }
  model.fit();
  return model;
}

void ModelLibrary::add(BenefitModel model) {
  if (!model.gp.is_fitted()) model.fit();
  models_.push_back(std::move(model));
}

const BenefitModel* ModelLibrary::closest(double rate) const {
  const BenefitModel* best = nullptr;
  double best_d = 0.0;
  for (const BenefitModel& m : models_) {
    const double d = std::abs(m.rate - rate);
    if (best == nullptr || d < best_d) {
      best = &m;
      best_d = d;
    }
  }
  return best;
}

BenefitModel* ModelLibrary::find_for(double rate, double tolerance) {
  if (rate <= 0.0) return nullptr;
  BenefitModel* best = nullptr;
  double best_d = 0.0;
  for (BenefitModel& m : models_) {
    const double d = std::abs(m.rate - rate);
    if (best == nullptr || d < best_d) {
      best = &m;
      best_d = d;
    }
  }
  if (best == nullptr || best_d / rate > tolerance) return nullptr;
  return best;
}

bool ModelLibrary::has_model_for(double rate, double tolerance) const {
  if (rate <= 0.0) return false;
  const BenefitModel* m = closest(rate);
  return m != nullptr && std::abs(m->rate - rate) / rate <= tolerance;
}

TransferResult run_transfer(const Evaluator& evaluate,
                            const runtime::Parallelism& base,
                            const BenefitModel& prior,
                            const TransferParams& params,
                            std::vector<SamplePoint> initial_real) {
  if (!prior.gp.is_fitted()) {
    throw std::invalid_argument("run_transfer: prior model not fitted");
  }
  if (params.n_num < 1 || params.max_transfer_evaluations < 1) {
    throw std::invalid_argument("run_transfer: bad loop bounds");
  }

  const SteadyRateParams& sp = params.steady;
  const ScoreParams score_params{.target_latency_ms = sp.target_latency_ms,
                                 .alpha = sp.alpha,
                                 .base = base};

  TransferResult result;
  std::vector<SamplePoint>& real = result.real_samples;
  real = std::move(initial_real);

  const auto measure = [&](const runtime::Parallelism& config)
      -> const SamplePoint& {
    runtime::JobMetrics m = evaluate(config);
    SamplePoint s;
    s.config = config;
    s.score = benefit_score(m, score_params);
    s.metrics = std::move(m);
    real.push_back(std::move(s));
    ++result.real_evaluations;
    return real.back();
  };

  // Seed the residual model with at least one real observation.
  if (real.empty()) {
    const SamplePoint& s = measure(base);
    if (meets_requirements(s, sp)) {
      result.converged = true;
      result.best = s.config;
      result.best_score = s.score;
      result.best_metrics = *s.metrics;
      return result;
    }
  }

  const std::vector<runtime::Parallelism> bootstrap =
      bootstrap_samples(base, sp.max_parallelism, sp.bootstrap_m);

  while (result.real_evaluations < params.max_transfer_evaluations) {
    // Residual dataset: s_t - mu_{c-1}(k_t) over the real samples.
    std::vector<SamplePoint> residual_samples = real;
    for (SamplePoint& s : residual_samples) {
      s.score -= prior.predict_mean(s.config);
    }
    BenefitModel residual;
    residual.kernel = sp.gp_kernel;
    residual.threads = sp.threads;
    residual.samples = std::move(residual_samples);
    residual.fit();

    // Estimated scores for the bootstrap set: mu_c = mu_{c-1} + residual.
    std::vector<SamplePoint> dataset = real;
    for (const runtime::Parallelism& x : bootstrap) {
      const bool measured =
          std::any_of(real.begin(), real.end(), [&](const SamplePoint& s) {
            return s.config == x;
          });
      if (measured) continue;
      SamplePoint est;
      est.config = x;
      est.score = prior.predict_mean(x) + residual.predict_mean(x);
      dataset.push_back(std::move(est));
    }

    // One Algorithm-1 recommendation on the mixed dataset, then one real
    // run of the recommended configuration.
    const runtime::Parallelism next = recommend_next(dataset, base, sp);
    const bool repeat =
        std::any_of(real.begin(), real.end(), [&](const SamplePoint& s) {
          return s.config == next;
        });
    if (!repeat) {
      const SamplePoint& s = measure(next);
      if (meets_requirements(s, sp)) {
        result.converged = true;
        result.best = s.config;
        result.best_score = s.score;
        result.best_metrics = *s.metrics;
        return result;
      }
    }

    if (repeat ||
        static_cast<int>(real.size()) >= params.n_num) {
      // Enough real data (or the model is exploited): hand over to plain
      // Algorithm 1 on real samples only.
      result.switched_to_algorithm1 = true;
      SteadyRateParams fallback = sp;
      fallback.max_evaluations =
          std::max(1, params.max_transfer_evaluations -
                          result.real_evaluations);
      const SteadyRateResult r = run_steady_rate(
          evaluate, base, fallback, real, /*skip_bootstrap=*/true);
      result.real_evaluations += r.bootstrap_evaluations + r.bo_iterations;
      result.converged = r.converged;
      result.best = r.best;
      result.best_score = r.best_score;
      result.best_metrics = r.best_metrics;
      for (const SamplePoint& s : r.history) {
        if (!s.estimated() &&
            std::none_of(real.begin(), real.end(), [&](const SamplePoint& e) {
              return e.config == s.config;
            })) {
          real.push_back(s);
        }
      }
      return result;
    }
  }

  // Budget exhausted: best-effort selection by feasibility tier.
  const SamplePoint* best = pick_best_fallback(real, sp);
  result.best = best->config;
  result.best_score = best->score;
  result.best_metrics = *best->metrics;
  return result;
}

}  // namespace autra::core

// Bootstrap sample construction for the BO surrogate (paper Sec. III-D).
//
// Two sample families seed the Gaussian process:
//   1. M uniform samples: every operator at the same parallelism, swept from
//      k'_max (the largest per-operator throughput-optimal parallelism) up
//      to P_max in M-1 equal intervals — these teach the model the global
//      latency/resource trend and reveal whether the cluster can meet QoS
//      at all.
//   2. N single-operator samples: operator j at P_max, all others at the
//      base configuration k' — these expose each operator's individual
//      impact on QoS.
#pragma once

#include <vector>

#include "streamsim/cluster.hpp"

namespace autra::core {

/// Builds the M + N bootstrap configurations. `base` is the
/// throughput-optimal configuration k'; `max_parallelism` is P_max;
/// `m_uniform` is M (>= 1). Duplicate configurations are removed while
/// preserving order. Throws std::invalid_argument on empty base, m < 1, or
/// P_max below every base entry's requirement.
[[nodiscard]] std::vector<runtime::Parallelism> bootstrap_samples(
    const runtime::Parallelism& base, int max_parallelism, int m_uniform);

}  // namespace autra::core

// Algorithm 1: Bayesian optimisation at a steady input data rate
// (paper Sec. III-E).
//
// Given the base configuration k' from the throughput-optimisation step,
// the algorithm searches the integer box [k'_i, P_max]^N for the
// configuration that meets the latency target with the fewest resources:
//
//   1. evaluate the bootstrap samples (Sec. III-D) and score them (Eq. 4);
//   2. fit the Matern-5/2 GP surrogate on (configuration, score) pairs;
//   3. repeat: recommend the next configuration by Expected Improvement
//      (Eqs. 5-7), run it for the policy running time, score it, update the
//      model — until a *really measured* configuration meets the latency
//      target, the throughput target, and the benefit-score threshold
//      (Eq. 9) concurrently, or the evaluation budget runs out.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "bayesopt/bayes_opt.hpp"
#include "core/evaluator.hpp"
#include "core/scoring.hpp"

namespace autra::core {

struct SteadyRateParams {
  double target_latency_ms = 0.0;
  /// Records/s the job must sustain; <= 0 means "the input data rate as
  /// measured during evaluation".
  double target_throughput = 0.0;
  double throughput_tolerance = 0.03;
  double alpha = 0.5;
  /// Termination threshold s_t on the benefit score. The paper's
  /// experiments set 0.9 (equivalently w = 1/3 more resources allowed at
  /// alpha = 0.5, Eq. 9); use score_threshold() to derive it from w.
  double score_threshold = 0.9;
  /// EI exploration parameter xi (Eq. 6).
  double xi = 0.01;
  /// Surrogate covariance kernel (the paper uses Matern 5/2). Code that
  /// starts from a name parses it with gp::parse_kernel_kind.
  gp::KernelKind gp_kernel = gp::KernelKind::kMatern52;
  /// Worker threads for the Plan stage (bootstrap fan-out, GP grid search,
  /// EI batch scoring). <= 0 uses the process default (AUTRA_THREADS or
  /// hardware_concurrency); 1 forces the serial path. Decisions are
  /// bit-identical at any value.
  int threads = 0;
  /// Number of uniform bootstrap samples M (family-2 adds N more).
  int bootstrap_m = 5;
  int max_parallelism = 1;
  /// Hard budget on real evaluations (bootstrap included).
  int max_evaluations = 40;
  std::uint64_t seed = 42;
  /// When true, the BO surrogate incorporates new samples through the
  /// O(n^2) incremental factor update between rounds instead of refitting
  /// from scratch, and the controller warm-starts Algorithm 1 from the
  /// model library instead of re-bootstrapping. Off by default: the
  /// incremental factor differs from a refit in the low bits, which would
  /// perturb committed golden decision streams.
  bool incremental = false;
  /// Observation-window cap on the surrogate when incremental is set: once
  /// full, the oldest sample is evicted (O(cap^2) downdate) before the new
  /// one is appended, bounding always-on controller state. 0 = unbounded.
  int max_observations = 0;
};

/// One evaluated (or estimated, in the transfer path) sample.
struct SamplePoint {
  runtime::Parallelism config;
  double score = 0.0;
  /// Metrics are absent for estimated samples injected by Algorithm 2.
  std::optional<runtime::JobMetrics> metrics;
  [[nodiscard]] bool estimated() const noexcept { return !metrics.has_value(); }
};

struct SteadyRateResult {
  runtime::Parallelism best;
  double best_score = 0.0;
  runtime::JobMetrics best_metrics;
  /// Real evaluations spent on bootstrap samples.
  int bootstrap_evaluations = 0;
  /// Real evaluations spent in the BO loop.
  int bo_iterations = 0;
  bool converged = false;
  /// Every sample the model saw, in insertion order (estimated included).
  std::vector<SamplePoint> history;
};

/// Does this really-measured sample satisfy all three termination
/// conditions (latency, throughput, benefit score)?
[[nodiscard]] bool meets_requirements(const SamplePoint& sample,
                                      const SteadyRateParams& params);

/// Best-effort selection when the evaluation budget runs out before any
/// sample meets every requirement: prefers samples by feasibility tier
/// (latency+throughput ok > latency ok > throughput ok > neither), breaking
/// ties by benefit score. Returns nullptr when no real sample exists.
[[nodiscard]] const SamplePoint* pick_best_fallback(
    std::span<const SamplePoint> samples, const SteadyRateParams& params);

/// Runs Algorithm 1.
///
/// `base` is the throughput-optimal configuration k' that bounds the search
/// space from below. `seed_samples` pre-populates the surrogate (used by
/// Algorithm 2 to inject estimated samples and by warm restarts); bootstrap
/// evaluation is skipped when `skip_bootstrap` is set (the transfer path
/// provides estimates of the bootstrap set instead of running it).
[[nodiscard]] SteadyRateResult run_steady_rate(
    const Evaluator& evaluate, const runtime::Parallelism& base,
    const SteadyRateParams& params,
    std::span<const SamplePoint> seed_samples = {},
    bool skip_bootstrap = false);

/// A single model-driven recommendation from a sample set, without running
/// anything: fits the surrogate on `samples` and returns the EI-optimal
/// next configuration. This is the "Algorithm 1 call" on line 14 of
/// Algorithm 2 and the <1 ms "Algorithm1_use" row of Table IV.
[[nodiscard]] runtime::Parallelism recommend_next(
    std::span<const SamplePoint> samples, const runtime::Parallelism& base,
    const SteadyRateParams& params);

}  // namespace autra::core

#include "core/throughput_opt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace autra::core {

namespace {
constexpr double kEps = 1e-9;
}

runtime::Parallelism scale_step(const sim::Topology& topology,
                            const runtime::JobMetrics& metrics,
                            double target_rate, int max_parallelism) {
  const std::size_t n = topology.num_operators();
  if (metrics.operators.size() != n) {
    throw std::invalid_argument("scale_step: metrics/topology mismatch");
  }
  // Propagate the target input rate down the DAG using *measured*
  // selectivities (output rate / input rate), falling back to the spec'd
  // selectivity when an operator saw no traffic.
  std::vector<double> target_in(n, 0.0);
  std::vector<double> target_out(n, 0.0);
  runtime::Parallelism rec(n, 1);
  for (std::size_t i : topology.topological_order()) {
    const runtime::OperatorRates& r = metrics.operators[i];
    if (topology.op(i).kind == sim::OperatorKind::kSource) {
      target_in[i] = target_rate;
    }
    // else: accumulated from upstream below.

    double selectivity = topology.op(i).selectivity;
    if (r.total_input_rate > kEps && r.total_output_rate >= 0.0) {
      selectivity = r.total_output_rate / r.total_input_rate;
    }
    target_out[i] = target_in[i] * selectivity;
    for (std::size_t d : topology.downstream(i)) {
      // Fan-out duplicates the stream to each consumer.
      target_in[d] += target_out[i];
    }

    const double v = r.true_rate_per_instance;
    if (v <= kEps) {
      throw std::logic_error("scale_step: operator '" + topology.op(i).name +
                             "' reported a non-positive true rate");
    }
    const int k = static_cast<int>(std::ceil(target_in[i] / v - kEps));
    rec[i] = std::clamp(k, 1, max_parallelism);
  }
  return rec;
}

ThroughputOptimizer::ThroughputOptimizer(const sim::Topology& topology,
                                         ThroughputOptParams params)
    : topology_(topology), params_(params) {
  if (params_.max_iterations < 1 || params_.max_parallelism < 1) {
    throw std::invalid_argument("ThroughputOptimizer: bad parameters");
  }
  if (params_.tolerance < 0.0) {
    throw std::invalid_argument("ThroughputOptimizer: negative tolerance");
  }
}

ThroughputOptResult ThroughputOptimizer::optimize(
    const Evaluator& evaluate, const runtime::Parallelism& initial) const {
  if (initial.size() != topology_.num_operators()) {
    throw std::invalid_argument(
        "ThroughputOptimizer: initial configuration size mismatch");
  }
  ThroughputOptResult result;
  runtime::Parallelism current = initial;

  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    runtime::JobMetrics m = evaluate(current);
    ++result.iterations;

    const double target = params_.target_throughput > 0.0
                              ? params_.target_throughput
                              : m.input_rate;
    const runtime::Parallelism rec =
        scale_step(topology_, m, target, params_.max_parallelism);
    result.trajectory.push_back({current, std::move(m), rec});

    const double achieved = result.trajectory.back().metrics.throughput;
    if (rec == current) {
      // Converged: the measurement reproduces the current configuration.
      // If the target is met this is the minimal configuration k'; if not,
      // an external factor caps the throughput — AuTraScale's extra
      // termination condition (Fig. 5(b)).
      result.reached_target = achieved + target * params_.tolerance >= target;
      result.externally_limited = !result.reached_target;
      break;
    }
    // Note: we do NOT stop merely because the target is met — from an
    // over-provisioned start Eq. 3 keeps shrinking the configuration until
    // it reaches the minimal k', which is what the benefit score needs.
    const bool seen = std::any_of(
        result.trajectory.begin(), result.trajectory.end(),
        [&](const ThroughputIteration& it) { return it.config == rec; });
    if (seen) {
      // Oscillation between measured configurations: settle via review.
      result.reached_target = achieved + target * params_.tolerance >= target;
      result.externally_limited = !result.reached_target;
      break;
    }
    current = rec;
  }

  // Trajectory review. Preferred: configurations that sustained the target
  // rate *without* slack — a configuration that only reaches it within the
  // tolerance is saturated, and a saturated base drags heavy backpressure
  // latency into the BO stage. Among qualified configurations (or, on
  // externally capped jobs where none qualify, those within the tolerance
  // band of the maximum achieved throughput), pick the least total
  // parallelism.
  double max_tput = 0.0;
  double last_target = params_.target_throughput;
  for (const ThroughputIteration& it : result.trajectory) {
    max_tput = std::max(max_tput, it.metrics.throughput);
    if (params_.target_throughput <= 0.0) {
      last_target = it.metrics.input_rate;
    }
  }
  const double strict = last_target * (1.0 - 1e-4);
  const bool any_strict = std::any_of(
      result.trajectory.begin(), result.trajectory.end(),
      [&](const ThroughputIteration& it) {
        return it.metrics.throughput >= strict;
      });
  const double band =
      any_strict ? strict : max_tput * (1.0 - params_.tolerance);
  const ThroughputIteration* chosen = nullptr;
  int chosen_total = 0;
  for (const ThroughputIteration& it : result.trajectory) {
    if (it.metrics.throughput + kEps < band) continue;
    int total = 0;
    for (int k : it.config) total += k;
    if (chosen == nullptr || total < chosen_total) {
      chosen = &it;
      chosen_total = total;
    }
  }
  if (chosen == nullptr) {
    throw std::logic_error("ThroughputOptimizer: empty trajectory");
  }
  result.best = chosen->config;
  result.best_throughput = chosen->metrics.throughput;
  return result;
}

}  // namespace autra::core

// Algorithm 2: transfer learning when the input data rate changes
// (paper Sec. III-F).
//
// A benefit model is bound to the rate it was trained at. When the rate
// changes, training a new model from scratch costs many real job runs, so
// AuTraScale instead:
//
//   1. picks the library model M_{c-1} whose rate is closest to the new
//      rate;
//   2. fits a *residual* GP M'_c on the few real samples available at the
//      new rate, targeting s_t - mu_{c-1}(k_t);
//   3. synthesises estimated scores mu_c(x) = mu_{c-1}(x) + M'_c(x) for the
//      whole bootstrap set — replacing real bootstrap runs with free
//      predictions;
//   4. asks Algorithm 1's recommender for the next configuration, runs only
//      that one for real, and repeats;
//   5. once N_num real samples exist, switches to plain Algorithm 1 on real
//      data only (estimates would start hurting a well-trained model).
#pragma once

#include <optional>
#include <vector>

#include "core/steady_rate.hpp"
#include "gp/gp_regressor.hpp"

namespace autra::core {

/// A trained benefit model bound to one input data rate.
struct BenefitModel {
  double rate = 0.0;  ///< Records/s the model was trained at.
  runtime::Parallelism base;  ///< Base configuration k' at that rate.
  std::vector<SamplePoint> samples;  ///< Real samples it was trained on.
  /// Surrogate covariance kernel used by fit().
  gp::KernelKind kernel = gp::KernelKind::kMatern52;
  /// Worker threads for fit()'s hyper-parameter search (see GpConfig).
  int threads = 0;
  /// Observation-window cap forwarded to the GP for observe(); 0 =
  /// unbounded. When the GP evicts, `samples` is trimmed in lockstep.
  int max_observations = 0;
  gp::GpRegressor gp;  ///< Fitted on (config, score).

  /// Rebuilds `gp` with `kernel` and fits it from `samples`; throws
  /// std::invalid_argument when empty.
  void fit();

  /// Folds one new sample into the model through the GP's O(n^2)
  /// incremental path (full fit when the model is not fitted yet), keeping
  /// `samples` and the GP window in lockstep under max_observations.
  void observe(const SamplePoint& sample);

  [[nodiscard]] double predict_mean(const runtime::Parallelism& config) const;
};

/// Builds a benefit model from an Algorithm 1 result.
[[nodiscard]] BenefitModel make_benefit_model(
    double rate, const runtime::Parallelism& base,
    const SteadyRateResult& result,
    gp::KernelKind kernel = gp::KernelKind::kMatern52, int threads = 0,
    int max_observations = 0);

/// The Plan stage's model library: benefit models keyed by rate.
class ModelLibrary {
 public:
  void add(BenefitModel model);

  /// Model whose rate is closest to `rate`; nullptr when empty.
  [[nodiscard]] const BenefitModel* closest(double rate) const;

  /// Mutable model within `tolerance` relative rate distance of `rate`;
  /// nullptr when none qualifies. The warm-start path feeds new samples
  /// into the returned model via BenefitModel::observe.
  [[nodiscard]] BenefitModel* find_for(double rate, double tolerance = 0.05);

  /// True if a model exists within `tolerance` relative rate distance —
  /// the Scaling Manager's "is there a model suitable for the current
  /// rate?" check.
  [[nodiscard]] bool has_model_for(double rate,
                                   double tolerance = 0.05) const;

  [[nodiscard]] std::size_t size() const noexcept { return models_.size(); }
  [[nodiscard]] const std::vector<BenefitModel>& models() const noexcept {
    return models_;
  }

 private:
  std::vector<BenefitModel> models_;
};

struct TransferParams {
  SteadyRateParams steady;
  /// Real-sample count at which Algorithm 2 hands over to Algorithm 1.
  /// The paper recommends at least the initial (bootstrap) set size.
  int n_num = 10;
  /// Real evaluations allowed inside the transfer loop.
  int max_transfer_evaluations = 15;
};

struct TransferResult {
  runtime::Parallelism best;
  double best_score = 0.0;
  runtime::JobMetrics best_metrics;
  /// Real evaluations spent (the iteration count of Fig. 8(a)).
  int real_evaluations = 0;
  bool converged = false;
  /// True when the loop fell back to plain Algorithm 1 (num >= N_num).
  bool switched_to_algorithm1 = false;
  /// Real samples collected at the new rate, usable to register a new
  /// benefit model in the library.
  std::vector<SamplePoint> real_samples;
};

/// Runs Algorithm 2 at a new rate.
///
/// `base` is the throughput-optimal configuration k' *at the new rate*
/// (the paper recomputes it via throughput optimisation before
/// transferring). `prior` is the closest library model. Initial real
/// samples may be supplied in `initial_real` (e.g. the measurement of the
/// base configuration); when empty, the base configuration is evaluated
/// first to seed the residual model.
[[nodiscard]] TransferResult run_transfer(
    const Evaluator& evaluate, const runtime::Parallelism& base,
    const BenefitModel& prior, const TransferParams& params,
    std::vector<SamplePoint> initial_real = {});

}  // namespace autra::core

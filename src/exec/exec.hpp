// Parallel execution layer for the Plan stage.
//
// An ExecContext carries a thread count — resolved from an explicit value,
// the AUTRA_THREADS environment variable, or hardware_concurrency — and the
// primitives below fan independent index-addressed work out over the shared
// ThreadPool:
//
//   parallel_for     — run fn(i) for i in [0, n)
//   parallel_map     — out[i] = fn(i), results stored by index
//   parallel_reduce  — map per index, then fold *in index order*
//
// Determinism contract: every primitive produces results that are
// bit-identical regardless of the thread count, because each index's work
// is independent and all reductions fold in index order on the calling
// thread. A context with one thread is guaranteed to run inline on the
// calling thread without touching the pool, so `ExecContext::serial()`
// is always a safe fallback.
//
// Error handling: the first exception thrown by any index is captured,
// remaining indices are abandoned, and the exception is rethrown on the
// calling thread once every worker has left the region.
//
// Nesting: opening a parallel (threads > 1) region from inside another
// parallel region throws std::logic_error — worker threads must never
// block on a pool they are part of. Serial contexts nest freely.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

namespace autra::exec {

/// Process default thread count: AUTRA_THREADS when set to a positive
/// integer, otherwise std::thread::hardware_concurrency(), floored at 1.
/// Re-read from the environment on every call (it is consulted only at
/// context construction).
[[nodiscard]] unsigned default_threads();

/// A thread-count handle passed to the parallel primitives. Cheap to copy;
/// the backing pool is process-wide and created on demand.
class ExecContext {
 public:
  /// `threads` <= 0 resolves to default_threads(); 1 guarantees the serial
  /// inline path; larger values may oversubscribe the machine (useful for
  /// determinism tests, harmless for correctness).
  explicit ExecContext(int threads = 0);

  /// The guaranteed-serial context.
  [[nodiscard]] static ExecContext serial() { return ExecContext(1); }

  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

 private:
  unsigned threads_;
};

namespace detail {

/// True while the calling thread is executing inside a parallel region
/// (caller or worker side) — the nested-region guard.
[[nodiscard]] bool in_parallel_region() noexcept;

/// Runs body(i) for i in [0, n) on `threads` threads (the caller
/// participates; up to threads-1 pool workers help). Throws
/// std::logic_error when called from inside a parallel region.
void run_indexed(unsigned threads, std::size_t n,
                 const std::function<void(std::size_t)>& body);

}  // namespace detail

/// Runs fn(i) for every i in [0, n). fn must not touch shared mutable
/// state except through its own index (results should be written to
/// index-addressed slots).
template <typename Fn>
void parallel_for(const ExecContext& ctx, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  if (ctx.threads() <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  detail::run_indexed(ctx.threads(), n,
                      [&fn](std::size_t i) { fn(i); });
}

/// out[i] = fn(i) for i in [0, n). The result type must be
/// default-constructible and movable.
template <typename Fn>
[[nodiscard]] auto parallel_map(const ExecContext& ctx, std::size_t n,
                                Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using R = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<R> out(n);
  parallel_for(ctx, n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// acc = fold(acc, map(i)) folded strictly in index order — the ordered
/// reduction that keeps floating-point results identical to a serial loop
/// at any thread count.
template <typename T, typename Map, typename Fold>
[[nodiscard]] T parallel_reduce(const ExecContext& ctx, std::size_t n,
                                T init, Map&& map, Fold&& fold) {
  auto values = parallel_map(ctx, n, std::forward<Map>(map));
  T acc = std::move(init);
  for (auto& v : values) acc = fold(std::move(acc), std::move(v));
  return acc;
}

}  // namespace autra::exec

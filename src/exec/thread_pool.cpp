#include "exec/thread_pool.hpp"

namespace autra::exec {

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::ensure_workers(unsigned n) {
  std::lock_guard<std::mutex> lock(mu_);
  while (threads_.size() < n) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

unsigned ThreadPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<unsigned>(threads_.size());
}

void ThreadPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace autra::exec

// Fixed worker-thread pool backing the Plan stage's parallel primitives.
//
// One process-wide pool is shared by every parallel region (exec.hpp);
// callers never talk to it directly. The pool grows lazily to the largest
// thread count any ExecContext has asked for and joins its workers at
// static destruction, so sanitizer runs see a clean shutdown.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace autra::exec {

class ThreadPool {
 public:
  /// The process-wide pool. Created on first use with zero workers;
  /// parallel regions grow it on demand.
  [[nodiscard]] static ThreadPool& shared();

  ThreadPool() = default;
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Grows the pool to at least `n` workers (never shrinks).
  void ensure_workers(unsigned n);

  [[nodiscard]] unsigned workers() const;

  /// Enqueues `task` for execution on some worker. Every posted task runs
  /// exactly once; there is no cancellation.
  void post(std::function<void()> task);

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stopping_ = false;
};

}  // namespace autra::exec

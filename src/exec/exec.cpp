#include "exec/exec.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "exec/thread_pool.hpp"

namespace autra::exec {

namespace {

thread_local bool tl_in_parallel_region = false;

/// RAII guard marking the current thread as inside a parallel region.
struct RegionGuard {
  RegionGuard() { tl_in_parallel_region = true; }
  ~RegionGuard() { tl_in_parallel_region = false; }
};

/// Shared state of one parallel_for invocation. The caller owns it on the
/// stack conceptually, but helpers hold a shared_ptr so a helper scheduled
/// late (after the work is drained) still finds valid state.
struct Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  unsigned pending_helpers = 0;  // guarded by mu
  std::exception_ptr error;      // guarded by mu

  void work() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        (*body)(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
        }
        // Abandon the remaining indices; in-flight ones finish.
        next.store(n, std::memory_order_relaxed);
      }
    }
  }
};

}  // namespace

unsigned default_threads() {
  if (const char* env = std::getenv("AUTRA_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return static_cast<unsigned>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

ExecContext::ExecContext(int threads)
    : threads_(threads <= 0 ? default_threads()
                            : static_cast<unsigned>(threads)) {}

namespace detail {

bool in_parallel_region() noexcept { return tl_in_parallel_region; }

void run_indexed(unsigned threads, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  if (tl_in_parallel_region) {
    throw std::logic_error(
        "autra::exec: nested parallel region (use ExecContext::serial() "
        "inside parallel work)");
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->body = &body;

  const auto helpers = static_cast<unsigned>(
      std::min<std::size_t>(threads - 1, n - 1));
  ThreadPool& pool = ThreadPool::shared();
  pool.ensure_workers(helpers);
  batch->pending_helpers = helpers;
  for (unsigned h = 0; h < helpers; ++h) {
    pool.post([batch] {
      {
        RegionGuard guard;
        batch->work();
      }
      std::lock_guard<std::mutex> lock(batch->mu);
      --batch->pending_helpers;
      batch->done_cv.notify_all();
    });
  }

  {
    RegionGuard guard;
    batch->work();
  }

  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&] { return batch->pending_helpers == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace detail

}  // namespace autra::exec

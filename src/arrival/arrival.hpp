// Umbrella header + factory for the generative arrival processes.
// make_arrival() is the single entry point the CLI and benches share:
// every named process is calibrated so its long-run mean is ~mean_rate,
// which keeps QoS numbers comparable across processes for one job.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "arrival/diurnal.hpp"
#include "arrival/hawkes.hpp"
#include "arrival/mmpp.hpp"
#include "arrival/tabulated.hpp"
#include "arrival/trace.hpp"
#include "streamsim/rates.hpp"

namespace autra::arrival {

/// Builds a RateSchedule by name:
///   "constant"      — sim::ConstantRate(mean_rate); seed unused
///   "mmpp"          — 4-state ladder around mean_rate, ~15 regime
///                     shifts over the horizon
///   "hawkes"        — half base load, half self-exciting burst mass
///   "diurnal"       — 3 compressed "days" over the horizon with one
///                     flash crowd per day
///   "trace:<path>"  — TraceRate::load(path); mean_rate and seed unused
/// Throws std::invalid_argument on an unknown name (listing the valid
/// ones) and propagates loader errors for traces.
[[nodiscard]] std::shared_ptr<const sim::RateSchedule> make_arrival(
    const std::string& name, double mean_rate, std::uint64_t seed,
    double horizon_sec);

/// The generative process names accepted by make_arrival() (excludes
/// the "trace:<path>" form, which needs an argument).
[[nodiscard]] const std::vector<std::string>& arrival_names();

}  // namespace autra::arrival

#include "arrival/trace.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace autra::arrival {

namespace {

std::vector<double> materialise(
    const std::vector<std::pair<double, double>>& points, TraceInterp interp,
    double horizon_sec) {
  if (points.empty()) {
    throw std::invalid_argument("TraceRate: no breakpoints");
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& [t, r] = points[i];
    if (!std::isfinite(t) || t < 0.0 || !std::isfinite(r) || r < 0.0) {
      throw std::invalid_argument(
          "TraceRate: breakpoint times and rates must be finite and "
          "non-negative");
    }
    if (i > 0 && !(t > points[i - 1].first)) {
      throw std::invalid_argument(
          "TraceRate: breakpoint times must be strictly increasing");
    }
  }
  if (!(horizon_sec >= 0.0)) {
    throw std::invalid_argument("TraceRate: horizon_sec must be >= 0");
  }

  const double span =
      std::max(horizon_sec, std::floor(points.back().first) + 1.0);
  const std::size_t horizon = static_cast<std::size_t>(std::max(span, 1.0));
  std::vector<double> table(horizon, 0.0);

  std::size_t next = 0;  // first breakpoint with time > t
  for (std::size_t s = 0; s < horizon; ++s) {
    const double t = static_cast<double>(s);
    while (next < points.size() && points[next].first <= t) ++next;
    if (next == 0) {
      table[s] = points.front().second;  // before the trace starts
    } else if (next == points.size()) {
      table[s] = points.back().second;  // past the end: hold
    } else if (interp == TraceInterp::kHold) {
      table[s] = points[next - 1].second;
    } else {
      const auto& [t0, r0] = points[next - 1];
      const auto& [t1, r1] = points[next];
      table[s] = r0 + (r1 - r0) * (t - t0) / (t1 - t0);
    }
  }
  return table;
}

}  // namespace

TraceRate::TraceRate(std::vector<std::pair<double, double>> points,
                     TraceInterp interp, double horizon_sec)
    : TabulatedRate(materialise(points, interp, horizon_sec)),
      points_(std::move(points)),
      interp_(interp) {}

TraceRate TraceRate::parse(std::istream& in, const std::string& origin) {
  std::vector<std::pair<double, double>> points;
  TraceInterp interp = TraceInterp::kHold;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip trailing CR (windows traces) and skip blanks/comments.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream fields(line);
    std::string head;
    fields >> head;
    if (head == "interp") {
      std::string mode;
      fields >> mode;
      if (mode == "hold") {
        interp = TraceInterp::kHold;
      } else if (mode == "linear") {
        interp = TraceInterp::kLinear;
      } else {
        throw std::runtime_error(origin + ":" + std::to_string(lineno) +
                                 ": unknown interpolation '" + mode + "'");
      }
      continue;
    }
    double t = 0.0;
    double r = 0.0;
    std::istringstream pair(line);
    if (!(pair >> t >> r)) {
      throw std::runtime_error(origin + ":" + std::to_string(lineno) +
                               ": expected '<time> <rate>', got '" + line +
                               "'");
    }
    std::string extra;
    if (pair >> extra) {
      throw std::runtime_error(origin + ":" + std::to_string(lineno) +
                               ": trailing junk '" + extra + "'");
    }
    points.emplace_back(t, r);
  }
  try {
    return TraceRate(std::move(points), interp);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(origin + ": " + e.what());
  }
}

TraceRate TraceRate::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("TraceRate: cannot open '" + path + "'");
  }
  return parse(in, path);
}

bool TraceRate::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "# autra-trace v1\n");
  std::fprintf(f, "interp %s\n",
               interp_ == TraceInterp::kHold ? "hold" : "linear");
  for (const auto& [t, r] : points_) {
    // %.17g round-trips IEEE doubles exactly, so load(save()) is
    // bit-identical.
    std::fprintf(f, "%.17g %.17g\n", t, r);
  }
  return std::fclose(f) == 0;
}

}  // namespace autra::arrival

// Base class for the generative arrival processes (DESIGN.md §13).
//
// Every process in src/arrival/ is sampled ONCE, at construction, into a
// per-second rate table; rate_at() is then a pure table lookup. This is
// the discretisation-and-determinism contract of the subsystem: the RNG
// lives and dies inside the constructor (seeded with a named seed, per
// lint rule D3), so rate_at() is const, thread-safe, and bit-identical
// across clone() copies (clones share the immutable table), across exec
// thread counts, and across engine cores — the engine only ever sees a
// fixed function of time, exactly like the hand-built schedules in
// streamsim/rates.hpp.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "streamsim/rates.hpp"

namespace autra::arrival {

/// A RateSchedule backed by an immutable per-second table: entry s is the
/// average rate (records/second) over simulated time [s, s+1). Queries
/// before t=0 return the first entry; queries at or beyond the horizon
/// hold the last entry (a long-lived session outliving the materialised
/// horizon sees a constant tail, never a discontinuity to zero).
class TabulatedRate : public sim::RateSchedule {
 public:
  [[nodiscard]] double rate_at(double t) const final {
    const std::vector<double>& tab = *table_;
    if (t <= 0.0) return tab.front();
    std::size_t s = static_cast<std::size_t>(t);
    if (s >= tab.size()) s = tab.size() - 1;
    return tab[s];
  }

  /// The materialised per-second table (one entry per second of horizon).
  [[nodiscard]] const std::vector<double>& table() const noexcept {
    return *table_;
  }

  /// Seconds of materialised horizon (== table().size()).
  [[nodiscard]] double horizon_sec() const noexcept {
    return static_cast<double>(table_->size());
  }

 protected:
  /// Validates and adopts the table: non-empty, every entry finite and
  /// >= 0. Throws std::invalid_argument otherwise.
  explicit TabulatedRate(std::vector<double> table);

  TabulatedRate(const TabulatedRate&) = default;
  TabulatedRate& operator=(const TabulatedRate&) = default;

 private:
  /// Shared so clone() is O(1) and trivially bit-identical.
  std::shared_ptr<const std::vector<double>> table_;
};

}  // namespace autra::arrival

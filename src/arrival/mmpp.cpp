#include "arrival/mmpp.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <utility>

namespace autra::arrival {

namespace {

/// Adds `rate` records/sec over simulated [t0, t1) into the per-second
/// table (bucket s covers [s, s+1), so a partial overlap contributes
/// rate * overlap_seconds to that bucket's integral == average rate).
void add_segment(std::vector<double>& table, double t0, double t1,
                 double rate) {
  const double horizon = static_cast<double>(table.size());
  t0 = std::max(t0, 0.0);
  t1 = std::min(t1, horizon);
  if (t0 >= t1) return;
  std::size_t s = static_cast<std::size_t>(t0);
  while (s < table.size() && static_cast<double>(s) < t1) {
    const double lo = std::max(t0, static_cast<double>(s));
    const double hi = std::min(t1, static_cast<double>(s + 1));
    table[s] += rate * (hi - lo);
    ++s;
  }
}

std::vector<double> materialise(const MmppParams& p, std::uint64_t seed) {
  if (p.state_rates.empty()) {
    throw std::invalid_argument("MmppRate: state ladder is empty");
  }
  for (double r : p.state_rates) {
    if (!std::isfinite(r) || r < 0.0) {
      throw std::invalid_argument(
          "MmppRate: state rates must be finite and non-negative");
    }
  }
  if (!(p.mean_holding_sec > 0.0)) {
    throw std::invalid_argument("MmppRate: mean_holding_sec must be > 0");
  }
  if (!(p.horizon_sec >= 1.0)) {
    throw std::invalid_argument("MmppRate: horizon_sec must be >= 1");
  }

  const std::size_t n = p.state_rates.size();
  std::vector<double> table(static_cast<std::size_t>(p.horizon_sec), 0.0);
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> sojourn(1.0 / p.mean_holding_sec);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);

  std::size_t state = pick(rng);
  double t = 0.0;
  while (t < p.horizon_sec) {
    const double hold = sojourn(rng);
    add_segment(table, t, t + hold, p.state_rates[state]);
    t += hold;
    if (n > 1) {
      // Jump to a uniformly chosen different state: draw from the n-1
      // others by skipping the current index.
      std::uniform_int_distribution<std::size_t> jump(0, n - 2);
      const std::size_t j = jump(rng);
      state = j < state ? j : j + 1;
    }
  }
  return table;
}

}  // namespace

MmppRate::MmppRate(MmppParams params, std::uint64_t seed)
    : TabulatedRate(materialise(params, seed)), params_(std::move(params)) {}

double MmppRate::stationary_rate() const noexcept {
  double sum = 0.0;
  for (double r : params_.state_rates) sum += r;
  return sum / static_cast<double>(params_.state_rates.size());
}

MmppParams MmppRate::ladder(double mean_rate, std::size_t states,
                            double spread, double mean_holding_sec,
                            double horizon_sec) {
  if (!(mean_rate >= 0.0) || states == 0 || !(spread >= 0.0) ||
      spread > 1.0) {
    throw std::invalid_argument(
        "MmppRate::ladder: need mean_rate >= 0, states >= 1, "
        "spread in [0, 1]");
  }
  MmppParams p;
  p.mean_holding_sec = mean_holding_sec;
  p.horizon_sec = horizon_sec;
  if (states == 1) {
    p.state_rates.push_back(mean_rate);
    return p;
  }
  for (std::size_t i = 0; i < states; ++i) {
    const double frac =
        static_cast<double>(i) / static_cast<double>(states - 1);
    p.state_rates.push_back(mean_rate * (1.0 - spread + 2.0 * spread * frac));
  }
  return p;
}

}  // namespace autra::arrival

#include "arrival/diurnal.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <utility>

namespace autra::arrival {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

void validate(const DiurnalParams& p) {
  if (!(p.base_rate >= 0.0) || !std::isfinite(p.base_rate)) {
    throw std::invalid_argument("DiurnalRate: base_rate must be >= 0");
  }
  if (!(p.daily_amplitude >= 0.0) || p.daily_amplitude > 1.0) {
    throw std::invalid_argument(
        "DiurnalRate: daily_amplitude must be in [0, 1]");
  }
  if (!(p.weekend_factor >= 0.0) || !std::isfinite(p.weekend_factor)) {
    throw std::invalid_argument("DiurnalRate: weekend_factor must be >= 0");
  }
  if (!(p.day_sec > 0.0)) {
    throw std::invalid_argument("DiurnalRate: day_sec must be > 0");
  }
  if (!(p.peak_frac >= 0.0) || p.peak_frac >= 1.0) {
    throw std::invalid_argument("DiurnalRate: peak_frac must be in [0, 1)");
  }
  if (!(p.flash_crowds_per_day >= 0.0) || !(p.flash_magnitude >= 0.0) ||
      !(p.flash_duration_sec > 0.0)) {
    throw std::invalid_argument(
        "DiurnalRate: flash parameters must be non-negative "
        "(duration > 0)");
  }
  if (!(p.horizon_sec >= 1.0)) {
    throw std::invalid_argument("DiurnalRate: horizon_sec must be >= 1");
  }
}

std::vector<double> materialise(const DiurnalParams& p, std::uint64_t seed) {
  validate(p);
  const std::size_t horizon = static_cast<std::size_t>(p.horizon_sec);
  std::vector<double> table(horizon, 0.0);

  // Deterministic envelope: weekly factor x daily sinusoid, sampled at
  // bucket midpoints.
  for (std::size_t s = 0; s < horizon; ++s) {
    const double t = static_cast<double>(s) + 0.5;
    const double day_frac = t / p.day_sec;
    const int day = static_cast<int>(day_frac);
    const double weekly = (day % 7 == 5 || day % 7 == 6)
                              ? p.weekend_factor
                              : 1.0;
    const double phase = day_frac - static_cast<double>(day) - p.peak_frac;
    table[s] = p.base_rate * weekly *
               (1.0 + p.daily_amplitude * std::cos(kTwoPi * phase));
  }

  // Seeded flash crowds: a fixed count per day, each a half-cosine bump
  // peaking at flash_magnitude * base_rate.
  const int days = static_cast<int>(
      std::ceil(p.horizon_sec / p.day_sec) + 0.5);
  const long crowds_per_day = std::lround(p.flash_crowds_per_day);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int day = 0; day < days; ++day) {
    for (long c = 0; c < crowds_per_day; ++c) {
      const double onset =
          (static_cast<double>(day) + unit(rng)) * p.day_sec;
      for (std::size_t s = 0; s < horizon; ++s) {
        const double u =
            (static_cast<double>(s) + 0.5 - onset) / p.flash_duration_sec;
        if (u < 0.0 || u >= 1.0) continue;
        table[s] += p.base_rate * p.flash_magnitude * 0.5 *
                    (1.0 - std::cos(kTwoPi * u));
      }
    }
  }
  return table;
}

}  // namespace

DiurnalRate::DiurnalRate(DiurnalParams params, std::uint64_t seed)
    : TabulatedRate(materialise(params, seed)), params_(std::move(params)) {}

}  // namespace autra::arrival

// Trace-driven rates: replay a recorded (time, rate) series from a
// small line-oriented text format, with hold or linear interpolation
// between breakpoints. The format is designed to round-trip exactly:
// save() prints every breakpoint with %.17g, so load(save(load(f)))
// is bit-identical to load(f).
//
//   # autra-trace v1          <- comment lines start with '#'
//   interp linear             <- or "interp hold" (default when absent)
//   0 100000                  <- "<time_sec> <records_per_sec>"
//   600 250000
//   1200 80000
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "arrival/tabulated.hpp"

namespace autra::arrival {

enum class TraceInterp : std::uint8_t {
  kHold,    ///< step function: rate of the latest breakpoint at or before t
  kLinear,  ///< linear between breakpoints, held flat beyond the ends
};

class TraceRate final : public TabulatedRate {
 public:
  /// Breakpoints must be non-empty, strictly increasing in time, with
  /// finite non-negative times and rates; throws std::invalid_argument
  /// otherwise. The table spans max(horizon_sec, last breakpoint + 1)
  /// seconds (horizon_sec == 0 means "just cover the trace").
  explicit TraceRate(std::vector<std::pair<double, double>> points,
                     TraceInterp interp = TraceInterp::kHold,
                     double horizon_sec = 0.0);

  /// Parses the text format above. Throws std::runtime_error naming the
  /// offending line on malformed input or an unreadable file.
  [[nodiscard]] static TraceRate load(const std::string& path);
  [[nodiscard]] static TraceRate parse(std::istream& in,
                                       const std::string& origin);

  /// Writes the trace back out; load(save(x)) reproduces x's
  /// breakpoints bit-for-bit. Returns false if the file can't be
  /// written.
  [[nodiscard]] bool save(const std::string& path) const;

  [[nodiscard]] const std::vector<std::pair<double, double>>& points()
      const noexcept {
    return points_;
  }
  [[nodiscard]] TraceInterp interpolation() const noexcept {
    return interp_;
  }

  [[nodiscard]] std::unique_ptr<sim::RateSchedule> clone() const override {
    return std::unique_ptr<sim::RateSchedule>(new TraceRate(*this));
  }

  /// Copies are cheap (the table is shared) and value-semantics friendly
  /// — load() returns by value.
  TraceRate(const TraceRate&) = default;

 private:
  std::vector<std::pair<double, double>> points_;
  TraceInterp interp_;
};

}  // namespace autra::arrival

#include "arrival/tabulated.hpp"

#include <cmath>
#include <stdexcept>

namespace autra::arrival {

TabulatedRate::TabulatedRate(std::vector<double> table) {
  if (table.empty()) {
    throw std::invalid_argument("TabulatedRate: empty rate table");
  }
  for (double r : table) {
    if (!std::isfinite(r) || r < 0.0) {
      throw std::invalid_argument(
          "TabulatedRate: rates must be finite and non-negative");
    }
  }
  table_ = std::make_shared<const std::vector<double>>(std::move(table));
}

}  // namespace autra::arrival

#include "arrival/hawkes.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace autra::arrival {

std::vector<double> sample_hawkes_event_times(double mu, double branching,
                                              double decay_per_sec,
                                              double horizon_sec,
                                              std::mt19937_64& rng) {
  if (!(mu >= 0.0) || !std::isfinite(mu)) {
    throw std::invalid_argument("sample_hawkes_event_times: mu must be >= 0");
  }
  if (!(branching >= 0.0) || branching >= 1.0) {
    throw std::invalid_argument(
        "sample_hawkes_event_times: branching must be in [0, 1)");
  }
  if (!(decay_per_sec > 0.0)) {
    throw std::invalid_argument(
        "sample_hawkes_event_times: decay_per_sec must be > 0");
  }
  if (!(horizon_sec >= 0.0)) {
    throw std::invalid_argument(
        "sample_hawkes_event_times: horizon_sec must be >= 0");
  }

  std::vector<double> times;
  const double alpha = branching * decay_per_sec;
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Ogata thinning with the standard exponential-kernel shortcut: the
  // excess intensity S(t) = sum_i alpha * exp(-beta (t - t_i)) decays
  // multiplicatively between events, so lambda(t) = mu + S is bounded by
  // its value just after the previous candidate.
  double t = 0.0;
  double excess = 0.0;
  while (true) {
    const double bound = mu + excess;
    if (bound <= 0.0) break;  // mu == 0 and no history: nothing can fire.
    // Exponential(bound) via inversion on a uniform draw; 1-u avoids
    // log(0).
    const double wait = -std::log(1.0 - unit(rng)) / bound;
    t += wait;
    if (t >= horizon_sec) break;
    excess *= std::exp(-decay_per_sec * wait);
    if (unit(rng) * bound <= mu + excess) {
      times.push_back(t);
      excess += alpha;
    }
  }
  return times;
}

namespace {

void validate(const HawkesParams& p) {
  if (!(p.base_rate >= 0.0) || !std::isfinite(p.base_rate)) {
    throw std::invalid_argument("HawkesRate: base_rate must be >= 0");
  }
  if (!(p.records_per_burst >= 0.0) || !std::isfinite(p.records_per_burst)) {
    throw std::invalid_argument("HawkesRate: records_per_burst must be >= 0");
  }
  if (!(p.horizon_sec >= 1.0)) {
    throw std::invalid_argument("HawkesRate: horizon_sec must be >= 1");
  }
  // mu / branching / decay are validated by the sampler.
}

/// Integrates base + records_per_burst * beta * exp(-beta (t - t_i))
/// over each one-second bucket. A single pass keeps the decayed weight
/// D(s) = sum_{t_i < s} exp(-beta (s - t_i)); an event inside bucket s
/// contributes its partial-second mass directly and joins D afterwards.
std::vector<double> materialise(const HawkesParams& p,
                                const std::vector<double>& events) {
  const std::size_t horizon = static_cast<std::size_t>(p.horizon_sec);
  std::vector<double> table(horizon, p.base_rate);
  const double beta = p.decay_per_sec;
  const double step = std::exp(-beta);  // per-second decay factor

  std::size_t next = 0;
  double decayed = 0.0;  // D at the start of the current bucket
  for (std::size_t s = 0; s < horizon; ++s) {
    // Mass this second from all earlier events: integral of
    // D * beta * exp(-beta u) du over u in [0, 1).
    double mass = decayed * (1.0 - step);
    double carry = decayed * step;  // D at the start of the next bucket
    const double end = static_cast<double>(s + 1);
    while (next < events.size() && events[next] < end) {
      const double tail = std::exp(-beta * (end - events[next]));
      mass += 1.0 - tail;
      carry += tail;
      ++next;
    }
    table[s] += p.records_per_burst * mass;
    decayed = carry;
  }
  return table;
}

std::vector<double> sample(const HawkesParams& p, std::uint64_t seed) {
  validate(p);
  std::mt19937_64 rng(seed);
  return sample_hawkes_event_times(p.burst_onsets_per_sec, p.branching,
                                   p.decay_per_sec, p.horizon_sec, rng);
}

}  // namespace

HawkesRate::HawkesRate(HawkesParams params, std::uint64_t seed)
    : HawkesRate(params, sample(params, seed)) {}

HawkesRate::HawkesRate(HawkesParams params, std::vector<double> events)
    : TabulatedRate(materialise(params, events)),
      params_(std::move(params)),
      events_(std::make_shared<const std::vector<double>>(
          std::move(events))) {}

double HawkesRate::mean_rate() const noexcept {
  return params_.base_rate + params_.records_per_burst *
                                 params_.burst_onsets_per_sec /
                                 (1.0 - params_.branching);
}

}  // namespace autra::arrival

// Markov-modulated Poisson process: the input rate jumps between a
// ladder of discrete regimes (e.g. quiet / normal / busy / surge), with
// exponentially distributed sojourns in each. This is the classic model
// for traffic whose *level* is piecewise-stable but whose regime shifts
// are unpredictable — exactly where a controller tuned on staircase
// schedules gets surprised.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "arrival/tabulated.hpp"

namespace autra::arrival {

struct MmppParams {
  /// Rate (records/sec) of each modulating state. At least one entry.
  std::vector<double> state_rates;
  /// Mean exponential sojourn in a state before jumping to a uniformly
  /// chosen *different* state. With uniform jumps the chain's stationary
  /// distribution is uniform, so the long-run mean rate is the plain
  /// average of `state_rates`.
  double mean_holding_sec = 120.0;
  /// Seconds of rate table to materialise.
  double horizon_sec = 3600.0;
};

class MmppRate final : public TabulatedRate {
 public:
  /// Samples one regime path with std::mt19937_64(seed) and freezes it
  /// into the per-second table. Throws std::invalid_argument on an empty
  /// ladder, non-positive holding time / horizon, or bad rates.
  MmppRate(MmppParams params, std::uint64_t seed);

  /// Long-run mean rate of the process (average of the ladder).
  [[nodiscard]] double stationary_rate() const noexcept;

  [[nodiscard]] const MmppParams& params() const noexcept { return params_; }

  [[nodiscard]] std::unique_ptr<sim::RateSchedule> clone() const override {
    return std::unique_ptr<sim::RateSchedule>(new MmppRate(*this));
  }

  /// Evenly spaced ladder of `states` rates spanning
  /// mean_rate * [1 - spread, 1 + spread]; its average is mean_rate, so
  /// MmppRate(ladder(m, ...), seed).stationary_rate() == m.
  [[nodiscard]] static MmppParams ladder(double mean_rate,
                                         std::size_t states = 4,
                                         double spread = 0.6,
                                         double mean_holding_sec = 120.0,
                                         double horizon_sec = 3600.0);

 private:
  MmppRate(const MmppRate&) = default;

  MmppParams params_;
};

}  // namespace autra::arrival

// Diurnal traffic: a daily sinusoid under a weekly envelope (weekend
// dip), with seeded flash-crowd spikes — the canonical shape of a
// consumer-facing service's ingest. `day_sec` is a parameter so benches
// can compress whole "days" into a sub-hour simulated horizon.
#pragma once

#include <cstdint>
#include <memory>

#include "arrival/tabulated.hpp"

namespace autra::arrival {

struct DiurnalParams {
  /// Mean rate (records/sec) of the deterministic envelope.
  double base_rate = 100e3;
  /// Daily swing: rate oscillates base * (1 +/- daily_amplitude). [0, 1].
  double daily_amplitude = 0.5;
  /// Multiplier applied on days 5 and 6 of each 7-day week. >= 0.
  double weekend_factor = 0.7;
  /// Simulated length of one "day"; 7 of them make a "week".
  double day_sec = 86400.0;
  /// Position of the daily peak as a fraction of the day (14:00 ~ 0.583).
  double peak_frac = 14.0 / 24.0;
  /// Flash crowds per day (rounded to an integer count); onsets are
  /// drawn uniformly within each day from the seed.
  double flash_crowds_per_day = 1.0;
  /// Peak height of a flash crowd as a fraction of base_rate.
  double flash_magnitude = 1.5;
  /// Duration of one flash crowd (half-cosine bump).
  double flash_duration_sec = 600.0;
  /// Seconds of rate table to materialise.
  double horizon_sec = 3600.0;
};

class DiurnalRate final : public TabulatedRate {
 public:
  /// The envelope is deterministic; only flash-crowd onsets consume the
  /// seed (std::mt19937_64(seed)). Throws std::invalid_argument on
  /// out-of-range parameters.
  DiurnalRate(DiurnalParams params, std::uint64_t seed);

  [[nodiscard]] const DiurnalParams& params() const noexcept {
    return params_;
  }

  [[nodiscard]] std::unique_ptr<sim::RateSchedule> clone() const override {
    return std::unique_ptr<sim::RateSchedule>(new DiurnalRate(*this));
  }

 private:
  DiurnalRate(const DiurnalRate&) = default;

  DiurnalParams params_;
};

}  // namespace autra::arrival

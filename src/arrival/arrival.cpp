#include "arrival/arrival.hpp"

#include <algorithm>
#include <stdexcept>

namespace autra::arrival {

const std::vector<std::string>& arrival_names() {
  static const std::vector<std::string> kNames = {"constant", "mmpp",
                                                  "hawkes", "diurnal"};
  return kNames;
}

std::shared_ptr<const sim::RateSchedule> make_arrival(const std::string& name,
                                                      double mean_rate,
                                                      std::uint64_t seed,
                                                      double horizon_sec) {
  if (!(mean_rate >= 0.0)) {
    throw std::invalid_argument("make_arrival: mean_rate must be >= 0");
  }
  if (!(horizon_sec >= 1.0)) {
    throw std::invalid_argument("make_arrival: horizon_sec must be >= 1");
  }

  if (name == "constant") {
    return std::make_shared<sim::ConstantRate>(mean_rate);
  }
  if (name == "mmpp") {
    // ~15 expected regime shifts over the horizon, capped at 2-minute
    // sojourns so long horizons still look piecewise-stable.
    const double holding = std::min(120.0, horizon_sec / 15.0);
    return std::make_shared<MmppRate>(
        MmppRate::ladder(mean_rate, /*states=*/4, /*spread=*/0.6, holding,
                         horizon_sec),
        seed);
  }
  if (name == "hawkes") {
    // Half the mean as steady base load, half as self-exciting bursts:
    // onsets every ~60s on average, each cascade doubling its mass
    // (branching 0.5), drained over ~30s.
    HawkesParams p;
    p.base_rate = 0.5 * mean_rate;
    p.burst_onsets_per_sec = 1.0 / 60.0;
    p.branching = 0.5;
    p.decay_per_sec = 1.0 / 30.0;
    p.records_per_burst =
        0.5 * mean_rate * (1.0 - p.branching) / p.burst_onsets_per_sec;
    p.horizon_sec = horizon_sec;
    return std::make_shared<HawkesRate>(p, seed);
  }
  if (name == "diurnal") {
    // Compress three "days" into the horizon so a bench-length run sees
    // full daily cycles; weekends only matter on multi-week horizons.
    DiurnalParams p;
    p.base_rate = mean_rate;
    p.day_sec = std::max(300.0, horizon_sec / 3.0);
    p.flash_duration_sec = std::max(60.0, p.day_sec / 24.0);
    p.horizon_sec = horizon_sec;
    return std::make_shared<DiurnalRate>(p, seed);
  }
  if (name.rfind("trace:", 0) == 0) {
    return std::make_shared<TraceRate>(TraceRate::load(name.substr(6)));
  }

  std::string known;
  for (const std::string& n : arrival_names()) {
    if (!known.empty()) known += "|";
    known += n;
  }
  throw std::invalid_argument("make_arrival: unknown process '" + name +
                              "' (expected " + known + "|trace:<path>)");
}

}  // namespace autra::arrival

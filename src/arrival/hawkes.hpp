// Self-exciting (Hawkes) burst arrivals: burst onsets arrive at a base
// intensity mu, and every onset temporarily raises the intensity for its
// successors (exponential kernel), so bursts cluster into storms instead
// of spreading evenly like a Poisson process. Sampled by Ogata thinning;
// the sampler is a standalone function because the chaos generator
// reuses it for time-correlated fault bursts (DESIGN.md §13).
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "arrival/tabulated.hpp"

namespace autra::arrival {

/// Samples the event times of a Hawkes process on [0, horizon_sec) with
/// conditional intensity
///
///   lambda(t) = mu + sum_{t_i < t} branching * decay_per_sec
///                                  * exp(-decay_per_sec * (t - t_i))
///
/// via Ogata's thinning algorithm. `branching` (= alpha/beta) is the
/// expected number of children per event and must be in [0, 1) for the
/// process to be subcritical. Returns strictly increasing times.
/// Consumes a caller-owned RNG so two subsystems can share one sampler
/// without sharing seed-derivation conventions.
[[nodiscard]] std::vector<double> sample_hawkes_event_times(
    double mu, double branching, double decay_per_sec, double horizon_sec,
    std::mt19937_64& rng);

struct HawkesParams {
  /// Constant background record rate (records/sec) under the bursts.
  double base_rate = 0.0;
  /// Spontaneous burst onsets per second (mu of the Hawkes process).
  double burst_onsets_per_sec = 1.0 / 60.0;
  /// Expected children per onset (alpha/beta), in [0, 1).
  double branching = 0.5;
  /// Exponential kernel decay (beta, 1/sec): 1/beta is the memory of a
  /// burst, both for exciting children and for draining its records.
  double decay_per_sec = 1.0 / 30.0;
  /// Record mass injected per burst onset, spread over time as
  /// records_per_burst * beta * exp(-beta * (t - t_i)).
  double records_per_burst = 1e6;
  /// Seconds of rate table to materialise.
  double horizon_sec = 3600.0;
};

class HawkesRate final : public TabulatedRate {
 public:
  /// Samples one burst history with std::mt19937_64(seed) and freezes
  /// base + decayed burst mass into the per-second table.
  HawkesRate(HawkesParams params, std::uint64_t seed);

  /// Long-run mean rate: base + records_per_burst * mu / (1 - branching)
  /// (each spontaneous onset spawns 1/(1-branching) total events).
  [[nodiscard]] double mean_rate() const noexcept;

  /// The sampled burst-onset times (for clustering statistics in tests).
  [[nodiscard]] const std::vector<double>& event_times() const noexcept {
    return *events_;
  }

  [[nodiscard]] const HawkesParams& params() const noexcept {
    return params_;
  }

  [[nodiscard]] std::unique_ptr<sim::RateSchedule> clone() const override {
    return std::unique_ptr<sim::RateSchedule>(new HawkesRate(*this));
  }

 private:
  HawkesRate(const HawkesRate&) = default;
  HawkesRate(HawkesParams params, std::vector<double> events);

  HawkesParams params_;
  std::shared_ptr<const std::vector<double>> events_;
};

}  // namespace autra::arrival

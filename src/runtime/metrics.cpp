#include "runtime/metrics.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <stdexcept>

namespace autra::runtime {

MetricId MetricRegistry::intern(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return MetricId(it->second);
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return MetricId(id);
}

MetricId MetricRegistry::find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? MetricId() : MetricId(it->second);
}

const std::string& MetricRegistry::name(MetricId id) const {
  if (!id.valid() || id.value() >= names_.size()) {
    throw std::out_of_range("MetricRegistry::name: unknown id");
  }
  return names_[id.value()];
}

void MetricRegistry::clear() {
  index_.clear();
  names_.clear();
}

MetricId MetricStore::resolve(std::string_view name) {
  const MetricId id = registry_.intern(name);
  if (id.value() >= series_.size()) series_.resize(id.value() + 1);
  return id;
}

MetricId MetricStore::find(std::string_view name) const {
  return registry_.find(name);
}

const MetricStore::Series* MetricStore::series_ptr(MetricId id) const {
  if (!id.valid() || id.value() >= series_.size()) return nullptr;
  return &series_[id.value()];
}

void MetricStore::record(MetricId id, double time, double value) {
  if (!id.valid() || id.value() >= series_.size()) {
    throw std::out_of_range("MetricStore::record: id not from this store");
  }
  Series& s = series_[id.value()];
  if (!s.times.empty() && time < s.times.back()) {
    throw std::invalid_argument("MetricStore::record: time went backwards for " +
                                registry_.name(id));
  }
  s.times.push_back(time);
  s.values.push_back(value);
  s.cumsum.push_back(s.cumsum.empty() ? value : s.cumsum.back() + value);
}

MetricStore::SeriesView MetricStore::series(MetricId id) const {
  const Series* s = series_ptr(id);
  if (s == nullptr) return {};
  return {s->times, s->values};
}

std::pair<std::size_t, std::size_t> MetricStore::range(MetricId id, double t0,
                                                       double t1) const {
  const Series* s = series_ptr(id);
  if (s == nullptr) return {0, 0};
  const auto first = std::lower_bound(s->times.begin(), s->times.end(), t0);
  const auto last = std::upper_bound(first, s->times.end(), t1);
  return {static_cast<std::size_t>(first - s->times.begin()),
          static_cast<std::size_t>(last - s->times.begin())};
}

std::optional<double> MetricStore::sum(MetricId id, double t0,
                                       double t1) const {
  const Series* s = series_ptr(id);
  if (s == nullptr) return std::nullopt;
  const auto [first, last] = range(id, t0, t1);
  if (first == last) return std::nullopt;
  const double below = first == 0 ? 0.0 : s->cumsum[first - 1];
  return s->cumsum[last - 1] - below;
}

std::optional<double> MetricStore::mean(MetricId id, double t0,
                                        double t1) const {
  const auto [first, last] = range(id, t0, t1);
  if (first == last) return std::nullopt;
  return *sum(id, t0, t1) / static_cast<double>(last - first);
}

std::optional<MetricPoint> MetricStore::last(MetricId id) const {
  const Series* s = series_ptr(id);
  if (s == nullptr || s->times.empty()) return std::nullopt;
  return MetricPoint{s->times.back(), s->values.back()};
}

std::vector<std::string> MetricStore::series_names() const {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (!series_[i].times.empty()) {
      names.push_back(registry_.name(MetricId(static_cast<std::uint32_t>(i))));
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool MetricStore::has_series(const std::string& name) const {
  const Series* s = series_ptr(find(name));
  return s != nullptr && !s->times.empty();
}

void MetricStore::clear() {
  registry_.clear();
  series_.clear();
}

void MetricStore::write_csv(std::ostream& out,
                            std::span<const std::string> series) const {
  std::vector<std::string> names(series.begin(), series.end());
  if (names.empty()) names = series_names();

  // Collect the union of timestamps, then the (possibly missing) value of
  // each series at each timestamp. Duplicate timestamps within one series
  // keep the last value.
  std::set<double> times;
  std::vector<std::map<double, double>> columns(names.size());
  for (std::size_t c = 0; c < names.size(); ++c) {
    const Series* s = series_ptr(find(names[c]));
    if (s == nullptr) continue;
    for (std::size_t i = 0; i < s->times.size(); ++i) {
      times.insert(s->times[i]);
      columns[c][s->times[i]] = s->values[i];
    }
  }

  out << "time";
  for (const std::string& n : names) out << "," << n;
  out << "\n";
  for (const double t : times) {
    out << t;
    for (std::size_t c = 0; c < names.size(); ++c) {
      out << ",";
      const auto it = columns[c].find(t);
      if (it != columns[c].end()) out << it->second;
    }
    out << "\n";
  }
}

namespace metric_names {

std::string true_rate(const std::string& op) {
  return "taskmanager.job.task.trueProcessingRate." + op;
}
std::string observed_rate(const std::string& op) {
  return "taskmanager.job.task.observedProcessingRate." + op;
}
std::string input_rate(const std::string& op) {
  return "taskmanager.job.task.numRecordsInPerSecond." + op;
}
std::string output_rate(const std::string& op) {
  return "taskmanager.job.task.numRecordsOutPerSecond." + op;
}
std::string queue_size(const std::string& op) {
  return "taskmanager.job.task.inputQueueLength." + op;
}

}  // namespace metric_names

}  // namespace autra::runtime

#include "runtime/tenant.hpp"

#include <stdexcept>

namespace autra::runtime {

TenantId TenantRegistry::intern(std::string_view name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return TenantId(it->second);
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return TenantId(id);
}

TenantId TenantRegistry::find(std::string_view name) const {
  const auto it = index_.find(name);
  return it == index_.end() ? TenantId() : TenantId(it->second);
}

const std::string& TenantRegistry::name(TenantId id) const {
  if (!id.valid() || id.value() >= names_.size()) {
    throw std::out_of_range("TenantRegistry::name: unknown id");
  }
  return names_[id.value()];
}

std::string tenant_series(std::string_view tenant_name,
                          std::string_view metric) {
  std::string path = "tenant.";
  path += tenant_name;
  path += '.';
  path += metric;
  return path;
}

}  // namespace autra::runtime

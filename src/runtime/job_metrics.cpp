#include "runtime/job_metrics.hpp"

namespace autra::runtime {

std::uint64_t trial_seed_salt(const Parallelism& p) noexcept {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (int k : p) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(k));
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h;
}

int JobMetrics::total_parallelism() const {
  int total = 0;
  for (int k : parallelism) total += k;
  return total;
}

}  // namespace autra::runtime

#include "runtime/job_metrics.hpp"

#include <numeric>

namespace autra::runtime {

int JobMetrics::total_parallelism() const {
  return std::accumulate(parallelism.begin(), parallelism.end(), 0);
}

}  // namespace autra::runtime

// Typed tenant identity for multi-tenant deployments.
//
// A platform hosting many jobs on one shared cluster needs to attribute
// every observable — loop statistics, control decisions, metric series —
// to the job that produced it. Tenant names are interned into dense
// TenantIds exactly once (mirroring the MetricId registry), so the hot
// paths carry a 4-byte handle and never compare strings, and the lint
// gate (rule A3) can ban raw integer tenant ids from public headers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace autra::runtime {

/// Dense handle of one interned tenant. Ids are stable for the lifetime
/// of the registry that produced them. A default-constructed id is
/// invalid and means "no tenant" — the single-tenant configuration.
class TenantId {
 public:
  constexpr TenantId() = default;
  constexpr explicit TenantId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }
  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return value_;
  }
  friend constexpr bool operator==(TenantId, TenantId) noexcept = default;

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t value_ = kInvalid;
};

/// Name -> TenantId interning table (one per SharedCluster / harness).
/// Registration order defines id values, so identical add-tenant sequences
/// produce identical ids — part of the determinism contract.
class TenantRegistry {
 public:
  /// Returns the id of `name`, interning it on first sight.
  TenantId intern(std::string_view name);

  /// Id of `name` if already interned; invalid id otherwise.
  [[nodiscard]] TenantId find(std::string_view name) const;

  /// Name of an interned id; throws std::out_of_range on an unknown id.
  [[nodiscard]] const std::string& name(TenantId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  struct Hash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>>
      index_;
  std::vector<std::string> names_;
};

/// Metric-series path of a per-tenant observable in a cluster-level store:
/// "tenant.<tenant>.<metric>". Keeps cross-job series queryable by tenant
/// without a second keying scheme.
[[nodiscard]] std::string tenant_series(std::string_view tenant_name,
                                        std::string_view metric);

}  // namespace autra::runtime

// The backend-agnostic runtime interface the policy layer is compiled
// against.
//
// StreamingBackend is a *live, continuously running* streaming job that
// can be observed and rescaled — the Monitor and Execute surfaces of the
// MAPE loop. TrialService is the Plan surface: it provides fresh-start
// evaluations of candidate configurations at a pinned input rate (each
// evaluation is one real job restart in the paper's terms).
//
// The fluid simulator (sim::ScalingSession / sim::SimTrialService) is the
// first implementation; runtime::ReplayBackend replays a recorded metric
// trace; a real Flink/Heron adapter would be a third. Policy code in
// src/core/ and src/baselines/ must include only this layer — never a
// concrete engine header.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "runtime/job_metrics.hpp"
#include "runtime/metrics.hpp"

namespace autra::runtime {

/// Thrown by StreamingBackend::reconfigure() when the Execute stage fails
/// *transiently* — the savepoint timed out, slots could not be allocated,
/// the redeploy was rejected. The job keeps running under its previous
/// configuration; callers may retry (the controller does, with capped
/// exponential backoff). Permanent errors (infeasible configuration, bad
/// arguments) keep throwing std::invalid_argument as before.
class RescaleFailed : public std::runtime_error {
 public:
  explicit RescaleFailed(const std::string& what)
      : std::runtime_error(what) {}
};

/// How a reconfiguration is applied.
enum class RescaleMode {
  /// Savepoint + full redeploy: the paper's Execute stage. Applies to any
  /// configuration change.
  kColdRestart,
  /// In-place scale-out (Flink reactive-mode style): new instances join
  /// without stopping the running ones, so the downtime shrinks to the
  /// slot-allocation time. Only valid when no operator's parallelism
  /// shrinks — state never needs to be re-partitioned away from a running
  /// instance.
  kHotScaleOut,
};

/// A long-running streaming job: observe it, rescale it, keep running.
class StreamingBackend {
 public:
  virtual ~StreamingBackend() = default;

  /// Advances the job by `sec` (simulated or wall) seconds.
  virtual void run_for(double sec) = 0;

  /// Applies `p`, preserving the source log and the wall clock. No-op if
  /// `p` equals the current config. kHotScaleOut throws
  /// std::invalid_argument when any operator shrinks.
  virtual void reconfigure(const Parallelism& p,
                           RescaleMode mode = RescaleMode::kColdRestart) = 0;

  [[nodiscard]] virtual double now() const = 0;
  [[nodiscard]] virtual const Parallelism& parallelism() const = 0;

  /// Metrics accumulated since the last reset_window()/reconfigure().
  [[nodiscard]] virtual JobMetrics window_metrics() const = 0;
  virtual void reset_window() = 0;

  /// Continuous gauge history spanning the whole session (all restarts).
  [[nodiscard]] virtual const MetricStore& history() const = 0;

  /// Number of reconfigurations applied so far.
  [[nodiscard]] virtual int restarts() const = 0;
};

/// Runs a job with one parallelism configuration and reports the QoS
/// observed after the policy running time — the "run" of the paper's
/// recommend-run-judge loop. Policies never talk to a backend directly,
/// so the same algorithm code drives a simulator, a real cluster, or a
/// test double.
///
/// The Plan stage fans trial evaluations out across worker threads (see
/// src/exec/), so an Evaluator obtained from a TrialService must be safe
/// to invoke concurrently from multiple threads.
using Evaluator = std::function<JobMetrics(const Parallelism&)>;

/// Plan-stage evaluation provider: fresh-start trials of the job at a
/// pinned input rate, decoupled from the live session being controlled.
class TrialService {
 public:
  virtual ~TrialService() = default;

  /// Evaluator that cold-starts the job at constant `rate`, warms up for
  /// `warmup_sec`, measures for `measure_sec`. Repeated calls of the
  /// returned evaluator must decorrelate measurement noise like real
  /// reruns do.
  ///
  /// Const-thread-safety contract: the returned evaluator is invoked
  /// concurrently by the Plan stage's trial fan-out, so implementations
  /// must (a) make concurrent invocations data-race free, and (b) make the
  /// metrics returned for a configuration independent of the *order* in
  /// which concurrent evaluations are issued (e.g. derive noise seeds from
  /// the configuration itself, not from a shared call counter). Together
  /// these guarantee Plan decisions are bit-identical at any thread count.
  [[nodiscard]] virtual Evaluator evaluator_at(double rate, double warmup_sec,
                                               double measure_sec) const = 0;

  /// Upper bound on any operator's parallelism (cluster slot capacity).
  [[nodiscard]] virtual int max_parallelism() const = 0;

  /// Externally scheduled input rate at time `t` — the fallback when the
  /// measured rate is unusable (e.g. the job just restarted).
  [[nodiscard]] virtual double scheduled_rate_at(double t) const = 0;
};

}  // namespace autra::runtime

// Backend-agnostic metrics pipeline: interned series ids, an abstract
// MetricSink, and the columnar MetricStore every backend writes into.
//
// The hot path is the per-tick gauge write of a streaming backend. A
// series name is interned into a dense MetricId exactly once (at backend
// construction); every subsequent write is an id-indexed vector append —
// zero string construction, zero map lookups. Reads keep the convenient
// string-keyed API of the original MetricsDb for cold paths (tests, CSV
// export), while policy-interval consumers resolve ids once and read
// incrementally maintained window sums (per-series cumulative sums make a
// window mean two binary searches plus a subtraction, never a copy).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace autra::runtime {

struct MetricPoint {
  double time = 0.0;
  double value = 0.0;
};

/// Dense handle of one interned metric series. Ids are stable for the
/// lifetime of the registry that produced them (until clear()).
class MetricId {
 public:
  constexpr MetricId() = default;
  constexpr explicit MetricId(std::uint32_t value) : value_(value) {}

  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }
  [[nodiscard]] constexpr std::uint32_t value() const noexcept {
    return value_;
  }
  friend constexpr bool operator==(MetricId, MetricId) noexcept = default;

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t value_ = kInvalid;
};

/// Name -> MetricId interning table (one per MetricStore).
class MetricRegistry {
 public:
  /// Returns the id of `name`, interning it on first sight.
  MetricId intern(std::string_view name);

  /// Id of `name` if already interned; invalid id otherwise.
  [[nodiscard]] MetricId find(std::string_view name) const;

  /// Name of an interned id; throws std::out_of_range on an unknown id.
  [[nodiscard]] const std::string& name(MetricId id) const;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }
  void clear();

 private:
  struct Hash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>>
      index_;
  std::vector<std::string> names_;
};

/// Destination for gauge writes. Backends resolve their series names to ids
/// once, then record by id only.
class MetricSink {
 public:
  virtual ~MetricSink() = default;

  /// Interns `name` and returns its sink-local id.
  virtual MetricId resolve(std::string_view name) = 0;

  /// Appends one point. The id must come from this sink's resolve();
  /// time must be non-decreasing per series (std::invalid_argument).
  virtual void record(MetricId id, double time, double value) = 0;
};

/// In-memory time-series store — the InfluxDB stand-in of the MAPE loop's
/// Monitor stage. Per-series storage is columnar (times / values /
/// cumulative sums in separate contiguous arrays).
class MetricStore final : public MetricSink {
 public:
  // --- id-based hot path -------------------------------------------------
  MetricId resolve(std::string_view name) override;
  [[nodiscard]] MetricId find(std::string_view name) const;
  void record(MetricId id, double time, double value) override;

  /// Columnar view of one series; empty spans for an invalid/unknown id.
  struct SeriesView {
    std::span<const double> times;
    std::span<const double> values;
  };
  [[nodiscard]] SeriesView series(MetricId id) const;

  /// Index range [first, last) of the points with time in [t0, t1].
  [[nodiscard]] std::pair<std::size_t, std::size_t> range(MetricId id,
                                                          double t0,
                                                          double t1) const;

  /// Sum over [t0, t1] from the cumulative sums (no iteration, no copy);
  /// nullopt when no points fall in range.
  [[nodiscard]] std::optional<double> sum(MetricId id, double t0,
                                          double t1) const;
  [[nodiscard]] std::optional<double> mean(MetricId id, double t0,
                                           double t1) const;
  [[nodiscard]] std::optional<MetricPoint> last(MetricId id) const;

  /// Names of all series with at least one point, sorted.
  [[nodiscard]] std::vector<std::string> series_names() const;
  [[nodiscard]] bool has_series(const std::string& name) const;

  [[nodiscard]] const MetricRegistry& registry() const noexcept {
    return registry_;
  }

  /// Drops every series *and* the registry: previously resolved ids are
  /// invalidated and must be re-resolved.
  void clear();

  /// Writes the selected series as CSV (`time,<series...>`), one row per
  /// distinct timestamp, empty cells where a series has no point at that
  /// time — ready for gnuplot/pandas. Unknown series produce empty
  /// columns. Selecting no series exports every series in the store.
  void write_csv(std::ostream& out,
                 std::span<const std::string> series = {}) const;

 private:
  struct Series {
    std::vector<double> times;
    std::vector<double> values;
    /// cumsum[i] = values[0] + ... + values[i], maintained per record() so
    /// any window sum is O(log n).
    std::vector<double> cumsum;
  };

  [[nodiscard]] const Series* series_ptr(MetricId id) const;

  MetricRegistry registry_;
  std::vector<Series> series_;
};

/// Flink-like metric path helpers.
namespace metric_names {

[[nodiscard]] std::string true_rate(const std::string& op);
[[nodiscard]] std::string observed_rate(const std::string& op);
[[nodiscard]] std::string input_rate(const std::string& op);
[[nodiscard]] std::string output_rate(const std::string& op);
[[nodiscard]] std::string queue_size(const std::string& op);
inline const std::string kThroughput = "job.throughput";
inline const std::string kLatencyMean = "job.latency.mean";
inline const std::string kEventLatencyMean = "job.eventLatency.mean";
inline const std::string kKafkaLag = "kafka.consumerLag";
inline const std::string kInputRate = "kafka.produceRate";
inline const std::string kBusyCores = "job.busyCores";
inline const std::string kParallelismTotal = "job.totalParallelism";

}  // namespace metric_names

}  // namespace autra::runtime

// Backend-neutral job observables: the parallelism configuration, the
// per-operator rate snapshot, and the QoS summary of one measurement
// window. These are the only job-level types the policy layer (core/ and
// baselines/) sees — every streaming backend (the fluid simulator, a trace
// replay, eventually a real engine) reports in these terms.
#pragma once

#include <cstdint>
#include <vector>

namespace autra::runtime {

/// Parallelism configuration of a job: one entry per operator, in topology
/// operator-index order.
using Parallelism = std::vector<int>;

/// Deterministic per-configuration seed salt for trial evaluators (FNV-1a
/// over the parallelism vector). Evaluators derive measurement-noise seeds
/// from the *configuration being measured* (plus a per-config rerun
/// counter), not from a shared call counter, so the noise a configuration
/// sees does not depend on the order evaluations are issued in — a
/// requirement for bit-identical Plan decisions at any thread count.
[[nodiscard]] std::uint64_t trial_seed_salt(const Parallelism& p) noexcept;

/// Live snapshot of one operator's rates.
struct OperatorRates {
  /// Average true processing rate of one instance (records/s), Eq. 2.
  double true_rate_per_instance = 0.0;
  /// Observed rate of one instance (records/s, includes idle/blocked time).
  double observed_rate_per_instance = 0.0;
  double total_input_rate = 0.0;   ///< lambda_i.
  double total_output_rate = 0.0;  ///< o_i.
  double queue_length = 0.0;
  int parallelism = 0;
};

/// QoS snapshot of one measurement window.
struct JobMetrics {
  Parallelism parallelism;
  double input_rate = 0.0;      ///< External production rate during window.
  double throughput = 0.0;      ///< Records/s consumed from the source log.
  double latency_ms = 0.0;      ///< Mean processing latency (Flink latency).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double event_latency_ms = 0.0;  ///< Mean event-time latency (incl. lag).
  double kafka_lag = 0.0;         ///< Records pending at window end.
  double lag_growth_per_sec = 0.0;
  double busy_cores = 0.0;        ///< Average CPU cores in use.
  double memory_mb = 0.0;         ///< Static memory footprint.
  std::vector<OperatorRates> operators;

  /// Sum of all operator parallelisms — the "resource units" compared in
  /// the paper's Figs. 7 and 8.
  [[nodiscard]] int total_parallelism() const;
};

}  // namespace autra::runtime

#include "runtime/replay_backend.hpp"

#include <stdexcept>

namespace autra::runtime {

ReplayBackend::ReplayBackend(MetricStore trace,
                             std::vector<std::string> operators,
                             Parallelism initial)
    : trace_(std::move(trace)),
      operators_(std::move(operators)),
      parallelism_(std::move(initial)) {
  if (parallelism_.size() != operators_.size()) {
    throw std::invalid_argument(
        "ReplayBackend: parallelism size != operator count");
  }
  // Mirror every trace series into the history up front so all ids are
  // resolved exactly once; replaying is then pure id-indexed appends.
  const std::size_t n = trace_.registry().size();
  cursor_.assign(n, 0);
  history_ids_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    history_ids_.push_back(
        history_.resolve(trace_.registry().name(MetricId(
            static_cast<std::uint32_t>(i)))));
  }
}

void ReplayBackend::run_for(double sec) {
  if (sec < 0.0) {
    throw std::invalid_argument("ReplayBackend::run_for: negative duration");
  }
  now_ += sec;
  for (std::size_t i = 0; i < cursor_.size(); ++i) {
    const MetricStore::SeriesView v =
        trace_.series(MetricId(static_cast<std::uint32_t>(i)));
    std::size_t& c = cursor_[i];
    while (c < v.times.size() && v.times[c] <= now_) {
      history_.record(history_ids_[i], v.times[c], v.values[c]);
      ++c;
    }
  }
}

void ReplayBackend::reconfigure(const Parallelism& p, RescaleMode mode) {
  if (p == parallelism_) return;
  if (p.size() != parallelism_.size()) {
    throw std::invalid_argument(
        "ReplayBackend: parallelism size != operator count");
  }
  if (mode == RescaleMode::kHotScaleOut) {
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (p[i] < parallelism_[i]) {
        throw std::invalid_argument(
            "ReplayBackend: hot scale-out cannot shrink an operator");
      }
    }
  }
  parallelism_ = p;
  ++restarts_;
  window_start_ = now_;
}

JobMetrics ReplayBackend::window_metrics() const {
  namespace mn = metric_names;
  const double t0 = window_start_;
  const double t1 = now_;
  const auto mean_of = [&](const std::string& name) {
    return history_.mean(history_.find(name), t0, t1).value_or(0.0);
  };
  JobMetrics m;
  m.parallelism = parallelism_;
  m.input_rate = mean_of(mn::kInputRate);
  m.throughput = mean_of(mn::kThroughput);
  m.latency_ms = mean_of(mn::kLatencyMean) * 1e3;
  m.latency_p50_ms = m.latency_ms;
  m.latency_p95_ms = m.latency_ms;
  m.latency_p99_ms = m.latency_ms;
  m.event_latency_ms = mean_of(mn::kEventLatencyMean) * 1e3;
  m.busy_cores = mean_of(mn::kBusyCores);

  const MetricId lag_id = history_.find(mn::kKafkaLag);
  if (const auto lag = history_.last(lag_id)) m.kafka_lag = lag->value;
  const auto [first, last] = history_.range(lag_id, t0, t1);
  if (last - first >= 2) {
    const MetricStore::SeriesView lag = history_.series(lag_id);
    const double dt = lag.times[last - 1] - lag.times[first];
    if (dt > 0.0) {
      m.lag_growth_per_sec =
          (lag.values[last - 1] - lag.values[first]) / dt;
    }
  }

  for (std::size_t i = 0; i < operators_.size(); ++i) {
    OperatorRates r;
    r.parallelism = parallelism_[i];
    const std::string& op = operators_[i];
    r.true_rate_per_instance = mean_of(mn::true_rate(op));
    r.observed_rate_per_instance = mean_of(mn::observed_rate(op));
    r.total_input_rate = mean_of(mn::input_rate(op));
    r.total_output_rate = mean_of(mn::output_rate(op));
    if (const auto q = history_.last(history_.find(mn::queue_size(op)))) {
      r.queue_length = q->value;
    }
    m.operators.push_back(r);
  }
  return m;
}

bool ReplayBackend::exhausted() const {
  for (std::size_t i = 0; i < cursor_.size(); ++i) {
    if (cursor_[i] <
        trace_.series(MetricId(static_cast<std::uint32_t>(i))).times.size()) {
      return false;
    }
  }
  return true;
}

}  // namespace autra::runtime

// ReplayBackend: a StreamingBackend that replays a recorded metric trace.
//
// It exists to prove the runtime interface is real — the policy layer runs
// unchanged against it — and to let controllers and dashboards be driven
// from captured production histories (or a ScalingSession's history())
// without a simulator or a cluster. run_for() reveals trace points as the
// clock passes them; window_metrics() is reconstructed from the revealed
// gauges; reconfigure() only bumps the bookkeeping (a trace cannot
// actually rescale), which is exactly what a what-if replay wants.
#pragma once

#include <string>
#include <vector>

#include "runtime/backend.hpp"

namespace autra::runtime {

class ReplayBackend final : public StreamingBackend {
 public:
  /// `trace` holds the recorded gauges (absolute times, starting near 0);
  /// `operators` names the job's operators in topology order so
  /// window_metrics() can rebuild per-operator rates; `initial` is the
  /// parallelism the trace was recorded under.
  ReplayBackend(MetricStore trace, std::vector<std::string> operators,
                Parallelism initial);

  void run_for(double sec) override;
  void reconfigure(const Parallelism& p,
                   RescaleMode mode = RescaleMode::kColdRestart) override;
  [[nodiscard]] double now() const override { return now_; }
  [[nodiscard]] const Parallelism& parallelism() const override {
    return parallelism_;
  }
  [[nodiscard]] JobMetrics window_metrics() const override;
  void reset_window() override { window_start_ = now_; }
  [[nodiscard]] const MetricStore& history() const override {
    return history_;
  }
  [[nodiscard]] int restarts() const override { return restarts_; }

  /// True once every trace point has been replayed into the history.
  [[nodiscard]] bool exhausted() const;

 private:
  MetricStore trace_;
  MetricStore history_;
  std::vector<std::string> operators_;
  Parallelism parallelism_;
  /// Per trace-series: index of the next point to reveal, and the
  /// pre-resolved id of the same series in history_.
  std::vector<std::size_t> cursor_;
  std::vector<MetricId> history_ids_;
  double now_ = 0.0;
  double window_start_ = 0.0;
  int restarts_ = 0;
};

}  // namespace autra::runtime

# Header self-sufficiency (the build half of lint rule H1, DESIGN.md §10):
# every project header is compiled as its own translation unit, so a
# header that silently leans on its includer's includes fails right here
# instead of in whichever file reorders its #includes next.
#
# The object library is EXCLUDE_FROM_ALL; it is built by the `lint`
# umbrella target and the static-analysis CI job via
#   cmake --build build --target autra_header_check
file(GLOB_RECURSE AUTRA_CHECK_HEADERS CONFIGURE_DEPENDS
  ${CMAKE_SOURCE_DIR}/src/*.hpp)

set(AUTRA_HEADER_CHECK_DIR ${CMAKE_BINARY_DIR}/header_check)
set(AUTRA_HEADER_CHECK_SOURCES "")
foreach(header ${AUTRA_CHECK_HEADERS})
  file(RELATIVE_PATH rel ${CMAKE_SOURCE_DIR}/src ${header})
  string(REPLACE "/" "_" mangled ${rel})
  string(REGEX REPLACE "\\.hpp$" ".cpp" mangled ${mangled})
  set(tu ${AUTRA_HEADER_CHECK_DIR}/check_${mangled})
  set(content "#include \"${rel}\"\n")
  # Rewrite only on change so reconfiguring does not dirty the check.
  set(existing "")
  if(EXISTS ${tu})
    file(READ ${tu} existing)
  endif()
  if(NOT existing STREQUAL content)
    file(WRITE ${tu} "${content}")
  endif()
  list(APPEND AUTRA_HEADER_CHECK_SOURCES ${tu})
endforeach()

add_library(autra_header_check OBJECT EXCLUDE_FROM_ALL
  ${AUTRA_HEADER_CHECK_SOURCES})
target_include_directories(autra_header_check PRIVATE ${CMAKE_SOURCE_DIR}/src)
target_link_libraries(autra_header_check PRIVATE autra_strict_warnings)

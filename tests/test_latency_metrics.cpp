// Unit tests for the latency accumulator and the metric time-series store.
#include <sstream>

#include "streamsim/latency.hpp"
#include "streamsim/metrics.hpp"

#include <gtest/gtest.h>

namespace autra::sim {
namespace {

TEST(LatencyStats, EmptyState) {
  const LatencyStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(LatencyStats, WeightedMean) {
  LatencyStats s;
  s.add(1.0, 3.0);
  s.add(2.0, 1.0);
  EXPECT_NEAR(s.mean(), 1.25, 1e-12);
  EXPECT_DOUBLE_EQ(s.total_mass(), 4.0);
}

TEST(LatencyStats, ZeroMassIgnored) {
  LatencyStats s;
  s.add(5.0, 0.0);
  s.add(5.0, -1.0);
  EXPECT_TRUE(s.empty());
}

TEST(LatencyStats, QuantileBoundsAndMonotonicity) {
  LatencyStats s(1024);
  for (int i = 1; i <= 1000; ++i) s.add(static_cast<double>(i), 1.0);
  const double q10 = s.quantile(0.1);
  const double q50 = s.quantile(0.5);
  const double q99 = s.quantile(0.99);
  EXPECT_LE(q10, q50);
  EXPECT_LE(q50, q99);
  EXPECT_GE(q10, 1.0);
  EXPECT_LE(q99, 1000.0);
  EXPECT_NEAR(q50, 500.0, 120.0);  // Reservoir approximation.
}

TEST(LatencyStats, QuantileValidation) {
  LatencyStats s;
  s.add(1.0, 1.0);
  EXPECT_THROW(s.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(s.quantile(1.1), std::invalid_argument);
}

TEST(LatencyStats, Reset) {
  LatencyStats s;
  s.add(1.0, 5.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(LatencyStats, MergeCombinesMass) {
  LatencyStats a, b;
  a.add(1.0, 2.0);
  b.add(3.0, 2.0);
  a.merge(b);
  EXPECT_NEAR(a.mean(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.total_mass(), 4.0);
}

TEST(MetricsDb, RecordAndQueryWindow) {
  MetricsDb db;
  const runtime::MetricId x = db.resolve("x");
  db.record(x, 0.0, 1.0);
  db.record(x, 1.0, 2.0);
  db.record(x, 2.0, 3.0);
  const auto [first, last] = db.range(x, 0.5, 2.0);
  ASSERT_EQ(last - first, 2u);
  const MetricsDb::SeriesView v = db.series(x);
  EXPECT_DOUBLE_EQ(v.values[first], 2.0);
  EXPECT_DOUBLE_EQ(v.values[last - 1], 3.0);
}

TEST(MetricsDb, UnknownSeriesEmpty) {
  const MetricsDb db;
  const runtime::MetricId nope = db.find("nope");
  EXPECT_FALSE(nope.valid());
  EXPECT_TRUE(db.series(nope).times.empty());
  EXPECT_FALSE(db.mean(nope, 0.0, 1.0).has_value());
  EXPECT_FALSE(db.last(nope).has_value());
  EXPECT_FALSE(db.has_series("nope"));
}

TEST(MetricsDb, TimeMustNotGoBackwards) {
  MetricsDb db;
  const runtime::MetricId x = db.resolve("x");
  const runtime::MetricId y = db.resolve("y");
  db.record(x, 5.0, 1.0);
  EXPECT_THROW(db.record(x, 4.0, 1.0), std::invalid_argument);
  EXPECT_NO_THROW(db.record(x, 5.0, 2.0));  // equal time is fine
  EXPECT_NO_THROW(db.record(y, 0.0, 1.0));  // other series independent
}

TEST(MetricsDb, MeanOverWindow) {
  MetricsDb db;
  const runtime::MetricId x = db.resolve("x");
  db.record(x, 0.0, 10.0);
  db.record(x, 1.0, 20.0);
  db.record(x, 2.0, 90.0);
  EXPECT_DOUBLE_EQ(db.mean(x, 0.0, 1.0).value(), 15.0);
  EXPECT_FALSE(db.mean(x, 10.0, 20.0).has_value());
}

TEST(MetricsDb, Last) {
  MetricsDb db;
  const runtime::MetricId x = db.resolve("x");
  db.record(x, 0.0, 1.0);
  db.record(x, 9.0, 42.0);
  const auto p = db.last(x);
  ASSERT_TRUE(p);
  EXPECT_DOUBLE_EQ(p->time, 9.0);
  EXPECT_DOUBLE_EQ(p->value, 42.0);
}

TEST(MetricsDb, SeriesNamesAndClear) {
  MetricsDb db;
  db.record(db.resolve("b"), 0.0, 1.0);
  db.record(db.resolve("a"), 0.0, 1.0);
  EXPECT_EQ(db.series_names(), (std::vector<std::string>{"a", "b"}));
  db.clear();
  EXPECT_TRUE(db.series_names().empty());
}

TEST(MetricsDb, CsvExportSelectedSeries) {
  MetricsDb db;
  const runtime::MetricId a = db.resolve("a");
  db.record(a, 0.0, 1.0);
  db.record(a, 1.0, 2.0);
  db.record(db.resolve("b"), 1.0, 20.0);
  std::ostringstream out;
  const std::vector<std::string> cols{"a", "b"};
  db.write_csv(out, cols);
  EXPECT_EQ(out.str(),
            "time,a,b\n"
            "0,1,\n"
            "1,2,20\n");
}

TEST(MetricsDb, CsvExportAllSeriesByDefault) {
  MetricsDb db;
  db.record(db.resolve("x"), 0.0, 5.0);
  std::ostringstream out;
  db.write_csv(out);
  EXPECT_EQ(out.str(), "time,x\n0,5\n");
}

TEST(MetricsDb, CsvExportUnknownSeriesGivesEmptyColumn) {
  MetricsDb db;
  db.record(db.resolve("x"), 0.0, 5.0);
  std::ostringstream out;
  const std::vector<std::string> cols{"x", "ghost"};
  db.write_csv(out, cols);
  EXPECT_EQ(out.str(), "time,x,ghost\n0,5,\n");
}

TEST(MetricNames, FlinkStylePaths) {
  EXPECT_EQ(metric_names::true_rate("count"),
            "taskmanager.job.task.trueProcessingRate.count");
  EXPECT_EQ(metric_names::observed_rate("count"),
            "taskmanager.job.task.observedProcessingRate.count");
  EXPECT_EQ(metric_names::input_rate("x"),
            "taskmanager.job.task.numRecordsInPerSecond.x");
  EXPECT_EQ(metric_names::output_rate("x"),
            "taskmanager.job.task.numRecordsOutPerSecond.x");
  EXPECT_EQ(metric_names::queue_size("x"),
            "taskmanager.job.task.inputQueueLength.x");
}

}  // namespace
}  // namespace autra::sim

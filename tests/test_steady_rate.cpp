// Tests for Algorithm 1 (BO at a steady rate).
#include "core/steady_rate.hpp"

#include "workloads/workloads.hpp"

#include <gtest/gtest.h>

namespace autra::core {
namespace {

using sim::ConstantRate;
using sim::JobMetrics;
using sim::Parallelism;

SamplePoint real_sample(Parallelism config, double score, double latency_ms,
                        double throughput, double input_rate = 1000.0) {
  SamplePoint s;
  s.config = std::move(config);
  s.score = score;
  JobMetrics m;
  m.parallelism = s.config;
  m.latency_ms = latency_ms;
  m.throughput = throughput;
  m.input_rate = input_rate;
  s.metrics = std::move(m);
  return s;
}

SteadyRateParams base_params() {
  SteadyRateParams p;
  p.target_latency_ms = 100.0;
  p.target_throughput = 1000.0;
  p.max_parallelism = 10;
  p.seed = 5;
  return p;
}

TEST(MeetsRequirements, AllThreeConditions) {
  const SteadyRateParams p = base_params();
  EXPECT_TRUE(meets_requirements(
      real_sample({1, 1}, 0.95, 50.0, 1000.0), p));
  // Latency violated.
  EXPECT_FALSE(meets_requirements(
      real_sample({1, 1}, 0.95, 150.0, 1000.0), p));
  // Throughput violated.
  EXPECT_FALSE(meets_requirements(
      real_sample({1, 1}, 0.95, 50.0, 500.0), p));
  // Score below threshold.
  EXPECT_FALSE(meets_requirements(
      real_sample({1, 1}, 0.5, 50.0, 1000.0), p));
  // Estimated samples never satisfy termination.
  SamplePoint est;
  est.config = {1, 1};
  est.score = 1.0;
  EXPECT_FALSE(meets_requirements(est, p));
}

TEST(MeetsRequirements, ThroughputDefaultsToInputRate) {
  SteadyRateParams p = base_params();
  p.target_throughput = 0.0;
  EXPECT_TRUE(meets_requirements(
      real_sample({1, 1}, 0.95, 50.0, 2000.0, 2000.0), p));
  EXPECT_FALSE(meets_requirements(
      real_sample({1, 1}, 0.95, 50.0, 1000.0, 2000.0), p));
}

TEST(PickBestFallback, PrefersFeasibilityTiersThenScore) {
  const SteadyRateParams p = base_params();
  std::vector<SamplePoint> samples;
  samples.push_back(real_sample({1, 1}, 0.99, 500.0, 100.0));  // neither
  samples.push_back(real_sample({2, 2}, 0.40, 500.0, 1000.0)); // thr only
  samples.push_back(real_sample({3, 3}, 0.30, 50.0, 100.0));   // lat only
  samples.push_back(real_sample({4, 4}, 0.20, 50.0, 1000.0));  // both
  samples.push_back(real_sample({5, 5}, 0.10, 50.0, 1000.0));  // both, worse
  const SamplePoint* best = pick_best_fallback(samples, p);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->config, (Parallelism{4, 4}));

  // Estimated samples are ignored entirely.
  std::vector<SamplePoint> estimated(1);
  estimated[0].config = {9, 9};
  estimated[0].score = 1.0;
  EXPECT_EQ(pick_best_fallback(estimated, p), nullptr);
  EXPECT_EQ(pick_best_fallback({}, p), nullptr);
}

TEST(RunSteadyRate, Validation) {
  const Evaluator never = [](const Parallelism&) -> JobMetrics {
    return {};
  };
  EXPECT_THROW((void)run_steady_rate(never, {}, base_params()),
               std::invalid_argument);
  SteadyRateParams p = base_params();
  p.target_latency_ms = 0.0;
  EXPECT_THROW((void)run_steady_rate(never, {1, 1}, p),
               std::invalid_argument);
  p = base_params();
  p.max_parallelism = 2;
  EXPECT_THROW((void)run_steady_rate(never, {3, 3}, p),
               std::invalid_argument);
  p = base_params();
  p.max_evaluations = 0;
  EXPECT_THROW((void)run_steady_rate(never, {1, 1}, p),
               std::invalid_argument);
  EXPECT_THROW(recommend_next({}, {1, 1}, base_params()),
               std::invalid_argument);
}

TEST(RunSteadyRate, TerminatesOnBootstrapWhenBaseMeetsQos) {
  // Scripted: every config meets QoS; base scores 1.0 -> terminate with
  // zero BO iterations.
  const Evaluator eval = [](const Parallelism& p) {
    JobMetrics m;
    m.parallelism = p;
    m.latency_ms = 20.0;
    m.throughput = 1000.0;
    m.input_rate = 1000.0;
    return m;
  };
  const SteadyRateResult r = run_steady_rate(eval, {2, 2}, base_params());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.bo_iterations, 0);
  EXPECT_GT(r.bootstrap_evaluations, 0);
  EXPECT_EQ(r.best, (Parallelism{2, 2}));
  EXPECT_DOUBLE_EQ(r.best_score, 1.0);
}

TEST(RunSteadyRate, FindsLatencyCompliantConfigAboveBase) {
  // Scripted physics: latency = 240 / total_parallelism ms; throughput
  // always fine. Base (1,1) violates 100 ms; (1,2)/(2,1) give 80 ms with
  // score 0.875 < 0.9; need total >= 3 but score >= 0.9 requires staying
  // close to base: (1,2): score = 0.5 + 0.5*(1 + 0.5)/2 = 0.875. Hmm —
  // with threshold 0.85 the optimum (1,2) or (2,1) qualifies.
  const Evaluator eval = [](const Parallelism& p) {
    JobMetrics m;
    m.parallelism = p;
    const int total = p[0] + p[1];
    m.latency_ms = 240.0 / total;
    m.throughput = 1000.0;
    m.input_rate = 1000.0;
    return m;
  };
  SteadyRateParams params = base_params();
  params.score_threshold = 0.85;
  const SteadyRateResult r = run_steady_rate(eval, {1, 1}, params);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.best[0] + r.best[1], 3);
  EXPECT_LE(r.best_metrics.latency_ms, 100.0);
}

TEST(RunSteadyRate, SeedSamplesCountTowardModel) {
  int evals = 0;
  const Evaluator eval = [&](const Parallelism& p) {
    ++evals;
    JobMetrics m;
    m.parallelism = p;
    m.latency_ms = 20.0;
    m.throughput = 1000.0;
    m.input_rate = 1000.0;
    return m;
  };
  // Seed with a sample that already meets everything: no evaluation needed.
  std::vector<SamplePoint> seeds{real_sample({1, 1}, 0.95, 20.0, 1000.0)};
  const SteadyRateResult r = run_steady_rate(eval, {1, 1}, base_params(),
                                             seeds, /*skip_bootstrap=*/true);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(evals, 0);
  EXPECT_EQ(r.best, (Parallelism{1, 1}));
}

TEST(RunSteadyRate, BudgetExhaustionReturnsBestLatencyCompliant) {
  // Nothing ever reaches the score threshold; the best latency-compliant
  // sample must be returned.
  const Evaluator eval = [](const Parallelism& p) {
    JobMetrics m;
    m.parallelism = p;
    m.latency_ms = p[0] >= 3 ? 50.0 : 500.0;  // compliant only when p0 >= 3
    m.throughput = 100.0;                     // never meets 1000 target
    m.input_rate = 1000.0;
    return m;
  };
  SteadyRateParams params = base_params();
  params.max_evaluations = 12;
  const SteadyRateResult r = run_steady_rate(eval, {1, 1}, params);
  EXPECT_FALSE(r.converged);
  EXPECT_LE(r.best_metrics.latency_ms, 100.0);
}

TEST(RunSteadyRate, HistoryRecordsEverySample) {
  int evals = 0;
  const Evaluator eval = [&](const Parallelism& p) {
    ++evals;
    JobMetrics m;
    m.parallelism = p;
    m.latency_ms = 500.0;
    m.throughput = 100.0;
    m.input_rate = 1000.0;
    return m;
  };
  SteadyRateParams params = base_params();
  params.max_evaluations = 10;
  const SteadyRateResult r = run_steady_rate(eval, {1, 1}, params);
  EXPECT_EQ(static_cast<int>(r.history.size()), evals);
  EXPECT_EQ(r.bootstrap_evaluations + r.bo_iterations, evals);
}

TEST(RecommendNext, StaysInsideSpace) {
  std::vector<SamplePoint> samples;
  samples.push_back(real_sample({1, 1}, 0.5, 200.0, 1000.0));
  samples.push_back(real_sample({5, 5}, 0.7, 80.0, 1000.0));
  samples.push_back(real_sample({10, 10}, 0.4, 60.0, 1000.0));
  const Parallelism next = recommend_next(samples, {1, 1}, base_params());
  ASSERT_EQ(next.size(), 2u);
  for (int k : next) {
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 10);
  }
}

TEST(RunSteadyRate, WordCountEndToEnd) {
  auto spec = autra::workloads::word_count(
      std::make_shared<ConstantRate>(350000.0));
  spec.engine.measurement_noise = 0.0;
  sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 40.0, .measure_sec = 40.0});
  const Evaluator eval = make_runner_evaluator(runner);
  SteadyRateParams params;
  params.target_latency_ms = 180.0;
  params.target_throughput = 350000.0;
  params.bootstrap_m = 6;
  params.max_parallelism = runner.max_parallelism();
  params.seed = 3;
  const SteadyRateResult r = run_steady_rate(eval, {1, 1, 3, 2}, params);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.best_metrics.latency_ms, 180.0);
  EXPECT_GE(r.best_metrics.throughput, 0.97 * 350000.0);
  EXPECT_GE(r.best_score, 0.9);
}

}  // namespace
}  // namespace autra::core

// Unit tests for rate schedules and the Kafka log stand-in.
#include "streamsim/kafka.hpp"
#include "streamsim/rates.hpp"

#include <gtest/gtest.h>

namespace autra::sim {
namespace {

TEST(ConstantRate, Basics) {
  const ConstantRate r(1000.0);
  EXPECT_DOUBLE_EQ(r.rate_at(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(r.rate_at(1e6), 1000.0);
  EXPECT_THROW(ConstantRate(-1.0), std::invalid_argument);
}

TEST(StaircaseRate, PaperFig1Schedule) {
  // 100k records/s, +50k every 600 s (Fig. 1).
  const StaircaseRate r(100e3, 50e3, 600.0);
  EXPECT_DOUBLE_EQ(r.rate_at(0.0), 100e3);
  EXPECT_DOUBLE_EQ(r.rate_at(599.9), 100e3);
  EXPECT_DOUBLE_EQ(r.rate_at(600.0), 150e3);
  EXPECT_DOUBLE_EQ(r.rate_at(2400.0), 300e3);
  EXPECT_DOUBLE_EQ(r.rate_at(-5.0), 100e3);
}

TEST(StaircaseRate, NegativeStepsClampAtZero) {
  const StaircaseRate r(100.0, -60.0, 10.0);
  EXPECT_DOUBLE_EQ(r.rate_at(25.0), 0.0);
}

TEST(StaircaseRate, Validation) {
  EXPECT_THROW(StaircaseRate(-1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(StaircaseRate(1.0, 1.0, 0.0), std::invalid_argument);
}

TEST(PiecewiseRate, LookupAndValidation) {
  const PiecewiseRate r({{0.0, 10.0}, {100.0, 20.0}, {200.0, 5.0}});
  EXPECT_DOUBLE_EQ(r.rate_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(r.rate_at(99.0), 10.0);
  EXPECT_DOUBLE_EQ(r.rate_at(100.0), 20.0);
  EXPECT_DOUBLE_EQ(r.rate_at(500.0), 5.0);
  EXPECT_THROW(PiecewiseRate({}), std::invalid_argument);
  EXPECT_THROW(PiecewiseRate({{1.0, 10.0}}), std::invalid_argument);
  EXPECT_THROW(PiecewiseRate({{0.0, 10.0}, {0.0, 20.0}}),
               std::invalid_argument);
  EXPECT_THROW(PiecewiseRate({{0.0, -10.0}}), std::invalid_argument);
}

TEST(RateSchedule, CloneIsDeep) {
  const StaircaseRate r(10.0, 5.0, 1.0);
  const auto c = r.clone();
  EXPECT_DOUBLE_EQ(c->rate_at(2.5), 20.0);
}

TEST(KafkaLog, NullScheduleThrows) {
  EXPECT_THROW(KafkaLog(std::shared_ptr<const RateSchedule>()),
               std::invalid_argument);
}

TEST(KafkaLog, ProduceAccumulatesLag) {
  KafkaLog log(std::make_shared<ConstantRate>(1000.0));
  log.produce(0.0, 1.0);
  log.produce(1.0, 1.0);
  EXPECT_DOUBLE_EQ(log.lag(), 2000.0);
  EXPECT_DOUBLE_EQ(log.total_produced(), 2000.0);
  EXPECT_DOUBLE_EQ(log.total_consumed(), 0.0);
}

TEST(KafkaLog, ConsumePartialCohort) {
  KafkaLog log(std::make_shared<ConstantRate>(1000.0));
  log.produce(0.0, 1.0);
  const auto taken = log.consume(300.0);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_DOUBLE_EQ(taken.front().mass, 300.0);
  EXPECT_DOUBLE_EQ(taken.front().produced_time, 0.5);
  EXPECT_DOUBLE_EQ(log.lag(), 700.0);
  EXPECT_DOUBLE_EQ(log.total_consumed(), 300.0);
}

TEST(KafkaLog, ConsumeSpansCohortsFifo) {
  KafkaLog log(std::make_shared<ConstantRate>(100.0));
  log.produce(0.0, 1.0);   // 100 @ t=0.5
  log.produce(1.0, 1.0);   // 100 @ t=1.5
  const auto taken = log.consume(150.0);
  ASSERT_EQ(taken.size(), 2u);
  EXPECT_DOUBLE_EQ(taken[0].mass, 100.0);
  EXPECT_DOUBLE_EQ(taken[0].produced_time, 0.5);
  EXPECT_DOUBLE_EQ(taken[1].mass, 50.0);
  EXPECT_DOUBLE_EQ(taken[1].produced_time, 1.5);
  EXPECT_DOUBLE_EQ(log.lag(), 50.0);
}

TEST(KafkaLog, ConsumeMoreThanAvailable) {
  KafkaLog log(std::make_shared<ConstantRate>(100.0));
  log.produce(0.0, 1.0);
  const auto taken = log.consume(500.0);
  double total = 0.0;
  for (const auto& c : taken) total += c.mass;
  EXPECT_DOUBLE_EQ(total, 100.0);
  EXPECT_DOUBLE_EQ(log.lag(), 0.0);
  EXPECT_TRUE(log.consume(10.0).empty());
}

TEST(KafkaLog, ZeroRateProducesNothing) {
  KafkaLog log(std::make_shared<ConstantRate>(0.0));
  log.produce(0.0, 10.0);
  EXPECT_DOUBLE_EQ(log.lag(), 0.0);
}

TEST(KafkaLog, ClearDropsPending) {
  KafkaLog log(std::make_shared<ConstantRate>(100.0));
  log.produce(0.0, 1.0);
  log.clear();
  EXPECT_DOUBLE_EQ(log.lag(), 0.0);
  EXPECT_TRUE(log.consume(10.0).empty());
  // Totals are preserved (clear only drops pending records).
  EXPECT_DOUBLE_EQ(log.total_produced(), 100.0);
}

TEST(KafkaLog, RateAtDelegatesToSchedule) {
  KafkaLog log(std::make_shared<StaircaseRate>(10.0, 10.0, 1.0));
  EXPECT_DOUBLE_EQ(log.rate_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(log.rate_at(1.5), 20.0);
}

}  // namespace
}  // namespace autra::sim

// Unit tests for the interned-id metrics pipeline: the registry, the
// columnar MetricStore, its window-query boundary behaviour, and the CSV
// export corner cases.
#include "runtime/metrics.hpp"

#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

namespace autra::runtime {
namespace {

TEST(MetricRegistry, InternIsIdempotent) {
  MetricRegistry reg;
  const MetricId a = reg.intern("x");
  const MetricId b = reg.intern("y");
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.intern("x"), a);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.name(a), "x");
  EXPECT_EQ(reg.name(b), "y");
}

TEST(MetricRegistry, FindDoesNotIntern) {
  MetricRegistry reg;
  EXPECT_FALSE(reg.find("missing").valid());
  EXPECT_EQ(reg.size(), 0u);
  reg.intern("present");
  EXPECT_TRUE(reg.find("present").valid());
}

TEST(MetricRegistry, NameOfUnknownIdThrows) {
  MetricRegistry reg;
  EXPECT_THROW(reg.name(MetricId()), std::out_of_range);
  EXPECT_THROW(reg.name(MetricId(7)), std::out_of_range);
}

TEST(MetricStore, WindowIncludesBoundaryPoints) {
  MetricStore db;
  const MetricId id = db.resolve("s");
  db.record(id, 1.0, 10.0);
  db.record(id, 2.0, 20.0);
  db.record(id, 3.0, 30.0);
  // Points exactly at t0 and t1 belong to the window.
  const auto [first, last] = db.range(id, 1.0, 3.0);
  ASSERT_EQ(last - first, 3u);
  const MetricStore::SeriesView v = db.series(id);
  EXPECT_DOUBLE_EQ(v.times[first], 1.0);
  EXPECT_DOUBLE_EQ(v.times[last - 1], 3.0);
  EXPECT_DOUBLE_EQ(db.mean(id, 1.0, 3.0).value(), 20.0);
  EXPECT_DOUBLE_EQ(db.mean(id, 2.0, 2.0).value(), 20.0);
  EXPECT_FALSE(db.mean(id, 3.5, 9.0).has_value());
}

TEST(MetricStore, BackwardsTimeThrowsEqualTimeAllowed) {
  MetricStore db;
  const MetricId id = db.resolve("s");
  db.record(id, 5.0, 1.0);
  db.record(id, 5.0, 2.0);  // Equal timestamps are fine.
  EXPECT_THROW(db.record(id, 4.999, 3.0), std::invalid_argument);
  // Other series are unaffected by s's clock.
  db.record(db.resolve("other"), 0.0, 1.0);
}

TEST(MetricStore, RecordWithForeignIdThrows) {
  MetricStore db;
  EXPECT_THROW(db.record(MetricId(), 0.0, 1.0), std::out_of_range);
  EXPECT_THROW(db.record(MetricId(12), 0.0, 1.0), std::out_of_range);
}

TEST(MetricStore, IdBasedReads) {
  MetricStore db;
  const MetricId id = db.resolve("s");
  db.record(id, 0.0, 1.0);
  db.record(id, 1.0, -2.0);  // Negative values keep cumsum honest.
  db.record(id, 2.0, 4.0);
  EXPECT_EQ(db.find("s"), id);
  EXPECT_DOUBLE_EQ(db.sum(id, 0.0, 2.0).value(), 3.0);
  EXPECT_DOUBLE_EQ(db.mean(id, 0.0, 2.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(db.mean(id, 1.0, 2.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(db.last(id)->value, 4.0);
  const auto [first, last] = db.range(id, 1.0, 2.0);
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(last, 3u);
  const MetricStore::SeriesView v = db.series(id);
  ASSERT_EQ(v.times.size(), 3u);
  EXPECT_DOUBLE_EQ(v.values[1], -2.0);
}

TEST(MetricStore, InvalidIdReadsAreEmpty) {
  const MetricStore db;
  EXPECT_FALSE(db.sum(MetricId(), 0.0, 1.0).has_value());
  EXPECT_FALSE(db.mean(MetricId(), 0.0, 1.0).has_value());
  EXPECT_FALSE(db.last(MetricId()).has_value());
  EXPECT_TRUE(db.series(MetricId()).times.empty());
  EXPECT_EQ(db.range(MetricId(), 0.0, 1.0), (std::pair<std::size_t, std::size_t>{0, 0}));
}

TEST(MetricStore, SeriesNamesSortedAndClearInvalidates) {
  MetricStore db;
  db.record(db.resolve("b"), 0.0, 1.0);
  db.record(db.resolve("a"), 0.0, 1.0);
  db.resolve("never-written");
  EXPECT_EQ(db.series_names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(db.has_series("a"));
  EXPECT_FALSE(db.has_series("never-written"));
  db.clear();
  EXPECT_TRUE(db.series_names().empty());
  EXPECT_EQ(db.registry().size(), 0u);
  EXPECT_FALSE(db.find("a").valid());
}

TEST(MetricStore, WriteCsvWithUnknownSeries) {
  MetricStore db;
  const MetricId id = db.resolve("known");
  db.record(id, 0.0, 1.5);
  db.record(id, 1.0, 2.5);
  std::ostringstream out;
  const std::vector<std::string> cols = {"known", "unknown"};
  db.write_csv(out, cols);
  EXPECT_EQ(out.str(),
            "time,known,unknown\n"
            "0,1.5,\n"
            "1,2.5,\n");
}

TEST(MetricStore, WriteCsvUnionOfTimestamps) {
  MetricStore db;
  const MetricId a = db.resolve("a");
  db.record(a, 0.0, 1.0);
  db.record(a, 2.0, 3.0);
  db.record(db.resolve("b"), 1.0, 2.0);
  std::ostringstream out;
  db.write_csv(out);  // No selection: every series, sorted.
  EXPECT_EQ(out.str(),
            "time,a,b\n"
            "0,1,\n"
            "1,,2\n"
            "2,3,\n");
}

}  // namespace
}  // namespace autra::runtime

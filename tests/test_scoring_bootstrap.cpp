// Tests for the benefit scoring function (Eq. 4), the termination threshold
// (Eq. 9), and bootstrap sample construction (Sec. III-D).
#include "core/bootstrap.hpp"
#include "core/scoring.hpp"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace autra::core {
namespace {

ScoreParams params(double target_ms = 100.0, double alpha = 0.5) {
  return {.target_latency_ms = target_ms,
          .alpha = alpha,
          .base = {1, 2, 3}};
}

TEST(Scoring, PerfectAtBaseMeetingLatency) {
  EXPECT_DOUBLE_EQ(benefit_score({1, 2, 3}, 50.0, params()), 1.0);
  EXPECT_DOUBLE_EQ(benefit_score({1, 2, 3}, 100.0, params()), 1.0);
}

TEST(Scoring, LatencyViolationLowersScore) {
  const double at_target = benefit_score({1, 2, 3}, 100.0, params());
  const double violated = benefit_score({1, 2, 3}, 200.0, params());
  EXPECT_LT(violated, at_target);
  // l_t / l_r = 0.5, alpha = 0.5 -> 0.25 + 0.5 = 0.75.
  EXPECT_DOUBLE_EQ(violated, 0.75);
}

TEST(Scoring, OverProvisioningLowersScore) {
  const double lean = benefit_score({1, 2, 3}, 50.0, params());
  const double fat = benefit_score({2, 4, 6}, 50.0, params());
  EXPECT_LT(fat, lean);
  // Resource term = 0.5 -> F = 0.5 + 0.25 = 0.75.
  EXPECT_DOUBLE_EQ(fat, 0.75);
}

TEST(Scoring, BelowBaseDoesNotExceedOne) {
  // Guard: configurations below base (should not happen in the search
  // space) must not reward with ratios > 1.
  const double s = benefit_score({1, 1, 1}, 50.0, params());
  EXPECT_LE(s, 1.0);
}

TEST(Scoring, AlphaExtremes) {
  // alpha=1: only latency matters.
  EXPECT_DOUBLE_EQ(benefit_score({9, 9, 9}, 50.0, params(100.0, 1.0)), 1.0);
  // alpha=0: only resources matter.
  EXPECT_DOUBLE_EQ(benefit_score({1, 2, 3}, 1e6, params(100.0, 0.0)), 1.0);
}

TEST(Scoring, ZeroLatencyTreatedAsCompliant) {
  EXPECT_DOUBLE_EQ(benefit_score({1, 2, 3}, 0.0, params()), 1.0);
}

TEST(Scoring, MetricsOverload) {
  runtime::JobMetrics m;
  m.parallelism = {1, 2, 3};
  m.latency_ms = 200.0;
  EXPECT_DOUBLE_EQ(benefit_score(m, params()), 0.75);
}

TEST(Scoring, Validation) {
  EXPECT_THROW(benefit_score({1, 2, 3}, 50.0,
                             {.target_latency_ms = 0.0, .base = {1, 2, 3}}),
               std::invalid_argument);
  EXPECT_THROW(benefit_score({1, 2}, 50.0, params()), std::invalid_argument);
  EXPECT_THROW(benefit_score({1, 2, 0}, 50.0, params()),
               std::invalid_argument);
  ScoreParams bad = params();
  bad.alpha = 1.5;
  EXPECT_THROW(benefit_score({1, 2, 3}, 50.0, bad), std::invalid_argument);
}

TEST(Scoring, ThresholdEquation9) {
  // F >= alpha + (1-alpha)/(1+w).
  EXPECT_DOUBLE_EQ(score_threshold(0.5, 0.0), 1.0);
  EXPECT_NEAR(score_threshold(0.5, 1.0 / 3.0), 0.875, 1e-12);
  EXPECT_DOUBLE_EQ(score_threshold(1.0, 0.5), 1.0);
  EXPECT_NEAR(score_threshold(0.5, 0.25), 0.9, 1e-12);  // the paper's 0.9
  EXPECT_THROW(score_threshold(-0.1, 0.1), std::invalid_argument);
  EXPECT_THROW(score_threshold(0.5, -0.1), std::invalid_argument);
}

TEST(Bootstrap, Validation) {
  EXPECT_THROW(bootstrap_samples({}, 10, 3), std::invalid_argument);
  EXPECT_THROW(bootstrap_samples({1, 2}, 10, 0), std::invalid_argument);
  EXPECT_THROW(bootstrap_samples({1, 20}, 10, 3), std::invalid_argument);
}

TEST(Bootstrap, ContainsBaseAndFamilies) {
  const runtime::Parallelism base{1, 2, 3};
  const auto samples = bootstrap_samples(base, 12, 4);

  // The base configuration itself.
  EXPECT_NE(std::find(samples.begin(), samples.end(), base), samples.end());

  // Family 1: uniform levels from k'_max=3 to P_max=12 in 3 intervals:
  // 3, 6, 9, 12.
  for (int level : {3, 6, 9, 12}) {
    const runtime::Parallelism uniform(3, level);
    EXPECT_NE(std::find(samples.begin(), samples.end(), uniform),
              samples.end())
        << "missing uniform level " << level;
  }

  // Family 2: one operator at P_max, others at base.
  for (std::size_t j = 0; j < base.size(); ++j) {
    runtime::Parallelism s = base;
    s[j] = 12;
    EXPECT_NE(std::find(samples.begin(), samples.end(), s), samples.end())
        << "missing single-op sample " << j;
  }
}

TEST(Bootstrap, CountIsBasePlusMPlusNMinusDuplicates) {
  // base (2,2), P_max 8, M=3: base + uniform {(2,2),(5,5),(8,8)} +
  // single-op {(8,2),(2,8)}; the base duplicates the first uniform level,
  // leaving 5 unique samples.
  const auto samples = bootstrap_samples({2, 2}, 8, 3);
  const std::set<runtime::Parallelism> unique(samples.begin(), samples.end());
  EXPECT_EQ(samples.size(), unique.size());  // de-duplicated
  EXPECT_EQ(samples.size(), 5u);
}

TEST(Bootstrap, DuplicatesCollapseWhenBaseUniform) {
  // base (3,3): base == first uniform level -> one duplicate removed.
  const auto samples = bootstrap_samples({3, 3}, 3, 2);
  // Everything collapses to the single point (3,3).
  EXPECT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples.front(), (runtime::Parallelism{3, 3}));
}

TEST(Bootstrap, AllSamplesWithinSearchSpace) {
  const runtime::Parallelism base{1, 4, 2, 6};
  const auto samples = bootstrap_samples(base, 20, 6);
  for (const auto& s : samples) {
    ASSERT_EQ(s.size(), base.size());
    const int k_max = 6;
    for (std::size_t i = 0; i < s.size(); ++i) {
      EXPECT_GE(s[i], std::min(base[i], k_max));
      EXPECT_LE(s[i], 20);
    }
  }
}

TEST(Bootstrap, PaperSampleCounts) {
  // WordCount: N=4 operators, M=6 uniform + 4 single-op + base ~ 10-11
  // (the paper reports an initial set of 10).
  const auto wc = bootstrap_samples({1, 1, 3, 2}, 60, 6);
  EXPECT_EQ(wc.size(), 11u);
  // Yahoo: N=5 operators, M=35 targets the paper's 40-sample set; the
  // uniform family collapses when the span from k'_max to P_max is shorter
  // than M, so only a lower bound holds.
  const auto yahoo = bootstrap_samples({14, 1, 1, 1, 44}, 60, 35);
  EXPECT_GE(yahoo.size(), 20u);
  EXPECT_LE(yahoo.size(), 41u);
}

}  // namespace
}  // namespace autra::core

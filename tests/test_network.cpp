// Unit tests of the flow-level rack/uplink network model (DESIGN.md §11):
// per-edge uplink weights derived from the placement, topology-order
// budget sharing, oversubscription, partition cuts as zero-capacity links,
// and engine-level checks that finite uplinks cap throughput.
#include "streamsim/network.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "streamsim/engine.hpp"

namespace autra::sim {
namespace {

Topology chain2() {
  Topology t;
  t.add_operator({.name = "src",
                  .kind = OperatorKind::kSource,
                  .process_us = 2.0});
  t.add_operator({.name = "sink",
                  .kind = OperatorKind::kSink,
                  .selectivity = 0.0,
                  .process_us = 2.0});
  t.connect(0, 1);
  return t;
}

Topology chain3() {
  Topology t;
  t.add_operator({.name = "src",
                  .kind = OperatorKind::kSource,
                  .process_us = 2.0});
  t.add_operator({.name = "mid",
                  .kind = OperatorKind::kStateless,
                  .selectivity = 1.0,
                  .process_us = 5.0});
  t.add_operator({.name = "sink",
                  .kind = OperatorKind::kSink,
                  .selectivity = 0.0,
                  .process_us = 2.0});
  t.connect(0, 1);
  t.connect(1, 2);
  return t;
}

ClusterSpec uplinked(std::size_t machines, std::size_t per_rack,
                     double uplink, double oversub = 1.0) {
  ClusterSpec spec = uniform_cluster(machines, per_rack);
  spec.rack_uplink_records_per_sec = uplink;
  spec.rack_oversubscription = oversub;
  return spec;
}

// With k instances round-robined over 4 machines in 2 racks, each edge
// endpoint splits 50/50 across the racks, so the uniform-shuffle weight
// w_r = f_u (1 - f_d) + (1 - f_u) f_d is exactly 0.5 on both uplinks.
TEST(NetworkModel, CrossRackWeightsMatchPlacement) {
  const Topology t = chain3();
  const Cluster cluster{uplinked(4, 2, 1000.0)};
  const Parallelism p{4, 4, 4};
  const NetworkModel nm(t, cluster, p);

  ASSERT_TRUE(nm.constrained());
  EXPECT_DOUBLE_EQ(nm.uplink_records_per_sec(), 1000.0);
  for (const std::size_t op : {0ul, 1ul}) {
    const auto& w = nm.edge_rack_weights(op, 0);
    ASSERT_EQ(w.size(), 2u) << "op=" << op;
    EXPECT_EQ(w[0].first, 0u);
    EXPECT_DOUBLE_EQ(w[0].second, 0.5);
    EXPECT_EQ(w[1].first, 1u);
    EXPECT_DOUBLE_EQ(w[1].second, 0.5);
  }
}

TEST(NetworkModel, IntraRackTrafficNeverTouchesTheUplink) {
  const Topology t = chain2();
  // Both machines in one rack: all shuffle traffic stays under the ToR.
  const Cluster one_rack{uplinked(2, 2, 1000.0)};
  const Parallelism p22{2, 2};
  const NetworkModel nm(t, one_rack, p22);
  EXPECT_TRUE(nm.edge_rack_weights(0, 0).empty());

  // Both operator instances on the same machine: likewise free.
  const Parallelism p11{1, 1};
  const NetworkModel same_machine(t, one_rack, p11);
  EXPECT_TRUE(same_machine.edge_rack_weights(0, 0).empty());
}

TEST(NetworkModel, AsymmetricPlacementWeighsTheSourceRackHeaviest) {
  // src is a single instance in rack 0; the sink's 6 instances spread 2
  // per rack over 3 racks. Rack 0 carries the outbound 2/3 of the
  // exchange; racks 1 and 2 each receive their 1/3 share.
  const Topology t = chain2();
  const Cluster cluster{uplinked(6, 2, 1000.0)};
  const Parallelism p{1, 6};
  const NetworkModel nm(t, cluster, p);

  const auto& w = nm.edge_rack_weights(0, 0);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].first, 0u);
  EXPECT_NEAR(w[0].second, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(w[1].first, 1u);
  EXPECT_NEAR(w[1].second, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(w[2].first, 2u);
  EXPECT_NEAR(w[2].second, 1.0 / 3.0, 1e-12);
}

TEST(NetworkModel, EdgesClaimBudgetInTopologyOrder) {
  const Topology t = chain3();
  const Cluster cluster{uplinked(4, 2, 1000.0)};
  const Parallelism p{4, 4, 4};
  NetworkModel nm(t, cluster, p);
  const std::vector<std::size_t> none;

  // dt = 1 s: each rack starts the tick with 1000 records of budget, and
  // an edge with weight 0.5 can move at most 1000 / 0.5 = 2000 records.
  nm.begin_tick(1.0, none);
  EXPECT_DOUBLE_EQ(nm.edge_limit(0, 0), 2000.0);

  // The upstream edge moves 1500 records, charging 750 against each rack;
  // the downstream edge is left 250 / 0.5 = 500.
  nm.consume(0, 0, 1500.0);
  EXPECT_DOUBLE_EQ(nm.edge_limit(1, 0), 500.0);
  nm.consume(1, 0, 500.0);
  EXPECT_DOUBLE_EQ(nm.edge_limit(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(nm.edge_limit(0, 0), 0.0);

  // A new tick resets the budgets in full.
  nm.begin_tick(1.0, none);
  EXPECT_DOUBLE_EQ(nm.edge_limit(0, 0), 2000.0);
}

TEST(NetworkModel, OversubscriptionTapersTheUplink) {
  const Topology t = chain3();
  const Cluster cluster{uplinked(4, 2, 1000.0, 4.0)};
  const Parallelism p{4, 4, 4};
  NetworkModel nm(t, cluster, p);
  EXPECT_DOUBLE_EQ(nm.uplink_records_per_sec(), 250.0);
  const std::vector<std::size_t> none;
  nm.begin_tick(1.0, none);
  EXPECT_DOUBLE_EQ(nm.edge_limit(0, 0), 500.0);
}

TEST(NetworkModel, PartitionCutIsAZeroCapacityLink) {
  const Topology t = chain3();
  const Cluster cluster{uplinked(4, 2, 1000.0)};
  const Parallelism p{4, 4, 4};
  NetworkModel nm(t, cluster, p);

  // Island = rack 0. Every operator has instances on both sides, so every
  // edge is cut while the partition is active — and only then.
  EXPECT_EQ(nm.add_partition({1, 1, 0, 0}), 0u);
  EXPECT_EQ(nm.num_partitions(), 1u);
  const std::vector<std::size_t> active{0};
  nm.begin_tick(1.0, active);
  EXPECT_TRUE(nm.edge_cut(0, 0));
  EXPECT_DOUBLE_EQ(nm.edge_limit(0, 0), 0.0);

  const std::vector<std::size_t> none;
  nm.begin_tick(1.0, none);
  EXPECT_FALSE(nm.edge_cut(0, 0));
  EXPECT_DOUBLE_EQ(nm.edge_limit(0, 0), 2000.0);

  // A configuration living entirely inside the island is unaffected:
  // machines 0 and 1 host every instance of a k=2 job.
  const Parallelism p2{2, 2, 2};
  NetworkModel inside(t, cluster, p2);
  EXPECT_EQ(inside.add_partition({1, 1, 0, 0}), 0u);
  inside.begin_tick(1.0, active);
  EXPECT_FALSE(inside.edge_cut(0, 0));
  EXPECT_GT(inside.edge_limit(0, 0), 0.0);

  EXPECT_THROW(nm.add_partition({1, 1, 0}), std::invalid_argument);
}

TEST(NetworkModel, UnconstrainedClusterIsFreeExceptForCuts) {
  const Topology t = chain3();
  const Cluster cluster{uniform_cluster(4, 2)};  // no uplink configured
  const Parallelism p{4, 4, 4};
  NetworkModel nm(t, cluster, p);

  EXPECT_FALSE(nm.constrained());
  EXPECT_DOUBLE_EQ(nm.uplink_records_per_sec(), 0.0);
  const std::vector<std::size_t> none;
  nm.begin_tick(0.05, none);
  EXPECT_TRUE(std::isinf(nm.edge_limit(0, 0)));
  nm.consume(0, 0, 1e9);  // no budgets to charge
  EXPECT_TRUE(std::isinf(nm.edge_limit(0, 0)));

  // Partitions still cut edges: the degenerate zero-capacity case works
  // without any bandwidth accounting.
  EXPECT_EQ(nm.add_partition({1, 1, 0, 0}), 0u);
  const std::vector<std::size_t> active{0};
  nm.begin_tick(0.05, active);
  EXPECT_DOUBLE_EQ(nm.edge_limit(0, 0), 0.0);
}

TEST(NetworkModel, UplinkCapsEngineThroughput) {
  // Two racks of one machine each, 10k records/s of effective uplink.
  // A k=2 shuffle splits 50/50 across the racks (w = 0.5), so the edge can
  // move at most 10k / 0.5 = 20k records/s: the engine must pin throughput
  // there and let the rest pile up as Kafka lag.
  const auto run = [](ClusterSpec spec) {
    EngineParams params;
    params.measurement_noise = 0.0;
    auto e = std::make_unique<Engine>(
        chain2(), Cluster(std::move(spec)), Parallelism{2, 2},
        std::make_unique<KafkaLog>(std::make_shared<ConstantRate>(50000.0)),
        params);
    e->run_until(20.0);
    e->reset_counters();
    e->run_until(50.0);
    return e;
  };

  const auto capped = run(uplinked(2, 1, 10000.0));
  EXPECT_DOUBLE_EQ(capped->network().uplink_records_per_sec(), 10000.0);
  EXPECT_NEAR(capped->throughput(), 20000.0, 2000.0);
  EXPECT_GT(capped->kafka().lag(), 5e5);  // ~30k/s shortfall over 30 s

  // Same job and placement with the oversubscription taper: 40k raw
  // uplink at 4:1 is the same effective 10k.
  const auto tapered = run(uplinked(2, 1, 40000.0, 4.0));
  EXPECT_DOUBLE_EQ(tapered->network().uplink_records_per_sec(), 10000.0);
  EXPECT_NEAR(tapered->throughput(), 20000.0, 2000.0);

  // And without uplinks the same job runs at the offered rate.
  const auto unconstrained = run(uniform_cluster(2, 1));
  EXPECT_NEAR(unconstrained->throughput(), 50000.0, 2500.0);
  EXPECT_LT(unconstrained->kafka().lag(), 5e4);
}

}  // namespace
}  // namespace autra::sim

// The incremental-GP contract (DESIGN.md §14): posteriors built through
// GpRegressor::observe() must be indistinguishable (<= 1e-9) from a
// from-scratch fit on the same data, snapshots must round-trip the fitted
// state bit-for-bit, every fallback-to-refit condition must fire and be
// counted, the observation window must evict exactly, and the always-on
// BayesOpt decision stream must be bit-identical across thread counts and
// across a snapshot/restore process boundary.
#include "bayesopt/bayes_opt.hpp"
#include "gp/gp_regressor.hpp"
#include "linalg/cholesky.hpp"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace autra::gp {
namespace {

using linalg::Matrix;
using linalg::Vector;

/// Random training set in [1, 10]^d whose first two rows pin the exact box
/// corners, so any prefix fit of >= 2 rows freezes the same normalisation
/// box and every later point is in-box (the incremental fast path).
struct DataSet {
  Matrix x;
  Vector y;
};

DataSet make_data(std::mt19937_64& rng, std::size_t n, std::size_t d) {
  std::uniform_real_distribution<double> coord(1.0, 10.0);
  std::uniform_real_distribution<double> noise(-0.05, 0.05);
  DataSet data;
  data.x = Matrix(n, d);
  data.y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      data.x(i, j) = i == 0 ? 1.0 : (i == 1 ? 10.0 : coord(rng));
    }
    double s = 1.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double dd = (data.x(i, j) - 6.0) / 5.0;
      s -= dd * dd / static_cast<double>(d);
    }
    data.y[i] = s + noise(rng);
  }
  return data;
}

GpConfig frozen_config() {
  GpConfig cfg;
  cfg.optimize_hyperparams = false;
  cfg.length_scale = 0.5;
  return cfg;
}

TEST(IncrementalGp, ObserveMatchesBatchFitAcross250Seeds) {
  for (std::uint64_t seed = 0; seed < 250; ++seed) {
    std::mt19937_64 rng(seed);
    const std::size_t d = 1 + seed % 3;
    const std::size_t n = 8 + seed % 8;
    const DataSet data = make_data(rng, n, d);

    GpRegressor batch(frozen_config());
    batch.fit(data.x, data.y);

    const std::size_t n_seed = 2 + seed % 3;
    GpRegressor inc(frozen_config());
    Matrix x_seed(n_seed, d);
    Vector y_seed(n_seed);
    for (std::size_t i = 0; i < n_seed; ++i) {
      for (std::size_t j = 0; j < d; ++j) x_seed(i, j) = data.x(i, j);
      y_seed[i] = data.y[i];
    }
    inc.fit(x_seed, y_seed);
    for (std::size_t i = n_seed; i < n; ++i) {
      inc.observe(data.x.row(i), data.y[i]);
    }

    ASSERT_EQ(inc.num_samples(), n) << "seed " << seed;
    EXPECT_EQ(inc.fit_stats().incremental_updates, n - n_seed)
        << "seed " << seed;
    EXPECT_EQ(inc.fit_stats().full_fits, 1u) << "seed " << seed;

    // Every training point and a spread of fresh probes agree to <= 1e-9.
    std::uniform_real_distribution<double> coord(1.0, 10.0);
    for (std::size_t i = 0; i < n + 16; ++i) {
      std::vector<double> probe(d);
      if (i < n) {
        for (std::size_t j = 0; j < d; ++j) probe[j] = data.x(i, j);
      } else {
        for (std::size_t j = 0; j < d; ++j) probe[j] = coord(rng);
      }
      const Prediction a = batch.predict(probe);
      const Prediction b = inc.predict(probe);
      EXPECT_NEAR(a.mean, b.mean, 1e-9) << "seed " << seed << " probe " << i;
      EXPECT_NEAR(a.variance, b.variance, 1e-9)
          << "seed " << seed << " probe " << i;
    }
    EXPECT_NEAR(batch.log_marginal_likelihood(),
                inc.log_marginal_likelihood(), 1e-9)
        << "seed " << seed;
  }
}

TEST(IncrementalGp, DowndateUpdateRoundTripRestoresFactor) {
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 3 + static_cast<std::size_t>(rep) % 6;
    // Random SPD matrix A = B B^T + n I.
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b(i, j) = u(rng);
    }
    Matrix a = b * b.transposed();
    a.add_diagonal(static_cast<double>(n));
    auto chol = linalg::Cholesky::factor(a);
    ASSERT_TRUE(chol.has_value());
    const Matrix before = chol->lower();

    Vector v(n);
    for (double& x : v) x = u(rng);
    chol->update(v);
    chol->downdate(v);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        EXPECT_NEAR(chol->lower()(i, j), before(i, j), 1e-9)
            << "rep " << rep << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(IncrementalGp, SnapshotRestoreIsBitIdentical) {
  std::mt19937_64 rng(7);
  const DataSet data = make_data(rng, 10, 2);
  GpRegressor gp(frozen_config());
  Matrix x_seed(4, 2);
  Vector y_seed(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 2; ++j) x_seed(i, j) = data.x(i, j);
    y_seed[i] = data.y[i];
  }
  gp.fit(x_seed, y_seed);
  for (std::size_t i = 4; i < 10; ++i) gp.observe(data.x.row(i), data.y[i]);

  GpRegressor fresh(frozen_config());
  fresh.restore(gp.snapshot());

  ASSERT_EQ(fresh.num_samples(), gp.num_samples());
  std::uniform_real_distribution<double> coord(1.0, 10.0);
  for (int p = 0; p < 32; ++p) {
    const std::vector<double> probe{coord(rng), coord(rng)};
    const Prediction a = gp.predict(probe);
    const Prediction b = fresh.predict(probe);
    // Bit-identity, not approximation: restore() adopts the serialised
    // factor and recomputes the derived state with the same op order.
    EXPECT_EQ(a.mean, b.mean) << "probe " << p;
    EXPECT_EQ(a.variance, b.variance) << "probe " << p;
  }
  EXPECT_EQ(gp.log_marginal_likelihood(), fresh.log_marginal_likelihood());

  // The restored model keeps observing incrementally, bit-identically.
  const std::vector<double> nx{5.0, 5.0};
  gp.observe(nx, 0.5);
  fresh.observe(nx, 0.5);
  EXPECT_EQ(fresh.fit_stats().incremental_updates, 1u);
  const std::vector<double> probe{3.0, 7.0};
  EXPECT_EQ(gp.predict(probe).mean, fresh.predict(probe).mean);
}

TEST(IncrementalGp, OutOfBoxPointFallsBackToFullRefit) {
  std::mt19937_64 rng(11);
  const DataSet data = make_data(rng, 6, 2);
  GpRegressor gp(frozen_config());
  gp.fit(data.x, data.y);

  const std::vector<double> outside{20.0, 5.0};
  gp.observe(outside, 0.1);
  EXPECT_EQ(gp.fit_stats().normalisation_refits, 1u);
  EXPECT_EQ(gp.fit_stats().incremental_updates, 0u);
  EXPECT_EQ(gp.fit_stats().full_fits, 2u);

  // The refit widened the box; the next in-box point goes incremental and
  // the posterior still matches a batch fit of the same 8 rows.
  const std::vector<double> inside{15.0, 5.0};
  gp.observe(inside, 0.2);
  EXPECT_EQ(gp.fit_stats().incremental_updates, 1u);

  Matrix x_all(8, 2);
  Vector y_all(8);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 2; ++j) x_all(i, j) = data.x(i, j);
    y_all[i] = data.y[i];
  }
  x_all(6, 0) = 20.0;
  x_all(6, 1) = 5.0;
  y_all[6] = 0.1;
  x_all(7, 0) = 15.0;
  x_all(7, 1) = 5.0;
  y_all[7] = 0.2;
  GpRegressor batch(frozen_config());
  batch.fit(x_all, y_all);
  const std::vector<double> probe{8.0, 4.0};
  EXPECT_NEAR(batch.predict(probe).mean, gp.predict(probe).mean, 1e-9);
}

TEST(IncrementalGp, ReoptimizeCadenceTriggersHyperparamRefit) {
  std::mt19937_64 rng(13);
  const DataSet data = make_data(rng, 8, 2);
  GpConfig cfg;  // optimize_hyperparams stays on.
  cfg.reoptimize_every = 2;
  GpRegressor gp(cfg);
  Matrix x_seed(4, 2);
  Vector y_seed(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 2; ++j) x_seed(i, j) = data.x(i, j);
    y_seed[i] = data.y[i];
  }
  gp.fit(x_seed, y_seed);
  gp.observe(data.x.row(4), data.y[4]);  // 1st since fit: incremental.
  gp.observe(data.x.row(5), data.y[5]);  // 2nd: cadence refit.
  gp.observe(data.x.row(6), data.y[6]);  // counter reset: incremental again.
  EXPECT_EQ(gp.fit_stats().hyperparam_refits, 1u);
  EXPECT_EQ(gp.fit_stats().incremental_updates, 2u);
  EXPECT_EQ(gp.fit_stats().full_fits, 2u);
}

TEST(IncrementalGp, JitteredFactorFallsBackToFullRefit) {
  // Zero observation noise + a duplicated row force factor_with_jitter to
  // apply jitter; a jittered factor must never be extended incrementally.
  // The duplicate pair leads so the pivot residual is exactly 1 - 1 = 0,
  // making the unjittered factorisation fail deterministically.
  GpConfig cfg = frozen_config();
  cfg.noise_variance = 0.0;
  GpRegressor gp(cfg);
  Matrix x{{4.0}, {4.0}, {1.0}, {10.0}};
  Vector y{0.3, 0.3, 0.1, 0.2};
  gp.fit(x, y);
  gp.observe(std::vector<double>{7.0}, 0.4);
  EXPECT_EQ(gp.fit_stats().jitter_refits, 1u);
  EXPECT_EQ(gp.fit_stats().incremental_updates, 0u);
}

TEST(IncrementalGp, FailedFactorExtensionFallsBackToFullRefit) {
  // Noise-free model: re-observing an existing point makes the bordered
  // matrix singular, so append_row throws and observe() must recover
  // through a full (jittered) refit instead of corrupting the factor.
  GpConfig cfg = frozen_config();
  cfg.noise_variance = 0.0;
  GpRegressor gp(cfg);
  Matrix x{{1.0}, {10.0}, {4.0}};
  Vector y{0.1, 0.2, 0.3};
  gp.fit(x, y);
  ASSERT_EQ(gp.fit_stats().full_fits, 1u);
  gp.observe(std::vector<double>{4.0}, 0.3);
  EXPECT_EQ(gp.fit_stats().jitter_refits, 1u);
  EXPECT_EQ(gp.fit_stats().incremental_updates, 0u);
  EXPECT_EQ(gp.num_samples(), 4u);
  // Still usable afterwards.
  EXPECT_TRUE(std::isfinite(gp.predict(std::vector<double>{5.0}).mean));
}

TEST(IncrementalGp, WindowEvictsOldestAndStaysBounded) {
  std::mt19937_64 rng(17);
  const DataSet data = make_data(rng, 12, 2);
  GpConfig cfg = frozen_config();
  cfg.max_observations = 6;
  GpRegressor gp(cfg);
  Matrix x_seed(6, 2);
  Vector y_seed(6);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 2; ++j) x_seed(i, j) = data.x(i, j);
    y_seed[i] = data.y[i];
  }
  gp.fit(x_seed, y_seed);
  for (std::size_t i = 6; i < 12; ++i) gp.observe(data.x.row(i), data.y[i]);

  EXPECT_EQ(gp.num_samples(), 6u);
  EXPECT_EQ(gp.fit_stats().window_evictions, 6u);
  EXPECT_EQ(gp.fit_stats().incremental_updates, 6u);
  EXPECT_EQ(gp.fit_stats().full_fits, 1u);

  // The snapshot window is exactly the 6 newest raw observations.
  const GpSnapshot snap = gp.snapshot();
  ASSERT_EQ(snap.x.rows(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(snap.x(i, j), data.x(i + 6, j));
    }
    EXPECT_EQ(snap.y[i], data.y[i + 6]);
  }

  // A restored windowed model continues the eviction stream bit-identically.
  GpRegressor fresh(cfg);
  fresh.restore(snap);
  const std::vector<double> nx{4.5, 6.5};
  gp.observe(nx, 0.7);
  fresh.observe(nx, 0.7);
  ASSERT_EQ(fresh.num_samples(), 6u);
  const std::vector<double> probe{5.0, 5.0};
  EXPECT_EQ(gp.predict(probe).mean, fresh.predict(probe).mean);
  EXPECT_EQ(gp.predict(probe).variance, fresh.predict(probe).variance);
}

TEST(IncrementalGp, ObserveValidatesInput) {
  GpRegressor unfitted;
  EXPECT_THROW(unfitted.observe(std::vector<double>{1.0}, 0.0),
               std::logic_error);
  EXPECT_THROW(unfitted.snapshot(), std::logic_error);

  std::mt19937_64 rng(23);
  const DataSet data = make_data(rng, 5, 2);
  GpRegressor gp(frozen_config());
  gp.fit(data.x, data.y);
  EXPECT_THROW(gp.observe(std::vector<double>{1.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(gp.restore(GpSnapshot{}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Always-on BayesOpt: decision bit-identity across threads and restarts.

double synthetic_score(const bo::Config& c) {
  double s = 1.0;
  for (int k : c) {
    const double d = (k - 5.0) / 8.0;
    s -= d * d / static_cast<double>(c.size());
  }
  return s;
}

bo::BayesOptConfig incremental_bo_config(int threads) {
  bo::BayesOptConfig cfg;
  cfg.incremental = true;
  cfg.gp.threads = threads;
  cfg.candidate_budget = 256;
  cfg.seed = 1234;
  return cfg;
}

std::vector<bo::Config> run_trajectory(bo::BayesOpt& opt, int rounds) {
  std::vector<bo::Config> decisions;
  for (int r = 0; r < rounds; ++r) {
    const bo::Suggestion s = opt.suggest();
    decisions.push_back(s.config);
    opt.observe(s.config, synthetic_score(s.config));
  }
  return decisions;
}

TEST(IncrementalBayesOpt, UsesIncrementalPathBetweenRounds) {
  bo::BayesOpt opt(bo::SearchSpace(2, 1, 8), incremental_bo_config(1));
  opt.observe({1, 1}, synthetic_score({1, 1}));
  opt.observe({8, 8}, synthetic_score({8, 8}));
  opt.observe({4, 4}, synthetic_score({4, 4}));
  (void)run_trajectory(opt, 6);
  const gp::FitStats& stats = opt.surrogate().fit_stats();
  EXPECT_GT(stats.incremental_updates, 0u);
  // Features are integer grid points inside the pinned [1,8] box, so no
  // normalisation fallback can fire; only the first fit is full.
  EXPECT_EQ(stats.normalisation_refits, 0u);
}

TEST(IncrementalBayesOpt, DecisionStreamBitIdenticalAcrossThreads) {
  std::vector<std::vector<bo::Config>> streams;
  for (const int threads : {1, 2, 8}) {
    bo::BayesOpt opt(bo::SearchSpace(3, 1, 6), incremental_bo_config(threads));
    opt.observe({1, 1, 1}, synthetic_score({1, 1, 1}));
    opt.observe({6, 6, 6}, synthetic_score({6, 6, 6}));
    opt.observe({3, 2, 4}, synthetic_score({3, 2, 4}));
    streams.push_back(run_trajectory(opt, 8));
  }
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);
}

TEST(IncrementalBayesOpt, SnapshotRestoreReproducesSuggestTrajectory) {
  const auto cfg = incremental_bo_config(1);
  bo::BayesOpt original(bo::SearchSpace(2, 1, 10), cfg);
  original.observe({1, 1}, synthetic_score({1, 1}));
  original.observe({10, 10}, synthetic_score({10, 10}));
  original.observe({5, 6}, synthetic_score({5, 6}));
  (void)run_trajectory(original, 4);  // Advance mid-run state.

  const bo::BayesOptSnapshot snap = original.snapshot();
  bo::BayesOpt restored(bo::SearchSpace(2, 1, 10), cfg);
  restored.restore(snap);

  const auto want = run_trajectory(original, 10);
  const auto got = run_trajectory(restored, 10);
  EXPECT_EQ(want, got);
}

TEST(IncrementalBayesOpt, RestoreRejectsForeignState) {
  const auto cfg = incremental_bo_config(1);
  bo::BayesOpt original(bo::SearchSpace(2, 1, 10), cfg);
  original.observe({9, 9}, 0.5);
  const bo::BayesOptSnapshot snap = original.snapshot();

  bo::BayesOpt smaller(bo::SearchSpace(2, 1, 4), cfg);
  EXPECT_THROW(smaller.restore(snap), std::invalid_argument);

  bo::BayesOptSnapshot bad = snap;
  bad.rng_state = "not a generator";
  bo::BayesOpt fresh(bo::SearchSpace(2, 1, 10), cfg);
  EXPECT_THROW(fresh.restore(bad), std::invalid_argument);
}

}  // namespace
}  // namespace autra::gp

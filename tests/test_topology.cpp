// Unit tests for the job-graph model.
#include "streamsim/topology.hpp"

#include <gtest/gtest.h>

namespace autra::sim {
namespace {

Topology linear_chain() {
  Topology t;
  t.add_operator({.name = "src", .kind = OperatorKind::kSource});
  t.add_operator({.name = "map", .kind = OperatorKind::kStateless});
  t.add_operator(
      {.name = "sink", .kind = OperatorKind::kSink, .selectivity = 0.0});
  t.connect(0, 1);
  t.connect(1, 2);
  return t;
}

TEST(Topology, AddReturnsDenseIndices) {
  Topology t;
  EXPECT_EQ(t.add_operator({.name = "a", .kind = OperatorKind::kSource}), 0u);
  EXPECT_EQ(t.add_operator({.name = "b"}), 1u);
  EXPECT_EQ(t.num_operators(), 2u);
  EXPECT_EQ(t.op(0).name, "a");
}

TEST(Topology, ConnectValidation) {
  Topology t = linear_chain();
  EXPECT_THROW(t.connect(0, 9), std::invalid_argument);
  EXPECT_THROW(t.connect(9, 0), std::invalid_argument);
  EXPECT_THROW(t.connect(1, 1), std::invalid_argument);
  EXPECT_THROW(t.connect(0, 1), std::invalid_argument);  // duplicate
}

TEST(Topology, UpDownStream) {
  const Topology t = linear_chain();
  EXPECT_EQ(t.downstream(0), std::vector<std::size_t>{1});
  EXPECT_EQ(t.upstream(1), std::vector<std::size_t>{0});
  EXPECT_TRUE(t.downstream(2).empty());
  EXPECT_TRUE(t.upstream(0).empty());
}

TEST(Topology, SourcesAndSinks) {
  const Topology t = linear_chain();
  EXPECT_EQ(t.sources(), std::vector<std::size_t>{0});
  EXPECT_EQ(t.sinks(), std::vector<std::size_t>{2});
}

TEST(Topology, TopologicalOrderOfDiamond) {
  Topology t;
  t.add_operator({.name = "src", .kind = OperatorKind::kSource});
  t.add_operator({.name = "l"});
  t.add_operator({.name = "r"});
  t.add_operator({.name = "join", .selectivity = 0.0});
  t.connect(0, 1);
  t.connect(0, 2);
  t.connect(1, 3);
  t.connect(2, 3);
  const auto order = t.topological_order();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), 0u);
  EXPECT_EQ(order.back(), 3u);
}

TEST(Topology, ValidatePassesForChain) {
  EXPECT_NO_THROW(linear_chain().validate());
}

TEST(Topology, ValidateRejectsEmpty) {
  Topology t;
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Topology, ValidateRejectsRootThatIsNotASource) {
  Topology t;
  t.add_operator({.name = "map", .kind = OperatorKind::kStateless});
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Topology, ValidateRejectsSourceWithUpstream) {
  Topology t;
  t.add_operator({.name = "a", .kind = OperatorKind::kSource});
  t.add_operator({.name = "b", .kind = OperatorKind::kSource});
  t.connect(0, 1);
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Topology, ValidateRejectsNegativeSelectivity) {
  Topology t;
  t.add_operator({.name = "a", .kind = OperatorKind::kSource});
  t.add_operator({.name = "b", .selectivity = -1.0});
  t.connect(0, 1);
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Topology, ValidateRejectsZeroCost) {
  Topology t;
  t.add_operator({.name = "a", .kind = OperatorKind::kSource});
  t.add_operator({.name = "b",
                  .deserialize_us = 0.0,
                  .process_us = 0.0,
                  .serialize_us = 0.0});
  t.connect(0, 1);
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Topology, ValidateRejectsCycleBehindSource) {
  Topology t;
  t.add_operator({.name = "src", .kind = OperatorKind::kSource});
  t.add_operator({.name = "a"});
  t.add_operator({.name = "b"});
  t.connect(0, 1);
  t.connect(1, 2);
  t.connect(2, 1);  // a <-> b cycle reachable from the source
  EXPECT_THROW((void)t.topological_order(), std::logic_error);
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Topology, IndexOf) {
  const Topology t = linear_chain();
  EXPECT_EQ(t.index_of("map"), 1u);
  EXPECT_THROW(t.index_of("nope"), std::out_of_range);
}

TEST(Topology, TotalCost) {
  OperatorSpec op{.deserialize_us = 1.0, .process_us = 2.0,
                  .serialize_us = 0.5};
  EXPECT_DOUBLE_EQ(op.total_cost_us(), 3.5);
}

TEST(Topology, KindNames) {
  EXPECT_STREQ(to_string(OperatorKind::kSource), "source");
  EXPECT_STREQ(to_string(OperatorKind::kSink), "sink");
  EXPECT_STREQ(to_string(OperatorKind::kSlidingWindow), "sliding-window");
  EXPECT_STREQ(to_string(OperatorKind::kSessionWindow), "session-window");
  EXPECT_STREQ(to_string(OperatorKind::kKeyedAggregate), "keyed-aggregate");
  EXPECT_STREQ(to_string(OperatorKind::kStateless), "stateless");
}

}  // namespace
}  // namespace autra::sim

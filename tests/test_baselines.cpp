// Tests for the DS2, DRS, and threshold baselines.
#include "baselines/drs.hpp"
#include "baselines/ds2.hpp"
#include "baselines/threshold.hpp"

#include "workloads/workloads.hpp"

#include <cmath>

#include <gtest/gtest.h>

namespace autra::baselines {
namespace {

using core::Evaluator;
using sim::ConstantRate;
using sim::JobMetrics;
using sim::Parallelism;

TEST(MmkSojourn, MM1MatchesClosedForm) {
  // M/M/1: W = 1 / (mu - lambda).
  EXPECT_NEAR(mmk_sojourn_time(50.0, 100.0, 1), 1.0 / 50.0, 1e-9);
  EXPECT_NEAR(mmk_sojourn_time(90.0, 100.0, 1), 1.0 / 10.0, 1e-9);
}

TEST(MmkSojourn, IdleQueueIsServiceTime) {
  EXPECT_DOUBLE_EQ(mmk_sojourn_time(0.0, 100.0, 4), 0.01);
}

TEST(MmkSojourn, UnstableIsInfinite) {
  EXPECT_TRUE(std::isinf(mmk_sojourn_time(100.0, 100.0, 1)));
  EXPECT_TRUE(std::isinf(mmk_sojourn_time(500.0, 100.0, 3)));
}

TEST(MmkSojourn, MoreServersReduceWait) {
  const double w2 = mmk_sojourn_time(150.0, 100.0, 2);
  const double w4 = mmk_sojourn_time(150.0, 100.0, 4);
  EXPECT_LT(w4, w2);
  EXPECT_TRUE(std::isfinite(w2));
}

TEST(MmkSojourn, Validation) {
  EXPECT_THROW(mmk_sojourn_time(1.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(mmk_sojourn_time(1.0, 1.0, 0), std::invalid_argument);
}

sim::Topology chain() {
  sim::Topology t;
  t.add_operator({.name = "src", .kind = sim::OperatorKind::kSource});
  t.add_operator({.name = "mid"});
  t.add_operator({.name = "sink",
                  .kind = sim::OperatorKind::kSink,
                  .selectivity = 0.0});
  t.connect(0, 1);
  t.connect(1, 2);
  return t;
}

JobMetrics metrics_with_rates(const Parallelism& p, double true_rate,
                              double observed_rate, double throughput) {
  JobMetrics m;
  m.parallelism = p;
  m.input_rate = 1000.0;
  m.throughput = throughput;
  for (int i = 0; i < 3; ++i) {
    sim::OperatorRates r;
    r.true_rate_per_instance = true_rate;
    r.observed_rate_per_instance = observed_rate;
    r.total_input_rate = 1000.0;
    r.total_output_rate = i == 2 ? 0.0 : 1000.0;
    r.parallelism = p[static_cast<std::size_t>(i)];
    m.operators.push_back(r);
  }
  return m;
}

TEST(Ds2, Validation) {
  const sim::Topology t = chain();
  EXPECT_THROW(Ds2Policy(t, {.max_iterations = 0, .max_parallelism = 4}),
               std::invalid_argument);
  const Ds2Policy policy(t, {.max_parallelism = 4});
  const Evaluator never = [](const Parallelism&) -> JobMetrics { return {}; };
  EXPECT_THROW((void)policy.run(never, {1, 1}), std::invalid_argument);
}

TEST(Ds2, StopsWhenTargetReached) {
  const sim::Topology t = chain();
  int calls = 0;
  const Evaluator eval = [&](const Parallelism& p) {
    ++calls;
    return metrics_with_rates(p, 600.0, 500.0, calls == 1 ? 400.0 : 1000.0);
  };
  const Ds2Policy policy(t, {.target_throughput = 1000.0,
                             .max_parallelism = 10});
  const Ds2Result r = policy.run(eval, {1, 1, 1});
  EXPECT_TRUE(r.reached_target);
  EXPECT_EQ(r.iterations, 2);
  EXPECT_EQ(r.final_config, (Parallelism{2, 2, 2}));
}

TEST(Ds2, HitsIterationBoundOnCappedJob) {
  // Throughput never reaches the target and the measured true rates keep
  // drifting, so recommendations keep changing: DS2's infinite loop,
  // stopped only by the iteration bound.
  const sim::Topology t = chain();
  int calls = 0;
  const Evaluator eval = [&](const Parallelism& p) {
    ++calls;
    // Drifting true rate -> ceil() changes every time.
    return metrics_with_rates(p, 600.0 / calls, 500.0, 400.0);
  };
  const Ds2Policy policy(t, {.target_throughput = 1000.0,
                             .max_iterations = 6,
                             .max_parallelism = 60});
  const Ds2Result r = policy.run(eval, {1, 1, 1});
  EXPECT_FALSE(r.reached_target);
  EXPECT_TRUE(r.hit_iteration_bound);
  EXPECT_EQ(r.iterations, 6);
}

TEST(Ds2, WordCountConverges) {
  auto spec = autra::workloads::word_count(
      std::make_shared<ConstantRate>(350000.0));
  spec.engine.measurement_noise = 0.0;
  sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 40.0, .measure_sec = 40.0});
  const Evaluator eval = core::make_runner_evaluator(runner);
  const Ds2Policy policy(runner.spec().topology,
                         {.target_throughput = 350000.0,
                          .max_parallelism = runner.max_parallelism()});
  const Ds2Result r = policy.run(eval, Parallelism(4, 1));
  EXPECT_TRUE(r.reached_target);
  EXPECT_LE(r.iterations, 4);
}

TEST(GgkSojourn, DegeneratesToErlangAtUnitScv) {
  EXPECT_NEAR(ggk_sojourn_time(90.0, 100.0, 1, 1.0, 1.0),
              mmk_sojourn_time(90.0, 100.0, 1), 1e-12);
  EXPECT_NEAR(ggk_sojourn_time(150.0, 100.0, 3, 1.0, 1.0),
              mmk_sojourn_time(150.0, 100.0, 3), 1e-12);
}

TEST(GgkSojourn, VariabilityScalesWaitingOnly) {
  // Doubling the summed scv doubles the waiting component, never the
  // service time.
  const double base = mmk_sojourn_time(90.0, 100.0, 1);
  const double service = 1.0 / 100.0;
  const double bursty = ggk_sojourn_time(90.0, 100.0, 1, 2.0, 2.0);
  EXPECT_NEAR(bursty - service, 2.0 * (base - service), 1e-12);
  // Deterministic arrivals/service (scv 0) eliminate waiting entirely.
  EXPECT_NEAR(ggk_sojourn_time(90.0, 100.0, 1, 0.0, 0.0), service, 1e-12);
}

TEST(GgkSojourn, Validation) {
  EXPECT_TRUE(std::isinf(ggk_sojourn_time(200.0, 100.0, 1, 1.0, 1.0)));
  EXPECT_THROW(ggk_sojourn_time(1.0, 2.0, 1, -1.0, 1.0),
               std::invalid_argument);
}

TEST(Drs, KingmanModelAllocatesMoreUnderBurstiness) {
  // With bursty arrivals (scv 4) the Kingman variant predicts longer
  // waits, so it must allocate at least as many instances as Erlang-C for
  // the same target.
  const sim::Topology t = chain();
  const JobMetrics m = metrics_with_rates({1, 1, 1}, 600.0, 500.0, 1000.0);
  const DrsPolicy erlang(t, {.target_latency_ms = 8.0,
                             .target_throughput = 1000.0,
                             .max_parallelism = 30});
  const DrsPolicy kingman(t, {.target_latency_ms = 8.0,
                              .target_throughput = 1000.0,
                              .queue_model = QueueModel::kKingman,
                              .arrival_scv = 4.0,
                              .service_scv = 1.0,
                              .max_parallelism = 30});
  int total_erlang = 0, total_kingman = 0;
  for (int k : erlang.allocate(m)) total_erlang += k;
  for (int k : kingman.allocate(m)) total_kingman += k;
  EXPECT_GE(total_kingman, total_erlang);
}

TEST(Drs, Validation) {
  const sim::Topology t = chain();
  EXPECT_THROW(DrsPolicy(t, {.target_latency_ms = 0.0, .max_parallelism = 4}),
               std::invalid_argument);
  EXPECT_THROW(DrsPolicy(t, {.target_latency_ms = 10.0,
                             .max_parallelism = 0}),
               std::invalid_argument);
}

TEST(Drs, AllocateMeetsModelTarget) {
  const sim::Topology t = chain();
  const DrsPolicy policy(t, {.target_latency_ms = 50.0,
                             .target_throughput = 1000.0,
                             .max_parallelism = 20});
  double predicted = 0.0;
  const Parallelism config =
      policy.allocate(metrics_with_rates({1, 1, 1}, 600.0, 500.0, 400.0),
                      &predicted);
  // Stability requires at least ceil(1000/600)=2 everywhere.
  for (int k : config) EXPECT_GE(k, 2);
  EXPECT_LE(predicted, 50.0);
}

TEST(Drs, ObservedRateOverProvisionsVsTrueRate) {
  const sim::Topology t = chain();
  // Observed rates are much lower than true rates (idle time counted), so
  // the observed-rate variant must allocate at least as many instances.
  const JobMetrics m = metrics_with_rates({1, 1, 1}, 800.0, 350.0, 1000.0);
  const DrsPolicy true_policy(t, {.target_latency_ms = 50.0,
                                  .target_throughput = 1000.0,
                                  .rate_metric = RateMetric::kTrueRate,
                                  .max_parallelism = 30});
  const DrsPolicy obs_policy(t, {.target_latency_ms = 50.0,
                                 .target_throughput = 1000.0,
                                 .rate_metric = RateMetric::kObservedRate,
                                 .max_parallelism = 30});
  const Parallelism with_true = true_policy.allocate(m);
  const Parallelism with_obs = obs_policy.allocate(m);
  int total_true = 0, total_obs = 0;
  for (int k : with_true) total_true += k;
  for (int k : with_obs) total_obs += k;
  EXPECT_GT(total_obs, total_true);
}

TEST(Drs, TightTargetGreedyAddsInstances) {
  const sim::Topology t = chain();
  const DrsPolicy loose(t, {.target_latency_ms = 1000.0,
                            .target_throughput = 1000.0,
                            .max_parallelism = 30});
  const DrsPolicy tight(t, {.target_latency_ms = 4.0,
                            .target_throughput = 1000.0,
                            .max_parallelism = 30});
  const JobMetrics m = metrics_with_rates({1, 1, 1}, 600.0, 500.0, 1000.0);
  int total_loose = 0, total_tight = 0;
  for (int k : loose.allocate(m)) total_loose += k;
  for (int k : tight.allocate(m)) total_tight += k;
  EXPECT_GE(total_tight, total_loose);
}

TEST(Drs, RunConvergesOnStationaryMetrics) {
  const sim::Topology t = chain();
  const Evaluator eval = [&](const Parallelism& p) {
    return metrics_with_rates(p, 600.0, 500.0, 1000.0);
  };
  const DrsPolicy policy(t, {.target_latency_ms = 50.0,
                             .target_throughput = 1000.0,
                             .max_parallelism = 20});
  const DrsResult r = policy.run(eval, {1, 1, 1});
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(r.prediction_feasible);
  EXPECT_LE(r.iterations, 3);
}

TEST(Drs, ModelErrorVisibleOnRealJob) {
  // On the simulated WordCount the queueing model's latency prediction is
  // far below the measured latency (no interference/congestion awareness) —
  // the paper's core criticism of DRS.
  auto spec = autra::workloads::word_count(
      std::make_shared<ConstantRate>(350000.0));
  spec.engine.measurement_noise = 0.0;
  sim::JobRunner runner(std::move(spec),
      {.warmup_sec = 40.0, .measure_sec = 40.0});
  const Evaluator eval = core::make_runner_evaluator(runner);
  const DrsPolicy policy(runner.spec().topology,
                         {.target_latency_ms = 30.0,
                          .target_throughput = 350000.0,
                          .max_parallelism = runner.max_parallelism()});
  const DrsResult r = policy.run(eval, Parallelism(4, 1));
  EXPECT_LT(r.predicted_latency_ms, r.final_metrics.latency_ms);
}

TEST(Threshold, Validation) {
  EXPECT_THROW(ThresholdPolicy({.scale_up_utilization = 0.2,
                                .scale_down_utilization = 0.5,
                                .max_parallelism = 4}),
               std::invalid_argument);
  EXPECT_THROW(ThresholdPolicy({.max_parallelism = 0}),
               std::invalid_argument);
}

TEST(Threshold, StepDirections) {
  const ThresholdPolicy policy({.max_parallelism = 10});
  // Saturated (util ~1) -> scale up.
  const Parallelism up =
      policy.step(metrics_with_rates({2, 2, 2}, 500.0, 480.0, 1000.0));
  EXPECT_EQ(up, (Parallelism{3, 3, 3}));
  // Nearly idle (util 0.1) -> scale down, floored at 1.
  const Parallelism down =
      policy.step(metrics_with_rates({2, 1, 2}, 500.0, 50.0, 1000.0));
  EXPECT_EQ(down, (Parallelism{1, 1, 1}));
  // Moderate utilisation (0.6) -> unchanged.
  const Parallelism hold =
      policy.step(metrics_with_rates({2, 2, 2}, 500.0, 300.0, 1000.0));
  EXPECT_EQ(hold, (Parallelism{2, 2, 2}));
}

TEST(Threshold, IterationBoundStopsOscillation) {
  // Utilisation flips between saturated and idle on every config change:
  // the policy oscillates and must be stopped by its iteration bound.
  int calls = 0;
  const Evaluator eval = [&](const Parallelism& p) {
    ++calls;
    const double obs = calls % 2 == 1 ? 480.0 : 50.0;
    return metrics_with_rates(p, 500.0, obs, 1000.0);
  };
  const ThresholdPolicy policy(
      {.max_parallelism = 10, .max_iterations = 6});
  const ThresholdResult r = policy.run(eval, {2, 2, 2});
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 6);
}

TEST(Threshold, RunStopsWhenStable) {
  int calls = 0;
  const Evaluator eval = [&](const Parallelism& p) {
    ++calls;
    // Utilisation falls into the dead band from the second call on.
    const double obs = calls == 1 ? 480.0 : 300.0;
    return metrics_with_rates(p, 500.0, obs, 1000.0);
  };
  const ThresholdPolicy policy({.max_parallelism = 10});
  const ThresholdResult r = policy.run(eval, {1, 1, 1});
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.final_config, (Parallelism{2, 2, 2}));
}

}  // namespace
}  // namespace autra::baselines

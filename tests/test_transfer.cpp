// Tests for Algorithm 2 (transfer learning), the benefit model, and the
// model library.
#include "core/transfer.hpp"

#include "core/throughput_opt.hpp"
#include "workloads/workloads.hpp"

#include <gtest/gtest.h>

namespace autra::core {
namespace {

using sim::ConstantRate;
using sim::JobMetrics;
using sim::Parallelism;

SamplePoint real_sample(Parallelism config, double score,
                        double latency_ms = 50.0,
                        double throughput = 1000.0) {
  SamplePoint s;
  s.config = std::move(config);
  s.score = score;
  JobMetrics m;
  m.parallelism = s.config;
  m.latency_ms = latency_ms;
  m.throughput = throughput;
  m.input_rate = 1000.0;
  s.metrics = std::move(m);
  return s;
}

BenefitModel toy_model(double rate) {
  BenefitModel model;
  model.rate = rate;
  model.base = {1, 1};
  for (int a = 1; a <= 6; ++a) {
    for (int b = 1; b <= 6; b += 2) {
      // Smooth concave score surface peaking at (2, 3).
      const double score =
          1.0 - 0.05 * ((a - 2.0) * (a - 2.0) + (b - 3.0) * (b - 3.0));
      model.samples.push_back(real_sample({a, b}, score));
    }
  }
  model.fit();
  return model;
}

TEST(BenefitModel, FitAndPredict) {
  const BenefitModel m = toy_model(1000.0);
  EXPECT_TRUE(m.gp.is_fitted());
  // The fitted surface reproduces the training trend: the peak region
  // scores higher than the far corner.
  EXPECT_GT(m.predict_mean({2, 3}), m.predict_mean({6, 6}));
}

TEST(BenefitModel, EmptyFitThrows) {
  BenefitModel m;
  EXPECT_THROW(m.fit(), std::invalid_argument);
}

TEST(BenefitModel, RaggedSamplesThrow) {
  BenefitModel m;
  m.samples.push_back(real_sample({1, 2}, 0.5));
  m.samples.push_back(real_sample({1, 2, 3}, 0.5));
  EXPECT_THROW(m.fit(), std::invalid_argument);
}

TEST(ModelLibrary, ClosestByRate) {
  ModelLibrary lib;
  EXPECT_EQ(lib.closest(100.0), nullptr);
  lib.add(toy_model(1000.0));
  lib.add(toy_model(5000.0));
  EXPECT_EQ(lib.size(), 2u);
  EXPECT_DOUBLE_EQ(lib.closest(1200.0)->rate, 1000.0);
  EXPECT_DOUBLE_EQ(lib.closest(4000.0)->rate, 5000.0);
}

TEST(ModelLibrary, HasModelForTolerance) {
  ModelLibrary lib;
  lib.add(toy_model(1000.0));
  EXPECT_TRUE(lib.has_model_for(1000.0));
  EXPECT_TRUE(lib.has_model_for(1040.0));
  EXPECT_FALSE(lib.has_model_for(1200.0));
  EXPECT_FALSE(lib.has_model_for(0.0));
}

TEST(ModelLibrary, AddFitsUnfittedModels) {
  ModelLibrary lib;
  BenefitModel m;
  m.rate = 10.0;
  m.base = {1, 1};
  m.samples.push_back(real_sample({1, 1}, 0.5));
  m.samples.push_back(real_sample({2, 2}, 0.7));
  m.samples.push_back(real_sample({3, 3}, 0.6));
  lib.add(std::move(m));
  EXPECT_TRUE(lib.models().front().gp.is_fitted());
}

TEST(RunTransfer, Validation) {
  const Evaluator never = [](const Parallelism&) -> JobMetrics { return {}; };
  BenefitModel unfitted;
  TransferParams params;
  params.steady.target_latency_ms = 100.0;
  params.steady.max_parallelism = 10;
  EXPECT_THROW(
      (void)run_transfer(never, {1, 1}, unfitted, params),
      std::invalid_argument);
  TransferParams bad = params;
  bad.n_num = 0;
  EXPECT_THROW((void)run_transfer(never, {1, 1}, toy_model(1.0), bad),
               std::invalid_argument);
}

TEST(RunTransfer, ConvergesImmediatelyWhenBaseMeets) {
  int evals = 0;
  const Evaluator eval = [&](const Parallelism& p) {
    ++evals;
    JobMetrics m;
    m.parallelism = p;
    m.latency_ms = 20.0;
    m.throughput = 1000.0;
    m.input_rate = 1000.0;
    return m;
  };
  TransferParams params;
  params.steady.target_latency_ms = 100.0;
  params.steady.target_throughput = 1000.0;
  params.steady.max_parallelism = 10;
  const TransferResult r =
      run_transfer(eval, {1, 1}, toy_model(1000.0), params);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.real_evaluations, 1);
  EXPECT_EQ(evals, 1);
}

TEST(RunTransfer, UsesFewerRealRunsThanBootstrapWouldNeed) {
  // Scripted physics shared by both rates: latency improves with total
  // parallelism; the score surface transfers almost unchanged, so the
  // prior should let the transfer loop converge with a handful of runs.
  const auto physics = [](const Parallelism& p) {
    JobMetrics m;
    m.parallelism = p;
    const int total = p[0] + p[1];
    m.latency_ms = 260.0 / total;
    m.throughput = 1000.0;
    m.input_rate = 1000.0;
    return m;
  };
  // Prior trained at the "old rate" with the true score function.
  BenefitModel prior;
  prior.rate = 800.0;
  prior.base = {1, 1};
  const ScoreParams sp{.target_latency_ms = 100.0, .alpha = 0.5,
                       .base = {1, 1}};
  for (int a = 1; a <= 9; a += 2) {
    for (int b = 1; b <= 9; b += 2) {
      SamplePoint s;
      s.config = {a, b};
      const JobMetrics m = physics({a, b});
      s.score = benefit_score(m, sp);
      s.metrics = m;
      prior.samples.push_back(std::move(s));
    }
  }
  prior.fit();

  int evals = 0;
  const Evaluator eval = [&](const Parallelism& p) {
    ++evals;
    return physics(p);
  };
  TransferParams params;
  params.steady.target_latency_ms = 100.0;
  params.steady.target_throughput = 1000.0;
  params.steady.score_threshold = 0.85;
  params.steady.max_parallelism = 10;
  params.n_num = 10;
  params.max_transfer_evaluations = 10;
  const TransferResult r = run_transfer(eval, {1, 1}, prior, params);
  EXPECT_TRUE(r.converged);
  // Bootstrap alone would need ~8 runs (1 base + 5 uniform + 2 single-op);
  // the transfer loop must beat that.
  EXPECT_LT(r.real_evaluations, 8);
  EXPECT_EQ(r.real_evaluations, evals);
  EXPECT_LE(r.best_metrics.latency_ms, 100.0);
}

TEST(RunTransfer, SwitchesToAlgorithm1AfterNnum) {
  // Physics where nothing satisfies the score threshold, so the loop keeps
  // going and must hand over to Algorithm 1 once n_num real samples exist.
  const Evaluator eval = [](const Parallelism& p) {
    JobMetrics m;
    m.parallelism = p;
    m.latency_ms = 500.0;  // never compliant
    m.throughput = 100.0;
    m.input_rate = 1000.0;
    return m;
  };
  TransferParams params;
  params.steady.target_latency_ms = 100.0;
  params.steady.target_throughput = 1000.0;
  params.steady.max_parallelism = 6;
  params.steady.max_evaluations = 6;
  params.n_num = 3;
  params.max_transfer_evaluations = 12;
  const TransferResult r =
      run_transfer(eval, {1, 1}, toy_model(1000.0), params);
  EXPECT_TRUE(r.switched_to_algorithm1);
  EXPECT_FALSE(r.converged);
  EXPECT_FALSE(r.real_samples.empty());
}

TEST(RunTransfer, InitialRealSamplesSkipBaseMeasurement) {
  int evals = 0;
  const Evaluator eval = [&](const Parallelism& p) {
    ++evals;
    JobMetrics m;
    m.parallelism = p;
    m.latency_ms = 20.0;
    m.throughput = 1000.0;
    m.input_rate = 1000.0;
    return m;
  };
  TransferParams params;
  params.steady.target_latency_ms = 100.0;
  params.steady.target_throughput = 1000.0;
  params.steady.max_parallelism = 10;
  std::vector<SamplePoint> initial{real_sample({2, 2}, 0.8)};
  const TransferResult r = run_transfer(eval, {1, 1}, toy_model(1000.0),
                                        params, std::move(initial));
  // The base was not measured up front; the first recommendation is
  // evaluated instead.
  EXPECT_GE(evals, 1);
  EXPECT_TRUE(r.converged || r.switched_to_algorithm1 ||
              r.real_evaluations > 0);
}

TEST(RunTransfer, NexmarkQ11EndToEnd) {
  // Train a prior at 80k, then transfer to 100k (the paper's Fig. 8
  // Query11 scenario) and require convergence within a few real runs.
  // Mirrors the paper's flow: throughput optimisation first to get k' at
  // each rate, then Algorithm 1 (prior) / Algorithm 2 (transfer).
  auto make_runner = [](double rate) {
    auto spec = autra::workloads::nexmark_q11(
        std::make_shared<ConstantRate>(rate));
    spec.engine.measurement_noise = 0.0;
    return sim::JobRunner(std::move(spec),
      {.warmup_sec = 40.0, .measure_sec = 40.0});
  };
  auto base_for = [](sim::JobRunner& runner) {
    const Evaluator eval = make_runner_evaluator(runner);
    const ThroughputOptimizer opt(
        runner.spec().topology,
        {.max_parallelism = runner.max_parallelism()});
    return opt.optimize(eval, Parallelism(2, 1)).best;
  };

  // Prior at 80k via Algorithm 1.
  sim::JobRunner r80 = make_runner(80000.0);
  const Evaluator e80 = make_runner_evaluator(r80);
  const Parallelism base80 = base_for(r80);
  SteadyRateParams sp;
  sp.target_latency_ms = 150.0;
  sp.target_throughput = 80000.0;
  sp.max_parallelism = r80.max_parallelism();
  const SteadyRateResult prior_run = run_steady_rate(e80, base80, sp);
  const BenefitModel prior =
      make_benefit_model(80000.0, base80, prior_run);

  // Transfer to 100k.
  sim::JobRunner r100 = make_runner(100000.0);
  const Evaluator e100 = make_runner_evaluator(r100);
  const Parallelism base100 = base_for(r100);
  TransferParams tp;
  tp.steady = sp;
  tp.steady.target_throughput = 100000.0;
  tp.steady.max_parallelism = r100.max_parallelism();
  const TransferResult r = run_transfer(e100, base100, prior, tp);
  EXPECT_TRUE(r.converged || r.switched_to_algorithm1);
  EXPECT_GE(r.best_metrics.throughput, 0.95 * 100000.0);
  EXPECT_LE(r.real_evaluations, 12);
}

}  // namespace
}  // namespace autra::core
